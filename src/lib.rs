//! # tpp — Tiny Packet Programs
//!
//! A Rust reproduction of *Tiny Packet Programs for low-latency network
//! control and monitoring* (Jeyakumar, Alizadeh, Kim, Mazières —
//! HotNets-XII, 2013).
//!
//! TPPs embed a handful of RISC-style instructions in packet headers;
//! switch ASICs execute them at line rate against a memory-mapped view of
//! switch state (queue depths, link counters, forwarding metadata,
//! scratch SRAM). Complex network tasks then split into a trivial
//! in-network program and smart end-host logic.
//!
//! This facade re-exports the whole workspace:
//!
//! | Layer | Crate | What it is |
//! |---|---|---|
//! | [`wire`] | `tpp-wire` | Ethernet + TPP packet formats (zero-copy views) |
//! | [`isa`] | `tpp-isa` | Table 1 instruction set, §3.2.1 address space, assembler |
//! | [`asic`] | `tpp-asic` | The §3 switch pipeline: tables, MMU, TCPU, queues |
//! | [`netsim`] | `tpp-netsim` | Deterministic discrete-event network simulator |
//! | [`host`] | `tpp-host` | End-host toolkit: probes, echo, pacing, telemetry |
//! | [`apps`] | `tpp-apps` | §2's tasks: micro-burst, RCP\*, ndb, CSTORE counter |
//! | [`rcp_ref`] | `tpp-rcp-ref` | Reference in-router RCP (ns-2's role) + AIMD |
//! | [`control`] | `tpp-control` | Control-plane agent: SRAM partitioning, versions, edge security |
//! | [`spec`] | `tpp-spec` | Executable reference semantics — the conformance oracle for `asic` |
//! | [`obs`] | `tpp-obs` | Observability plane: collector, Prometheus/JSONL export, `tpp-top` |
//!
//! ## Quickstart
//!
//! Query queue depths along a 3-switch path with a one-instruction TPP
//! (the paper's Figure 1):
//!
//! ```
//! use tpp::isa::assemble;
//! use tpp::host::ProbeBuilder;
//! use tpp::wire::tpp::TppPacket;
//! use tpp::wire::{EthernetAddress, Frame};
//!
//! // 1. Write the program the switches will run.
//! let program = assemble("PUSH [Queue:QueueSize]").unwrap();
//!
//! // 2. Preallocate packet memory for 3 hops and mint the probe.
//! let probe = ProbeBuilder::stack(&program, 3);
//! let frame = probe.build_frame(
//!     EthernetAddress::from_host_id(1),
//!     EthernetAddress::from_host_id(0),
//! );
//!
//! // 3. (Normally the network executes it; see examples/quickstart.rs
//! //    for the full simulated run.)
//! let parsed = Frame::new_checked(&frame[..]).unwrap();
//! let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
//! assert_eq!(tpp.instruction_count(), 1);
//! assert_eq!(tpp.mem_len(), 12); // 3 hops x 4-byte queue samples
//! ```
//!
//! Run `cargo run --example quickstart` for the end-to-end version, and
//! see `EXPERIMENTS.md` for the reproduction of every figure and table
//! in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tpp_apps as apps;
pub use tpp_asic as asic;
pub use tpp_control as control;
pub use tpp_host as host;
pub use tpp_isa as isa;
pub use tpp_netsim as netsim;
pub use tpp_obs as obs;
pub use tpp_rcp_ref as rcp_ref;
pub use tpp_spec as spec;
pub use tpp_telemetry as telemetry;
pub use tpp_wire as wire;

/// The commonly-used surface in one import: `use tpp::prelude::*;`.
///
/// Covers the quickstart path — assemble a program, mint a probe, wire a
/// simulated network, run it, decode the echo — plus the telemetry layer
/// (trace sinks, metrics). Anything deeper (individual tables, the MMU,
/// RCP internals) stays behind the per-crate modules above.
pub mod prelude {
    pub use crate::asic::{
        Asic, AsicConfig, DropReason, ExecReport, FlowAction, FlowEntry, FlowMatch, Outcome,
        PortConfig, PortId, QueueId, SramError, StripAction,
    };
    pub use crate::host::{
        decode_echo, split_hops, EchoReceiver, HopView, PathSample, ProbeBuilder, DATA_ETHERTYPE,
    };
    pub use crate::isa::{assemble, Program};
    pub use crate::netsim::{
        dumbbell, dumbbell_with, fat_tree, fat_tree_with, leaf_spine, leaf_spine_with,
        linear_chain, linear_chain_with, time, Dumbbell, DumbbellParams, Endpoint, FatTree,
        FatTreeParams, HostApp, HostCtx, HostId, LeafSpine, LeafSpineParams, LinearChain,
        LinearChainParams, NetworkBuilder, ObsHandle, RunLimit, SimConfig, Simulator, SwitchId,
        Topology,
    };
    pub use crate::obs::{prometheus_snapshot, render_top, series_jsonl, Collector};
    pub use crate::telemetry::{
        write_csv, write_jsonl, MetricsRegistry, SharedSink, TraceEvent, TraceEventKind, TraceSink,
    };
    pub use crate::wire::ethernet::{build_frame, EtherType, Frame};
    pub use crate::wire::tpp::{AddressingMode, TppBuilder, TppPacket};
    pub use crate::wire::EthernetAddress;
}
