//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the proptest API its property tests
//! actually use: the `proptest!` / `prop_oneof!` / `prop_assert*!`
//! macros, `Strategy` with `prop_map`, `Just`, `any`, integer-range and
//! tuple strategies, `collection::vec` and `sample::subsequence`.
//!
//! Semantics: each test runs `ProptestConfig::cases` randomized cases
//! from a fixed per-test seed (deterministic across runs, like a pinned
//! `PROPTEST_RNG_SEED`). There is **no shrinking** — a failing case
//! reports its inputs via the panic message of the failed assertion
//! instead of a minimized counterexample. That trades debugging comfort
//! for a zero-dependency, fully offline runner; the properties being
//! checked are identical.

// Vendored stand-in: keep clippy out of it so `-D warnings` gates
// only first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// uniformly from `size` (half-open, like upstream's `SizeRange`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample::subsequence`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy picking an order-preserving subsequence of `items`
    /// whose length is drawn uniformly from `size` (half-open).
    pub fn subsequence<T: Clone>(items: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        Subsequence { items, size }
    }

    /// See [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: Range<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.items.len();
            let lo = self.size.start.min(n);
            let hi = self.size.end.min(n + 1).max(lo + 1);
            let k = rng.usize_in(lo..hi);
            // Partial Fisher-Yates over the index set, then restore
            // order so the result is a true subsequence.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + rng.usize_in(0..(n - i).max(1));
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

/// The glob-import surface user tests pull in.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Core strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core is [`generate`](Strategy::generate); combinators
    /// are `Self: Sized` so `Rc<dyn Strategy>` works for `prop_oneof!`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erase for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A reference-counted type-erased strategy (clonable, single
    /// threaded — tests run one case at a time).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Any value of `A` at all.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! impl_strategy_for_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    impl_strategy_for_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_for_tuple {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_strategy_for_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

    /// Upstream treats `&str` as a regex strategy over `String`. This
    /// stand-in supports the subset the workspace uses: an optional
    /// trailing `{lo,hi}` length quantifier over a character class,
    /// where `\PC` (any printable char) is honored and any other class
    /// falls back to printable ASCII. Enough to fuzz "arbitrary text
    /// never panics the parser" properties.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, lo, hi) = parse_pattern(self);
            let len = rng.usize_in(lo..hi + 1);
            (0..len).map(|_| class.sample(rng)).collect()
        }
    }

    enum CharClass {
        /// `\PC`: any printable character, occasionally non-ASCII.
        Printable,
        /// Fallback: printable ASCII only.
        Ascii,
    }

    impl CharClass {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                CharClass::Ascii => (0x20 + (rng.next_u64() % 95) as u8) as char,
                CharClass::Printable => {
                    if rng.next_u64() % 8 == 0 {
                        // Occasionally exercise multibyte chars.
                        char::from_u32(0xA1 + (rng.next_u64() % 0xFF00) as u32).unwrap_or('¿')
                    } else {
                        (0x20 + (rng.next_u64() % 95) as u8) as char
                    }
                }
            }
        }
    }

    fn parse_pattern(pattern: &str) -> (CharClass, usize, usize) {
        let (class_part, lo, hi) = match pattern.rfind('{') {
            Some(open) if pattern.ends_with('}') => {
                let body = &pattern[open + 1..pattern.len() - 1];
                let (a, b) = body.split_once(',').unwrap_or((body, body));
                (
                    &pattern[..open],
                    a.trim().parse().unwrap_or(0),
                    b.trim().parse().unwrap_or(32),
                )
            }
            _ => (pattern, 0usize, 32usize),
        };
        let class = if class_part.contains("\\PC") {
            CharClass::Printable
        } else {
            CharClass::Ascii
        };
        (class, lo, hi.max(lo))
    }
}

/// Runner configuration, RNG, and error type.
pub mod test_runner {
    use std::fmt;
    use std::ops::Range;

    /// Per-test runner settings (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomized cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Default config with `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case. Created by the `prop_assert*!` macros;
    /// the runner panics with this message (no shrinking).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The runner's deterministic RNG (SplitMix64, seeded per test from
    /// the test's name so streams are stable across runs and across
    /// test-order changes).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the property name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name: stable, well-spread seeds.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from a half-open usize range.
        pub fn usize_in(&mut self, range: Range<usize>) -> usize {
            if range.start >= range.end {
                return range.start;
            }
            let span = (range.end - range.start) as u64;
            range.start + (self.next_u64() % span) as usize
        }
    }
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a test running `cases` randomized cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pname:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pname =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion: on failure the current case returns an error
/// (usable only inside `proptest!` bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property equality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                            stringify!($left), stringify!($right), left, right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n  left: `{:?}`\n right: `{:?}`",
                            format!($($fmt)+), left, right
                        ),
                    ));
                }
            }
        }
    };
}

/// Property inequality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: `{:?}`",
                            stringify!($left),
                            stringify!($right),
                            left
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        let s = (10u16..20).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!(v >= 20 && v < 40 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::deterministic("vec");
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = TestRng::deterministic("subseq");
        let s = crate::sample::subsequence(vec![1, 2, 3, 4, 5, 6], 1..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 6);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "order preserved: {v:?}");
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::deterministic("strings");
        let s = "\\PC{0,200}";
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro surface itself: bindings, tuples, early return.
        #[test]
        fn macro_roundtrip(a in 0u32..100, pair in (0u8..4, any::<bool>())) {
            if pair.1 {
                return Ok(());
            }
            prop_assert!(a < 100);
            prop_assert_eq!(pair.0 as u32 + a, a + pair.0 as u32);
        }
    }
}
