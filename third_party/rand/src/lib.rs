//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *tiny* subset of the `rand 0.8` API it actually
//! uses: a seedable deterministic generator (`rngs::StdRng` +
//! `SeedableRng::seed_from_u64`) and uniform integer sampling
//! (`Rng::gen_range` over half-open ranges).
//!
//! The simulator only needs *deterministic, well-mixed* draws — it seeds
//! every run with a fixed constant so experiments replay bit-for-bit.
//! The generator here is SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators"), which passes BigCrush and is more
//! than adequate for packet-loss coin flips. It is intentionally NOT the
//! same stream as upstream `StdRng` (ChaCha12); nothing in the workspace
//! depends on a specific stream, only on determinism.

// Vendored stand-in: keep clippy out of it so `-D warnings` gates
// only first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`. Panics on an empty range, like
    /// upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < span/2^64 — irrelevant for the
                // simulator's coin flips; determinism is what matters.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: state += golden gamma; output = mix(state).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let da: Vec<u32> = (0..32).map(|_| a.gen_range(0..1000u32)).collect();
        let db: Vec<u32> = (0..32).map(|_| b.gen_range(0..1000u32)).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
        }
        for _ in 0..10_000 {
            let v = rng.gen_range(0..1000u32);
            assert!(v < 1000);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let da: Vec<u32> = (0..8).map(|_| a.gen_range(0..u32::MAX)).collect();
        let db: Vec<u32> = (0..8).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn rough_uniformity() {
        // 100k draws over 10 buckets: every bucket within ±10% of mean.
        let mut rng = StdRng::seed_from_u64(99);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b} off-uniform");
        }
    }
}
