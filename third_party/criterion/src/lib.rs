//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion API its benches use:
//! `Criterion`, `benchmark_group` (with `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `finish`), `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! `sample_size` samples whose iteration counts are auto-scaled so a
//! sample takes roughly [`TARGET_SAMPLE`]. The report prints the median
//! sample in ns/iter plus derived throughput — no statistics engine, no
//! HTML, no comparison to saved baselines. Good enough to spot
//! order-of-magnitude regressions by eye, which is what the acceptance
//! criteria ask of it.

// Vendored stand-in: keep clippy out of it so `-D warnings` gates
// only first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-clock budget per timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Wall-clock budget for warm-up before iteration scaling.
const WARMUP: Duration = Duration::from_millis(50);

/// Throughput annotation for a benchmark, used to derive rate lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, auto-scaling iteration count to the sample
    /// budget. The routine's return value is consumed (kept alive past
    /// the timed region) so its construction isn't optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also yields a first cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);
        let iters = ((TARGET_SAMPLE.as_nanos() as f64 / est_ns) as u64).clamp(1, 1_000_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// One benchmark result, printed by the harness.
fn report(label: &str, samples: &[f64], throughput: Option<Throughput>) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    print!("{label:<40} time: [{lo:>10.1} ns {median:>10.1} ns {hi:>10.1} ns]");
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            println!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / median);
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            println!(
                "  thrpt: {:.3} MiB/s",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            );
        }
        _ => println!(),
    }
}

/// The top-level benchmark manager.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, None, f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Annotate following benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (explicit, to mirror upstream's API).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    // Cap samples: the stand-in's per-sample cost is fixed, so large
    // upstream sample sizes (criterion defaults to 100) would only slow
    // the run without improving the median estimate much.
    let samples: Vec<f64> = (0..sample_size.clamp(3, 20))
        .map(|_| {
            let mut bencher = Bencher { ns_per_iter: 0.0 };
            f(&mut bencher);
            bencher.ns_per_iter
        })
        .collect();
    report(label, &samples, tp);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 3u32.pow(2)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("entries", 16).to_string(), "entries/16");
    }
}
