//! §2.4 incremental deployment: "TPPs can be incrementally deployed —
//! a TPP-unaware switch simply forwards the packet without executing
//! it." A multi-hop path where the *middle* switch has its TCPU fused
//! off must still yield correct telemetry and correct writes: the dark
//! switch is invisible (no hop slot, no pushes, hop counter untouched),
//! and hop numbering stays contiguous for the switches that do execute.

use tpp::apps::cstore::{CounterTask, CounterWriteMode};
use tpp::apps::microburst::MicroburstMonitor;
use tpp::asic::AsicConfig;
use tpp::host::{decode_echo, parse_echo, EchoReceiver, ProbeBuilder};
use tpp::isa::programs;
use tpp::netsim::RunLimit;
use tpp::netsim::{time, Endpoint, HostApp, HostCtx, NetworkBuilder, Simulator, SwitchId};
use tpp::wire::EthernetAddress;

const WPH: usize = programs::MICROBURST_WORDS_PER_HOP;

/// Sends one queue-collect probe at start and keeps the raw echo frame.
#[derive(Debug)]
struct PathProbe {
    dst: EthernetAddress,
    echo: Option<Vec<u8>>,
}

impl HostApp for PathProbe {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let probe = ProbeBuilder::stack(&programs::microburst_collect(), 8);
        let frame = probe.build_frame(self.dst, ctx.mac());
        ctx.send(frame);
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        if parse_echo(&frame, ctx.mac()).is_some() {
            self.echo = Some(frame);
        }
    }
}

/// `left -- s1 -- s2 -- s3 -- right`; `s2`'s TCPU can be fused off.
fn chain(
    left_app: Box<dyn HostApp>,
    right_app: Box<dyn HostApp>,
    middle_tcpu: bool,
) -> (Simulator, Vec<SwitchId>) {
    let mut net = NetworkBuilder::new();
    let switches: Vec<SwitchId> = (0..3)
        .map(|i| {
            let mut cfg = AsicConfig::with_ports(1 + i as u32, 2);
            if i == 1 {
                cfg.tcpu_enabled = middle_tcpu;
            }
            net.add_switch(cfg)
        })
        .collect();
    let left = net.add_host(left_app, 10_000_000);
    let right = net.add_host(right_app, 10_000_000);
    net.connect(
        Endpoint::host(left),
        Endpoint::switch(switches[0], 0),
        time::micros(1),
    );
    for w in switches.windows(2) {
        net.connect(
            Endpoint::switch(w[0], 1),
            Endpoint::switch(w[1], 0),
            time::micros(1),
        );
    }
    net.connect(
        Endpoint::host(right),
        Endpoint::switch(switches[2], 1),
        time::micros(1),
    );
    let mut sim = net.build();
    sim.populate_l2();
    (sim, switches)
}

fn probe_app() -> Box<PathProbe> {
    Box::new(PathProbe {
        dst: EthernetAddress::from_host_id(1),
        echo: None,
    })
}

#[test]
fn tpp_unaware_middle_switch_is_invisible_to_collection() {
    let (mut sim, _switches) = chain(probe_app(), Box::<EchoReceiver>::default(), false);
    sim.run(RunLimit::Until(time::millis(10)));

    let left = sim.host_app::<PathProbe>(tpp::netsim::HostId(0));
    let frame = left.echo.as_ref().expect("echo came back");
    let tpp = parse_echo(frame, EthernetAddress::from_host_id(0)).expect("parseable echo");
    // Only the two TPP-aware switches bumped the hop counter.
    assert_eq!(tpp.hop(), 2, "dark switch must not count as a hop");

    let sample = decode_echo(frame, EthernetAddress::from_host_id(0), WPH).expect("clean layout");
    assert_eq!(sample.hop_count, 2);
    assert_eq!(sample.hops.len(), 2);
    // Hop slots are contiguous — no gap where the dark switch sits.
    let slots: Vec<usize> = sample.hops.iter().map(|h| h.hop).collect();
    assert_eq!(slots, vec![0, 1]);
    // And they belong to switches 1 and 3; switch 2 pushed nothing.
    let ids: Vec<u32> = sample.hops.iter().map(|h| h.words[0]).collect();
    assert_eq!(ids, vec![1, 3]);
}

#[test]
fn full_deployment_sees_every_switch() {
    let (mut sim, _switches) = chain(probe_app(), Box::<EchoReceiver>::default(), true);
    sim.run(RunLimit::Until(time::millis(10)));

    let left = sim.host_app::<PathProbe>(tpp::netsim::HostId(0));
    let frame = left.echo.as_ref().expect("echo came back");
    let sample = decode_echo(frame, EthernetAddress::from_host_id(0), WPH).expect("clean layout");
    let ids: Vec<u32> = sample.hops.iter().map(|h| h.words[0]).collect();
    assert_eq!(ids, vec![1, 2, 3], "all three switches execute");
}

#[test]
fn microburst_monitor_works_over_partial_deployment() {
    let monitor = MicroburstMonitor::new(
        EthernetAddress::from_host_id(1),
        8,
        time::millis(1),
        0,
        time::millis(500),
    );
    let (mut sim, _switches) = chain(Box::new(monitor), Box::<EchoReceiver>::default(), false);
    sim.run(RunLimit::Until(time::millis(600)));

    let monitor = sim.host_app::<MicroburstMonitor>(tpp::netsim::HostId(0));
    assert!(monitor.echoes_received > 100, "steady sampling");
    assert_eq!(
        monitor.switches_observed(),
        vec![1, 3],
        "series exist exactly for the TPP-aware switches"
    );
}

#[test]
fn cstore_writes_land_beyond_the_dark_switch() {
    const WORD: usize = 6;
    const GOAL: u32 = 10;
    // Target the far switch (ID 3): every probe crosses the dark switch
    // twice, and the CEXEC switch-ID gate must still fire only on 3.
    let task = CounterTask::new(
        EthernetAddress::from_host_id(1),
        3,
        WORD,
        GOAL,
        CounterWriteMode::Linearizable,
    );
    let (mut sim, switches) = chain(Box::new(task), Box::<EchoReceiver>::default(), false);
    sim.run(RunLimit::Until(time::secs(5)));

    let task = sim.host_app::<CounterTask>(tpp::netsim::HostId(0));
    assert!(task.done(), "counter task finished across the partial path");
    let far = sim.switch(switches[2]).global_sram().word(WORD).unwrap();
    assert_eq!(far, GOAL);
    for sw in [switches[0], switches[1]] {
        assert_eq!(
            sim.switch(sw).global_sram().word(WORD).unwrap(),
            0,
            "gate keeps other switches untouched"
        );
    }
}
