//! Telemetry invariants: the trace stream is not a second, parallel
//! truth — every event count must reconcile with the switch registers
//! the paper's TPPs read, and the queue depths a traced `PUSH
//! [Queue:QueueSize]` walk records in packet memory must be the same
//! depths the `enqueue` events saw from inside the pipeline.

use tpp::prelude::*;

/// The Figure 1 walk, traced: three switches with staged egress
/// backlogs (0x00 / 0xa0 / 0x0e). The per-hop queue sizes the
/// receiving host decodes out of packet memory must match the
/// `depth_bytes` of the probe's `enqueue` event at each switch — both
/// are observations of the same instant in the same pipeline.
#[test]
fn fig1_enqueue_depths_match_hop_records() {
    let sink = SharedSink::new(256);
    let dst = EthernetAddress::from_host_id(1);
    let src = EthernetAddress::from_host_id(0);
    let program = assemble("PUSH [Queue:QueueSize]").unwrap();
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().unwrap())
        .memory_words(3)
        .build();
    let mut frame = build_frame(dst, src, EtherType::TPP, &payload);

    let backlogs = [0x00usize, 0xa0, 0x0e];
    for (i, backlog) in backlogs.iter().enumerate() {
        let mut asic = Asic::new(AsicConfig::with_ports(i as u32 + 1, 2));
        asic.set_trace_sink(Some(Box::new(sink.clone())));
        asic.l2_mut().insert(dst, 1);
        if *backlog > 0 {
            let filler = build_frame(dst, src, DATA_ETHERTYPE, &vec![0u8; backlog - 14]);
            assert!(asic.handle_frame(filler, 0, 0).is_enqueued());
        }
        let outcome = asic.handle_frame(frame.clone(), 0, 1_000 * (i as u64 + 1));
        let (port, _) = outcome.egress().expect("probe forwarded");
        if *backlog > 0 {
            asic.dequeue(port); // the filler
        }
        frame = asic.dequeue(port).expect("probe queued");
    }

    // What the receiving host decodes out of packet memory...
    let parsed = Frame::new_checked(&frame[..]).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
    let sample = split_hops(&tpp, 1).unwrap();
    let hop_depths: Vec<u64> = sample.hops.iter().map(|h| h.words[0] as u64).collect();
    assert_eq!(hop_depths, vec![0x00, 0xa0, 0x0e]);

    // ...must agree with what the pipeline trace recorded. The probe's
    // enqueue is the first one after that switch's TCPU execution.
    let events = sink.events();
    for (i, want) in hop_depths.iter().enumerate() {
        let sw = i as u32 + 1;
        let mut saw_exec = false;
        let mut probe_depth = None;
        for ev in events.iter().filter(|e| e.switch_id == sw) {
            match &ev.kind {
                TraceEventKind::TcpuExec { hop, .. } => {
                    assert_eq!(*hop as usize, i + 1, "hop counter at switch {sw}");
                    saw_exec = true;
                }
                TraceEventKind::Enqueue { depth_bytes, .. } if saw_exec => {
                    probe_depth = Some(*depth_bytes);
                    break;
                }
                _ => {}
            }
        }
        assert_eq!(probe_depth, Some(*want), "switch {sw} traced enqueue depth");
    }
}

/// Sends a burst of Figure-1 probes at t = 0.
struct BurstProber {
    n: usize,
}

impl HostApp for BurstProber {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let program = assemble("PUSH [Queue:QueueSize]").expect("valid program");
        for _ in 0..self.n {
            let probe = ProbeBuilder::stack(&program, 3);
            ctx.send(probe.build_frame(EthernetAddress::from_host_id(1), ctx.mac()));
        }
    }
}

/// Fleet-wide reconciliation in the simulator: per switch, the number
/// of `parse` events equals `packets_processed` and the number of
/// `tcpu_exec` events equals `tpps_executed`; the metrics registry the
/// simulator rebuilds on its stats tick sums to the same totals.
#[test]
fn trace_counts_reconcile_with_registers_and_metrics() {
    let (mut sim, chain) = linear_chain(
        LinearChainParams::default(),
        Box::new(BurstProber { n: 20 }),
        Box::new(EchoReceiver::default()),
    );
    let sink = sim.observe().trace_all(65_536);
    sim.run(RunLimit::Until(time::millis(5)));

    let events = sink.events();
    assert_eq!(sink.shed(), 0, "ring buffer overflowed; grow the capacity");
    assert!(!events.is_empty());

    let mut total_packets = 0;
    let mut total_tpps = 0;
    for id in &chain.switches {
        let asic = sim.switch(*id);
        let sw = asic.switch_id();
        let parses = events
            .iter()
            .filter(|e| e.switch_id == sw && matches!(e.kind, TraceEventKind::Parse { .. }))
            .count() as u64;
        let execs = events
            .iter()
            .filter(|e| e.switch_id == sw && matches!(e.kind, TraceEventKind::TcpuExec { .. }))
            .count() as u64;
        assert_eq!(
            parses,
            asic.regs().packets_processed,
            "switch {sw}: one parse event per processed packet"
        );
        assert_eq!(
            execs,
            asic.regs().tpps_executed,
            "switch {sw}: one tcpu_exec event per executed TPP"
        );
        total_packets += asic.regs().packets_processed;
        total_tpps += asic.regs().tpps_executed;
    }
    assert!(total_tpps >= 20 * 3, "every probe ran at every hop");

    // The fleet registry rebuilds from the switches' registers on
    // access, so its sums equal the registers' final values.
    assert_eq!(
        sim.metrics().counter("switch.packets_processed"),
        total_packets
    );
    assert_eq!(sim.metrics().counter("switch.tpps_executed"), total_tpps);
}
