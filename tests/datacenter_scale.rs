//! Scale / co-deployment test: a larger leaf-spine fabric running every
//! task at once — RCP\* flows across racks, a micro-burst monitor, ndb
//! tracers and CSTORE counters sharing switches and SRAM — and the whole
//! thing is deterministic.

use tpp::apps::ndb::{NdbProbeSender, TraceCollector};
use tpp::apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp::apps::{CounterTask, CounterWriteMode, MicroburstMonitor};
use tpp::host::EchoReceiver;
use tpp::netsim::RunLimit;
use tpp::netsim::{leaf_spine, time, HostApp, LeafSpineParams, Simulator};
use tpp::wire::EthernetAddress;

const N_LEAVES: usize = 8;
const N_SPINES: usize = 4;
const HOSTS_PER_LEAF: usize = 4;

struct Snapshot {
    rcp_rates: Vec<u64>,
    ndb_traces: usize,
    monitor_samples: usize,
    counter_value: u32,
    total_packets: u64,
}

fn build_and_run() -> (Simulator, tpp::netsim::LeafSpine, Snapshot) {
    let params = LeafSpineParams {
        n_leaves: N_LEAVES,
        n_spines: N_SPINES,
        hosts_per_leaf: HOSTS_PER_LEAF,
        host_link_kbps: 100_000,   // 100 Mb/s keeps event counts sane
        fabric_link_kbps: 400_000, // 4:1 oversubscription at the leaf
        ..Default::default()
    };
    // Host ids are leaf-major: host (l, i) has id l*HOSTS_PER_LEAF + i.
    let id = |l: usize, i: usize| (l * HOSTS_PER_LEAF + i) as u32;
    let mut apps: Vec<Box<dyn HostApp>> = Vec::new();
    for l in 0..N_LEAVES {
        for i in 0..HOSTS_PER_LEAF {
            let app: Box<dyn HostApp> = match (l, i) {
                // Four RCP* senders in rack 0/1, paired with echo
                // receivers in racks 4/5 (cross-fabric traffic).
                (0 | 1, 0 | 1) => {
                    let target = id(l + 4, i);
                    Box::new(RcpStarSender::new(
                        EthernetAddress::from_host_id(target),
                        RcpStarConfig::default(),
                    ))
                }
                (4 | 5, 0 | 1) => Box::new(EchoReceiver::default()),
                // An ndb tracer rack 2 -> rack 6.
                (2, 0) => Box::new(NdbProbeSender::new(
                    EthernetAddress::from_host_id(id(6, 0)),
                    3,
                    time::millis(1),
                    200,
                )),
                (6, 0) => Box::new(TraceCollector::default()),
                // A micro-burst monitor watching the path into rack 7.
                (3, 0) => Box::new(MicroburstMonitor::new(
                    EthernetAddress::from_host_id(id(7, 0)),
                    3,
                    time::micros(500),
                    0,
                    time::secs(2),
                )),
                (7, 0) => Box::new(EchoReceiver::default()),
                // Two CSTORE counters racing on spine 0x20's SRAM.
                (2, 1) | (3, 1) => Box::new(CounterTask::new(
                    EthernetAddress::from_host_id(id(l + 4, 1)),
                    0x20,
                    0,
                    15,
                    CounterWriteMode::Linearizable,
                )),
                (6 | 7, 1) => Box::new(EchoReceiver::default()),
                _ => Box::new(EchoReceiver::default()),
            };
            apps.push(app);
        }
    }
    let (mut sim, fabric) = leaf_spine(params, apps);
    for sw in fabric.leaves.iter().chain(&fabric.spines) {
        init_rate_registers(sim.switch_mut(*sw));
    }
    sim.run(RunLimit::Until(time::secs(2)));

    let rcp_rates = [(0, 0), (0, 1), (1, 0), (1, 1)]
        .iter()
        .map(|(l, i)| {
            sim.host_app::<RcpStarSender>(fabric.hosts[*l][*i])
                .rate_bps()
        })
        .collect();
    let snapshot = Snapshot {
        rcp_rates,
        ndb_traces: sim
            .host_app::<TraceCollector>(fabric.hosts[6][0])
            .traces
            .len(),
        monitor_samples: sim
            .host_app::<MicroburstMonitor>(fabric.hosts[3][0])
            .samples
            .len(),
        counter_value: sim.switch(fabric.spines[0]).global_sram().word(0).unwrap(),
        total_packets: fabric
            .leaves
            .iter()
            .map(|l| sim.switch(*l).regs().packets_processed)
            .sum(),
    };
    (sim, fabric, snapshot)
}

#[test]
fn all_tasks_coexist_at_scale() {
    let (sim, fabric, snap) = build_and_run();

    // Every RCP* flow got a real allocation (well above its 500 kb/s
    // starting rate; their paths share fabric links with each other).
    for rate in &snap.rcp_rates {
        assert!(
            *rate > 5_000_000,
            "an RCP* flow is starved at {rate} bps: {:?}",
            snap.rcp_rates
        );
    }
    // ndb saw all 200 traced packets take 3-switch cross-fabric paths.
    assert_eq!(snap.ndb_traces, 200);
    let traces = &sim.host_app::<TraceCollector>(fabric.hosts[6][0]).traces;
    assert!(traces.iter().all(|t| t.hops.len() == 3 && !t.has_loop()));

    // The monitor sampled ~4000 probes x 3 hops.
    assert!(snap.monitor_samples > 10_000, "{}", snap.monitor_samples);

    // The racing counters are exact: 2 hosts x 15 increments.
    assert_eq!(snap.counter_value, 30);

    // The fabric moved real traffic.
    assert!(snap.total_packets > 50_000, "{}", snap.total_packets);
}

#[test]
fn the_whole_datacenter_is_deterministic() {
    let (_, _, a) = build_and_run();
    let (_, _, b) = build_and_run();
    assert_eq!(a.rcp_rates, b.rcp_rates);
    assert_eq!(a.ndb_traces, b.ndb_traces);
    assert_eq!(a.monitor_samples, b.monitor_samples);
    assert_eq!(a.counter_value, b.counter_value);
    assert_eq!(a.total_packets, b.total_packets);
}
