//! Differential conformance: the optimized ASIC (`tpp-asic`, hot-path
//! caches on *and* off) against the reference semantics (`tpp-spec`),
//! driven by the shared harness in `tpp_bench::conformance`.
//!
//! The debug-profile test here runs a few hundred seeded cases; the CI
//! conformance lane runs the `conformance` bin in release mode over
//! ≥10 000 cases plus the full committed corpus.

use proptest::test_runner::TestRng;
use tpp::asic::decode_cache::{program_hash, FNV_OFFSET, FNV_PRIME};
use tpp::isa::{Instruction, Opcode};
use tpp_bench::conformance::{directed_cases, fuzz, gen_blob, parse_agreement};
use tpp_bench::testgen::{asic_pair, regs_match, step_both, tpp_frame};

#[test]
fn seeded_fuzz_has_no_divergences() {
    let n = 300;
    let stats = fuzz(0, n).unwrap_or_else(|d| {
        panic!(
            "case {} diverged:\n{}\nminimized witness:\n{}",
            d.case.name,
            d.error,
            d.minimized.to_json().pretty()
        )
    });
    assert_eq!(stats.cases, n);
    assert!(stats.executed_rounds > 0, "no TPP ever executed");
    assert!(stats.dropped_cases > 0, "queue-full path never exercised");
}

#[test]
fn spec_and_wire_parsers_agree_on_arbitrary_blobs() {
    let mut rng = TestRng::deterministic("tpp-parse-agreement");
    for i in 0..2000 {
        let blob = gen_blob(&mut rng);
        if let Err(e) = parse_agreement(&blob) {
            panic!("blob {i}: {e}\nbytes: {blob:02x?}");
        }
    }
}

#[test]
fn directed_corpus_covers_every_opcode() {
    let mut seen: Vec<u8> = directed_cases()
        .iter()
        .flat_map(|case| case.insns.iter())
        .filter_map(|&w| Instruction::decode(w).ok())
        .map(|insn| insn.opcode() as u8)
        .collect();
    seen.sort();
    seen.dedup();
    for &op in Opcode::ALL {
        assert!(
            seen.contains(&(op as u8)),
            "opcode {op:?} not covered by the directed corpus"
        );
    }
}

/// Satellite regression: two *different* programs engineered to share
/// their chunked-FNV-1a hash. The decode cache's exact-byte verification
/// must treat the second program as a miss (not replay the first one's
/// decode), so the cached ASIC stays bit-identical to the uncached one.
#[test]
fn decode_cache_rejects_constructed_hash_collision() {
    // Program A: two 8-byte chunks (PUSHI 1, NOP, PUSHI 2, NOP on the
    // wire). The cache hashes the raw big-endian instruction bytes.
    let a_words = [0x6000_0001u32, 0x0000_0000, 0x6000_0002, 0x0000_0000];
    let a: Vec<u8> = a_words.iter().flat_map(|w| w.to_be_bytes()).collect();
    let a1 = u64::from_le_bytes(a[0..8].try_into().unwrap());
    let a2 = u64::from_le_bytes(a[8..16].try_into().unwrap());
    // Program B: flip one bit in the first chunk, solve the second so
    // the folded hash is identical (hash = ((OFF ^ c1)·P ^ c2)·P).
    let b1 = a1 ^ (1 << 17);
    let b2 =
        (FNV_OFFSET ^ a1).wrapping_mul(FNV_PRIME) ^ a2 ^ (FNV_OFFSET ^ b1).wrapping_mul(FNV_PRIME);
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&b1.to_le_bytes());
    b.extend_from_slice(&b2.to_le_bytes());
    assert_ne!(a, b, "programs must differ byte-wise");
    assert_eq!(program_hash(&a), program_hash(&b), "constructed collision");
    let b_words: Vec<u32> = b
        .chunks(4)
        .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
        .collect();

    let (mut cached, mut uncached) = asic_pair();
    let frame_a = tpp_frame(1, 9, &a_words, &[0; 8]);
    let frame_b = tpp_frame(1, 9, &b_words, &[0; 8]);
    // Seed the decode cache with program A (second round is a hit).
    for round in 0..3 {
        step_both(&mut cached, &mut uncached, &frame_a, round);
    }
    let (hits_seeded, misses_seeded) = cached.decode_cache_stats();
    assert!(hits_seeded >= 2, "A's repeats should hit the cache");
    // Program B maps to the same hash (same slot). Byte verification
    // must reject the collision: B decodes fresh and behaves exactly
    // like the cache-less ASIC.
    step_both(&mut cached, &mut uncached, &frame_b, 10);
    regs_match(&cached, &uncached);
    let (_, misses_after) = cached.decode_cache_stats();
    assert!(
        misses_after > misses_seeded,
        "colliding program must be a verified miss, not a false hit"
    );
}
