//! Native-router RCP vs RCP\* on the *same* packet substrate — the
//! strongest form of the Figure 2 comparison: identical links, queues and
//! probe traffic; only the location of the control computation differs
//! (ASIC firmware vs end-host).

use tpp::apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp::host::EchoReceiver;
use tpp::netsim::RunLimit;
use tpp::netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp::rcp_ref::NativeRcpRouter;
use tpp::wire::EthernetAddress;

const C_BPS: f64 = 10e6;
const PERIOD: u64 = time::millis(10);

fn settled_mean(trace: &[(u64, u64)], lo: u64, hi: u64) -> f64 {
    let w: Vec<u64> = trace
        .iter()
        .filter(|(t, _)| *t >= lo && *t < hi)
        .map(|(_, r)| *r)
        .collect();
    assert!(!w.is_empty());
    w.iter().sum::<u64>() as f64 / w.len() as f64 / C_BPS
}

/// Run `n` flows for `secs`; `native` selects who computes the law.
fn run(n: usize, secs: u64, native: bool) -> Vec<f64> {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            let cfg = RcpStarConfig {
                compute_updates: !native,
                ..Default::default()
            };
            (
                Box::new(RcpStarSender::new(dst, cfg)) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: n,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    if native {
        // The ASIC-resident control loop, stepped every 10 ms by the
        // "firmware timer" (the harness).
        let mut routers = [
            NativeRcpRouter::paper_defaults(sim.switch(bell.left).num_ports(), 0.05, 0.01),
            NativeRcpRouter::paper_defaults(sim.switch(bell.right).num_ports(), 0.05, 0.01),
        ];
        let mut t = 0;
        while t < time::secs(secs) {
            t += PERIOD;
            sim.run(RunLimit::Until(t));
            routers[0].step(sim.switch_mut(bell.left), t);
            routers[1].step(sim.switch_mut(bell.right), t);
        }
    } else {
        sim.run(RunLimit::Until(time::secs(secs)));
    }
    bell.senders
        .iter()
        .map(|s| {
            settled_mean(
                &sim.host_app::<RcpStarSender>(*s).rate_trace,
                time::secs(secs - 2),
                time::secs(secs),
            )
        })
        .collect()
}

#[test]
fn native_router_converges_to_fair_shares() {
    for (n, ideal) in [(1usize, 1.0), (2, 0.5), (3, 1.0 / 3.0)] {
        let rates = run(n, 6, true);
        for r in &rates {
            assert!(
                (r - ideal).abs() < 0.12,
                "native, {n} flows: got R/C = {r}, want ~{ideal}"
            );
        }
    }
}

#[test]
fn native_and_endhost_implementations_agree() {
    // The paper's refactoring claim, on one substrate: moving the
    // computation to the end-hosts changes the result only marginally
    // (probe overhead + feedback latency).
    let native = run(2, 6, true);
    let star = run(2, 6, false);
    for (a, b) in native.iter().zip(&star) {
        assert!(
            (a - b).abs() < 0.15,
            "implementations diverge: native {a} vs RCP* {b}"
        );
    }
}
