//! E7 / §2.3 — the forwarding-plane debugger end to end: healthy pass,
//! stale-rule detection, misroute detection, black-hole detection.

use tpp::apps::ndb::{missing_ids, NdbProbeSender, PathPolicy, TraceCollector};
use tpp::apps::Violation;
use tpp::asic::{FlowAction, FlowMatch};
use tpp::control::NetworkController;
use tpp::netsim::RunLimit;
use tpp::netsim::{leaf_spine, linear_chain, time, HostApp, LeafSpineParams, LinearChainParams};
use tpp::wire::EthernetAddress;

fn chain_with_rules(
    controller: &mut NetworkController,
) -> (tpp::netsim::Simulator, tpp::netsim::LinearChain, u32) {
    let dst = EthernetAddress::from_host_id(1);
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: 3,
            ..Default::default()
        },
        Box::new(NdbProbeSender::new(dst, 3, time::micros(50), 10)),
        Box::new(TraceCollector::default()),
    );
    let entry = controller.new_entry_id();
    for sw in &chain.switches {
        controller.install_rule(
            sim.switch_mut(*sw),
            entry,
            10,
            FlowMatch {
                dst_mac: Some(dst),
                ..Default::default()
            },
            FlowAction::Forward(1),
        );
    }
    (sim, chain, entry)
}

#[test]
fn healthy_network_traces_conform() {
    let mut controller = NetworkController::new();
    let (mut sim, chain, entry) = chain_with_rules(&mut controller);
    sim.run(RunLimit::Until(time::millis(10)));

    let policy = PathPolicy {
        expected_path: vec![1, 2, 3],
        expected_versions: controller.intended_versions_all(),
    };
    let traces = &sim.host_app::<TraceCollector>(chain.right).traces;
    assert_eq!(traces.len(), 10);
    for trace in traces {
        assert_eq!(policy.verify(trace), vec![]);
        assert_eq!(trace.path(), vec![1, 2, 3]);
        // Every hop matched the controller's entry at version 1, and
        // input ports are consistent with the chain (host side then
        // left-neighbour side).
        for (i, hop) in trace.hops.iter().enumerate() {
            assert_eq!(hop.entry_id, entry);
            assert_eq!(hop.entry_version, 1);
            assert_eq!(hop.input_port, 0, "hop {i} came in on the left port");
        }
    }
    assert!(missing_ids(&sim.host_app::<NdbProbeSender>(chain.left).sent_ids, traces).is_empty());
}

#[test]
fn stale_rule_version_mismatch_detected_and_localized() {
    let mut controller = NetworkController::new();
    let (mut sim, chain, entry) = chain_with_rules(&mut controller);
    // Controller re-stamps the middle switch's rule; dataplane misses it.
    let mid_id = sim.switch(chain.switches[1]).switch_id();
    controller.intend_version_only(mid_id, entry);
    sim.run(RunLimit::Until(time::millis(10)));

    let policy = PathPolicy {
        expected_path: vec![1, 2, 3],
        expected_versions: controller.intended_versions_all(),
    };
    let traces = &sim.host_app::<TraceCollector>(chain.right).traces;
    assert!(!traces.is_empty());
    for trace in traces {
        let violations = policy.verify(trace);
        assert_eq!(
            violations,
            vec![Violation::StaleEntry {
                switch_id: 2,
                entry_id: entry,
                seen_version: 1,
                expected_version: 2,
            }],
            "exactly the middle switch flagged"
        );
    }
}

#[test]
fn misroute_shows_up_as_wrong_path() {
    let mut controller = NetworkController::new();
    let dst = EthernetAddress::from_host_id(1);
    let apps: Vec<Box<dyn HostApp>> = vec![
        Box::new(NdbProbeSender::new(dst, 3, time::micros(50), 10)),
        Box::new(TraceCollector::default()),
    ];
    let (mut sim, fabric) = leaf_spine(
        LeafSpineParams {
            n_leaves: 2,
            n_spines: 2,
            hosts_per_leaf: 1,
            ..Default::default()
        },
        apps,
    );
    let bad = controller.new_entry_id();
    controller.install_rule(
        sim.switch_mut(fabric.leaves[0]),
        bad,
        20,
        FlowMatch {
            dst_mac: Some(dst),
            ..Default::default()
        },
        FlowAction::Forward(2), // spine 0x21 instead of 0x20
    );
    sim.run(RunLimit::Until(time::millis(10)));

    let policy = PathPolicy {
        expected_path: vec![0x10, 0x20, 0x11],
        ..Default::default()
    };
    let traces = &sim.host_app::<TraceCollector>(fabric.hosts[1][0]).traces;
    assert_eq!(traces.len(), 10, "misrouted packets still arrive");
    for trace in traces {
        let violations = policy.verify(trace);
        assert_eq!(
            violations,
            vec![Violation::WrongPath {
                expected: vec![0x10, 0x20, 0x11],
                actual: vec![0x10, 0x21, 0x11],
            }]
        );
        // The trace also shows *which rule* did it.
        assert_eq!(trace.hops[0].entry_id, bad);
    }
}

#[test]
fn black_hole_named_by_missing_ids() {
    let mut controller = NetworkController::new();
    let (mut sim, chain, _) = chain_with_rules(&mut controller);
    let dst = EthernetAddress::from_host_id(1);
    let bad = controller.new_entry_id();
    controller.install_rule(
        sim.switch_mut(chain.switches[1]),
        bad,
        20,
        FlowMatch {
            dst_mac: Some(dst),
            ..Default::default()
        },
        FlowAction::Drop,
    );
    sim.run(RunLimit::Until(time::millis(10)));

    let sent = &sim.host_app::<NdbProbeSender>(chain.left).sent_ids;
    let traces = &sim.host_app::<TraceCollector>(chain.right).traces;
    assert!(traces.is_empty(), "everything was eaten");
    assert_eq!(missing_ids(sent, traces).len(), 10);
}
