//! The bonding-chaos lane: the seeded degradation/flap/reboot scenario
//! behind `bonding_demo` must fail over within a bounded number of
//! probe intervals, deliver every payload exactly once to the app
//! layer, and fingerprint bit-identically at every shard count.

use tpp::netsim::SimConfig;
use tpp_bench::bonding_scenario::{run_bonding_scenario, BondingRun, PROBE_INTERVAL_NS, REBOOT_NS};

/// The shard matrix every determinism suite exercises: threaded 1/2/4
/// plus 4 shards driven sequentially.
fn shard_configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("1 shard", SimConfig::new().shards(1)),
        ("2 shards", SimConfig::new().shards(2)),
        ("4 shards", SimConfig::new().shards(4)),
        (
            "4 shards sequential",
            SimConfig::new().shards(4).sequential(),
        ),
    ]
}

fn assert_chaos_invariants(label: &str, run: &BondingRun) {
    // Exactly-once delivery at the app layer, in spite of proactive
    // duplication and RTO retransmits underneath.
    assert_eq!(
        run.delivered, run.sequences_sent,
        "{label}: every sequence reaches the app"
    );
    assert_eq!(
        run.duplicate_deliveries, 0,
        "{label}: no duplicate delivery to the app layer"
    );
    assert_eq!(run.unacked, 0, "{label}: sender drained all in-flight data");
    // The redundancy machinery actually fired — otherwise the scenario
    // is not exercising what it claims to.
    assert!(
        run.duplicates_suppressed > 0,
        "{label}: receiver saw and suppressed duplicates"
    );
    assert!(run.retransmits > 0, "{label}: the flap forced retransmits");

    // Bounded failover: path 0 must be marked Down within a small
    // number of probe intervals of the hard flap.
    let detect = run
        .failover_detect_ns
        .unwrap_or_else(|| panic!("{label}: no Down transition after the flap"));
    assert!(
        detect <= 10 * PROBE_INTERVAL_NS,
        "{label}: failover took {detect} ns (> 10 probe intervals)"
    );

    // The switch reboot mid-path must be caught via the BootEpoch word
    // in the probe echo.
    assert!(
        run.epoch_changes >= 1,
        "{label}: reboot at {REBOOT_NS} ns went unnoticed"
    );

    // Both paths carried data at some point.
    for (p, &sent) in run.path_data_sent.iter().enumerate() {
        assert!(sent > 0, "{label}: path {p} never carried data");
    }
}

#[test]
fn bonding_chaos_is_exactly_once_bounded_and_shard_invariant() {
    let reference = run_bonding_scenario(SimConfig::new().shards(1));
    assert_chaos_invariants("1 shard", &reference);
    let want = reference.fingerprint();
    for (label, config) in shard_configs().into_iter().skip(1) {
        let run = run_bonding_scenario(config);
        assert_chaos_invariants(label, &run);
        assert_eq!(
            run.fingerprint(),
            want,
            "{label}: fingerprint diverged from the 1-shard reference"
        );
    }
}
