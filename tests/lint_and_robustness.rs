//! Cross-cutting hygiene tests:
//!
//! * every in-network program the applications ship is lint-clean for
//!   its deployment plan (the compile-time checks of `tpp-isa::lint`);
//! * mutated (bit-flipped) versions of real TPP frames never panic the
//!   full switch pipeline — the §6 failure-injection requirement at the
//!   system level.

use tpp::asic::{Asic, AsicConfig};
use tpp::isa::{assemble, lint, Assembler};
use tpp::wire::EthernetAddress;
use tpp_bench::testgen::tpp_frame;

#[test]
fn all_shipped_programs_are_lint_clean() {
    // (source, expected hops, packet-memory words) for every program an
    // app builds, matching the apps' own ProbeBuilder plans.
    let cases: Vec<(&str, usize, usize)> = vec![
        // §2.1 micro-burst monitor.
        ("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]", 4, 8),
        // §2.3 ndb tracer.
        (
            "PUSH [Switch:SwitchID]\nPUSH [PacketMetadata:MatchedEntryID]\n\
             PUSH [PacketMetadata:MatchedEntryVersion]\nPUSH [PacketMetadata:InputPort]",
            5,
            20,
        ),
        // Wireless health monitor.
        (
            "PUSH [Switch:SwitchID]\nPUSH [Link:SnrDeciBel]\nPUSH [Queue:QueueSize]",
            2,
            6,
        ),
        // cstore task probes (gate block at word 8, above the stack).
        (
            "CEXEC [Switch:SwitchID], [Packet:8]\nPUSH [Switch:Scratch[0]]",
            2,
            10,
        ),
        (
            "CEXEC [Switch:SwitchID], [Packet:8]\nSTORE [Switch:Scratch[0]], [Packet:2]",
            2,
            10,
        ),
        (
            "CEXEC [Switch:SwitchID], [Packet:8]\nCSTORE [Switch:Scratch[0]], [Packet:2]",
            2,
            10,
        ),
    ];
    for (src, hops, mem) in cases {
        let program = assemble(src).unwrap();
        assert_eq!(lint(&program, hops, mem), vec![], "program:\n{src}");
    }

    // RCP*'s programs use registered control-plane symbols.
    let asm = Assembler::with_symbols(tpp::apps::rcpstar::rcp_symbols());
    let collect = asm
        .assemble(
            "PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\nPUSH [Link:RX-Bytes]\n\
             PUSH [Link:CapacityKbps]\nPUSH [Link:RCP-RateRegister]\nPUSH [Link:RCP-Timestamp]",
        )
        .unwrap();
    assert_eq!(lint(&collect, 4, 24), vec![]);
    let update = asm
        .assemble(
            "CEXEC [Switch:SwitchID], [Packet:0]\nSTORE [Link:RCP-RateRegister], [Packet:2]\n\
             STORE [Link:RCP-Timestamp], [Packet:3]",
        )
        .unwrap();
    // No stack growth, so the CEXEC block at word 0 is safe.
    assert_eq!(lint(&update, 4, 4), vec![]);
}

#[test]
fn mutated_tpp_frames_never_panic_the_pipeline() {
    // Take a real, valid TPP frame and flip every single bit in turn;
    // each mutant goes through a full pipeline. Whatever happens —
    // forwarded, dropped, executed, faulted — nothing may panic and the
    // switch must stay sane afterwards.
    let program = assemble(
        "PUSH [Switch:SwitchID]\nCEXEC [Switch:SwitchID], [Packet:4]\n\
         STORE [Switch:Scratch[0]], [Packet:1]",
    )
    .unwrap();
    let frame = tpp_frame(
        1,
        2,
        &program.encode_words().unwrap(),
        &[7, 8, 9, 10, 0xffff_ffff, 1],
    );

    let mut asic = Asic::new(AsicConfig::with_ports(1, 2));
    asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
    let mut forwarded = 0u32;
    let mut dropped = 0u32;
    for bit in 0..frame.len() * 8 {
        let mut mutant = frame.clone();
        mutant[bit / 8] ^= 1 << (bit % 8);
        let outcome = asic.handle_frame(mutant, 0, bit as u64);
        if outcome.is_enqueued() {
            forwarded += 1;
            asic.dequeue(1);
        } else {
            dropped += 1;
        }
    }
    // Sanity: single-bit flips in the payload usually still forward
    // (the dst MAC survives unless the flip hit it).
    assert!(
        forwarded > dropped,
        "forwarded {forwarded}, dropped {dropped}"
    );
    // The switch is still functional afterwards.
    let outcome = asic.handle_frame(frame, 0, u64::MAX);
    assert!(outcome.is_enqueued());
}
