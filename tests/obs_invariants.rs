//! The observability plane must be exact and invisible.
//!
//! Two families of invariants:
//!
//! 1. **Attribution is exact.** The per-stage cycle charges the profiler
//!    records (parser, tables, TCPU, MMU) sum to precisely the span
//!    total it reports, for arbitrary TPP frames — and the attribution
//!    is identical with the hot-path caches on and off, since a cached
//!    lookup must *charge* what the table walk would have cost, not
//!    what the cache shortcut cost.
//! 2. **Sampling is invisible.** Enabling the profiler (sample every
//!    packet) must not change a single forwarded byte, register, or
//!    conformance verdict: the observability plane reads the pipeline,
//!    never steers it.

use proptest::prelude::*;
use tpp_asic::{ProfStage, ProfileConfig};
use tpp_bench::conformance::{default_corpus_dir, load_corpus, run_case};
use tpp_bench::testgen::{asic_pair, regs_match, tpp_frame};

/// Sum of the four ingress-stage histogram totals (the scheduler stage
/// is charged on dequeue and excluded from the span total).
fn ingress_stage_sum(p: &tpp_asic::PipelineProfile) -> u64 {
    [
        ProfStage::Parser,
        ProfStage::Tables,
        ProfStage::Tcpu,
        ProfStage::Mmu,
    ]
    .iter()
    .map(|&s| p.stage(s).hist().sum())
    .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Per-stage charges sum exactly to the profiled total, frame by
    /// frame and in aggregate, with caches on and off.
    #[test]
    fn stage_attribution_sums_to_total(
        words in proptest::collection::vec(any::<u32>(), 0..12),
        mem in proptest::collection::vec(any::<u32>(), 0..16),
        repeats in 1usize..4,
    ) {
        let (mut cached, mut uncached) = asic_pair();
        cached.enable_profiling(ProfileConfig::default());
        uncached.enable_profiling(ProfileConfig::default());
        let frame = tpp_frame(1, 9, &words, &mem);
        for round in 0..repeats {
            for asic in [&mut cached, &mut uncached] {
                asic.handle_frame(frame.clone(), 0, round as u64);
                let span = asic.profile().expect("profiled").last_span();
                prop_assert_eq!(
                    span.parser_cycles + span.tables_cycles
                        + span.tcpu_cycles + span.mmu_cycles,
                    span.total_cycles(),
                    "span stages must sum to span total"
                );
                asic.dequeue(1);
            }
        }
        for asic in [&cached, &uncached] {
            let p = asic.profile().expect("profiled");
            // sample_every=1: every packet lands in the stage
            // histograms, so aggregate totals must reconcile too.
            prop_assert_eq!(ingress_stage_sum(p), p.total_cycles());
            prop_assert_eq!(p.packets(), p.sampled());
        }
        // Cached and uncached pipelines charge identical cycles: the
        // attribution models the table walk, not the shortcut.
        let (pc, pu) = (
            cached.profile().expect("profiled"),
            uncached.profile().expect("profiled"),
        );
        prop_assert_eq!(pc.total_cycles(), pu.total_cycles());
        for stage in ProfStage::ALL {
            prop_assert_eq!(
                pc.stage(stage).hist().sum(),
                pu.stage(stage).hist().sum(),
                "stage {} diverged between caches on/off", stage.name()
            );
        }
        prop_assert_eq!(pc.opcode_breakdown(), pu.opcode_breakdown());
    }

    /// A profiled ASIC forwards bit-identically to an unprofiled one:
    /// same outcomes, same egress bytes, same TPP-visible registers.
    #[test]
    fn profiling_never_changes_forwarding(
        words in proptest::collection::vec(any::<u32>(), 0..12),
        mem in proptest::collection::vec(any::<u32>(), 0..16),
        dsts in proptest::collection::vec(0u32..4, 1..6),
    ) {
        let (mut profiled, _) = asic_pair();
        let (mut plain, _) = asic_pair();
        profiled.enable_profiling(ProfileConfig::default());
        for (i, &dst) in dsts.iter().enumerate() {
            let frame = tpp_frame(dst, 9, &words, &mem);
            let out_a = profiled.handle_frame(frame.clone(), 0, i as u64);
            let out_b = plain.handle_frame(frame, 0, i as u64);
            prop_assert_eq!(out_a, out_b, "outcome diverged under profiling");
            for port in 0..profiled.num_ports() as u16 {
                prop_assert_eq!(
                    profiled.dequeue(port),
                    plain.dequeue(port),
                    "egress bytes diverged on port {}", port
                );
            }
        }
        regs_match(&profiled, &plain);
    }
}

/// Replaying the committed conformance corpus is unaffected by the
/// profiler: `run_case` (which runs its own unprofiled three-way
/// comparison) must keep passing while a profiled replay of the same
/// frames forwards byte-identically to an unprofiled one.
#[test]
fn corpus_replay_identical_with_profiling() {
    let corpus = load_corpus(&default_corpus_dir()).expect("committed corpus loads");
    assert!(!corpus.is_empty(), "corpus must not be empty");
    for (name, case) in corpus {
        run_case(&case).unwrap_or_else(|e| panic!("corpus case {name} failed: {e}"));
        let (mut profiled, _) = asic_pair();
        let (mut plain, _) = asic_pair();
        profiled.enable_profiling(ProfileConfig::default());
        let frame = case.frame();
        let out_a = profiled.handle_frame(frame.clone(), 0, 0);
        let out_b = plain.handle_frame(frame, 0, 0);
        assert_eq!(out_a, out_b, "corpus case {name}: outcome diverged");
        for port in 0..profiled.num_ports() as u16 {
            assert_eq!(
                profiled.dequeue(port),
                plain.dequeue(port),
                "corpus case {name}: egress bytes diverged on port {port}"
            );
        }
        regs_match(&profiled, &plain);
    }
}
