//! Shard-count invariance: the tentpole guarantee of the sharded
//! scheduler.
//!
//! A seeded simulation must produce *bit-identical* results at any shard
//! count, threaded or sequential — the canonical event-key order and the
//! per-link RNG streams make the partition unobservable. These tests
//! take whole-run fingerprints (trace CSV rows, fault counters, the
//! metrics registry's JSON dump, ring-series points, events processed,
//! host-app state) and compare them across `N ∈ {1, 2, 4}` shards, with
//! the 4-shard configuration run both threaded and sequential.
//!
//! The property-based half drives a chaotic leaf-spine under randomized
//! seeds, loss rates and fault windows; the fixed half checks RCP\*
//! convergence records (the fig2 ingredient) survive sharding exactly.

use proptest::prelude::*;
use tpp::apps::bonding::{BondReceiver, BondSender, BondSenderConfig};
use tpp::apps::microburst::MicroburstMonitor;
use tpp::apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp::host::{BondConfig, EchoReceiver};
use tpp::netsim::{
    bonded_diamond_with, dumbbell_with, fat_tree_with, leaf_spine_with, time, BondedDiamondParams,
    DumbbellParams, Endpoint, FatTreeParams, FaultPlan, HostApp, HostCtx, HostId, LeafSpineParams,
    LinkProfile, LinkState, RunLimit, SimConfig, Simulator,
};
use tpp::wire::ethernet::{build_frame, EtherType};
use tpp::wire::EthernetAddress;
use tpp_bench::traffic::{
    completions_fingerprint, generate_schedule, splitmix64, FlowGenApp, FlowSizeDist, TrafficConfig,
};

/// One switch's ring series, flattened: `(switch, metric, points)`.
type SeriesPoints = (u32, &'static str, Vec<(u64, u64)>);

/// Everything observable about a finished run. Two runs are "the same"
/// iff their fingerprints are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    now_ns: u64,
    events_processed: u64,
    trace_rows: Vec<String>,
    fault_counters: String,
    metrics_json: String,
    series_points: Vec<SeriesPoints>,
    host_state: Vec<(usize, u64)>,
    /// Per-path counters of multi-homed scenarios (wire frames, probe
    /// accounting, scheduler events…); empty for single-NIC scenarios.
    path_counters: Vec<u64>,
}

/// A host that sprays fixed-size data frames at a target on a timer.
struct Sprayer {
    target: EthernetAddress,
    period_ns: u64,
    stop_ns: u64,
    payload_len: usize,
    sent: u64,
}

impl HostApp for Sprayer {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.period_ns, 0);
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= self.stop_ns {
            return;
        }
        let frame = build_frame(
            self.target,
            ctx.mac(),
            EtherType(0x0800),
            &vec![0u8; self.payload_len],
        );
        ctx.send(frame);
        self.sent += 1;
        ctx.set_timer(self.period_ns, 0);
    }
}

/// A host that counts what it receives.
#[derive(Default)]
struct CountingSink {
    got: u64,
}

impl HostApp for CountingSink {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        self.got += 1;
        ctx.recycle_frame(frame);
    }
}

fn fingerprint(
    mut sim: Simulator,
    sink: &tpp::telemetry::SharedSink,
    host_state: Vec<(usize, u64)>,
    path_counters: Vec<u64>,
) -> Fingerprint {
    let mut series_points = Vec::new();
    if let Some(set) = sim.series() {
        for sw in &set.switches {
            for (metric, series) in sw.iter() {
                series_points.push((sw.switch_id, metric, series.points().to_vec()));
            }
        }
    }
    Fingerprint {
        now_ns: sim.now(),
        events_processed: sim.events_processed(),
        trace_rows: sink.events().iter().map(|e| e.to_csv_row()).collect(),
        fault_counters: format!("{:?}", sim.fault_counters()),
        metrics_json: sim.metrics().to_json(),
        series_points,
        host_state,
        path_counters,
    }
}

/// One chaotic leaf-spine run under `cfg`: two sprayers incast a victim
/// across the fabric while a seeded plan flaps a fabric link, reboots a
/// spine, and opens duplicate/reorder/corrupt windows; one access link
/// also carries persistent random loss.
fn chaotic_leaf_spine(cfg: SimConfig, plan_seed: u64, loss_permille: u16) -> Fingerprint {
    let params = LeafSpineParams {
        n_leaves: 4,
        n_spines: 2,
        hosts_per_leaf: 2,
        // A generous propagation delay keeps the conservative lookahead
        // (and so the windows) large enough that the threaded driver is
        // exercised across many windows without crawling on small hosts.
        delay_ns: time::micros(20),
        ..LeafSpineParams::default()
    };
    let victim_mac = EthernetAddress::from_host_id(2);
    let mk_sprayer = |offset: u64| -> Box<dyn HostApp> {
        Box::new(Sprayer {
            target: victim_mac,
            period_ns: 9_000 + offset,
            stop_ns: time::millis(15),
            payload_len: 900,
            sent: 0,
        })
    };
    let apps: Vec<Box<dyn HostApp>> = vec![
        mk_sprayer(0),                     // host 0, leaf 0
        Box::new(CountingSink::default()), // host 1
        Box::new(CountingSink::default()), // host 2 (victim), leaf 1
        mk_sprayer(1_700),                 // host 3
        mk_sprayer(3_400),                 // host 4, leaf 2
        Box::new(CountingSink::default()), // host 5
        Box::new(CountingSink::default()), // host 6, leaf 3
        Box::new(CountingSink::default()), // host 7
    ];
    let (mut sim, fabric) = leaf_spine_with(cfg, params, apps);
    let sink = sim.observe().series(64).trace_all(1 << 18);

    let h0 = Endpoint::host(fabric.hosts[0][0]);
    sim.set_link_loss(h0, loss_permille);
    let fabric_up = Endpoint::switch(fabric.leaves[0], 2); // leaf0 -> spine0
    let mut plan = FaultPlan::new(plan_seed);
    plan.duplicate_window(time::millis(1), time::millis(10), h0, 250)
        .reorder_window(
            time::millis(2),
            time::millis(12),
            fabric_up,
            250,
            time::micros(400),
        )
        .corrupt_window(time::millis(3), time::millis(9), fabric_up, 200)
        .link_flap(time::millis(5), time::millis(6), fabric_up)
        .switch_reboot(time::millis(8), fabric.spines[1]);
    sim.install_faults(&plan);
    sim.run(RunLimit::Until(time::millis(20)));

    let mut host_state = Vec::new();
    for (i, host) in fabric.all_hosts().enumerate() {
        let value = match i {
            0 | 3 | 4 => sim.host_app::<Sprayer>(host).sent,
            _ => sim.host_app::<CountingSink>(host).got,
        };
        host_state.push((i, value));
    }
    fingerprint(sim, &sink, host_state, Vec::new())
}

/// A bonded-diamond run where a seeded [`LinkProfile`] (time-varying
/// loss, latency and rate on the path-0 NIC link) composes with a
/// [`FaultPlan`] fabric flap, while the probe-driven bond scheduler
/// reacts. The fingerprint carries per-path counters: wire frames per
/// NIC in both directions, probe accounting, and the folded
/// health-event log.
fn bonded_profile_flap(
    cfg: SimConfig,
    plan_seed: u64,
    worst_loss: u16,
    extra_delay_us: u64,
) -> Fingerprint {
    let sender_cfg = BondSenderConfig {
        dst: EthernetAddress::from_host_id(1),
        expected_hops: 4,
        probe_interval_ns: time::micros(50),
        probe_timeout_ns: time::micros(300),
        probe_stop_ns: time::millis(12),
        data_interval_ns: time::micros(20),
        data_start_ns: time::micros(500),
        data_stop_ns: time::millis(10),
        payload_bytes: 600,
        rto_ns: time::micros(800),
        bond: BondConfig::default(),
    };
    let (mut sim, diamond) = bonded_diamond_with(
        cfg,
        BondedDiamondParams::default(),
        Box::new(BondSender::new(sender_cfg)),
        Box::new(BondReceiver::default()),
    );
    let sink = sim.observe().series(64).trace_all(1 << 18);
    sim.set_link_profile(
        diamond.sender_nic(0),
        Some(LinkProfile::cellular_degradation(
            time::millis(2),
            time::millis(1),
            time::millis(2),
            LinkState {
                loss_permille: worst_loss,
                extra_delay_ns: time::micros(extra_delay_us),
                rate_permille: 500,
            },
        )),
    );
    let mut plan = FaultPlan::new(plan_seed);
    plan.link_flap(
        time::millis(6),
        time::millis(7),
        Endpoint::switch(diamond.paths[0][0], 1),
    );
    sim.install_faults(&plan);
    sim.run(RunLimit::Quiescent {
        limit_ns: time::millis(20),
    });

    let mut path_counters = Vec::new();
    for p in 0..2 {
        path_counters.push(sim.link_tx_frames(diamond.sender_nic(p)));
        path_counters.push(sim.link_tx_frames(diamond.receiver_nic(p)));
    }
    let tx = sim.host_app::<BondSender>(diamond.sender);
    for p in 0..2 {
        path_counters.extend([
            tx.probes_sent[p],
            tx.echoes_received[p],
            tx.bond.losses(p),
            tx.data_sent[p],
        ]);
    }
    for ev in tx.bond.events() {
        path_counters.extend([ev.t_ns, ev.path as u64]);
    }
    path_counters.extend([tx.sequences_sent(), tx.retransmits, tx.duplicates_sent]);
    let rx = sim.host_app::<BondReceiver>(diamond.receiver);
    let host_state = vec![
        (0, rx.delivered.len() as u64),
        (1, rx.duplicates_suppressed),
        (2, rx.acks_sent),
    ];
    // Fold the exact delivery order in too: same frames, same order.
    let mut order_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &seq in &rx.delivered {
        order_hash = (order_hash ^ seq).wrapping_mul(0x100_0000_01b3);
    }
    path_counters.push(order_hash);
    fingerprint(sim, &sink, host_state, path_counters)
}

/// The `fct_bench` scenario in miniature: a textbook k=4 fat tree (20
/// switches, 16 hosts) where fourteen hosts run seeded open-loop
/// [`FlowGenApp`] traffic (web-search / data-mining CDF sizes) while a
/// microburst monitor probes the fabric with TPPs — so the TCPU, the
/// program interner and the frame pool are all on the hot path. The
/// fingerprint folds in every host's flow/frame/completion counters and
/// the order-independent completions fingerprint.
fn fat_tree_traffic(cfg: SimConfig, traffic_seed: u64) -> Fingerprint {
    let params = FatTreeParams {
        k: 4,
        // As in the leaf-spine scenario: a generous propagation delay
        // keeps the conservative lookahead windows large enough for the
        // threaded driver to be exercised meaningfully.
        delay_ns: time::micros(20),
        ..FatTreeParams::default()
    };
    let n_hosts = params.n_hosts();
    let mac = |i: usize| EthernetAddress::from_host_id(i as u32);

    // Hosts 1..n-1 generate flows among themselves; host 0 is the
    // microburst monitor probing its mirror, the echo peer at n-1.
    let fg_range = 1..n_hosts - 1;
    let fg_macs: Vec<EthernetAddress> = fg_range.clone().map(mac).collect();
    let traffic = TrafficConfig {
        seed: traffic_seed,
        flows_per_host: 120,
        mean_gap_ns: 40_000,
        ..TrafficConfig::default()
    };
    let mut schedules = Vec::with_capacity(fg_macs.len());
    let mut last_start = 0u64;
    for fg_idx in 0..fg_macs.len() {
        let dist = if fg_idx % 2 == 0 {
            FlowSizeDist::WebSearch
        } else {
            FlowSizeDist::DataMining
        };
        let sched = generate_schedule(&traffic, fg_idx as u32, &fg_macs, dist);
        if let Some(f) = sched.last() {
            last_start = last_start.max(f.start_ns);
        }
        schedules.push(sched);
    }
    let run_ns = last_start + time::millis(2);

    let mut schedules = schedules.into_iter();
    let apps: Vec<Box<dyn HostApp>> = (0..n_hosts)
        .map(|i| -> Box<dyn HostApp> {
            if i == 0 {
                Box::new(MicroburstMonitor::new(
                    mac(n_hosts - 1),
                    6,
                    25_000,
                    0,
                    run_ns,
                ))
            } else if i < n_hosts - 1 {
                Box::new(FlowGenApp::new(schedules.next().expect("one per host")))
            } else {
                Box::new(EchoReceiver::default())
            }
        })
        .collect();

    let (mut sim, _tree) = fat_tree_with(cfg, params, apps);
    let sink = sim.observe().series(64).trace_all(1 << 18);
    sim.run(RunLimit::Until(run_ns));

    let mut host_state = Vec::new();
    let mut completions = Vec::new();
    for i in fg_range {
        let app = sim.host_app::<FlowGenApp>(HostId(i));
        host_state.push((i, app.flows_started));
        host_state.push((i + n_hosts, app.frames_sent));
        host_state.push((i + 2 * n_hosts, app.completions.len() as u64));
        completions.extend_from_slice(&app.completions);
    }
    let monitor = sim.host_app::<MicroburstMonitor>(HostId(0));
    // Beyond the commutative completions sum: fold every individual
    // (key, FCT) pair in key order, so a single flow finishing one
    // nanosecond differently on some shard layout breaks the
    // fingerprint even if the sum happens to collide.
    completions.sort_unstable_by_key(|c| c.key);
    let mut per_flow_fcts = 0u64;
    for c in &completions {
        per_flow_fcts = splitmix64(per_flow_fcts ^ c.key ^ c.fct_ns.rotate_left(31));
    }
    let path_counters = vec![
        completions_fingerprint(completions.iter().copied()),
        per_flow_fcts,
        monitor.probes_sent,
        monitor.echoes_received,
        monitor.samples.len() as u64,
    ];
    fingerprint(sim, &sink, host_state, path_counters)
}

/// The shard configurations every scenario must agree across: one shard
/// (the classic loop), two and four threaded, four sequential (same
/// windows as threaded four, no worker threads).
fn shard_configs(seed: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("1 shard", SimConfig::new().seed(seed).shards(1)),
        ("2 shards", SimConfig::new().seed(seed).shards(2)),
        ("4 shards", SimConfig::new().seed(seed).shards(4)),
        (
            "4 shards sequential",
            SimConfig::new().seed(seed).shards(4).sequential(),
        ),
    ]
}

proptest! {
    // Each case runs the scenario four times (once per shard config).
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Chaotic leaf-spine runs fingerprint identically at every shard
    /// count, for arbitrary plan seeds, loss rates and sim seeds.
    #[test]
    fn chaotic_leaf_spine_is_shard_count_invariant(
        sim_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        loss_permille in 0u16..150,
    ) {
        let mut runs = shard_configs(sim_seed)
            .into_iter()
            .map(|(label, cfg)| (label, chaotic_leaf_spine(cfg, plan_seed, loss_permille)));
        let (_, reference) = runs.next().expect("at least one config");
        prop_assert!(!reference.trace_rows.is_empty(), "chaos must leave a trace");
        for (label, fp) in runs {
            prop_assert_eq!(&fp, &reference, "{} diverged from 1 shard", label);
        }
    }

    /// A seeded link profile (time-varying loss/latency/rate) composed
    /// with a [`FaultPlan`] flap drives the bonding scheduler — and the
    /// whole thing, down to per-path wire counters and the exact
    /// delivery order, fingerprints identically at every shard count.
    #[test]
    fn bonded_profile_and_flap_are_shard_count_invariant(
        sim_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        worst_loss in 0u16..400,
        extra_delay_us in 0u64..250,
    ) {
        let mut runs = shard_configs(sim_seed)
            .into_iter()
            .map(|(label, cfg)| {
                (label, bonded_profile_flap(cfg, plan_seed, worst_loss, extra_delay_us))
            });
        let (_, reference) = runs.next().expect("at least one config");
        prop_assert!(
            reference.host_state[0].1 > 0,
            "the bonded flow must deliver something"
        );
        prop_assert!(!reference.path_counters.is_empty());
        for (label, fp) in runs {
            prop_assert_eq!(&fp, &reference, "{} diverged from 1 shard", label);
        }
    }

    /// The fat-tree FCT workload — seeded CDF traffic plus a TPP
    /// microburst monitor, the `fct_bench` ingredients — fingerprints
    /// identically at every shard count, down to the completions
    /// fingerprint `BENCH_fct.json` commits.
    #[test]
    fn fat_tree_traffic_is_shard_count_invariant(
        sim_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
    ) {
        let mut runs = shard_configs(sim_seed)
            .into_iter()
            .map(|(label, cfg)| (label, fat_tree_traffic(cfg, traffic_seed)));
        let (_, reference) = runs.next().expect("at least one config");
        prop_assert!(
            reference.path_counters[0] != 0,
            "flows must complete for the fingerprint to mean anything"
        );
        prop_assert!(
            reference.path_counters[1] != 0,
            "per-flow FCT fingerprint must cover completions"
        );
        prop_assert!(
            reference.path_counters[4] > 0,
            "the monitor must collect TPP samples"
        );
        for (label, fp) in runs {
            prop_assert_eq!(&fp, &reference, "{} diverged from 1 shard", label);
        }
    }
}

/// RCP\* convergence records — the ingredient of the fig2 golden — are
/// bit-identical across shard counts: every `(t_ns, rate)` sample of
/// every sender, plus the whole-run fingerprint.
#[test]
fn rcp_convergence_records_are_shard_count_invariant() {
    let run = |cfg: SimConfig| -> (Vec<Vec<(u64, u64)>>, Fingerprint) {
        let n = 3;
        let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n)
            .map(|i| {
                let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
                (
                    Box::new(RcpStarSender::new(dst, RcpStarConfig::default())) as Box<dyn HostApp>,
                    Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
                )
            })
            .collect();
        let (mut sim, bell) = dumbbell_with(
            cfg,
            DumbbellParams {
                n_pairs: n,
                ..DumbbellParams::default()
            },
            apps,
        );
        for sw in [bell.left, bell.right] {
            init_rate_registers(sim.switch_mut(sw));
        }
        let sink = sim.observe().trace_all(1 << 16);
        sim.run(RunLimit::Until(time::secs(2)));
        let traces: Vec<Vec<(u64, u64)>> = bell
            .senders
            .iter()
            .map(|&s| sim.host_app::<RcpStarSender>(s).rate_trace.clone())
            .collect();
        let fp = fingerprint(sim, &sink, Vec::new(), Vec::new());
        (traces, fp)
    };

    let mut runs = shard_configs(0x7199_7199)
        .into_iter()
        .map(|(label, cfg)| (label, run(cfg)));
    let (_, (ref_traces, ref_fp)) = runs.next().expect("at least one config");
    assert!(
        ref_traces.iter().all(|t| t.len() > 10),
        "senders recorded convergence samples"
    );
    for (label, (traces, fp)) in runs {
        assert_eq!(traces, ref_traces, "{label}: rate traces diverged");
        assert_eq!(fp, ref_fp, "{label}: run fingerprint diverged");
    }
}
