//! Integration tests for the two extension mechanisms:
//!
//! * §3.2's multi-packet queries ([`SegmentedQuery`]) running live over
//!   a simulated path;
//! * the §2.3 wireless SNR diagnosis pipeline on a lossy link.

use tpp::apps::wireless::{classify_loss, DiagnosisConfig, LinkHealthMonitor, LossCause};
use tpp::host::{EchoReceiver, SegmentedCollector, SegmentedQuery};
use tpp::isa::SymbolTable;
use tpp::netsim::RunLimit;
use tpp::netsim::{linear_chain, time, Endpoint, HostApp, HostCtx, LinearChainParams};
use tpp::wire::EthernetAddress;

/// Sends one segmented query train and reassembles the echoes.
struct WideQuerier {
    dst: EthernetAddress,
    query: SegmentedQuery,
    collector: SegmentedCollector,
}

impl HostApp for WideQuerier {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        for frame in self.query.frames(self.dst, ctx.mac(), 42) {
            ctx.send(frame);
        }
    }
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        self.collector.on_frame(&frame, ctx.mac());
    }
}

#[test]
fn segmented_query_reassembles_wide_rows_over_live_network() {
    // 8 statistics per hop over 4 hops = 32 words, but only 12 words of
    // packet memory allowed per probe -> 3 words/hop -> 3 segments.
    let symbols = [
        "Switch:SwitchID",
        "Queue:QueueSize",
        "Link:RX-Bytes",
        "Link:TX-Bytes",
        "Link:CapacityKbps",
        "Switch:PacketsProcessed",
        "PacketMetadata:InputPort",
        "Queue:Limit",
    ];
    let query = SegmentedQuery::plan(&symbols, &SymbolTable::new(), 4, 12).unwrap();
    assert_eq!(query.segments(), 3);
    let collector = query.collector();
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: 4,
            ..Default::default()
        },
        Box::new(WideQuerier {
            dst: EthernetAddress::from_host_id(1),
            query,
            collector,
        }),
        Box::new(EchoReceiver::default()),
    );
    sim.run(RunLimit::Until(time::millis(5)));

    let app = sim.host_app::<WideQuerier>(chain.left);
    assert_eq!(app.collector.pending(), 0);
    assert_eq!(app.collector.complete.len(), 1);
    let row = &app.collector.complete[0];
    assert_eq!(row.query_id, 42);
    assert_eq!(row.rows.len(), 4, "one merged row per hop");
    for (hop, row) in row.rows.iter().enumerate() {
        assert_eq!(row.len(), symbols.len(), "hop {hop} complete");
        assert_eq!(row["Switch:SwitchID"], hop as u32 + 1, "path order");
        assert_eq!(row["Link:CapacityKbps"], 10_000_000);
        assert_eq!(row["Queue:Limit"], 512 * 1024);
        // Probes entered every switch on its left port.
        assert_eq!(row["PacketMetadata:InputPort"], 0);
    }
}

#[test]
fn snr_register_travels_with_probes_and_losses_classify() {
    // One switch whose egress to the right host is a fading radio.
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: 1,
            ..Default::default()
        },
        Box::new(LinkHealthMonitor::new(
            EthernetAddress::from_host_id(1),
            1,
            time::millis(1),
            time::millis(400),
        )),
        Box::new(EchoReceiver::default()),
    );
    let ap = chain.switches[0];
    // Phase A (0-200 ms): 30 dB, lossless. Phase B: 8 dB, 40% loss.
    sim.switch_mut(ap).set_port_snr(1, 300);
    sim.run(RunLimit::Until(time::millis(200)));
    sim.switch_mut(ap).set_port_snr(1, 80);
    sim.set_link_loss(Endpoint::switch(ap, 1), 400);
    sim.run(RunLimit::Until(time::millis(400)));
    sim.set_link_loss(Endpoint::switch(ap, 1), 0);
    sim.run(RunLimit::Until(time::millis(450)));

    let monitor = sim.host_app::<LinkHealthMonitor>(chain.left);
    let samples = monitor.series_for(1);
    assert!(monitor.probes_sent >= 390);
    assert!(
        monitor.echoes_received < monitor.probes_sent,
        "the radio must have eaten some probes"
    );
    assert!(sim.link_losses(Endpoint::switch(ap, 1)) > 0);

    // Early samples read 30 dB, late ones 8 dB.
    assert_eq!(samples.first().unwrap().snr_decidb, 300);
    assert_eq!(samples.last().unwrap().snr_decidb, 80);

    // A loss in phase B classifies as a channel fade; a hypothetical
    // loss in phase A is unexplained.
    let config = DiagnosisConfig {
        fade_snr_decidb: 150,
        congestion_queue_bytes: 10_000,
        max_sample_distance_ns: time::millis(10),
    };
    assert_eq!(
        classify_loss(&samples, time::millis(300), &config),
        LossCause::ChannelFade
    );
    assert_eq!(
        classify_loss(&samples, time::millis(100), &config),
        LossCause::Unknown
    );
}

#[test]
fn lossless_links_unchanged_by_loss_feature() {
    // Determinism guard: a lossless run must not consult the RNG, so
    // results are identical with the feature compiled in.
    fn run() -> u64 {
        let (mut sim, chain) = linear_chain(
            LinearChainParams::default(),
            Box::new(LinkHealthMonitor::new(
                EthernetAddress::from_host_id(1),
                3,
                time::millis(1),
                time::millis(100),
            )),
            Box::new(EchoReceiver::default()),
        );
        sim.run(RunLimit::Until(time::millis(120)));
        let m = sim.host_app::<LinkHealthMonitor>(chain.left);
        assert_eq!(m.probes_sent, m.echoes_received);
        m.echoes_received
    }
    assert_eq!(run(), run());
}
