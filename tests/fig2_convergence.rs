//! E2 / Figure 2 — RCP\* vs the reference RCP simulation, shape-asserted.
//!
//! "We compared our implementation with the original RCP algorithm
//! available in ns2 simulation. ... the behavior of RCP and RCP\* are
//! qualitatively similar, in that they both show quick convergence."
//!
//! The full 30 s run lives in `examples/rcp_fairness.rs` and
//! `tpp-bench`'s `fig2_rcp_convergence`; this test runs a compressed
//! schedule (joins at 0 s, 5 s, 10 s over 15 s) and asserts the shape:
//! R/C settles near 1, 1/2, 1/3 in both systems, and RCP\* tracks the
//! reference within a coarse band.

use std::path::Path;

use tpp::apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender};
use tpp::host::EchoReceiver;
use tpp::netsim::RunLimit;
use tpp::netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp::rcp_ref::fluid::mean_r_over_c;
use tpp::rcp_ref::{FlowSchedule, RcpFluidSim, RcpParams};
use tpp::wire::EthernetAddress;
use tpp_bench::testgen::assert_matches_golden;

const C_BPS: f64 = 10e6;

fn star_mean(trace: &[(u64, u64)], lo_s: f64, hi_s: f64) -> f64 {
    let window: Vec<f64> = trace
        .iter()
        .filter(|(t, _)| {
            let ts = *t as f64 / 1e9;
            ts >= lo_s && ts < hi_s
        })
        .map(|(_, r)| *r as f64 / C_BPS)
        .collect();
    assert!(!window.is_empty(), "no samples in {lo_s}..{hi_s}");
    window.iter().sum::<f64>() / window.len() as f64
}

#[test]
fn rcp_and_rcpstar_converge_to_matching_fair_shares() {
    // --- Reference (the ns-2 role) ---
    let reference = RcpFluidSim::new(
        RcpParams::paper_defaults(C_BPS, 0.05),
        vec![
            FlowSchedule::starting_at(0.0),
            FlowSchedule::starting_at(5.0),
            FlowSchedule::starting_at(10.0),
        ],
    )
    .run(15.0);

    // --- RCP* on the packet simulator ---
    let starts = [0u64, time::secs(5), time::secs(10)];
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = starts
        .iter()
        .enumerate()
        .map(|(i, start)| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            let cfg = RcpStarConfig {
                start_ns: *start,
                ..Default::default()
            };
            (
                Box::new(RcpStarSender::new(dst, cfg)) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 3,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    sim.run(RunLimit::Until(time::secs(15)));
    let star = &sim.host_app::<RcpStarSender>(bell.senders[0]).rate_trace;

    // Settled windows: the last 40% of each regime.
    let windows = [(3.0, 5.0, 1.0), (8.0, 10.0, 0.5), (13.0, 15.0, 1.0 / 3.0)];
    let mut golden_rows: Vec<String> = Vec::new();
    for (lo, hi, ideal) in windows {
        let r = mean_r_over_c(&reference, lo, hi);
        let s = star_mean(star, lo, hi);
        // Reference sits on the ideal.
        assert!(
            (r - ideal).abs() < 0.07,
            "reference off ideal in {lo}..{hi}: {r} vs {ideal}"
        );
        // RCP* lands in the same band (probe overhead costs it a few
        // percent of goodput, hence the slightly wider tolerance and
        // the one-sided undershoot).
        assert!(
            (s - ideal).abs() < 0.12,
            "RCP* off ideal in {lo}..{hi}: {s} vs {ideal}"
        );
        assert!(
            (s - r).abs() < 0.12,
            "RCP* does not track reference in {lo}..{hi}: {s} vs {r}"
        );
        // R/C scaled to integer permille so the snapshot has no
        // float-formatting ambiguity.
        golden_rows.push(format!(
            "    {{\"window_s\": [{lo}, {hi}], \"ref_permille\": {}, \"star_permille\": {}}}",
            (r * 1000.0).round() as i64,
            (s * 1000.0).round() as i64
        ));
    }

    // "Quick convergence": within 2 s of the second join, flow 0's rate
    // has fallen to within 25% of C/2.
    let quick = star_mean(star, 6.0, 7.0);
    assert!(
        (quick - 0.5).abs() < 0.15,
        "slow convergence after join: {quick}"
    );

    // RCP's signature vs loss-based control: no drops, small queues.
    let q = sim.switch(bell.left).queue_stats(bell.bottleneck_port, 0);
    assert_eq!(q.packets_dropped, 0, "RCP* should not need losses");

    // Golden snapshot: the exact per-window means. The band assertions
    // above define correctness; this pins the simulation's behavior so
    // an unintended change anywhere in the pipeline (scheduler order,
    // RCP arithmetic, probe cadence) shows up as a reviewed diff, not a
    // silent drift inside the tolerance band.
    let snapshot = format!(
        "{{\n  \"windows\": [\n{}\n  ],\n  \"samples\": {},\n  \"bottleneck_drops\": {}\n}}\n",
        golden_rows.join(",\n"),
        star.len(),
        q.packets_dropped
    );
    assert_matches_golden(
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig2_rates.json"),
        &snapshot,
    );
}

#[test]
fn rcpstar_flows_share_fairly_among_themselves() {
    // Three simultaneous flows: goodputs within 20% of each other.
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..3)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(RcpStarSender::new(dst, RcpStarConfig::default())) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 3,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    sim.run(RunLimit::Until(time::secs(8)));
    let goodputs: Vec<f64> = bell
        .receivers
        .iter()
        .map(|r| sim.host_app::<EchoReceiver>(*r).data_bytes as f64)
        .collect();
    let max = goodputs.iter().cloned().fold(0.0, f64::max);
    let min = goodputs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.25,
        "unfair split: {goodputs:?} (max/min = {:.2})",
        max / min
    );
    // And together they use most of the link.
    let total_bps = goodputs.iter().sum::<f64>() * 8.0 / 8.0;
    assert!(
        total_bps > 0.75 * C_BPS,
        "underutilized: {total_bps:.0} bps"
    );
}
