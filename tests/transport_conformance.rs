//! Conformance suite for the closed-loop transport state machines
//! (`tpp-host::transport`), driven over a *scripted* lossy channel —
//! no simulator, no wall clock, every transition explicit.
//!
//! The harness runs a [`FlowSender`]/[`FlowReceiver`] pair through an
//! event queue in virtual time. Every transmission (data and ACK) is
//! assigned a scripted [`Fate`] — deliver, drop, duplicate, or reorder
//! — so each directed test pins down exactly one transition of the
//! state machine: the lossless fast path, RTO fire, backoff growth to
//! the cap, duplicate-ACK suppression after a fast retransmit,
//! reordering, and an epoch reset mid-flow. A seeded property test
//! then checks the invariant all of those compose into: exactly-once,
//! in-order delivery under arbitrary loss/dup/reorder mixes.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tpp_bench::traffic::Rng64;
use tpp_host::transport::{segments_for, FlowReceiver, FlowSender, SegmentHdr, TransportConfig};
use tpp_host::{AckOutcome, RtoOutcome};

/// What the scripted channel does with one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// Arrives after the one-way delay.
    Deliver,
    /// Never arrives.
    Drop,
    /// Arrives twice (the copy slightly later).
    Dup,
    /// Arrives late — after segments sent later have already arrived.
    Reorder,
}

/// Per-transmission fate source: a finite script (then all-deliver), or
/// a seeded random mix.
enum FatePlan {
    Script(Vec<Fate>),
    Random {
        rng: Rng64,
        loss: u32,
        dup: u32,
        reorder: u32,
    },
}

impl FatePlan {
    fn next(&mut self, n: u64) -> Fate {
        match self {
            FatePlan::Script(v) => v.get(n as usize).copied().unwrap_or(Fate::Deliver),
            FatePlan::Random {
                rng,
                loss,
                dup,
                reorder,
            } => {
                let draw = (rng.next_u64() % 1000) as u32;
                if draw < *loss {
                    Fate::Drop
                } else if draw < *loss + *dup {
                    Fate::Dup
                } else if draw < *loss + *dup + *reorder {
                    Fate::Reorder
                } else {
                    Fate::Deliver
                }
            }
        }
    }
}

enum Ev {
    Data(SegmentHdr),
    Ack(SegmentHdr),
}

/// One-way delay of the scripted channel, ns.
const OWD: u64 = 50_000;
/// Extra delay of a reordered transmission (several segments' worth).
const REORDER_EXTRA: u64 = 4 * OWD;

struct Harness {
    now: u64,
    sender: FlowSender,
    receiver: FlowReceiver,
    events: BTreeMap<(u64, u64), Ev>,
    eseq: u64,
    data_plan: FatePlan,
    ack_plan: FatePlan,
    data_tx: u64,
    ack_tx: u64,
    /// Newly delivered in-order segments, per arrival (sums to
    /// `total_segs` exactly once on a conforming run).
    delivered_total: u64,
    /// Highest `rcv_next` observed after each delivery; must be
    /// monotone (in-order delivery).
    rcv_next_log: Vec<u32>,
}

impl Harness {
    fn new(cfg: TransportConfig, bytes: u32, data_plan: FatePlan, ack_plan: FatePlan) -> Harness {
        let total_segs = segments_for(bytes, cfg.mss);
        Harness {
            now: 0,
            sender: FlowSender::new(cfg, 0x42, bytes, false, 0),
            receiver: FlowReceiver::new(total_segs),
            events: BTreeMap::new(),
            eseq: 0,
            data_plan,
            ack_plan,
            data_tx: 0,
            ack_tx: 0,
            delivered_total: 0,
            rcv_next_log: Vec::new(),
        }
    }

    fn schedule(&mut self, at: u64, ev: Ev) {
        self.events.insert((at, self.eseq), ev);
        self.eseq += 1;
    }

    fn transmit(&mut self, ev_at: impl Fn(u64) -> Ev, fate: Fate) {
        match fate {
            Fate::Deliver => self.schedule(self.now + OWD, ev_at(0)),
            Fate::Drop => {}
            Fate::Dup => {
                self.schedule(self.now + OWD, ev_at(0));
                self.schedule(self.now + OWD + 1_000, ev_at(1));
            }
            Fate::Reorder => self.schedule(self.now + OWD + REORDER_EXTRA, ev_at(0)),
        }
    }

    /// Put every segment the sender wants on the (scripted) wire.
    fn pump(&mut self) {
        while let Some(seg) = self.sender.poll_send(self.now) {
            let hdr = self.sender.data_hdr(seg, self.now);
            let fate = self.data_plan.next(self.data_tx);
            self.data_tx += 1;
            self.transmit(|_| Ev::Data(hdr), fate);
        }
    }

    /// Run until the flow completes, gives up, or nothing remains.
    /// Returns the number of processed events.
    fn run(&mut self) -> u64 {
        self.pump();
        let mut steps = 0u64;
        loop {
            steps += 1;
            assert!(steps < 1_000_000, "harness runaway");
            if self.sender.is_complete() || self.sender.gave_up() {
                return steps;
            }
            let next_ev = self.events.keys().next().copied();
            let rto = self.sender.rto_deadline();
            let (at, is_rto) = match (next_ev, rto) {
                (Some((t, _)), Some(d)) if d <= t => (d, true),
                (Some((t, _)), _) => (t, false),
                (None, Some(d)) => (d, true),
                (None, None) => return steps,
            };
            self.now = self.now.max(at);
            if is_rto {
                match self.sender.on_rto(self.now) {
                    RtoOutcome::GaveUp => return steps,
                    RtoOutcome::Retransmitting | RtoOutcome::Idle => {}
                }
                self.pump();
                continue;
            }
            let key = *self.events.keys().next().expect("checked above");
            match self.events.remove(&key).expect("present") {
                Ev::Data(hdr) => {
                    let out = self.receiver.on_data(hdr.seq, self.now);
                    self.delivered_total += out.delivered as u64;
                    self.rcv_next_log.push(self.receiver.rcv_next());
                    let ack = self.receiver.ack_hdr(&hdr);
                    let fate = self.ack_plan.next(self.ack_tx);
                    self.ack_tx += 1;
                    self.transmit(|_| Ev::Ack(ack), fate);
                }
                Ev::Ack(hdr) => {
                    match self.sender.on_ack(hdr.ack, hdr.seq, hdr.ts, self.now) {
                        AckOutcome::Completed => return steps,
                        AckOutcome::Advanced | AckOutcome::Duplicate | AckOutcome::Ignored => {}
                    }
                    self.pump();
                }
            }
        }
    }

    fn assert_conforming(&self) {
        let total = segments_for(self.sender.total_bytes(), 1408) as u64;
        assert!(self.sender.is_complete(), "sender did not complete");
        assert!(self.receiver.is_complete(), "receiver did not complete");
        assert_eq!(
            self.delivered_total, total,
            "exactly-once delivery: every segment delivered exactly once"
        );
        assert!(
            self.rcv_next_log.windows(2).all(|w| w[0] <= w[1]),
            "in-order delivery: rcv_next is monotone"
        );
    }
}

fn cfg() -> TransportConfig {
    TransportConfig::default()
}

fn all(fate: Fate, n: usize) -> FatePlan {
    FatePlan::Script(vec![fate; n])
}

fn clean() -> FatePlan {
    FatePlan::Script(Vec::new())
}

// ---------------------------------------------------------------------
// Directed state-machine transitions
// ---------------------------------------------------------------------

#[test]
fn lossless_fast_path_never_retransmits() {
    let mut h = Harness::new(cfg(), 40_000, clean(), clean());
    h.run();
    h.assert_conforming();
    assert_eq!(h.sender.retransmits, 0);
    assert_eq!(h.sender.rto_fires, 0);
    assert_eq!(h.sender.fast_retransmits, 0);
    assert_eq!(h.receiver.dup_segments, 0);
}

#[test]
fn rto_fires_on_lost_only_segment() {
    // One-segment flow, first transmission dropped: no dup ACKs can
    // exist, so only the RTO path can recover.
    let mut h = Harness::new(cfg(), 512, FatePlan::Script(vec![Fate::Drop]), clean());
    h.run();
    h.assert_conforming();
    assert_eq!(h.sender.rto_fires, 1);
    assert_eq!(h.sender.retransmits, 1);
    assert_eq!(h.sender.fast_retransmits, 0);
}

#[test]
fn backoff_grows_deterministically_then_caps() {
    // Drop the first 10 transmissions of a one-segment flow and watch
    // the RTO deadline gaps: they must grow geometrically and plateau
    // once the exponent cap is reached (plus bounded jitter), and the
    // whole sequence must be reproducible from the same seed.
    let gaps = |_run: u32| -> Vec<u64> {
        let c = cfg();
        let mut sender = FlowSender::new(c.clone(), 7, 512, false, 0);
        let mut now = 0u64;
        let mut fires = Vec::new();
        assert!(sender.poll_send(now).is_some());
        for _ in 0..10 {
            let d = sender.rto_deadline().expect("armed");
            fires.push(d - now);
            now = d;
            assert_eq!(sender.on_rto(now), RtoOutcome::Retransmitting);
            assert!(sender.poll_send(now).is_some(), "rewind resends");
        }
        fires
    };
    let a = gaps(0);
    let b = gaps(1);
    assert_eq!(a, b, "backoff + jitter is a pure function of the seed");
    // Growth up to the cap: each backed-off gap at least matches its
    // predecessor until both sit at the clamp.
    let c = cfg();
    let ceiling = c.max_rto_ns + c.max_rto_ns * c.jitter_permille as u64 / 1000;
    for w in a.windows(2) {
        assert!(
            w[1] >= w[0].min(c.max_rto_ns) || w[1] >= c.max_rto_ns,
            "gap shrank before the clamp: {a:?}"
        );
    }
    assert!(a.iter().all(|&g| g <= ceiling), "gap above clamp: {a:?}");
    // The tail is saturated at the cap: backoff_cap = 6 is reached
    // after 6 fires, so the last gaps hug the max RTO.
    assert!(
        a[8..].iter().all(|&g| g >= c.max_rto_ns),
        "tail not saturated: {a:?}"
    );
}

#[test]
fn sender_gives_up_when_retry_budget_exhausts() {
    // Everything drops: the sender must give up after max_retries
    // transmissions of segment 0, never complete, and say so.
    let mut h = Harness::new(cfg(), 512, all(Fate::Drop, 64), clean());
    h.run();
    assert!(h.sender.gave_up());
    assert!(!h.sender.is_complete());
    assert_eq!(h.sender.rto_fires as u32, cfg().max_retries);
    assert!(!h.receiver.is_complete());
}

#[test]
fn dup_acks_fast_retransmit_exactly_once() {
    // 20-segment flow; segment 2's first transmission drops. The later
    // segments generate duplicate ACKs: exactly one fast retransmit at
    // the threshold, and the flood of further dup ACKs is suppressed.
    let mut fates = vec![Fate::Deliver; 32];
    fates[2] = Fate::Drop;
    let mut h = Harness::new(cfg(), 20 * 1408, FatePlan::Script(fates), clean());
    h.run();
    h.assert_conforming();
    assert_eq!(h.sender.fast_retransmits, 1, "suppressed after the first");
    assert_eq!(h.sender.rto_fires, 0, "fast path beat the timer");
}

#[test]
fn reordered_data_is_delivered_exactly_once_in_order() {
    // Segments 1 and 3 arrive late (after 4..cwnd); the receiver must
    // buffer out-of-order arrivals and release them in order.
    let mut fates = vec![Fate::Deliver; 32];
    fates[1] = Fate::Reorder;
    fates[3] = Fate::Reorder;
    let mut h = Harness::new(cfg(), 8 * 1408, FatePlan::Script(fates), clean());
    h.run();
    h.assert_conforming();
    assert_eq!(h.sender.rto_fires, 0, "reordering is not loss");
}

#[test]
fn duplicated_segments_are_delivered_once_and_reacked() {
    let mut fates = vec![Fate::Deliver; 32];
    fates[0] = Fate::Dup;
    fates[2] = Fate::Dup;
    let mut h = Harness::new(cfg(), 6 * 1408, FatePlan::Script(fates), clean());
    h.run();
    h.assert_conforming();
    assert_eq!(h.receiver.dup_segments, 2, "each copy counted once");
}

#[test]
fn epoch_reset_mid_flow_clears_rate_clamp_and_recovers() {
    // Clamp the window hard via a probe-echo rate, then signal a path
    // epoch change (switch reboot observed in-band): the clamp must
    // clear, the window reset, and the flow still complete.
    let c = cfg();
    let mut h = Harness::new(c.clone(), 40 * 1408, clean(), clean());
    // Prime an RTT estimate so the rate clamp has a horizon, then
    // clamp to a rate worth less than one segment per RTT.
    h.pump();
    h.run_until_acked(4);
    h.sender.set_rate_bps(1_000_000);
    let clamped = h.sender.effective_window();
    assert_eq!(clamped, 1, "1 Mb/s over a ~100 us RTT is under one MSS");
    h.sender.on_path_epoch_change();
    assert_eq!(h.sender.epoch_resets, 1);
    assert!(
        h.sender.effective_window() >= c.init_cwnd.min(c.max_cwnd),
        "epoch reset must clear the stale clamp"
    );
    h.run();
    h.assert_conforming();
}

impl Harness {
    /// Drive events until at least `n` segments are cumulatively acked.
    fn run_until_acked(&mut self, n: u32) {
        let mut steps = 0;
        while self.sender.acked_segs() < n {
            steps += 1;
            assert!(steps < 100_000, "run_until_acked runaway");
            let key = *self.events.keys().next().expect("events pending");
            self.now = self.now.max(key.0);
            match self.events.remove(&key).expect("present") {
                Ev::Data(hdr) => {
                    let out = self.receiver.on_data(hdr.seq, self.now);
                    self.delivered_total += out.delivered as u64;
                    self.rcv_next_log.push(self.receiver.rcv_next());
                    let ack = self.receiver.ack_hdr(&hdr);
                    self.transmit(|_| Ev::Ack(ack), Fate::Deliver);
                }
                Ev::Ack(hdr) => {
                    self.sender.on_ack(hdr.ack, hdr.seq, hdr.ts, self.now);
                    self.pump();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Seeded property: exactly-once in-order delivery under random chaos
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any seeded mix of loss, duplication, and reordering on
    /// both directions (up to 25% loss each way), a flow with the
    /// default retry budget completes with exactly-once, in-order
    /// delivery — or gives up explicitly, never silently corrupts.
    #[test]
    fn random_chaos_preserves_exactly_once_in_order(
        seed in 0u64..1_000_000,
        segs in 1u32..60,
        loss in 0u32..250,
        dup in 0u32..100,
        reorder in 0u32..150,
    ) {
        let bytes = segs * 1408;
        let data_plan = FatePlan::Random {
            rng: Rng64::new(seed),
            loss,
            dup,
            reorder,
        };
        let ack_plan = FatePlan::Random {
            rng: Rng64::new(seed ^ 0x5eed),
            loss,
            dup,
            reorder,
        };
        let mut h = Harness::new(cfg(), bytes, data_plan, ack_plan);
        h.run();
        if h.sender.gave_up() {
            // Legal terminal state under sustained loss — but it must
            // be explicit, and the receiver must never have delivered
            // a segment twice or out of order.
            prop_assert!(h.delivered_total <= segs as u64);
        } else {
            prop_assert!(h.sender.is_complete());
            prop_assert!(h.receiver.is_complete());
            prop_assert_eq!(h.delivered_total, segs as u64, "exactly once");
        }
        prop_assert!(
            h.rcv_next_log.windows(2).all(|w| w[0] <= w[1]),
            "in order"
        );
        // Determinism: the identical scripted universe replays to the
        // identical terminal state.
        let mut h2 = Harness::new(
            cfg(),
            bytes,
            FatePlan::Random { rng: Rng64::new(seed), loss, dup, reorder },
            FatePlan::Random { rng: Rng64::new(seed ^ 0x5eed), loss, dup, reorder },
        );
        h2.run();
        prop_assert_eq!(h.sender.retransmits, h2.sender.retransmits);
        prop_assert_eq!(h.sender.rto_fires, h2.sender.rto_fires);
        prop_assert_eq!(h.delivered_total, h2.delivered_total);
        prop_assert_eq!(h.now, h2.now);
    }
}
