//! Multi-homed hosts and time-varying link profiles at the netsim
//! layer: NIC routing, per-NIC queue independence, and the composition
//! of static loss with profile-sampled loss, latency and rate.

use tpp::asic::AsicConfig;
use tpp::netsim::{
    time, Endpoint, HostApp, HostCtx, Interp, LinkProfile, LinkState, NetworkBuilder, RunLimit,
};
use tpp::wire::ethernet::{build_frame, EtherType};
use tpp::wire::EthernetAddress;

/// Sends one tagged frame out of each NIC at start.
struct FanOut {
    dst: EthernetAddress,
    payload_len: usize,
}

impl HostApp for FanOut {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        for port in 0..ctx.ports() {
            let frame = build_frame(
                self.dst,
                ctx.mac(),
                EtherType(0x0800),
                &vec![port as u8; self.payload_len],
            );
            ctx.send_on(port, frame);
        }
    }
}

/// Records `(arrival_port, first_payload_byte, t_ns)` per frame.
#[derive(Default)]
struct PortRecorder {
    got: Vec<(u16, u8, u64)>,
}

impl HostApp for PortRecorder {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let tag = frame.get(14).copied().unwrap_or(0xff);
        self.got.push((ctx.rx_port(), tag, ctx.now()));
    }
}

/// Two hosts, two disjoint one-switch paths: NIC p of each host wires
/// to switch p.
fn two_path_pair(
    sender: Box<dyn HostApp>,
    receiver: Box<dyn HostApp>,
) -> (
    tpp::netsim::Simulator,
    tpp::netsim::HostId,
    tpp::netsim::HostId,
) {
    let mut net = NetworkBuilder::new();
    let s0 = net.add_switch(AsicConfig::with_ports(0x10, 2));
    let s1 = net.add_switch(AsicConfig::with_ports(0x20, 2));
    let h0 = net.add_host_multi(sender, 1_000_000, 2);
    let h1 = net.add_host_multi(receiver, 1_000_000, 2);
    for (p, s) in [s0, s1].into_iter().enumerate() {
        net.connect(
            Endpoint::host_port(h0, p as u16),
            Endpoint::switch(s, 0),
            time::micros(5),
        );
        net.connect(
            Endpoint::host_port(h1, p as u16),
            Endpoint::switch(s, 1),
            time::micros(5),
        );
    }
    let mut sim = net.build();
    sim.populate_l2();
    (sim, h0, h1)
}

#[test]
fn send_on_routes_by_nic_and_rx_port_reports_arrival() {
    let (mut sim, _h0, h1) = two_path_pair(
        Box::new(FanOut {
            dst: EthernetAddress::from_host_id(1),
            payload_len: 100,
        }),
        Box::new(PortRecorder::default()),
    );
    sim.run(RunLimit::Quiescent {
        limit_ns: time::millis(5),
    });
    let rx = sim.host_app::<PortRecorder>(h1);
    assert_eq!(rx.got.len(), 2, "one frame per path");
    // The frame tagged for NIC p left NIC p and arrived on NIC p — the
    // two paths are disjoint, so tag and arrival port must agree.
    for &(port, tag, _) in &rx.got {
        assert_eq!(port as u8, tag, "frame crossed paths");
    }
    let ports: Vec<u16> = rx.got.iter().map(|&(p, _, _)| p).collect();
    assert!(ports.contains(&0) && ports.contains(&1));
}

/// A slow NIC 0 must not delay traffic leaving NIC 1: per-NIC queues
/// serialize independently.
#[test]
fn nic_queues_are_independent() {
    struct TwoBursts;
    impl HostApp for TwoBursts {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let dst = EthernetAddress::from_host_id(1);
            // Five jumbo frames down NIC 0 (a deep serialization queue),
            // then one small frame down NIC 1.
            for _ in 0..5 {
                ctx.send_on(
                    0,
                    build_frame(dst, ctx.mac(), EtherType(0x0800), &[0u8; 1400]),
                );
            }
            ctx.send_on(
                1,
                build_frame(dst, ctx.mac(), EtherType(0x0800), &[1u8; 60]),
            );
        }
    }
    let (mut sim, _h0, h1) = two_path_pair(Box::new(TwoBursts), Box::new(PortRecorder::default()));
    sim.run(RunLimit::Quiescent {
        limit_ns: time::millis(5),
    });
    let rx = sim.host_app::<PortRecorder>(h1);
    assert_eq!(rx.got.len(), 6);
    let small_arrival = rx
        .got
        .iter()
        .find(|&&(p, _, _)| p == 1)
        .expect("NIC 1 frame arrived")
        .2;
    let first_jumbo = rx
        .got
        .iter()
        .filter(|&&(p, _, _)| p == 0)
        .map(|&(_, _, t)| t)
        .min()
        .expect("NIC 0 frames arrived");
    assert!(
        small_arrival < first_jumbo,
        "the small frame on the idle NIC must beat the queued jumbos \
         ({small_arrival} ns vs {first_jumbo} ns)"
    );
}

#[test]
fn set_link_loss_reports_profile_composed_effective_loss() {
    let (mut sim, h0, _h1) = two_path_pair(
        Box::new(PortRecorder::default()),
        Box::new(PortRecorder::default()),
    );
    let nic0 = Endpoint::host_port(h0, 0);
    // Static loss alone: clamped echo of what was set.
    assert_eq!(sim.set_link_loss(nic0, 100), 100);
    // A profile active *now* (step at t=0) adds its sample.
    sim.set_link_profile(
        nic0,
        Some(LinkProfile::step().at(
            0,
            LinkState {
                loss_permille: 300,
                ..LinkState::nominal()
            },
        )),
    );
    assert_eq!(
        sim.set_link_loss(nic0, 100),
        400,
        "effective loss = static + active profile sample"
    );
    // Composition clamps at 1000 (never more than always-lose).
    assert_eq!(sim.set_link_loss(nic0, 900), 1000);
}

/// A profile's extra delay and rate scaling shift arrival times; the
/// nominal profile is a no-op.
#[test]
fn profile_delay_and_rate_shape_arrivals() {
    let arrival_with = |profile: Option<LinkProfile>| -> u64 {
        let (mut sim, h0, h1) = two_path_pair(
            Box::new(FanOut {
                dst: EthernetAddress::from_host_id(1),
                payload_len: 1000,
            }),
            Box::new(PortRecorder::default()),
        );
        sim.set_link_profile(Endpoint::host_port(h0, 0), profile);
        sim.run(RunLimit::Quiescent {
            limit_ns: time::millis(50),
        });
        sim.host_app::<PortRecorder>(h1)
            .got
            .iter()
            .find(|&&(p, _, _)| p == 0)
            .expect("path-0 frame delivered")
            .2
    };
    let nominal = arrival_with(None);
    assert_eq!(
        arrival_with(Some(LinkProfile::step().at(0, LinkState::nominal()))),
        nominal,
        "a nominal profile must not perturb timing"
    );
    let slow = LinkState {
        extra_delay_ns: time::micros(100),
        rate_permille: 100, // 10× serialization time
        ..LinkState::nominal()
    };
    let slowed = arrival_with(Some(LinkProfile::step().at(0, slow)));
    assert!(
        slowed >= nominal + time::micros(100),
        "extra delay + rate scaling must push arrival out: {slowed} vs {nominal}"
    );
    // Linear profiles sample mid-ramp: a ramp that is nominal at the
    // send instant behaves nominally.
    let late_ramp = LinkProfile::linear()
        .at(time::millis(40), LinkState::nominal())
        .at(
            time::millis(41),
            LinkState {
                extra_delay_ns: time::millis(1),
                ..LinkState::nominal()
            },
        );
    assert_eq!(
        arrival_with(Some(late_ramp)),
        nominal,
        "a ramp entirely in the future is nominal now"
    );
}

/// Deterministic profile loss: the same seed drops the same frames, and
/// an always-lose profile window blocks everything sent inside it.
#[test]
fn profile_loss_is_seeded_and_total_loss_blocks() {
    struct Pulser {
        dst: EthernetAddress,
        sent: u32,
    }
    impl HostApp for Pulser {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.set_timer(time::micros(10), 0);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
            if self.sent >= 200 {
                return;
            }
            self.sent += 1;
            let frame = build_frame(self.dst, ctx.mac(), EtherType(0x0800), &[0u8; 200]);
            ctx.send_on(0, frame);
            ctx.set_timer(time::micros(10), 0);
        }
    }
    let run = |loss: u16| -> usize {
        let (mut sim, h0, h1) = two_path_pair(
            Box::new(Pulser {
                dst: EthernetAddress::from_host_id(1),
                sent: 0,
            }),
            Box::new(PortRecorder::default()),
        );
        sim.set_link_profile(
            Endpoint::host_port(h0, 0),
            Some(LinkProfile::new(Interp::Step).at(
                0,
                LinkState {
                    loss_permille: loss,
                    ..LinkState::nominal()
                },
            )),
        );
        sim.run(RunLimit::Quiescent {
            limit_ns: time::millis(10),
        });
        sim.host_app::<PortRecorder>(h1).got.len()
    };
    assert_eq!(run(1000), 0, "always-lose profile drops everything");
    assert_eq!(run(0), 200, "zero-loss profile drops nothing");
    let partial = run(500);
    assert!(
        partial > 0 && partial < 200,
        "50% profile loss thins the stream: {partial}/200"
    );
    assert_eq!(partial, run(500), "same seed, same drops");
}
