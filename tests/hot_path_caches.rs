//! The hot-path caches must be semantically invisible.
//!
//! An ASIC with the decoded-program cache and the exact-match flow cache
//! on must behave bit-identically to one with them off
//! (`AsicConfig::without_hot_path_caches()`, the pre-optimization
//! configuration): same outcomes, same forwarded bytes, same
//! TPP-readable registers. Every frame is fed more than once so the
//! caches actually serve hits, and programs include undecodable words so
//! the cached `BadInstruction` halt position is exercised too.
//!
//! The shared ASIC-pair/frame builders live in `tpp_bench::testgen`,
//! reused by the robustness tests and the conformance fuzz loop.

use proptest::prelude::*;
use tpp_asic::{Asic, AsicConfig};
use tpp_bench::testgen::{asic_pair, regs_match, step_both, tpp_frame};
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::EthernetAddress;

/// Two identically populated ASICs differing only in
/// [`AsicConfig::batched_dispatch`]: the batched TCPU (decode once, run
/// the window straight-line) vs the per-frame path.
fn batch_pair() -> (Asic, Asic) {
    let mk = |config: AsicConfig| {
        let mut asic = Asic::new(config);
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        asic.l2_mut().insert(EthernetAddress::from_host_id(2), 2);
        asic.l3_mut().insert(0x0a00_0000, 8, 3);
        asic
    };
    (
        mk(AsicConfig::with_ports(7, 4)),
        mk(AsicConfig::with_ports(7, 4).batched_dispatch(false)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary instruction words — valid or not — executed repeatedly
    /// produce identical results with the decode cache on and off.
    #[test]
    fn decode_cache_matches_fresh_decode(
        words in proptest::collection::vec(any::<u32>(), 0..12),
        mem in proptest::collection::vec(any::<u32>(), 0..16),
        repeats in 2usize..5,
    ) {
        let frame = tpp_frame(1, 9, &words, &mem);
        let (mut cached, mut uncached) = asic_pair();
        // Repeats make the second and later rounds cache hits; the TPP
        // mutates in flight, so each round replays the same ingress
        // bytes rather than the mutated ones.
        for round in 0..repeats {
            step_both(&mut cached, &mut uncached, &frame, round as u64);
        }
        regs_match(&cached, &uncached);
        let (hits, _) = cached.decode_cache_stats();
        prop_assert!(
            words.is_empty() || hits >= (repeats as u64) - 1,
            "repeated program should hit the decode cache"
        );
    }

    /// A random mix of flows — L2-routed, L3-routed, and unroutable —
    /// fed repeatedly forwards identically with the flow cache on and
    /// off, and the flow cache serves repeats from cache.
    #[test]
    fn flow_cache_matches_table_walk(
        flows in proptest::collection::vec((0u32..5, any::<bool>()), 1..12),
        payload_len in 20usize..64,
    ) {
        let (mut cached, mut uncached) = asic_pair();
        let frames: Vec<Vec<u8>> = flows
            .iter()
            .map(|&(dst, ipv4)| {
                build_frame(
                    EthernetAddress::from_host_id(dst),
                    EthernetAddress::from_host_id(9),
                    EtherType(if ipv4 { 0x0800 } else { 0x0802 }),
                    &vec![0xabu8; payload_len],
                )
            })
            .collect();
        for (i, frame) in frames.iter().chain(frames.iter()).enumerate() {
            step_both(&mut cached, &mut uncached, frame, i as u64);
        }
        regs_match(&cached, &uncached);
        let (hits, misses) = cached.flow_cache_stats();
        prop_assert!(hits >= frames.len() as u64, "second pass should hit");
        prop_assert!(misses <= frames.len() as u64);
    }

    /// Batched TCPU dispatch is bit-identical to the per-frame path for
    /// arbitrary programs (valid or not — cached `BadInstruction` halt
    /// positions included) under arbitrary same-program run lengths:
    /// same outcomes, same egress bytes, same TPP-visible registers.
    #[test]
    fn batched_dispatch_matches_per_frame(
        words_a in proptest::collection::vec(any::<u32>(), 0..12),
        words_b in proptest::collection::vec(any::<u32>(), 0..12),
        mem in proptest::collection::vec(any::<u32>(), 0..16),
        pattern in proptest::collection::vec(any::<bool>(), 4..24),
    ) {
        // Two programs interleaved by `pattern`: runs of the same
        // program exercise the batch window (byte-compare fast path),
        // switches between them exercise re-pinning.
        let frame_a = tpp_frame(1, 9, &words_a, &mem);
        let frame_b = tpp_frame(2, 9, &words_b, &mem);
        let (mut batched, mut unbatched) = batch_pair();
        for (i, pick_a) in pattern.iter().enumerate() {
            let frame = if *pick_a { &frame_a } else { &frame_b };
            step_both(&mut batched, &mut unbatched, frame, i as u64);
        }
        regs_match(&batched, &unbatched);
    }
}
