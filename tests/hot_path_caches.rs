//! The hot-path caches must be semantically invisible.
//!
//! An ASIC with the decoded-program cache and the exact-match flow cache
//! on must behave bit-identically to one with them off
//! (`AsicConfig::without_hot_path_caches()`, the pre-optimization
//! configuration): same outcomes, same forwarded bytes, same
//! TPP-readable registers. Every frame is fed more than once so the
//! caches actually serve hits, and programs include undecodable words so
//! the cached `BadInstruction` halt position is exercised too.
//!
//! The shared ASIC-pair/frame builders live in `tpp_bench::testgen`,
//! reused by the robustness tests and the conformance fuzz loop.

use proptest::prelude::*;
use tpp_bench::testgen::{asic_pair, regs_match, step_both, tpp_frame};
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::EthernetAddress;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary instruction words — valid or not — executed repeatedly
    /// produce identical results with the decode cache on and off.
    #[test]
    fn decode_cache_matches_fresh_decode(
        words in proptest::collection::vec(any::<u32>(), 0..12),
        mem in proptest::collection::vec(any::<u32>(), 0..16),
        repeats in 2usize..5,
    ) {
        let frame = tpp_frame(1, 9, &words, &mem);
        let (mut cached, mut uncached) = asic_pair();
        // Repeats make the second and later rounds cache hits; the TPP
        // mutates in flight, so each round replays the same ingress
        // bytes rather than the mutated ones.
        for round in 0..repeats {
            step_both(&mut cached, &mut uncached, &frame, round as u64);
        }
        regs_match(&cached, &uncached);
        let (hits, _) = cached.decode_cache_stats();
        prop_assert!(
            words.is_empty() || hits >= (repeats as u64) - 1,
            "repeated program should hit the decode cache"
        );
    }

    /// A random mix of flows — L2-routed, L3-routed, and unroutable —
    /// fed repeatedly forwards identically with the flow cache on and
    /// off, and the flow cache serves repeats from cache.
    #[test]
    fn flow_cache_matches_table_walk(
        flows in proptest::collection::vec((0u32..5, any::<bool>()), 1..12),
        payload_len in 20usize..64,
    ) {
        let (mut cached, mut uncached) = asic_pair();
        let frames: Vec<Vec<u8>> = flows
            .iter()
            .map(|&(dst, ipv4)| {
                build_frame(
                    EthernetAddress::from_host_id(dst),
                    EthernetAddress::from_host_id(9),
                    EtherType(if ipv4 { 0x0800 } else { 0x0802 }),
                    &vec![0xabu8; payload_len],
                )
            })
            .collect();
        for (i, frame) in frames.iter().chain(frames.iter()).enumerate() {
            step_both(&mut cached, &mut uncached, frame, i as u64);
        }
        regs_match(&cached, &uncached);
        let (hits, misses) = cached.flow_cache_stats();
        prop_assert!(hits >= frames.len() as u64, "second pass should hit");
        prop_assert!(misses <= frames.len() as u64);
    }
}
