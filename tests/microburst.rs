//! E6 / §2.1 — TPP per-packet visibility catches micro-bursts that
//! coarse control-plane polling misses, asserted end to end.

use tpp::apps::{detect_bursts, MicroburstMonitor};
use tpp::host::{EchoReceiver, DATA_ETHERTYPE};
use tpp::netsim::RunLimit;
use tpp::netsim::{dumbbell, time, DumbbellParams, HostApp, HostCtx};
use tpp::wire::ethernet::build_frame;
use tpp::wire::EthernetAddress;

/// Fires fixed-size bursts at `victim` on a fixed period.
struct Burster {
    victim: EthernetAddress,
    frames: usize,
    period_ns: u64,
    remaining: u32,
}

impl HostApp for Burster {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.period_ns, 0);
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut HostCtx<'_>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        for _ in 0..self.frames {
            ctx.send(build_frame(
                self.victim,
                ctx.mac(),
                DATA_ETHERTYPE,
                &[0u8; 1400],
            ));
        }
        ctx.set_timer(self.period_ns, 0);
    }
}

#[test]
fn tpp_monitor_finds_bursts_where_poller_sees_nothing() {
    // Dumbbell with a 100 Mb/s bottleneck; pair 0 bursts 30 KB every
    // 2 ms (the burst drains in ~2.4 ms at 100 Mb/s... make it 20 KB,
    // draining in ~1.6 ms, so bursts are isolated); pair 1's sender is
    // the TPP monitor.
    let victim = EthernetAddress::from_host_id(1);
    let n_bursts = 20u32;
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![
        (
            Box::new(Burster {
                victim,
                frames: 14, // ~20 KB
                period_ns: time::millis(2),
                remaining: n_bursts,
            }),
            Box::new(EchoReceiver::default()),
        ),
        (
            // Probe interval 53 µs: co-prime with the 2 ms burst period.
            Box::new(MicroburstMonitor::new(
                EthernetAddress::from_host_id(3),
                2,
                time::micros(53),
                0,
                time::millis(45),
            )),
            Box::new(EchoReceiver::default()),
        ),
    ];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            bottleneck_kbps: 100_000,
            edge_kbps: 1_000_000,
            host_nic_kbps: 1_000_000,
            ..Default::default()
        },
        apps,
    );

    // Coarse poller at 10 ms (still far finer than the paper's "10s of
    // seconds" straw man) sampling ground truth.
    let mut polled: Vec<(u64, u64)> = Vec::new();
    let mut t = 0;
    while t < time::millis(50) {
        t += time::millis(10);
        sim.run(RunLimit::Until(t));
        polled.push((
            t,
            sim.switch(bell.left)
                .queue_len_bytes(bell.bottleneck_port, 0),
        ));
    }

    let monitor = sim.host_app::<MicroburstMonitor>(bell.senders[1]);
    assert!(monitor.probes_sent > 500);
    assert!(
        monitor.echoes_received as f64 > 0.8 * monitor.probes_sent as f64,
        "most probes should survive ({}/{})",
        monitor.echoes_received,
        monitor.probes_sent
    );

    // Switch 1 (the left switch) owns the bottleneck queue.
    let series = monitor.series_for(1);
    let threshold = 5_000;
    let bursts = detect_bursts(&series, threshold, time::micros(300));
    let polled_bursts = detect_bursts(&polled, threshold, time::millis(50));

    assert!(
        bursts.len() >= (n_bursts / 2) as usize,
        "TPP monitor found only {} of {} bursts",
        bursts.len(),
        n_bursts
    );
    assert!(
        polled_bursts.len() < bursts.len() / 2,
        "poller should miss most bursts: {} vs {}",
        polled_bursts.len(),
        bursts.len()
    );

    // The burst magnitudes the monitor reports are real byte counts of
    // the right order (20 KB bursts minus drainage).
    let peak = bursts.iter().map(|b| b.peak_bytes).max().unwrap();
    assert!(
        (8_000..=30_000).contains(&peak),
        "implausible peak {peak} for 20 KB bursts"
    );
}

#[test]
fn quiet_network_reports_no_bursts() {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![(
        Box::new(MicroburstMonitor::new(
            EthernetAddress::from_host_id(1),
            2,
            time::micros(100),
            0,
            time::millis(20),
        )),
        Box::new(EchoReceiver::default()),
    )];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 1,
            ..Default::default()
        },
        apps,
    );
    sim.run(RunLimit::Until(time::millis(25)));
    let monitor = sim.host_app::<MicroburstMonitor>(bell.senders[0]);
    for sid in monitor.switches_observed() {
        let bursts = detect_bursts(&monitor.series_for(sid), 1_000, time::micros(300));
        assert!(bursts.is_empty(), "phantom burst on switch {sid}");
    }
}
