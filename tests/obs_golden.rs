//! Golden snapshot of the observability plane's end-to-end artifacts.
//!
//! Drives the seeded microburst scenario (`tpp_bench::obs_scenario` —
//! the same code path as `tpp_top --headless`) and pins the rendered
//! `tpp-top` table, the Prometheus snapshot, and the JSONL series dump
//! against committed goldens. The scenario is fully deterministic
//! (discrete-event time, seeded reservoirs, no wall clock), so any
//! diff is a real behavior change. Regenerate with `UPDATE_GOLDEN=1`.

use std::path::Path;

use tpp_bench::obs_scenario::run_obs_scenario;
use tpp_bench::testgen::assert_matches_golden;

#[test]
fn obs_scenario_matches_goldens() {
    let run = run_obs_scenario();

    // The acceptance invariants first, so a broken scenario fails with
    // a readable message rather than a golden diff.
    assert_eq!(
        run.probes_sent, run.echoes_received,
        "scenario must be lossless"
    );
    assert_eq!(
        run.divergence_max_bytes, 0,
        "collector must match ground truth on a drained lossless run"
    );
    assert!(
        run.budget_violations > 0,
        "the incast must push spans past the 300 ns cut-through budget"
    );
    assert!(
        run.bursts_detected >= 1,
        "the monitor must detect the seeded microburst"
    );
    assert!(run.peak_queue_bytes > 10_000, "burst must actually queue");

    assert_matches_golden(Path::new("tests/golden/obs_top.txt"), &run.top);
    assert_matches_golden(Path::new("tests/golden/obs_snapshot.prom"), &run.prom);
    assert_matches_golden(Path::new("tests/golden/obs_series.jsonl"), &run.series);
}
