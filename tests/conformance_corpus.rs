//! Golden corpus replay: every committed case under `tests/corpus/`
//! must run divergence-free, forever.
//!
//! The corpus starts with the directed cases (one per halt reason,
//! opcode coverage, echoed/malformed/queue-full paths) and grows by one
//! minimized JSON witness per divergence the fuzz loop ever finds — so
//! any bug caught once is re-checked on every test run afterwards.
//! Regenerate the directed seed files with
//! `cargo run -p tpp-bench --bin conformance -- --write-corpus`.

use tpp_bench::conformance::{default_corpus_dir, load_corpus, run_case};

#[test]
fn committed_corpus_replays_clean() {
    let corpus = load_corpus(&default_corpus_dir()).expect("load tests/corpus");
    assert!(
        corpus.len() >= 13,
        "corpus shrank to {} cases — witnesses must never be deleted",
        corpus.len()
    );
    for (label, case) in &corpus {
        if let Err(e) = run_case(case) {
            panic!("corpus case {label} ({}) diverged:\n{e}", case.name);
        }
    }
}
