//! E9 / §4 + §3.2 — the deployment story, end to end:
//!
//! * RCP\* and ndb run *concurrently* on the same network with
//!   control-plane-allocated, non-overlapping SRAM (§3.2 "Multiple
//!   tasks");
//! * an untrusted tenant's TPPs are stripped/dropped at the network edge
//!   while trusted infrastructure TPPs keep working (§4).

use tpp::apps::ndb::{NdbProbeSender, PathPolicy, TraceCollector};
use tpp::apps::rcpstar::{
    init_rate_registers, RcpStarConfig, RcpStarSender, RCP_RATE_REGISTER, RCP_TS_REGISTER,
};
use tpp::apps::MicroburstMonitor;
use tpp::control::{NetworkController, PortTrust, Region, SramAllocator};
use tpp::host::EchoReceiver;
use tpp::netsim::RunLimit;
use tpp::netsim::{dumbbell, time, DumbbellParams, HostApp};
use tpp::wire::EthernetAddress;

#[test]
fn sram_allocator_reserves_the_rcp_registers() {
    // The agent allocates RCP's two per-link words first; they land at
    // exactly the addresses the RCP* implementation compiled against.
    let mut alloc = SramAllocator::for_default_asic();
    let rate = alloc.alloc("rcp", Region::PerLink, 1).unwrap();
    let ts = alloc.alloc("rcp", Region::PerLink, 1).unwrap();
    assert_eq!(rate.addr(0), RCP_RATE_REGISTER);
    assert_eq!(ts.addr(0), RCP_TS_REGISTER);
    // ndb (or any other task) gets disjoint words.
    let other = alloc.alloc("ndb", Region::PerLink, 4).unwrap();
    assert!(other.addr(0).0 >= RCP_TS_REGISTER.0 + 4);
}

#[test]
fn rcp_and_ndb_coexist_on_one_network() {
    // Pair 0: an RCP* flow. Pair 1: ndb-traced traffic. Pair 2: a
    // micro-burst monitor. All three tasks share switches and SRAM.
    let controller = NetworkController::new();
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![
        (
            Box::new(RcpStarSender::new(
                EthernetAddress::from_host_id(1),
                RcpStarConfig::default(),
            )),
            Box::new(EchoReceiver::default()),
        ),
        (
            Box::new(NdbProbeSender::new(
                EthernetAddress::from_host_id(3),
                2,
                time::millis(1),
                50,
            )),
            Box::new(TraceCollector::default()),
        ),
        (
            Box::new(MicroburstMonitor::new(
                EthernetAddress::from_host_id(5),
                2,
                time::millis(1),
                0,
                time::secs(3),
            )),
            Box::new(EchoReceiver::default()),
        ),
    ];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 3,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    sim.run(RunLimit::Until(time::secs(3)));

    // RCP* converged (sole data flow -> near capacity).
    let rcp = sim.host_app::<RcpStarSender>(bell.senders[0]);
    assert!(rcp.feedback_count > 100);
    let late: Vec<u64> = rcp
        .rate_trace
        .iter()
        .filter(|(t, _)| *t > time::secs(2))
        .map(|(_, r)| *r)
        .collect();
    let mean = late.iter().sum::<u64>() as f64 / late.len() as f64;
    assert!(
        mean > 0.8 * 10e6,
        "RCP* disturbed by coexisting tasks: {mean}"
    );

    // ndb collected clean traces.
    let traces = &sim.host_app::<TraceCollector>(bell.receivers[1]).traces;
    assert_eq!(traces.len(), 50);
    let policy = PathPolicy {
        expected_path: vec![1, 2],
        expected_versions: controller.intended_versions_all(),
    };
    assert!(traces.iter().all(|t| policy.verify(t).is_empty()));

    // The monitor observed the queue RCP* kept small.
    let monitor = sim.host_app::<MicroburstMonitor>(bell.senders[2]);
    assert!(monitor.echoes_received > 1000);
}

#[test]
fn untrusted_edge_ports_stop_tpps_but_not_data() {
    // Pair 0 is an untrusted tenant running the same monitor app; pair 1
    // is trusted infrastructure. Only the trusted monitor gets telemetry.
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![
        (
            Box::new(MicroburstMonitor::new(
                EthernetAddress::from_host_id(1),
                2,
                time::millis(1),
                0,
                time::millis(500),
            )),
            Box::new(EchoReceiver::default()),
        ),
        (
            Box::new(MicroburstMonitor::new(
                EthernetAddress::from_host_id(3),
                2,
                time::millis(1),
                0,
                time::millis(500),
            )),
            Box::new(EchoReceiver::default()),
        ),
    ];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            ..Default::default()
        },
        apps,
    );
    let mut controller = NetworkController::new();
    // Tenant 0 attaches at the left switch port 0: untrusted.
    controller.set_port_trust(sim.switch_mut(bell.left), 0, PortTrust::UntrustedDrop);
    sim.run(RunLimit::Until(time::millis(600)));

    let tenant = sim.host_app::<MicroburstMonitor>(bell.senders[0]);
    let infra = sim.host_app::<MicroburstMonitor>(bell.senders[1]);
    assert!(tenant.probes_sent > 100);
    assert_eq!(
        tenant.echoes_received, 0,
        "tenant TPPs must die at the edge"
    );
    assert!(
        infra.echoes_received > 100,
        "trusted TPPs unaffected: {}",
        infra.echoes_received
    );

    // The tenant's *data* still flows: send one plain frame and see it
    // arrive (edge policy filters TPPs, not traffic).
    let drops = sim.switch(bell.left).port_stats(0).bytes_dropped;
    assert_eq!(drops, 0, "no data-plane drops, only edge filtering");
}
