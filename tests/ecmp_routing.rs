//! ECMP routing suite: the seeded equal-cost multi-path layer under the
//! closed-loop fat-tree workload.
//!
//! The paper's §4 deployment environment is a datacenter fabric where
//! "TPPs are forwarded just like other packets" — so the path a probe
//! takes must be the path its flow takes, and both must be pure
//! functions of (seed, flow key) so the sharded simulator replays
//! bit-identically at any shard count. These tests pin that down:
//!
//! 1. The flow hash spreads 10k flow labels across a k=8 edge switch's
//!    four uplinks within 2x of uniform, and is a pure function of its
//!    inputs (same label — same port, every time).
//! 2. A closed-loop k=4 run under seeded loss produces bit-identical
//!    completions *and* per-uplink frame counts at 1/2/4 shards,
//!    threaded and sequential (proptest over seeds and loss rates).
//! 3. A single flow rides exactly one uplink until that uplink goes
//!    down, then re-hashes onto the surviving one and keeps delivering.

use proptest::prelude::*;
use tpp::apps::rcpstar::init_rate_registers;
use tpp::netsim::routing::{FLOW_LABEL_MAGIC, FLOW_LABEL_OFFSET};
use tpp::netsim::{
    fat_tree_with, flow_label, time, EcmpTable, Endpoint, FatTreeParams, FaultPlan, HostApp,
    HostCtx, HostId, RunLimit, SimConfig,
};
use tpp::wire::ethernet::{build_frame, EtherType};
use tpp::wire::EthernetAddress;
use tpp_bench::traffic::{
    completions_fingerprint, generate_schedule, splitmix64, ClosedFlowGenApp, ClosedLoopConfig,
    FlowSizeDist, TrafficConfig,
};

/// A host that does nothing (a leaf the traffic never targets).
struct Idle;
impl HostApp for Idle {}

/// Counts delivered frames and returns the buffers to the pool.
#[derive(Default)]
struct Sink {
    got: u64,
}
impl HostApp for Sink {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        self.got += 1;
        ctx.recycle_frame(frame);
    }
}

/// Streams one labelled frame per `period_ns` at a fixed destination
/// until `until_ns` — a single ECMP flow with a visible wire footprint.
struct Streamer {
    dst: EthernetAddress,
    key: u64,
    period_ns: u64,
    until_ns: u64,
    sent: u64,
}

impl HostApp for Streamer {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(1, 0);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        if ctx.now() >= self.until_ns {
            return;
        }
        let mut payload = [0u8; FLOW_LABEL_OFFSET + 8];
        payload[0..2].copy_from_slice(&FLOW_LABEL_MAGIC);
        payload[FLOW_LABEL_OFFSET..].copy_from_slice(&self.key.to_be_bytes());
        ctx.send(build_frame(
            self.dst,
            ctx.mac(),
            EtherType(0x0802),
            &payload,
        ));
        self.sent += 1;
        ctx.set_timer(self.period_ns, 0);
    }
}

/// Satellite 1a: the k=8 edge uplink group spreads 10k distinct flow
/// labels within 2x of uniform, and each label's pick is stable.
#[test]
fn k8_uplink_spread_is_within_2x_of_uniform() {
    let k = 8;
    let params = FatTreeParams {
        k,
        ..Default::default()
    };
    let n_hosts = params.n_hosts();
    let apps: Vec<Box<dyn HostApp>> = (0..n_hosts).map(|_| Box::new(Idle) as _).collect();
    let (sim, tree) = fat_tree_with(SimConfig::new().ecmp(true), params, apps);
    let table = sim.ecmp_table().expect("ecmp(true) builds the table");

    // Edge (pod 0, e 0) toward a host in pod 1: all k/2 uplinks tie.
    let edge = tree.edges[0][0];
    let edge_dataplane_id = 0x100; // pod 0, e 0 (topology id scheme)
    let dst_host = tree.hosts[1][0][0].0 as u32;
    let group = table.group(edge.0, dst_host);
    assert_eq!(group.len(), k / 2, "inter-pod group is the uplink set");

    let src = EthernetAddress::from_host_id(0);
    let dst = EthernetAddress::from_host_id(dst_host);
    let n_flows = 10_000u64;
    let mut counts = std::collections::BTreeMap::new();
    for label in 0..n_flows {
        let hash = table.flow_hash(edge_dataplane_id, src, dst, Some(label));
        let port = EcmpTable::pick(group, hash);
        // Purity: the same (seed, flow) inputs always pick the same port.
        assert_eq!(
            port,
            EcmpTable::pick(
                group,
                table.flow_hash(edge_dataplane_id, src, dst, Some(label))
            )
        );
        *counts.entry(port).or_insert(0u64) += 1;
    }

    assert_eq!(counts.len(), group.len(), "every uplink carries flows");
    let uniform = n_flows / group.len() as u64;
    for (port, n) in &counts {
        assert!(
            *n <= 2 * uniform && *n >= uniform / 2,
            "uplink {port} carries {n} of {n_flows} flows; uniform is {uniform}"
        );
    }
}

/// Satellite 1b: `flow_label` reads the wire format the transport and
/// the FCT generator both stamp — magic, then the key at offset 16.
#[test]
fn flow_label_parses_labelled_frames_only() {
    let src = EthernetAddress::from_host_id(0);
    let dst = EthernetAddress::from_host_id(1);

    let mut payload = [0u8; FLOW_LABEL_OFFSET + 8];
    payload[0..2].copy_from_slice(&FLOW_LABEL_MAGIC);
    payload[FLOW_LABEL_OFFSET..].copy_from_slice(&0xdead_beef_u64.to_be_bytes());
    let labelled = build_frame(dst, src, EtherType(0x0802), &payload);
    assert_eq!(flow_label(&labelled), Some(0xdead_beef));

    let unlabelled = build_frame(dst, src, EtherType(0x0802), &[0u8; 24]);
    assert_eq!(flow_label(&unlabelled), None, "no magic, no label");

    let short = build_frame(dst, src, EtherType(0x0802), &payload[..8]);
    assert_eq!(flow_label(&short), None, "too short to carry a label");
}

/// One closed-loop k=4 run; returns a fingerprint over per-flow
/// completions, transport counters, and every edge uplink's frame count.
fn closed_loop_fingerprint(
    seed: u64,
    loss_permille: u16,
    shards: usize,
    sequential: bool,
) -> (u64, u64, u64) {
    let params = FatTreeParams::default(); // k=4: 16 hosts, 20 switches
    let half = params.k / 2;
    let hpe = params.effective_hosts_per_edge();
    let n_hosts = params.n_hosts();
    let macs: Vec<EthernetAddress> = (0..n_hosts)
        .map(|i| EthernetAddress::from_host_id(i as u32))
        .collect();

    let traffic = TrafficConfig {
        seed,
        flows_per_host: 15,
        mean_gap_ns: 200_000,
        ..Default::default()
    };
    let mut last_start = 0u64;
    let apps: Vec<Box<dyn HostApp>> = (0..n_hosts)
        .map(|i| {
            let dist = if i % 2 == 0 {
                FlowSizeDist::WebSearch
            } else {
                FlowSizeDist::DataMining
            };
            let sched = generate_schedule(&traffic, i as u32, &macs, dist);
            if let Some(f) = sched.last() {
                last_start = last_start.max(f.start_ns);
            }
            Box::new(ClosedFlowGenApp::new(sched, ClosedLoopConfig::default())) as _
        })
        .collect();

    let mut config = SimConfig::new()
        .shards(shards)
        .ecmp(true)
        .tick_interval_ns(time::millis(1));
    if sequential {
        config = config.sequential();
    }
    let (mut sim, tree) = fat_tree_with(config, params, apps);
    let switches: Vec<_> = tree
        .edges
        .iter()
        .chain(tree.aggs.iter())
        .flatten()
        .copied()
        .chain(tree.cores.iter().copied())
        .collect();
    for sw in &switches {
        init_rate_registers(sim.switch_mut(*sw));
    }
    for pod in tree.edges.iter() {
        for edge in pod {
            for a in 0..half {
                sim.set_link_loss(Endpoint::switch(*edge, (hpe + a) as u16), loss_permille);
            }
        }
    }
    for agg in tree.aggs.iter().flatten() {
        for p in 0..2 * half {
            sim.set_link_loss(Endpoint::switch(*agg, p as u16), loss_permille);
        }
    }
    for core in &tree.cores {
        for p in 0..2 * half {
            sim.set_link_loss(Endpoint::switch(*core, p as u16), loss_permille);
        }
    }

    sim.run(RunLimit::Until(last_start + time::millis(40)));

    let mut fp = 0u64;
    let mut completed = 0u64;
    let mut retransmits = 0u64;
    for i in 0..n_hosts {
        let app = sim.host_app::<ClosedFlowGenApp>(HostId(i));
        fp = fp.wrapping_add(completions_fingerprint(app.completions.iter().copied()));
        let stats = app.stats_snapshot();
        completed += stats.flows_completed;
        retransmits += stats.retransmits;
        fp ^= splitmix64(
            (i as u64)
                .wrapping_add(stats.retransmits.rotate_left(13))
                .wrapping_add(stats.flows_given_up.rotate_left(29))
                .wrapping_add(app.unfinished() as u64),
        );
    }
    // Per-flow paths, fingerprinted as every edge uplink's frame count.
    for edge in tree.edges.iter().flatten() {
        for a in 0..half {
            let tx = sim.link_tx_frames(Endpoint::switch(*edge, (hpe + a) as u16));
            fp = splitmix64(fp ^ (edge.0 as u64).rotate_left(40) ^ ((a as u64) << 20) ^ tx);
        }
    }
    (fp, completed, retransmits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Satellite 2: completions and per-uplink frame counts are
    /// bit-identical at 1/2/4 shards, threaded and sequential, for any
    /// traffic seed and loss rate.
    #[test]
    fn ecmp_closed_loop_is_shard_count_invariant(
        seed in any::<u64>(),
        loss in 5u16..26,
    ) {
        let baseline = closed_loop_fingerprint(seed, loss, 1, true);
        prop_assert!(baseline.1 > 0, "some flows must complete");
        prop_assert!(baseline.2 > 0, "seeded loss must force retransmits");
        for (shards, sequential) in [(2, false), (4, false), (4, true)] {
            let run = closed_loop_fingerprint(seed, loss, shards, sequential);
            prop_assert_eq!(
                run, baseline,
                "shards={} sequential={} diverged", shards, sequential
            );
        }
    }
}

/// Satellite 3: one flow, one path — until its uplink goes down, when
/// the pick re-hashes onto the surviving uplink and delivery continues.
#[test]
fn flow_path_is_stable_until_link_down_rehash() {
    let params = FatTreeParams::default(); // k=4
    let hpe = params.effective_hosts_per_edge();
    let n_hosts = params.n_hosts();
    let dst_id = (params.k / 2) * hpe; // first host of pod 1
    let period = time::micros(100);
    let apps: Vec<Box<dyn HostApp>> = (0..n_hosts)
        .map(|i| -> Box<dyn HostApp> {
            if i == 0 {
                Box::new(Streamer {
                    dst: EthernetAddress::from_host_id(dst_id as u32),
                    key: 0x0e0c_4001,
                    period_ns: period,
                    until_ns: time::millis(38),
                    sent: 0,
                })
            } else if i == dst_id {
                Box::new(Sink::default())
            } else {
                Box::new(Idle)
            }
        })
        .collect();
    let (mut sim, tree) = fat_tree_with(SimConfig::new().ecmp(true), params, apps);
    assert_eq!(tree.hosts[1][0][0], HostId(dst_id), "pod-1 host id layout");

    let edge = tree.edges[0][0];
    let uplinks = [hpe as u16, hpe as u16 + 1];
    sim.run(RunLimit::Until(time::millis(20)));

    let phase1: Vec<u64> = uplinks
        .iter()
        .map(|p| sim.link_tx_frames(Endpoint::switch(edge, *p)))
        .collect();
    let taken = usize::from(phase1[0] == 0);
    let spare = 1 - taken;
    assert!(
        phase1[taken] >= 150 && phase1[spare] == 0,
        "a single flow must ride a single uplink, got {phase1:?}"
    );
    let got1 = sim.host_app::<Sink>(HostId(dst_id)).got;
    assert!(got1 >= 150, "flow must be delivering before the fault");

    let mut plan = FaultPlan::new(0x0e0c_4003);
    plan.link_flap(
        time::millis(20) + time::micros(1),
        time::millis(50), // beyond the run: stays down for all of phase 2
        Endpoint::switch(edge, uplinks[taken]),
    );
    sim.install_faults(&plan);
    sim.run(RunLimit::Until(time::millis(38)));

    let phase2: Vec<u64> = uplinks
        .iter()
        .map(|p| sim.link_tx_frames(Endpoint::switch(edge, *p)))
        .collect();
    assert!(
        phase2[taken] <= phase1[taken] + 5,
        "downed uplink must stop carrying the flow: {phase1:?} -> {phase2:?}"
    );
    assert!(
        phase2[spare] >= 100,
        "flow must re-hash onto the surviving uplink, got {phase2:?}"
    );
    let got2 = sim.host_app::<Sink>(HostId(dst_id)).got;
    assert!(
        got2 >= got1 + 100,
        "delivery must continue after the re-hash ({got1} -> {got2})"
    );
}
