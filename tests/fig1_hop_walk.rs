//! E1 / Figure 1 — the queue-size query TPP, asserted end to end.
//!
//! "Visualizing the execution of a TPP that queries the network for queue
//! sizes. As the TPP traverses a network of switches, the ASIC executes
//! the program, which modifies the packet to reflect the queue sizes on
//! the link." The figure shows SP advancing 0x0 → 0x4 → 0x8 → 0xc and
//! one value pushed per hop.

use std::path::Path;

use tpp::host::{split_hops, DATA_ETHERTYPE};
use tpp::isa::assemble;
use tpp::netsim::RunLimit;
use tpp::netsim::{linear_chain, time, HostApp, HostCtx, LinearChainParams};
use tpp::wire::ethernet::build_frame;
use tpp::wire::tpp::TppPacket;
use tpp::wire::{EthernetAddress, Frame};
use tpp_bench::testgen::assert_matches_golden;

struct OneProbe {
    dst: EthernetAddress,
}

impl HostApp for OneProbe {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Pre-fill hop 2's queue (the third switch's egress) with two
        // data frames so the walk records a non-trivial value somewhere.
        for _ in 0..2 {
            ctx.send(build_frame(
                self.dst,
                ctx.mac(),
                DATA_ETHERTYPE,
                &[0u8; 1000],
            ));
        }
        let program = assemble("PUSH [Queue:QueueSize]").unwrap();
        let probe = tpp::host::ProbeBuilder::stack(&program, 3);
        ctx.send(probe.build_frame(self.dst, ctx.mac()));
    }
}

#[derive(Default)]
struct Capture {
    frames: Vec<(u64, Vec<u8>)>,
}

impl HostApp for Capture {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        self.frames.push((ctx.now(), frame));
    }
}

#[test]
fn figure1_walk_records_one_queue_sample_per_hop() {
    let params = LinearChainParams {
        n_switches: 3,
        // Slow links so the back-to-back data frames actually queue in
        // front of the probe at the first switch.
        link_kbps: 10_000,
        host_nic_kbps: 100_000,
        ..Default::default()
    };
    let (mut sim, chain) = linear_chain(
        params,
        Box::new(OneProbe {
            dst: EthernetAddress::from_host_id(1),
        }),
        Box::new(Capture::default()),
    );
    sim.run(RunLimit::Until(time::secs(1)));

    let capture = sim.host_app::<Capture>(chain.right);
    let tpp_frames: Vec<&Vec<u8>> = capture
        .frames
        .iter()
        .map(|(_, f)| f)
        .filter(|f| Frame::new_checked(&f[..]).unwrap().is_tpp())
        .collect();
    assert_eq!(tpp_frames.len(), 1, "exactly one probe arrives");

    let parsed = Frame::new_checked(&tpp_frames[0][..]).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();

    // The Figure 1 invariants:
    assert_eq!(tpp.hop(), 3, "executed on all three switches");
    assert_eq!(tpp.sp(), 0xc, "SP walked 0x0 -> 0x4 -> 0x8 -> 0xc");
    assert_eq!(tpp.mem_len(), 12, "memory was preallocated, never grown");

    let sample = split_hops(&tpp, 1).unwrap();
    assert_eq!(sample.hop_count, 3);
    // The probe was sent right behind two 1014-byte data frames through
    // a slow first link: hop 0 must have seen queued bytes, and the
    // recorded value is an exact byte count, not an average.
    assert!(
        sample.hops[0].words[0] >= 1014,
        "hop 0 should have observed the data backlog, got {:?}",
        sample.column(0)
    );
    // Downstream hops drain at the same rate they fill (same capacity),
    // so the probe — which waited its turn at hop 0 — finds little or
    // nothing queued later.
    assert!(sample.hops[2].words[0] < 3 * 1014);

    // Golden snapshot: the full hop walk, pinned exactly. The range
    // assertions above catch gross breakage; this catches any silent
    // drift in the simulator's timing or the ASIC's queue accounting.
    let arrival_ns = capture
        .frames
        .iter()
        .find(|(_, f)| Frame::new_checked(&f[..]).unwrap().is_tpp())
        .map(|(t, _)| *t)
        .unwrap();
    let per_hop: Vec<String> = sample
        .hops
        .iter()
        .map(|h| {
            let words: Vec<String> = h.words.iter().map(|w| w.to_string()).collect();
            format!("    [{}]", words.join(", "))
        })
        .collect();
    let snapshot = format!(
        "{{\n  \"arrival_ns\": {arrival_ns},\n  \"hop\": {},\n  \"sp\": {},\n  \"hops\": [\n{}\n  ]\n}}\n",
        tpp.hop(),
        tpp.sp(),
        per_hop.join(",\n")
    );
    assert_matches_golden(
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig1_hops.json"),
        &snapshot,
    );
}

#[test]
fn hop_addressed_variant_records_identically() {
    // The same telemetry in hop-addressing mode: LOAD into hop slots.
    struct HopProbe {
        dst: EthernetAddress,
    }
    impl HostApp for HopProbe {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let program = assemble("LOAD [Switch:SwitchID], [Packet:Hop[0]]").unwrap();
            let probe = tpp::host::ProbeBuilder::hop(&program, 3);
            ctx.send(probe.build_frame(self.dst, ctx.mac()));
        }
    }
    let (mut sim, chain) = linear_chain(
        LinearChainParams::default(),
        Box::new(HopProbe {
            dst: EthernetAddress::from_host_id(1),
        }),
        Box::new(Capture::default()),
    );
    sim.run(RunLimit::Until(time::millis(5)));
    let capture = sim.host_app::<Capture>(chain.right);
    assert_eq!(capture.frames.len(), 1);
    let parsed = Frame::new_checked(&capture.frames[0].1[..]).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
    assert_eq!(tpp.memory_words(), vec![1, 2, 3], "switch ids by hop slot");
}
