//! Golden-pinned dashboard frames + frame purity properties.
//!
//! The renderer is a pure function of `(snapshot, state, size)`, and
//! every feed is seeded and wall-clock-free, so whole 120×40 frames can
//! be pinned byte-for-byte: one per tab over the microburst scenario,
//! plus the transport tab over the lossy closed-loop fct feed and the
//! paths tab over the bonded-diamond feed, plus the profile-diff view.
//! A shard matrix proves the frames are identical at 1/2/4 shards, and
//! a property test drives random key scripts through [`DashState`] to
//! check that no input sequence can bend a frame out of shape.
//! Regenerate goldens with `UPDATE_GOLDEN=1`.

use std::path::Path;
use std::sync::OnceLock;

use proptest::prelude::*;
use tpp_bench::dash_scenario::DashFeed;
use tpp_bench::testgen::assert_matches_golden;
use tpp_netsim::{time, SimConfig};
use tpp_obs::render::Tab;
use tpp_obs::{parse_series_jsonl, render_dashboard, render_profile_diff, DashState};
use tpp_obs::{series_jsonl, FleetSnapshot};

const FRAME_W: usize = 120;
const FRAME_H: usize = 40;

fn assert_frame_shape(frame: &str, w: usize, h: usize) {
    assert_eq!(frame.lines().count(), h, "frame height");
    for line in frame.lines() {
        assert_eq!(line.chars().count(), w, "frame width on {line:?}");
    }
    assert!(frame.ends_with('\n'));
}

#[test]
fn obs_dashboard_tabs_match_goldens() {
    let mut feed = DashFeed::obs();
    feed.run_to_end();
    let mut state = DashState::default();
    let snap = feed.snapshot(state.window_ns());
    for tab in Tab::ALL {
        state.tab = tab;
        let frame = render_dashboard(&snap, &state, FRAME_W, FRAME_H);
        assert_frame_shape(&frame, FRAME_W, FRAME_H);
        let path = format!("tests/golden/dash_obs_{}.txt", tab.title());
        assert_matches_golden(Path::new(&path), &frame);
    }
}

#[test]
fn fct_and_bond_dashboards_match_goldens() {
    let mut fct = DashFeed::fct(SimConfig::new().shards(1));
    fct.run_to_end();
    let mut state = DashState {
        tab: Tab::Transport,
        ..DashState::default()
    };
    let frame = render_dashboard(&fct.snapshot(state.window_ns()), &state, FRAME_W, FRAME_H);
    assert_frame_shape(&frame, FRAME_W, FRAME_H);
    assert_matches_golden(Path::new("tests/golden/dash_fct_transport.txt"), &frame);

    let mut bond = DashFeed::bond(SimConfig::new().shards(1));
    bond.run_to_end();
    state.tab = Tab::Paths;
    let frame = render_dashboard(&bond.snapshot(state.window_ns()), &state, FRAME_W, FRAME_H);
    assert_frame_shape(&frame, FRAME_W, FRAME_H);
    assert_matches_golden(Path::new("tests/golden/dash_bond_paths.txt"), &frame);
}

#[test]
fn profile_diff_matches_golden() {
    // Mid-burst vs drained: the same fleet recorded at two instants is
    // the diff mode's bread and butter (same shape as caches on/off).
    let mut feed = DashFeed::obs();
    feed.step_to(600_000);
    let mid = series_jsonl(feed.sim().series().expect("series on"));
    feed.run_to_end();
    let done = series_jsonl(feed.sim().series().expect("series on"));
    let frame = render_profile_diff(
        &parse_series_jsonl(&mid),
        &parse_series_jsonl(&done),
        "mid-burst",
        "drained",
        FRAME_W,
        FRAME_H,
    );
    assert_frame_shape(&frame, FRAME_W, FRAME_H);
    assert_matches_golden(Path::new("tests/golden/dash_diff.txt"), &frame);
}

/// The acceptance gate: the fct feed — transport, ECMP, profiling and
/// series all live — must render byte-identical frames at 1, 2 and 4
/// shards, on every tab.
#[test]
fn frames_identical_across_1_2_4_shards() {
    let mut baseline: Option<Vec<String>> = None;
    for shards in [1usize, 2, 4] {
        let mut feed = DashFeed::fct(SimConfig::new().shards(shards));
        feed.run_to_end();
        let mut state = DashState::default();
        let snap = feed.snapshot(state.window_ns());
        let frames: Vec<String> = Tab::ALL
            .iter()
            .map(|&tab| {
                state.tab = tab;
                render_dashboard(&snap, &state, FRAME_W, FRAME_H)
            })
            .collect();
        match &baseline {
            None => baseline = Some(frames),
            Some(base) => {
                for (tab, (a, b)) in Tab::ALL.iter().zip(base.iter().zip(frames.iter())) {
                    assert_eq!(
                        a,
                        b,
                        "tab {} diverged between 1 and {shards} shards",
                        tab.title()
                    );
                }
            }
        }
    }
}

/// One shared snapshot for the key-script property (building a feed per
/// proptest case would dominate the runtime; rendering is the subject
/// under test, not the simulation).
fn shared_snapshot() -> &'static FleetSnapshot {
    static SNAP: OnceLock<FleetSnapshot> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut feed = DashFeed::obs();
        feed.run_to_end();
        feed.snapshot(time::micros(100))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No key script at any frame size can produce a malformed frame,
    /// and replaying the same script yields byte-identical output.
    #[test]
    fn key_scripts_never_bend_frames(
        keys in proptest::collection::vec(0u8..128, 0..24),
        w in 60usize..140,
        h in 12usize..48,
    ) {
        let snap = shared_snapshot();
        let run = |state: &mut DashState| -> Vec<String> {
            keys.iter()
                .map(|&k| {
                    state.apply_key(k as char);
                    render_dashboard(snap, state, w, h)
                })
                .collect()
        };
        let frames_a = run(&mut DashState::default());
        let frames_b = run(&mut DashState::default());
        prop_assert_eq!(&frames_a, &frames_b, "replay must be identical");
        for frame in &frames_a {
            prop_assert_eq!(frame.lines().count(), h);
            for line in frame.lines() {
                prop_assert_eq!(line.chars().count(), w);
            }
        }
    }
}
