//! Chaos suite: seeded fault injection against the end-host reliability
//! layer.
//!
//! The paper's architecture deliberately gives TPPs *no* network-level
//! reliability — "TPPs are forwarded just like other packets" — and
//! pushes loss, duplication, reordering, and switch failure onto the
//! end-host task. These tests schedule exactly that misbehavior with a
//! [`FaultPlan`] and assert the tasks survive:
//!
//! 1. RCP\* re-converges to the fair rate after the bottleneck link
//!    flaps (probes black-holed, then restored).
//! 2. The CSTORE shared counter stays exactly-once under combined loss,
//!    reordering, and duplication windows.
//! 3. A switch reboot mid-run wipes SRAM and bumps `Switch:BootEpoch`;
//!    hosts notice the epoch change and re-seed the rate register.
//! 4. The same plan (same seed, same schedule) replays to a
//!    byte-identical trace event sequence; a plan-free run injects
//!    nothing.

use tpp::apps::cstore::{CounterTask, CounterWriteMode};
use tpp::apps::rcpstar::{init_rate_registers, RcpStarConfig, RcpStarSender, RCP_RATE_REGISTER};
use tpp::host::EchoReceiver;
use tpp::netsim::RunLimit;
use tpp::netsim::{
    dumbbell, fat_tree_with, time, ChannelProfile, Dumbbell, DumbbellParams, Endpoint,
    FatTreeParams, FaultCounters, FaultPlan, HostApp, HostId, SimConfig, Simulator,
};
use tpp::telemetry::TraceEventKind;
use tpp::wire::EthernetAddress;
use tpp_bench::traffic::{
    generate_schedule, ClosedFlowGenApp, ClosedLoopConfig, FlowSizeDist, TrafficConfig,
};

const C_BPS: f64 = 10e6; // dumbbell default bottleneck

fn rcp_dumbbell(n_flows: usize) -> (Simulator, Dumbbell) {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n_flows)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(RcpStarSender::new(dst, RcpStarConfig::default())) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: n_flows,
            ..Default::default()
        },
        apps,
    );
    for sw in [bell.left, bell.right] {
        init_rate_registers(sim.switch_mut(sw));
    }
    (sim, bell)
}

fn mean_rate_in_window(trace: &[(u64, u64)], lo_ns: u64, hi_ns: u64) -> f64 {
    let w: Vec<u64> = trace
        .iter()
        .filter(|(t, _)| *t >= lo_ns && *t < hi_ns)
        .map(|(_, r)| *r)
        .collect();
    assert!(!w.is_empty(), "no rate samples in window");
    w.iter().sum::<u64>() as f64 / w.len() as f64
}

/// Scenario 1: the bottleneck link flaps for 300 ms (taking probes,
/// echoes, and data with it) and a corruption window garbles TPP bits.
/// The flow must lose probes, keep running, and re-converge to within
/// 10% of the fair rate.
#[test]
fn rcp_reconverges_after_bottleneck_flap() {
    let (mut sim, bell) = rcp_dumbbell(1);
    let bottleneck = Endpoint::switch(bell.left, bell.bottleneck_port);
    let mut plan = FaultPlan::new(0xc4a0_5001);
    plan.corrupt_window(time::secs(1), time::millis(1500), bottleneck, 300)
        .link_flap(time::secs(2), time::millis(2300), bottleneck);
    sim.install_faults(&plan);
    sim.run(RunLimit::Until(time::secs(6)));

    let counters = sim.fault_counters();
    // A flap takes both directions of the full-duplex link down.
    assert_eq!(counters.link_downs, 2);
    assert!(counters.link_down_drops > 0, "the flap black-holed frames");
    assert!(counters.corrupted > 0, "the corruption window fired");

    let sender = sim.host_app::<RcpStarSender>(bell.senders[0]);
    assert!(
        sender.probe_stats().timeouts > 0,
        "probes died during the flap and were detected"
    );
    let late = mean_rate_in_window(&sender.rate_trace, time::millis(4500), time::secs(6));
    let r_over_c = late / C_BPS;
    assert!(
        (r_over_c - 1.0).abs() < 0.1,
        "flow should re-converge to the fair rate, got R/C = {r_over_c}"
    );
}

/// Scenario 2: three linearizable writers increment a shared counter
/// while their access links lose, reorder, and duplicate frames in both
/// directions. Every increment must apply exactly once.
#[test]
fn cstore_counter_exact_under_loss_reorder_duplication() {
    const GOAL: u32 = 15;
    const WORD: usize = 4;
    let n = 3;
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n)
        .map(|i| {
            let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
            (
                Box::new(CounterTask::new(
                    dst,
                    1, // dumbbell left switch
                    WORD,
                    GOAL,
                    CounterWriteMode::Linearizable,
                )) as Box<dyn HostApp>,
                Box::new(EchoReceiver::default()) as Box<dyn HostApp>,
            )
        })
        .collect();
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: n,
            bottleneck_kbps: 100_000,
            ..Default::default()
        },
        apps,
    );

    // Persistent 8% loss on every host access link: probes die on the
    // way out, echoes die on the way back.
    let mut plan = FaultPlan::new(0xc4a0_5002);
    for h in bell.senders.iter().chain(&bell.receivers) {
        let ep = Endpoint::host(*h);
        assert_eq!(sim.set_link_loss(ep, 80), 80);
        // One combined window per endpoint: a later SetChannel replaces
        // the profile, so duplication + reordering must ride together.
        plan.channel_window(
            time::micros(1),
            time::secs(10),
            ep,
            ChannelProfile {
                duplicate_permille: 200,
                reorder_permille: 300,
                reorder_spread_ns: time::millis(2),
                ..ChannelProfile::default()
            },
        );
    }
    sim.install_faults(&plan);
    sim.run(RunLimit::Until(time::secs(30)));

    let counters = sim.fault_counters();
    assert!(counters.duplicated > 0, "duplication window fired");
    assert!(counters.reordered > 0, "reorder window fired");

    let mut retries = 0;
    let mut dedup = 0;
    for s in &bell.senders {
        let task = sim.host_app::<CounterTask>(*s);
        assert!(task.done(), "writer did not finish under chaos");
        assert_eq!(task.completed, GOAL);
        retries += task.probe_stats().retries;
        dedup += task.probe_stats().duplicates;
    }
    assert!(retries > 0, "loss forced retries");
    assert!(dedup > 0, "duplicated echoes were suppressed");

    let value = sim.switch(bell.left).global_sram().word(WORD).unwrap();
    assert_eq!(
        value,
        n as u32 * GOAL,
        "increments must be exactly-once under loss+reorder+duplication"
    );
}

/// Scenario 3: the bottleneck switch reboots mid-run. SRAM (including
/// the RCP rate register) is wiped and `Switch:BootEpoch` bumps; the
/// host detects the epoch change, re-seeds its cached view, and the
/// flow re-converges. Nothing panics.
#[test]
fn switch_reboot_detected_and_reseeded() {
    let (mut sim, bell) = rcp_dumbbell(1);
    let sink = sim.observe().trace_all(1 << 20);
    let mut plan = FaultPlan::new(0xc4a0_5003);
    plan.switch_reboot(time::secs(2), bell.left);
    sim.install_faults(&plan);
    sim.run(RunLimit::Until(time::secs(6)));

    assert_eq!(sim.fault_counters().reboots, 1);
    assert_eq!(sim.boot_epoch(bell.left), 1, "epoch bumped by the reboot");
    assert_eq!(
        sim.boot_epoch(bell.right),
        0,
        "only the left switch rebooted"
    );

    let reboots: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, TraceEventKind::SwitchReboot { epoch: 1 }))
        .collect();
    assert_eq!(reboots.len(), 1, "reboot traced exactly once");

    let sender = sim.host_app::<RcpStarSender>(bell.senders[0]);
    assert!(
        sender.probe_stats().epoch_mismatches >= 1,
        "host observed the epoch change"
    );
    // The wiped rate register was re-seeded by the host's control loop.
    let reg = sim
        .switch(bell.left)
        .link_sram(bell.bottleneck_port)
        .and_then(|s| s.word(RCP_RATE_REGISTER.word_index()))
        .unwrap();
    assert!(reg > 0, "rate register re-seeded after the wipe");
    let late = mean_rate_in_window(&sender.rate_trace, time::millis(4500), time::secs(6));
    let r_over_c = late / C_BPS;
    assert!(
        (r_over_c - 1.0).abs() < 0.1,
        "flow should re-converge after the reboot, got R/C = {r_over_c}"
    );
}

fn chaotic_run(seed: u64) -> (Vec<String>, FaultCounters) {
    let (mut sim, bell) = rcp_dumbbell(2);
    let sink = sim.observe().trace_all(1 << 20);
    let host0 = Endpoint::host(bell.senders[0]);
    let bottleneck = Endpoint::switch(bell.left, bell.bottleneck_port);
    let mut plan = FaultPlan::new(seed);
    plan.duplicate_window(time::millis(200), time::secs(2), host0, 300)
        .reorder_window(
            time::millis(200),
            time::secs(2),
            bottleneck,
            300,
            time::millis(1),
        )
        .corrupt_window(time::secs(1), time::secs(2), bottleneck, 200)
        .link_flap(time::millis(2500), time::millis(2700), host0)
        .switch_reboot(time::secs(3), bell.right);
    sim.install_faults(&plan);
    sim.run(RunLimit::Until(time::secs(4)));
    let rows = sink.events().iter().map(|e| e.to_csv_row()).collect();
    (rows, sim.fault_counters())
}

/// Scenario 4a: identical plans replay identically — same seed, same
/// schedule, byte-identical trace event sequence.
#[test]
fn identical_fault_plans_replay_byte_identically() {
    let (rows_a, counters_a) = chaotic_run(0xdead_beef);
    let (rows_b, counters_b) = chaotic_run(0xdead_beef);
    assert!(!rows_a.is_empty());
    assert_eq!(counters_a, counters_b);
    assert_eq!(rows_a, rows_b, "same seed must replay identically");

    // A different seed rolls different per-frame dice.
    let (_, counters_c) = chaotic_run(0x0bad_cafe);
    assert_ne!(
        (
            counters_a.duplicated,
            counters_a.corrupted,
            counters_a.reordered
        ),
        (
            counters_c.duplicated,
            counters_c.corrupted,
            counters_c.reordered
        ),
        "different seed, different chaos"
    );
}

/// One closed-loop fat-tree run under combined chaos: persistent loss on
/// the edge uplinks, an uplink flap while flows are in flight, and an
/// aggregation-switch reboot. Returns every flow's (key, FCT), the
/// recovery counters, and the fault counters.
fn closed_loop_chaos_run(seed: u64) -> (Vec<(u64, u64)>, [u64; 5], FaultCounters) {
    let params = FatTreeParams::default(); // k=4: 16 hosts, 20 switches
    let half = params.k / 2;
    let hpe = params.effective_hosts_per_edge();
    let n_hosts = params.n_hosts();
    let macs: Vec<EthernetAddress> = (0..n_hosts)
        .map(|i| EthernetAddress::from_host_id(i as u32))
        .collect();
    let traffic = TrafficConfig {
        seed,
        flows_per_host: 12,
        mean_gap_ns: 400_000,
        ..Default::default()
    };
    let mut flows_total = 0u64;
    let mut last_start = 0u64;
    let apps: Vec<Box<dyn HostApp>> = (0..n_hosts)
        .map(|i| {
            let dist = if i % 2 == 0 {
                FlowSizeDist::WebSearch
            } else {
                FlowSizeDist::DataMining
            };
            let sched = generate_schedule(&traffic, i as u32, &macs, dist);
            flows_total += sched.len() as u64;
            if let Some(f) = sched.last() {
                last_start = last_start.max(f.start_ns);
            }
            Box::new(ClosedFlowGenApp::new(sched, ClosedLoopConfig::default())) as _
        })
        .collect();

    let (mut sim, tree) = fat_tree_with(
        SimConfig::new()
            .ecmp(true)
            .tick_interval_ns(time::millis(1)),
        params,
        apps,
    );
    for sw in tree
        .edges
        .iter()
        .chain(tree.aggs.iter())
        .flatten()
        .chain(tree.cores.iter())
    {
        init_rate_registers(sim.switch_mut(*sw));
    }
    for edge in tree.edges.iter().flatten() {
        for a in 0..half {
            sim.set_link_loss(Endpoint::switch(*edge, (hpe + a) as u16), 10);
        }
    }

    // An uplink flaps while flows are in flight (ECMP routes around it)
    // and an aggregation switch reboots, wiping its SRAM and bumping
    // its boot epoch mid-conversation.
    let mut plan = FaultPlan::new(seed ^ 0xc4a0_5005);
    plan.link_flap(
        time::millis(1),
        time::millis(3),
        Endpoint::switch(tree.edges[0][0], hpe as u16),
    )
    .switch_reboot(time::millis(2), tree.aggs[0][0]);
    sim.install_faults(&plan);
    sim.run(RunLimit::Until(last_start + time::millis(50)));

    let mut fcts = Vec::with_capacity(flows_total as usize);
    let mut counters = [0u64; 5];
    for i in 0..n_hosts {
        let app = sim.host_app::<ClosedFlowGenApp>(HostId(i));
        fcts.extend(app.completions.iter().map(|c| (c.key, c.fct_ns)));
        let stats = app.stats_snapshot();
        counters[0] += stats.flows_completed;
        counters[1] += stats.retransmits;
        counters[2] += stats.flows_given_up;
        counters[3] += app.unfinished() as u64;
        counters[4] += stats.epoch_resets;
    }
    fcts.sort_unstable();
    assert_eq!(counters[0], flows_total, "every flow completes under chaos");
    assert_eq!(counters[2], 0, "no flow exhausts its retry budget");
    assert_eq!(counters[3], 0, "no flow left dangling at drain");
    (fcts, counters, sim.fault_counters())
}

/// Scenario 5: closed-loop transport flows all complete across an
/// uplink flap plus an aggregation-switch reboot under persistent edge
/// loss — recovery is retransmit-driven and epoch-aware — and the whole
/// run replays byte-identically from the same seed.
#[test]
fn closed_loop_flows_survive_flap_and_reboot_and_replay_identically() {
    let (fcts_a, counters_a, faults_a) = closed_loop_chaos_run(0xc4a0_5006);
    assert!(counters_a[1] > 0, "edge loss forced retransmits");
    assert!(counters_a[4] > 0, "the reboot's epoch bump reached senders");
    assert_eq!(faults_a.link_downs, 2, "one full-duplex flap");
    assert_eq!(faults_a.reboots, 1);

    let (fcts_b, counters_b, faults_b) = closed_loop_chaos_run(0xc4a0_5006);
    assert_eq!(fcts_a, fcts_b, "per-flow FCTs replay byte-identically");
    assert_eq!(counters_a, counters_b);
    assert_eq!(faults_a, faults_b);
}

/// Scenario 4b: without an installed plan nothing is injected — the
/// fault layer is invisible to fault-free runs.
#[test]
fn plan_free_runs_inject_nothing() {
    let (mut sim, _bell) = rcp_dumbbell(1);
    let sink = sim.observe().trace_all(1 << 20);
    sim.run(RunLimit::Until(time::secs(1)));
    assert_eq!(sim.fault_counters(), FaultCounters::default());
    assert!(
        sink.events().iter().all(|e| !matches!(
            e.kind,
            TraceEventKind::LinkDown { .. }
                | TraceEventKind::LinkUp { .. }
                | TraceEventKind::SwitchReboot { .. }
                | TraceEventKind::CorruptionInjected { .. }
        )),
        "no fault events without a plan"
    );
}
