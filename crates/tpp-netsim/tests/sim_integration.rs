//! Integration tests: frames and TPPs traversing real multi-hop
//! topologies, timing, and determinism.
#![allow(clippy::field_reassign_with_default)]

use tpp_asic::PortId;
use tpp_isa::assemble;
use tpp_netsim::RunLimit;
use tpp_netsim::{
    dumbbell, leaf_spine, linear_chain, time, DumbbellParams, HostApp, HostCtx, LeafSpineParams,
    LinearChainParams,
};
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket};
use tpp_wire::EthernetAddress;

/// Sends one TPP to a destination MAC at t = start_ns.
struct TppSender {
    dst: EthernetAddress,
    program: String,
    mem_words: usize,
    start_ns: u64,
}

impl HostApp for TppSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.start_ns, 0);
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        let program = assemble(&self.program).unwrap();
        let payload = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_words(self.mem_words)
            .build();
        ctx.send(build_frame(self.dst, ctx.mac(), EtherType::TPP, &payload));
    }
}

/// Records every TPP it receives: (arrival time, stack words, hop count).
#[derive(Default)]
struct TppCollector {
    received: Vec<(u64, Vec<u32>, u8)>,
}

impl HostApp for TppCollector {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let parsed = Frame::new_checked(&frame[..]).unwrap();
        if !parsed.is_tpp() {
            return;
        }
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        self.received
            .push((ctx.now(), tpp.stack_words(), tpp.hop()));
    }
}

/// No-op app for hosts that only exist as traffic sinks.
struct Idle;
impl HostApp for Idle {}

#[test]
fn figure1_queue_walk_across_chain() {
    // Figure 1: a PUSH [Queue:QueueSize] TPP walks a 3-switch path and
    // returns one queue sample per hop; on an idle network all three
    // samples are zero and the hop count is 3.
    let dst = EthernetAddress::from_host_id(1); // right host is id 1
    let (mut sim, chain) = linear_chain(
        LinearChainParams::default(),
        Box::new(TppSender {
            dst,
            program: "PUSH [Queue:QueueSize]".into(),
            mem_words: 3,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
    );
    sim.run(RunLimit::Until(time::millis(1)));
    let collector = sim.host_app::<TppCollector>(chain.right);
    assert_eq!(collector.received.len(), 1);
    let (_, words, hop) = &collector.received[0];
    assert_eq!(*hop, 3, "executed once per switch");
    assert_eq!(words, &vec![0, 0, 0], "idle network, empty queues");
}

#[test]
fn switch_ids_recorded_in_path_order() {
    let dst = EthernetAddress::from_host_id(1);
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: 5,
            ..Default::default()
        },
        Box::new(TppSender {
            dst,
            program: "PUSH [Switch:SwitchID]".into(),
            mem_words: 5,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
    );
    sim.run(RunLimit::Until(time::millis(1)));
    let collector = sim.host_app::<TppCollector>(chain.right);
    assert_eq!(collector.received[0].1, vec![1, 2, 3, 4, 5]);
}

#[test]
fn arrival_time_accounts_for_serialization_and_propagation() {
    // One 10 Mb/s chain of 1 switch: frame of known size, so arrival time
    // is exactly 2 serializations (host NIC + switch egress) + 2
    // propagation delays (no queueing).
    let params = LinearChainParams {
        n_switches: 1,
        link_kbps: 10_000,
        host_nic_kbps: 10_000,
        delay_ns: time::micros(10),
        ..Default::default()
    };
    let dst = EthernetAddress::from_host_id(1);
    let (mut sim, chain) = linear_chain(
        params,
        Box::new(TppSender {
            dst,
            program: "PUSH [Queue:QueueSize]".into(),
            mem_words: 1,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
    );
    sim.run(RunLimit::Until(time::millis(10)));
    let collector = sim.host_app::<TppCollector>(chain.right);
    let (arrival, _, _) = collector.received[0];
    // Frame: 14 (eth) + 16 (tpp hdr) + 4 (1 insn) + 4 (1 word) = 38 bytes.
    let ser = time::tx_time_ns(38, 10_000);
    assert_eq!(arrival, 2 * ser + 2 * time::micros(10));
}

#[test]
fn queue_builds_at_dumbbell_bottleneck_and_tpp_sees_it() {
    // Fill the bottleneck with bulk traffic from pair 0, then probe with
    // a TPP from pair 1: the probe's queue sample must be nonzero.
    struct Bulk {
        dst: EthernetAddress,
    }
    impl HostApp for Bulk {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            // 20 frames of 1 KB arrive at the edge much faster than the
            // 10 Mb/s bottleneck drains them.
            for _ in 0..20 {
                ctx.send(build_frame(
                    self.dst,
                    ctx.mac(),
                    EtherType(0x0800),
                    &[0u8; 1000],
                ));
            }
        }
    }

    // Receiver MACs: hosts are added sender,receiver per pair, so
    // receiver of pair i has host id 2i + 1.
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![
        (
            Box::new(Bulk {
                dst: EthernetAddress::from_host_id(1),
            }),
            Box::new(Idle),
        ),
        (
            Box::new(TppSender {
                dst: EthernetAddress::from_host_id(3),
                program: "PUSH [Queue:QueueSize]".into(),
                mem_words: 2,
                start_ns: time::millis(2),
            }),
            Box::new(TppCollector::default()),
        ),
    ];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            ..Default::default()
        },
        apps,
    );
    sim.run(RunLimit::Until(time::millis(4)));
    // Ground truth: the bottleneck queue really is backlogged.
    assert!(
        sim.switch(bell.left)
            .queue_len_bytes(bell.bottleneck_port, 0)
            > 0
            || sim
                .switch(bell.left)
                .queue_stats(bell.bottleneck_port, 0)
                .bytes_enqueued
                > 0
    );
    sim.run(RunLimit::Until(time::millis(50)));
    let collector = sim.host_app::<TppCollector>(bell.receivers[1]);
    assert_eq!(collector.received.len(), 1);
    let (_, words, _) = &collector.received[0];
    // Hop 1 = left switch (bottleneck egress): nonzero queue sample.
    assert!(
        words[0] > 0,
        "TPP should have seen bottleneck backlog, got {words:?}"
    );
}

#[test]
fn leaf_spine_cross_rack_path_is_three_switches() {
    let params = LeafSpineParams {
        n_leaves: 2,
        n_spines: 2,
        hosts_per_leaf: 2,
        ..Default::default()
    };
    // Hosts: leaf0 gets ids 0,1; leaf1 gets ids 2,3. Send 0 -> 3.
    let apps: Vec<Box<dyn HostApp>> = vec![
        Box::new(TppSender {
            dst: EthernetAddress::from_host_id(3),
            program: "PUSH [Switch:SwitchID]".into(),
            mem_words: 4,
            start_ns: 0,
        }),
        Box::new(Idle),
        Box::new(Idle),
        Box::new(TppCollector::default()),
    ];
    let (mut sim, fabric) = leaf_spine(params, apps);
    sim.run(RunLimit::Until(time::millis(1)));
    let collector = sim.host_app::<TppCollector>(fabric.hosts[1][1]);
    assert_eq!(collector.received.len(), 1);
    let (_, words, hop) = &collector.received[0];
    assert_eq!(*hop, 3, "leaf -> spine -> leaf");
    assert_eq!(words[0], 0x10, "source leaf");
    assert!(words[1] == 0x20 || words[1] == 0x21, "a spine");
    assert_eq!(words[2], 0x11, "destination leaf");
}

#[test]
fn intra_rack_path_stays_on_one_switch() {
    let params = LeafSpineParams {
        n_leaves: 2,
        n_spines: 1,
        hosts_per_leaf: 2,
        ..Default::default()
    };
    let apps: Vec<Box<dyn HostApp>> = vec![
        Box::new(TppSender {
            dst: EthernetAddress::from_host_id(1),
            program: "PUSH [Switch:SwitchID]".into(),
            mem_words: 4,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
        Box::new(Idle),
        Box::new(Idle),
    ];
    let (mut sim, fabric) = leaf_spine(params, apps);
    sim.run(RunLimit::Until(time::millis(1)));
    let collector = sim.host_app::<TppCollector>(fabric.hosts[0][1]);
    assert_eq!(collector.received[0].1, vec![0x10]);
}

#[test]
fn simulation_is_deterministic() {
    // Two identical runs produce identical telemetry, byte counters and
    // event timings.
    type RunResult = (Vec<(u64, Vec<u32>, u8)>, u64, u64);
    fn run() -> RunResult {
        let dst = EthernetAddress::from_host_id(1);
        let (mut sim, chain) = linear_chain(
            LinearChainParams {
                n_switches: 4,
                ..Default::default()
            },
            Box::new(TppSender {
                dst,
                program: "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]".into(),
                mem_words: 8,
                start_ns: 123,
            }),
            Box::new(TppCollector::default()),
        );
        sim.run(RunLimit::Until(time::millis(5)));
        let received = sim.host_app::<TppCollector>(chain.right).received.clone();
        let tx = sim.switch(chain.switches[0]).port_stats(1).tx_bytes;
        let processed = sim.switch(chain.switches[3]).regs().packets_processed;
        (received, tx, processed)
    }
    assert_eq!(run(), run());
}

#[test]
fn timers_fire_in_order_and_at_the_right_time() {
    #[derive(Default)]
    struct TimerApp {
        fired: Vec<(u64, u64)>,
    }
    impl HostApp for TimerApp {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.set_timer(300, 3);
            ctx.set_timer(100, 1);
            ctx.set_timer(200, 2);
        }
        fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
            self.fired.push((ctx.now(), token));
        }
    }
    let (mut sim, chain) = linear_chain(
        LinearChainParams::default(),
        Box::new(TimerApp::default()),
        Box::new(Idle),
    );
    sim.run(RunLimit::Until(time::millis(1)));
    let app = sim.host_app::<TimerApp>(chain.left);
    assert_eq!(app.fired, vec![(100, 1), (200, 2), (300, 3)]);
}

#[test]
fn utilization_register_reflects_offered_load() {
    // Saturate the bottleneck for 200 ms, then read RX-Utilization from
    // ground truth: it should be near 1000 per-mille.
    struct Flood {
        dst: EthernetAddress,
    }
    impl HostApp for Flood {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.set_timer(0, 0);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
            ctx.send(build_frame(
                self.dst,
                ctx.mac(),
                EtherType(0x0800),
                &[0u8; 1000],
            ));
            ctx.set_timer(time::micros(100), 0); // ~80 Mb/s offered
        }
    }
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![(
        Box::new(Flood {
            dst: EthernetAddress::from_host_id(1),
        }),
        Box::new(Idle),
    )];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 1,
            ..Default::default()
        },
        apps,
    );
    sim.run(RunLimit::Until(time::millis(200)));
    let util = sim
        .switch(bell.left)
        .port_stats(bell.bottleneck_port)
        .rx_utilization_permille;
    // Offered load far exceeds capacity; the register saturates >= 1000.
    assert!(util >= 900, "expected near-saturation, got {util}");
}

#[test]
fn tpp_frames_share_fate_with_congestion() {
    // TPPs "are forwarded just like other packets; TPPs are therefore
    // subject to congestion" (§3.3): with a tiny bottleneck queue and a
    // flood, some probes must be dropped.
    struct FloodAndProbe {
        dst: EthernetAddress,
        sent_probes: u32,
    }
    impl HostApp for FloodAndProbe {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.set_timer(0, 0);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
            ctx.send(build_frame(
                self.dst,
                ctx.mac(),
                EtherType(0x0800),
                &[0u8; 1200],
            ));
            let program = assemble("PUSH [Queue:QueueSize]").unwrap();
            let payload = TppBuilder::new(AddressingMode::Stack)
                .instructions(&program.encode_words().unwrap())
                .memory_words(2)
                .build();
            ctx.send(build_frame(self.dst, ctx.mac(), EtherType::TPP, &payload));
            self.sent_probes += 1;
            ctx.set_timer(time::micros(200), 0);
        }
    }
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![(
        Box::new(FloodAndProbe {
            dst: EthernetAddress::from_host_id(1),
            sent_probes: 0,
        }),
        Box::new(TppCollector::default()),
    )];
    let (mut sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 1,
            queue_limit_bytes: 4_000,
            ..Default::default()
        },
        apps,
    );
    sim.run(RunLimit::Until(time::millis(300)));
    let sent = sim.host_app::<FloodAndProbe>(bell.senders[0]).sent_probes;
    let got = sim
        .host_app::<TppCollector>(bell.receivers[0])
        .received
        .len() as u32;
    assert!(got < sent, "congestion must cost some TPPs ({got}/{sent})");
    assert!(got > 0, "but not all of them");
    let drops = sim
        .switch(bell.left)
        .queue_stats(bell.bottleneck_port, 0)
        .packets_dropped;
    assert!(drops > 0);
}

/// PortId sanity: topology helpers hand out ports that exist.
#[test]
fn dumbbell_bottleneck_port_is_last() {
    let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = vec![
        (Box::new(Idle), Box::new(Idle)),
        (Box::new(Idle), Box::new(Idle)),
    ];
    let (sim, bell) = dumbbell(
        DumbbellParams {
            n_pairs: 2,
            ..Default::default()
        },
        apps,
    );
    assert_eq!(bell.bottleneck_port, 2 as PortId);
    assert_eq!(sim.switch(bell.left).num_ports(), 3);
    assert_eq!(
        sim.switch(bell.left)
            .port_capacity_kbps(bell.bottleneck_port),
        10_000
    );
}

#[test]
fn taps_capture_both_directions_with_hop_counts() {
    use tpp_netsim::{Endpoint, TapDir};
    let dst = EthernetAddress::from_host_id(1);
    let (mut sim, chain) = linear_chain(
        LinearChainParams {
            n_switches: 2,
            ..Default::default()
        },
        Box::new(TppSender {
            dst,
            program: "PUSH [Switch:SwitchID]".into(),
            mem_words: 2,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
    );
    // Tap the inter-switch link on switch 0's side.
    sim.observe().tap(Endpoint::switch(chain.switches[0], 1));
    sim.run(RunLimit::Until(time::millis(1)));
    let records = sim.tap_records(Endpoint::switch(chain.switches[0], 1));
    // One TPP transits the tap exactly once (Tx from switch 0).
    assert_eq!(records.len(), 1);
    let r = &records[0];
    assert_eq!(r.dir, TapDir::Tx);
    assert_eq!(r.ethertype, tpp_wire::tpp::ETHERTYPE_TPP);
    assert_eq!(r.tpp_hop, Some(1), "already executed on switch 1");
    assert_eq!(r.dst, dst);
    // Untapped endpoints return nothing.
    assert!(sim
        .tap_records(Endpoint::switch(chain.switches[1], 1))
        .is_empty());

    // Host-side tap sees Rx at the collector.
    let (mut sim2, chain2) = linear_chain(
        LinearChainParams {
            n_switches: 2,
            ..Default::default()
        },
        Box::new(TppSender {
            dst,
            program: "PUSH [Switch:SwitchID]".into(),
            mem_words: 2,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
    );
    sim2.observe().tap(Endpoint::host(chain2.right));
    sim2.run(RunLimit::Until(time::millis(1)));
    let records = sim2.tap_records(Endpoint::host(chain2.right));
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].dir, TapDir::Rx);
    assert_eq!(records[0].tpp_hop, Some(2), "fully executed at delivery");
}

#[test]
fn quiescent_run_stops_when_traffic_drains() {
    let dst = EthernetAddress::from_host_id(1);
    let (mut sim, chain) = linear_chain(
        LinearChainParams::default(),
        Box::new(TppSender {
            dst,
            program: "PUSH [Queue:QueueSize]".into(),
            mem_words: 3,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
    );
    sim.run(RunLimit::Quiescent {
        limit_ns: time::secs(10),
    });
    // The probe was delivered and the clock stopped far before the limit
    // (only the self-perpetuating stats tick remains).
    assert_eq!(sim.host_app::<TppCollector>(chain.right).received.len(), 1);
    assert!(sim.now() < time::secs(1), "stopped at {} ns", sim.now());
}

#[test]
fn broadcast_and_unknown_destinations_blackhole() {
    let (mut sim, chain) = linear_chain(
        LinearChainParams::default(),
        Box::new(TppSender {
            dst: EthernetAddress::BROADCAST,
            program: "PUSH [Queue:QueueSize]".into(),
            mem_words: 3,
            start_ns: 0,
        }),
        Box::new(TppCollector::default()),
    );
    sim.run(RunLimit::Until(time::millis(5)));
    // No flooding in this L2 model: broadcast has no table entry.
    assert!(sim
        .host_app::<TppCollector>(chain.right)
        .received
        .is_empty());
    // The frame reached switch 0 and died there, visibly.
    assert_eq!(sim.switch(chain.switches[0]).regs().packets_processed, 1);
}

#[test]
fn fat_tree_paths_have_textbook_lengths() {
    use tpp_netsim::{fat_tree, FatTreeParams};
    // k = 4: 16 hosts, 4 pods x (2 edge + 2 agg) + 4 cores.
    let k = 4;
    let n_hosts = k * k * k / 4;
    // Host ids are assigned in (pod, edge, index) order; host 0 probes
    // three destinations at increasing distance.
    // Host ids are pod-major: pod p, edge e, index h -> p*4 + e*2 + h
    // (k = 4). Three sender/collector pairs at increasing distance:
    //   0 -> 1  same edge;  4 -> 6  same pod, other edge;  8 -> 15
    //   across pods.
    let mut apps: Vec<Box<dyn HostApp>> = Vec::new();
    for i in 0..n_hosts {
        let sender = |dst: u32| -> Box<dyn HostApp> {
            Box::new(TppSender {
                dst: EthernetAddress::from_host_id(dst),
                program: "PUSH [Switch:SwitchID]".into(),
                mem_words: 8,
                start_ns: 0,
            })
        };
        let app: Box<dyn HostApp> = match i {
            0 => sender(1),
            4 => sender(6),
            8 => sender(15),
            1 | 6 | 15 => Box::new(TppCollector::default()),
            _ => Box::new(Idle),
        };
        apps.push(app);
    }
    let (mut sim, tree) = fat_tree(
        FatTreeParams {
            k,
            ..Default::default()
        },
        apps,
    );
    assert_eq!(tree.cores.len(), 4);
    sim.run(RunLimit::Until(time::millis(1)));

    // Same edge: 1 switch.
    let same_edge = &sim.host_app::<TppCollector>(tree.hosts[0][0][1]).received;
    assert_eq!(same_edge[0].2, 1, "intra-edge path");
    // Same pod, different edge: edge -> agg -> edge = 3 switches.
    let same_pod = &sim.host_app::<TppCollector>(tree.hosts[1][1][0]).received;
    assert_eq!(same_pod[0].2, 3, "intra-pod path");
    let ids = &same_pod[0].1;
    assert!(ids[0] >= 0x100 && ids[0] < 0x200, "starts at an edge");
    assert!(ids[1] >= 0x200 && ids[1] < 0x300, "through an agg");
    assert!(ids[2] >= 0x100 && ids[2] < 0x200, "ends at an edge");
    // Different pod: edge -> agg -> core -> agg -> edge = 5 switches.
    let cross_pod = &sim.host_app::<TppCollector>(tree.hosts[3][1][1]).received;
    assert_eq!(cross_pod[0].2, 5, "inter-pod path");
    assert!(
        cross_pod[0].1[2] >= 0x300,
        "the middle hop is a core: {:x?}",
        cross_pod[0].1
    );
}
