//! Property tests for the simulator: delivery, ordering, conservation
//! and determinism under randomized workloads.

use proptest::prelude::*;
use tpp_netsim::{linear_chain, time, HostApp, HostCtx, LinearChainParams, RunLimit};
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::EthernetAddress;

/// Sends a scripted schedule of (time, payload-size) datagrams, each
/// tagged with a sequence number.
struct Scripted {
    dst: EthernetAddress,
    schedule: Vec<(u64, usize)>,
    next: usize,
}

impl HostApp for Scripted {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        if let Some((t, _)) = self.schedule.first() {
            ctx.set_timer((*t).max(1), 0);
        }
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut HostCtx<'_>) {
        let (_, size) = self.schedule[self.next];
        let mut payload = vec![0u8; size.max(4)];
        payload[0..4].copy_from_slice(&(self.next as u32).to_be_bytes());
        ctx.send(build_frame(
            self.dst,
            ctx.mac(),
            EtherType(0x0802),
            &payload,
        ));
        self.next += 1;
        if self.next < self.schedule.len() {
            let now = ctx.now();
            let t = self.schedule[self.next].0;
            ctx.set_timer(t.saturating_sub(now).max(1), 0);
        }
    }
}

#[derive(Default)]
struct Recorder {
    seqs: Vec<u32>,
    bytes: u64,
}

impl HostApp for Recorder {
    fn on_frame(&mut self, frame: Vec<u8>, _ctx: &mut HostCtx<'_>) {
        let parsed = Frame::new_checked(&frame[..]).unwrap();
        self.bytes += frame.len() as u64;
        self.seqs.push(u32::from_be_bytes(
            parsed.payload()[0..4].try_into().unwrap(),
        ));
    }
}

fn schedule_strategy() -> impl Strategy<Value = Vec<(u64, usize)>> {
    proptest::collection::vec((0u64..time::millis(20), 4usize..1400), 1..40).prop_map(|mut v| {
        v.sort();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With generous buffers, every frame is delivered exactly once and
    /// in send order; bytes are conserved end to end.
    #[test]
    fn reliable_in_order_delivery(schedule in schedule_strategy(), hops in 1usize..5) {
        let n = schedule.len();
        let sent_bytes: u64 = schedule.iter().map(|(_, s)| (s + 14) as u64).sum();
        let (mut sim, chain) = linear_chain(
            LinearChainParams { n_switches: hops, ..Default::default() },
            Box::new(Scripted {
                dst: EthernetAddress::from_host_id(1),
                schedule,
                next: 0,
            }),
            Box::new(Recorder::default()),
        );
        sim.run(RunLimit::Until(time::millis(100)));
        let recorder = sim.host_app::<Recorder>(chain.right);
        prop_assert_eq!(recorder.seqs.len(), n, "every frame delivered once");
        let in_order: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(&recorder.seqs, &in_order, "FIFO along one path");
        prop_assert_eq!(recorder.bytes, sent_bytes, "bytes conserved");
        // Switch counters agree: last switch transmitted all data frames
        // toward the receiver.
        let last = chain.switches[hops - 1];
        prop_assert_eq!(sim.switch(last).port_stats(1).tx_bytes, sent_bytes);
    }

    /// With a tiny bottleneck buffer, delivered + dropped = sent at every
    /// switch, and delivered frames are still in order.
    #[test]
    fn lossy_conservation(schedule in schedule_strategy()) {
        let n = schedule.len() as u64;
        let (mut sim, chain) = linear_chain(
            LinearChainParams {
                n_switches: 2,
                link_kbps: 1_000, // 1 Mb/s: heavy congestion
                queue_limit_bytes: 3_000,
                ..Default::default()
            },
            Box::new(Scripted {
                dst: EthernetAddress::from_host_id(1),
                schedule,
                next: 0,
            }),
            Box::new(Recorder::default()),
        );
        sim.run(RunLimit::Until(time::secs(30)));
        let recorder = sim.host_app::<Recorder>(chain.right);
        let s0 = chain.switches[0];
        let delivered = recorder.seqs.len() as u64;
        let dropped: u64 = (0..2u16)
            .map(|p| sim.switch(s0).queue_stats(p, 0).packets_dropped
                + sim.switch(chain.switches[1]).queue_stats(p, 0).packets_dropped)
            .sum();
        prop_assert_eq!(delivered + dropped, n, "nothing vanishes silently");
        let mut sorted = recorder.seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), recorder.seqs.len(), "no duplicates");
        let mut prev = None;
        for s in &recorder.seqs {
            if let Some(p) = prev {
                prop_assert!(*s > p, "drop-tail preserves order of survivors");
            }
            prev = Some(*s);
        }
    }

    /// Bit-for-bit determinism under arbitrary workloads.
    #[test]
    fn determinism(schedule in schedule_strategy()) {
        let run = |schedule: Vec<(u64, usize)>| {
            let (mut sim, chain) = linear_chain(
                LinearChainParams { n_switches: 3, ..Default::default() },
                Box::new(Scripted {
                    dst: EthernetAddress::from_host_id(1),
                    schedule,
                    next: 0,
                }),
                Box::new(Recorder::default()),
            );
            sim.run(RunLimit::Until(time::millis(60)));
            (
                sim.host_app::<Recorder>(chain.right).bytes,
                sim.switch(chain.switches[0]).regs().packets_processed,
            )
        };
        prop_assert_eq!(run(schedule.clone()), run(schedule));
    }
}
