//! Deterministic fault injection: seeded chaos schedules for the
//! simulator.
//!
//! The paper's architecture pushes reliability to end-hosts: TPPs ride
//! unreliable packets, switches reboot and lose SRAM, links flap. This
//! module lets experiments *schedule* that misbehavior — a [`FaultPlan`]
//! is a list of `(time, action)` entries plus one seed for the fault
//! RNG, installed via [`Simulator::install_faults`].
//!
//! Determinism contract:
//!
//! * All per-frame randomness (duplication, reordering, bit corruption)
//!   comes from a dedicated RNG seeded with [`FaultPlan::new`]'s seed —
//!   the simulator's pre-existing loss RNG is untouched, so runs without
//!   an installed plan are bit-identical to runs before this feature
//!   existed.
//! * The fault RNG is consulted only while a fault window is active and
//!   only for the fault kinds whose probability is non-zero, in a fixed
//!   order (corrupt → duplicate → reorder) per frame. Identical plans
//!   (same seed, same entries) therefore give byte-identical event
//!   sequences.
//!
//! [`Simulator::install_faults`]: crate::Simulator::install_faults

use crate::node::SwitchId;
use crate::sim::Endpoint;

/// Probabilistic per-frame misbehavior of one link direction, active
/// while a window scheduled by [`FaultPlan::channel_window`] (or the
/// convenience wrappers) is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelProfile {
    /// Per-mille chance a frame is delivered twice.
    pub duplicate_permille: u16,
    /// Per-mille chance a frame is held back by a random extra delay
    /// (letting later frames overtake it).
    pub reorder_permille: u16,
    /// Upper bound (exclusive) of the uniform extra delay, ns, applied
    /// to frames selected for reordering.
    pub reorder_spread_ns: u64,
    /// Per-mille chance one bit of the frame's TPP section is flipped
    /// in flight (non-TPP frames are never corrupted).
    pub corrupt_permille: u16,
}

impl ChannelProfile {
    /// True when the profile injects nothing — the state outside any
    /// window. A clean profile never consults the fault RNG.
    pub fn is_clean(&self) -> bool {
        self.duplicate_permille == 0 && self.reorder_permille == 0 && self.corrupt_permille == 0
    }
}

/// One scheduled fault action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Take both directions of the link attached at `at` down: frames
    /// transmitted in either direction are lost (and counted as link
    /// losses) until a matching [`FaultAction::LinkUp`].
    LinkDown {
        /// Either endpoint of the link.
        at: Endpoint,
    },
    /// Restore both directions of the link attached at `at`.
    LinkUp {
        /// Either endpoint of the link.
        at: Endpoint,
    },
    /// Reboot a switch: [`Asic::reset`](tpp_asic::Asic::reset) wipes its
    /// volatile state and bumps `Switch:BootEpoch`; the simulator then
    /// re-installs L2 routes (modeling the control plane reconverging).
    SwitchReboot {
        /// The switch to reboot.
        switch: SwitchId,
    },
    /// Replace the channel fault profile of the direction transmitted
    /// from `from` (windows are a `SetChannel(profile)` at open and a
    /// `SetChannel(clean)` at close).
    SetChannel {
        /// The transmitting endpoint of the affected direction.
        from: Endpoint,
        /// The new profile.
        profile: ChannelProfile,
    },
}

/// A seeded, time-ordered schedule of fault injections.
///
/// Entries are scheduled in the order they were added (ties at one time
/// keep insertion order, matching the event queue's tie-breaking), so a
/// plan is a pure value: same seed + same entries ⇒ same chaos.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<(u64, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan whose per-frame randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            entries: Vec::new(),
        }
    }

    /// The fault RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled `(time_ns, action)` entries, in insertion order.
    pub fn entries(&self) -> &[(u64, FaultAction)] {
        &self.entries
    }

    /// Schedule a raw action.
    pub fn at(&mut self, t_ns: u64, action: FaultAction) -> &mut Self {
        self.entries.push((t_ns, action));
        self
    }

    /// Take the link at `at` down at `t_ns`.
    pub fn link_down(&mut self, t_ns: u64, at: Endpoint) -> &mut Self {
        self.at(t_ns, FaultAction::LinkDown { at })
    }

    /// Bring the link at `at` back up at `t_ns`.
    pub fn link_up(&mut self, t_ns: u64, at: Endpoint) -> &mut Self {
        self.at(t_ns, FaultAction::LinkUp { at })
    }

    /// Flap the link at `at`: down at `t_down_ns`, up at `t_up_ns`.
    pub fn link_flap(&mut self, t_down_ns: u64, t_up_ns: u64, at: Endpoint) -> &mut Self {
        assert!(t_down_ns < t_up_ns, "flap must go down before up");
        self.link_down(t_down_ns, at).link_up(t_up_ns, at)
    }

    /// Reboot `switch` at `t_ns`.
    pub fn switch_reboot(&mut self, t_ns: u64, switch: SwitchId) -> &mut Self {
        self.at(t_ns, FaultAction::SwitchReboot { switch })
    }

    /// Apply `profile` to the direction transmitted from `from` over
    /// `[t_start_ns, t_end_ns)`, reverting to a clean channel at the end.
    pub fn channel_window(
        &mut self,
        t_start_ns: u64,
        t_end_ns: u64,
        from: Endpoint,
        profile: ChannelProfile,
    ) -> &mut Self {
        assert!(t_start_ns < t_end_ns, "window must have positive length");
        self.at(t_start_ns, FaultAction::SetChannel { from, profile })
            .at(
                t_end_ns,
                FaultAction::SetChannel {
                    from,
                    profile: ChannelProfile::default(),
                },
            )
    }

    /// Duplicate frames transmitted from `from` with probability
    /// `permille`/1000 over the window.
    pub fn duplicate_window(
        &mut self,
        t_start_ns: u64,
        t_end_ns: u64,
        from: Endpoint,
        permille: u16,
    ) -> &mut Self {
        self.channel_window(
            t_start_ns,
            t_end_ns,
            from,
            ChannelProfile {
                duplicate_permille: permille.min(1000),
                ..ChannelProfile::default()
            },
        )
    }

    /// Delay (reorder) frames transmitted from `from` with probability
    /// `permille`/1000 by up to `spread_ns` over the window.
    pub fn reorder_window(
        &mut self,
        t_start_ns: u64,
        t_end_ns: u64,
        from: Endpoint,
        permille: u16,
        spread_ns: u64,
    ) -> &mut Self {
        self.channel_window(
            t_start_ns,
            t_end_ns,
            from,
            ChannelProfile {
                reorder_permille: permille.min(1000),
                reorder_spread_ns: spread_ns,
                ..ChannelProfile::default()
            },
        )
    }

    /// Flip one random bit in the TPP section of frames transmitted from
    /// `from` with probability `permille`/1000 over the window.
    pub fn corrupt_window(
        &mut self,
        t_start_ns: u64,
        t_end_ns: u64,
        from: Endpoint,
        permille: u16,
    ) -> &mut Self {
        self.channel_window(
            t_start_ns,
            t_end_ns,
            from,
            ChannelProfile {
                corrupt_permille: permille.min(1000),
                ..ChannelProfile::default()
            },
        )
    }
}

/// Running totals of injected faults, readable via
/// [`Simulator::fault_counters`](crate::Simulator::fault_counters) and
/// folded into the fleet metrics registry (`fault.*`) on every stats
/// tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames black-holed because their link direction was down.
    pub link_down_drops: u64,
    /// Extra deliveries injected by duplication windows.
    pub duplicated: u64,
    /// Frames that had a TPP-section bit flipped.
    pub corrupted: u64,
    /// Frames held back by a reordering delay.
    pub reordered: u64,
    /// Switch reboots executed.
    pub reboots: u64,
    /// Link-down events executed.
    pub link_downs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_records_entries_in_order() {
        let mut plan = FaultPlan::new(7);
        let ep = Endpoint::switch(SwitchId(0), 1);
        plan.link_flap(100, 200, ep)
            .switch_reboot(150, SwitchId(0))
            .corrupt_window(50, 300, ep, 500);
        assert_eq!(plan.seed(), 7);
        let times: Vec<u64> = plan.entries().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![100, 200, 150, 50, 300]);
        assert!(matches!(plan.entries()[0].1, FaultAction::LinkDown { .. }));
        assert!(matches!(
            plan.entries()[4].1,
            FaultAction::SetChannel { profile, .. } if profile.is_clean()
        ));
    }

    #[test]
    fn clean_profile_detection() {
        assert!(ChannelProfile::default().is_clean());
        assert!(!ChannelProfile {
            duplicate_permille: 1,
            ..ChannelProfile::default()
        }
        .is_clean());
        // A spread without a probability is still clean: nothing fires.
        assert!(ChannelProfile {
            reorder_spread_ns: 1000,
            ..ChannelProfile::default()
        }
        .is_clean());
    }

    #[test]
    #[should_panic(expected = "down before up")]
    fn flap_order_enforced() {
        let mut plan = FaultPlan::new(0);
        plan.link_flap(200, 100, Endpoint::host(crate::HostId(0)));
    }
}
