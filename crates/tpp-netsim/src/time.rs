//! Time helpers. Simulation time is `u64` nanoseconds everywhere; these
//! constructors keep experiment code readable.

/// Nanoseconds per microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// `n` microseconds in nanoseconds.
pub const fn micros(n: u64) -> u64 {
    n * NS_PER_US
}

/// `n` milliseconds in nanoseconds.
pub const fn millis(n: u64) -> u64 {
    n * NS_PER_MS
}

/// `n` seconds in nanoseconds.
pub const fn secs(n: u64) -> u64 {
    n * NS_PER_SEC
}

/// Nanoseconds as fractional seconds (for reporting).
pub fn as_secs_f64(ns: u64) -> f64 {
    ns as f64 / NS_PER_SEC as f64
}

/// Serialization time of `bytes` at `rate_kbps`, in nanoseconds
/// (rounded up: a frame is only "done" when its last bit left).
pub fn tx_time_ns(bytes: usize, rate_kbps: u32) -> u64 {
    let bits = bytes as u64 * 8;
    // ns = bits / (kbps * 1e3 / 1e9) = bits * 1e6 / kbps
    (bits * 1_000_000).div_ceil(rate_kbps as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(micros(3), 3_000);
        assert_eq!(millis(2), 2_000_000);
        assert_eq!(secs(1), 1_000_000_000);
        assert!((as_secs_f64(secs(2)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn serialization_times() {
        // 1500 bytes at 10 Mb/s = 1.2 ms.
        assert_eq!(tx_time_ns(1500, 10_000), 1_200_000);
        // 64 bytes at 10 Gb/s = 51.2 ns.
        assert_eq!(tx_time_ns(64, 10_000_000), 52, "rounded up");
        // 1 byte at 1 kb/s = 8 ms.
        assert_eq!(tx_time_ns(1, 1), 8_000_000);
    }
}
