//! # tpp-netsim — a deterministic discrete-event network simulator
//!
//! The substrate the paper's evaluation ran on was a small physical
//! network around a TPP-enabled Linux router, compared against ns-2
//! simulations. This crate plays both roles: a packet-level, event-driven
//! simulator whose switches embed the `tpp-asic` dataplane model.
//!
//! Design goals, in the smoltcp spirit:
//!
//! * **Deterministic.** Event queues order by a canonical content-derived
//!   key (`time`, class, target, per-target sequence), never by insertion
//!   order or thread schedule — so identical inputs give bit-identical
//!   runs at *any* shard count, threaded or not. Any randomness lives in
//!   seeded per-link RNG streams.
//! * **Sharded.** The topology partitions into shards stepping in
//!   conservative windows bounded by the minimum inter-shard link delay
//!   (see [`SimConfig::shards`]); one shard reproduces the classic
//!   single event loop exactly.
//! * **Simple.** Store-and-forward output-queued switches, full-duplex
//!   links with a serialization rate (taken from the transmitting port's
//!   configured capacity) and a propagation delay. That is exactly the
//!   queueing model RCP/TCP dynamics need, and nothing more.
//! * **Passive components.** The simulator drives `Asic` objects and
//!   [`HostApp`] callbacks; neither ever blocks or owns a clock.
//!
//! Time is `u64` nanoseconds throughout ([`time`] has conversion helpers).
//!
//! ```
//! use tpp_netsim::{NetworkBuilder, Endpoint, HostApp, HostCtx, RunLimit, time};
//! use tpp_asic::AsicConfig;
//!
//! // Two hosts through one switch; host 0 sends one frame to host 1.
//! struct Sender;
//! impl HostApp for Sender {
//!     fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
//!         let frame = tpp_wire::ethernet::build_frame(
//!             tpp_wire::EthernetAddress::from_host_id(1),
//!             ctx.mac(),
//!             tpp_wire::ethernet::EtherType(0x0800),
//!             b"hello",
//!         );
//!         ctx.send(frame);
//!     }
//! }
//! #[derive(Default)]
//! struct Receiver { got: usize }
//! impl HostApp for Receiver {
//!     fn on_frame(&mut self, _frame: Vec<u8>, _ctx: &mut HostCtx<'_>) { self.got += 1; }
//! }
//!
//! let mut net = NetworkBuilder::new();
//! let s = net.add_switch(AsicConfig::with_ports(1, 2));
//! let h0 = net.add_host(Box::new(Sender), 1_000_000);
//! let h1 = net.add_host(Box::new(Receiver::default()), 1_000_000);
//! net.connect(Endpoint::host(h0), Endpoint::switch(s, 0), time::micros(1));
//! net.connect(Endpoint::host(h1), Endpoint::switch(s, 1), time::micros(1));
//! let mut sim = net.build();
//! sim.populate_l2();
//! sim.run(RunLimit::Until(time::millis(10)));
//! assert_eq!(sim.host_app::<Receiver>(h1).got, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod fault;
pub mod node;
pub mod obs;
pub mod pool;
pub mod profile;
pub mod routing;
pub mod series;
mod shard;
pub mod sim;
pub mod time;
pub mod topology;

pub use config::{RunLimit, SimConfig};
pub use fault::{ChannelProfile, FaultAction, FaultCounters, FaultPlan};
pub use node::{AsAny, HostApp, HostCtx, HostId, SwitchId};
pub use obs::ObsHandle;
pub use pool::FramePool;
pub use profile::{Interp, LinkProfile, LinkState};
pub use routing::{flow_label, EcmpTable};
pub use series::{
    RingSeries, SeriesSet, SwitchSeries, FLEET_SERIES_METRICS, SWITCH_SERIES_METRICS,
};
pub use sim::{Endpoint, NetworkBuilder, Simulator, TapDir, TapRecord, Topology};
pub use topology::{
    bonded_diamond, bonded_diamond_with, dumbbell, dumbbell_with, fat_tree, fat_tree_with,
    leaf_spine, leaf_spine_with, linear_chain, linear_chain_with, BondedDiamond,
    BondedDiamondParams, Dumbbell, DumbbellParams, FatTree, FatTreeParams, LeafSpine,
    LeafSpineParams, LinearChain, LinearChainParams,
};
