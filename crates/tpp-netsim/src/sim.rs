//! The simulator core: topology wiring, the event loop, and link
//! transmission logic.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{EventKind, EventQueue, NodeRef};
use crate::fault::{ChannelProfile, FaultAction, FaultCounters, FaultPlan};
use crate::node::{HostAction, HostApp, HostCtx, HostId, SwitchId};
use crate::pool::FramePool;
use crate::series::{permille, SeriesSet};
use crate::time::tx_time_ns;
use tpp_asic::{Asic, AsicConfig, Outcome, PortId};
use tpp_telemetry::{MetricsRegistry, SharedSink, TraceEvent, TraceEventKind, TraceSink};
use tpp_wire::ethernet::{Frame, ETHERNET_HEADER_LEN};
use tpp_wire::tpp::TppPacket;
use tpp_wire::EthernetAddress;

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A numbered port of a switch.
    SwitchPort(SwitchId, PortId),
    /// A host's NIC (hosts have exactly one port).
    Host(HostId),
}

impl Endpoint {
    /// A switch port endpoint.
    pub fn switch(switch: SwitchId, port: PortId) -> Self {
        Endpoint::SwitchPort(switch, port)
    }

    /// A host endpoint.
    pub fn host(host: HostId) -> Self {
        Endpoint::Host(host)
    }

    fn node(self) -> NodeRef {
        match self {
            Endpoint::SwitchPort(s, _) => NodeRef::Switch(s),
            Endpoint::Host(h) => NodeRef::Host(h),
        }
    }

    fn port(self) -> PortId {
        match self {
            Endpoint::SwitchPort(_, p) => p,
            Endpoint::Host(_) => 0,
        }
    }
}

/// Builder for a [`Simulator`].
pub struct NetworkBuilder {
    switches: Vec<AsicConfig>,
    hosts: Vec<(Box<dyn HostApp>, u32)>,
    links: Vec<(Endpoint, Endpoint, u64)>,
    tick_interval_ns: u64,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// An empty network.
    pub fn new() -> Self {
        NetworkBuilder {
            switches: Vec::new(),
            hosts: Vec::new(),
            links: Vec::new(),
            tick_interval_ns: crate::time::millis(1),
        }
    }

    /// How often switch utilization EWMAs tick (default 1 ms).
    pub fn tick_interval_ns(&mut self, ns: u64) -> &mut Self {
        self.tick_interval_ns = ns;
        self
    }

    /// Add a switch; returns its id.
    pub fn add_switch(&mut self, config: AsicConfig) -> SwitchId {
        self.switches.push(config);
        SwitchId(self.switches.len() - 1)
    }

    /// Add a host running `app`, with a NIC of `nic_rate_kbps`; returns
    /// its id. The host's MAC is `EthernetAddress::from_host_id(id)`.
    pub fn add_host(&mut self, app: Box<dyn HostApp>, nic_rate_kbps: u32) -> HostId {
        self.hosts.push((app, nic_rate_kbps));
        HostId(self.hosts.len() - 1)
    }

    /// Connect two endpoints with a full-duplex link of propagation delay
    /// `delay_ns`. Serialization rate in each direction comes from the
    /// transmitting side (the switch port's configured capacity, or the
    /// host's NIC rate).
    pub fn connect(&mut self, a: Endpoint, b: Endpoint, delay_ns: u64) {
        self.links.push((a, b, delay_ns));
    }

    /// Build the simulator.
    ///
    /// # Panics
    /// Panics on invalid wiring: out-of-range switch ports or endpoints
    /// used by more than one link. These are construction-time programmer
    /// errors, not runtime conditions.
    pub fn build(self) -> Simulator {
        let switches: Vec<SwitchNode> = self
            .switches
            .into_iter()
            .map(|cfg| {
                let ports = cfg.num_ports();
                SwitchNode {
                    asic: Asic::new(cfg),
                    tx_busy: vec![false; ports],
                }
            })
            .collect();
        let hosts: Vec<HostNode> = self
            .hosts
            .into_iter()
            .enumerate()
            .map(|(i, (app, rate))| HostNode {
                app,
                mac: EthernetAddress::from_host_id(i as u32),
                nic_rate_kbps: rate,
                nic_queue: VecDeque::new(),
                nic_busy: false,
            })
            .collect();

        // Dense adjacency: one slot per (node, port), so the per-frame
        // hot path indexes an array instead of probing a HashMap.
        let mut switch_links: Vec<Vec<Option<Link>>> = switches
            .iter()
            .map(|sw| vec![None; sw.asic.num_ports()])
            .collect();
        let mut host_links: Vec<Option<Link>> = vec![None; hosts.len()];
        for (a, b, delay) in &self.links {
            for ep in [a, b] {
                if let Endpoint::SwitchPort(s, p) = ep {
                    assert!(
                        s.0 < switches.len() && (*p as usize) < switches[s.0].asic.num_ports(),
                        "link endpoint {ep:?} out of range"
                    );
                }
                if let Endpoint::Host(h) = ep {
                    assert!(h.0 < hosts.len(), "link endpoint {ep:?} out of range");
                }
            }
            for (ep, peer) in [(a, b), (b, a)] {
                let link = Link {
                    peer: peer.node(),
                    peer_port: peer.port(),
                    delay_ns: *delay,
                    loss_permille: 0,
                    up: true,
                    faults: ChannelProfile::default(),
                };
                let slot = match ep {
                    Endpoint::SwitchPort(s, p) => &mut switch_links[s.0][*p as usize],
                    Endpoint::Host(h) => &mut host_links[h.0],
                };
                assert!(
                    slot.is_none(),
                    "endpoint used by two links: {a:?} <-> {b:?}"
                );
                *slot = Some(link);
            }
        }

        Simulator {
            now_ns: 0,
            started: false,
            events: EventQueue::new(),
            switches,
            hosts,
            switch_links,
            host_links,
            tick_interval_ns: self.tick_interval_ns,
            rng: StdRng::seed_from_u64(0x7199_7199),
            fault_rng: None,
            fault_counters: FaultCounters::default(),
            link_losses: HashMap::new(),
            taps: HashMap::new(),
            metrics: MetricsRegistry::new(),
            fleet_sink: None,
            frame_pool: FramePool::default(),
            host_actions: Vec::new(),
            series: None,
        }
    }
}

/// Which way a tapped frame was travelling relative to the tap point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDir {
    /// The tapped endpoint transmitted the frame.
    Tx,
    /// The tapped endpoint received the frame.
    Rx,
}

/// A captured frame summary — the simulator's pcap analogue. Summaries,
/// not copies: taps are for understanding experiments, not for giving
/// end-host code a side channel around the TPP interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapRecord {
    /// Capture time, ns.
    pub t_ns: u64,
    /// Direction relative to the tapped endpoint.
    pub dir: TapDir,
    /// Frame length in bytes.
    pub len: usize,
    /// EtherType.
    pub ethertype: u16,
    /// Source MAC.
    pub src: EthernetAddress,
    /// Destination MAC.
    pub dst: EthernetAddress,
    /// For TPP frames: the hop counter at capture time.
    pub tpp_hop: Option<u8>,
}

impl TapRecord {
    fn capture(t_ns: u64, dir: TapDir, frame: &[u8]) -> Option<TapRecord> {
        let parsed = Frame::new_checked(frame).ok()?;
        let tpp_hop = if parsed.is_tpp() {
            TppPacket::new_checked(parsed.payload())
                .ok()
                .map(|t| t.hop())
        } else {
            None
        };
        Some(TapRecord {
            t_ns,
            dir,
            len: frame.len(),
            ethertype: parsed.ethertype().0,
            src: parsed.src_addr(),
            dst: parsed.dst_addr(),
            tpp_hop,
        })
    }
}

/// One direction of a link: the peer and the channel properties.
#[derive(Debug, Clone, Copy)]
struct Link {
    peer: NodeRef,
    peer_port: PortId,
    delay_ns: u64,
    /// In-flight loss probability in per-mille. 0 = lossless (and the
    /// RNG is never consulted, so lossless runs are unchanged by the
    /// feature). Models a fading wireless channel; set per direction
    /// via [`Simulator::set_link_loss`].
    loss_permille: u16,
    /// False while an injected [`FaultAction::LinkDown`] holds the link
    /// down: every frame transmitted on this direction is lost.
    up: bool,
    /// Active channel fault profile (clean outside fault windows; the
    /// fault RNG is never consulted while clean).
    faults: ChannelProfile,
}

struct SwitchNode {
    asic: Asic,
    tx_busy: Vec<bool>,
}

struct HostNode {
    app: Box<dyn HostApp>,
    mac: EthernetAddress,
    nic_rate_kbps: u32,
    nic_queue: VecDeque<Vec<u8>>,
    nic_busy: bool,
}

/// The assembled network simulation.
pub struct Simulator {
    now_ns: u64,
    started: bool,
    events: EventQueue,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
    /// Dense adjacency: `switch_links[s][p]` is the link transmitted
    /// from switch `s` port `p`; `host_links[h]` from host `h`'s NIC.
    /// Indexed arrays instead of a `HashMap<(NodeRef, PortId), Link>`
    /// because `transmit`/`try_tx_*` consult the topology once per
    /// frame.
    switch_links: Vec<Vec<Option<Link>>>,
    host_links: Vec<Option<Link>>,
    tick_interval_ns: u64,
    rng: StdRng,
    /// Dedicated RNG for fault injection, created by
    /// [`Simulator::install_faults`] from the plan's seed. Kept separate
    /// from `rng` so installing a plan never perturbs the loss stream,
    /// and fault-free runs stay bit-identical to pre-fault builds.
    fault_rng: Option<StdRng>,
    fault_counters: FaultCounters,
    link_losses: HashMap<(NodeRef, PortId), u64>,
    taps: HashMap<(NodeRef, PortId), Vec<TapRecord>>,
    /// Fleet-wide metrics, rebuilt lazily from every switch's registers
    /// when [`Simulator::metrics`] is called.
    metrics: MetricsRegistry,
    /// Clone of the fleet trace sink handed out by
    /// [`Simulator::trace_all`]; simulator-level fault events
    /// (link flaps, corruption) are recorded here.
    fleet_sink: Option<SharedSink>,
    /// Recycles `Vec<u8>` capacity from frames the network consumed
    /// (losses, link-down drops, black-holed frames) back to senders.
    frame_pool: FramePool,
    /// Scratch buffer for host-app actions, reused across every
    /// [`Simulator::call_host`] invocation.
    host_actions: Vec<HostAction>,
    /// Ring-buffer time series sampled on every stats tick
    /// (observability plane layer 2); `None` (the default) keeps the
    /// tick handler at one extra branch.
    series: Option<SeriesSet>,
}

impl Simulator {
    /// Current simulation time, ns.
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// The link transmitted from `(node, port)`, if connected.
    fn link(&self, node: NodeRef, port: PortId) -> Option<Link> {
        match node {
            NodeRef::Switch(s) => self.switch_links[s.0].get(port as usize).copied().flatten(),
            NodeRef::Host(h) => {
                if port == 0 {
                    self.host_links[h.0]
                } else {
                    None
                }
            }
        }
    }

    /// Mutable view of the link transmitted from `(node, port)`.
    fn link_mut(&mut self, node: NodeRef, port: PortId) -> Option<&mut Link> {
        match node {
            NodeRef::Switch(s) => self.switch_links[s.0]
                .get_mut(port as usize)
                .and_then(Option::as_mut),
            NodeRef::Host(h) => {
                if port == 0 {
                    self.host_links[h.0].as_mut()
                } else {
                    None
                }
            }
        }
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Immutable access to a switch's ASIC (for sampling ground truth in
    /// experiments and tests).
    pub fn switch(&self, id: SwitchId) -> &Asic {
        &self.switches[id.0].asic
    }

    /// Mutable access to a switch's ASIC (control-plane operations:
    /// installing routes, flow entries, SRAM initialization).
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut Asic {
        &mut self.switches[id.0].asic
    }

    /// A host's MAC address.
    pub fn host_mac(&self, id: HostId) -> EthernetAddress {
        self.hosts[id.0].mac
    }

    /// Downcast a host's app to its concrete type.
    ///
    /// # Panics
    /// Panics if the app at `id` is not a `T`.
    pub fn host_app<T: HostApp>(&self, id: HostId) -> &T {
        self.hosts[id.0]
            .app
            .as_any()
            .downcast_ref::<T>()
            .expect("host app type mismatch")
    }

    /// Mutable downcast of a host's app.
    ///
    /// # Panics
    /// Panics if the app at `id` is not a `T`.
    pub fn host_app_mut<T: HostApp>(&mut self, id: HostId) -> &mut T {
        self.hosts[id.0]
            .app
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("host app type mismatch")
    }

    /// Bytes currently backlogged in a host's NIC queue.
    pub fn host_nic_backlog(&self, id: HostId) -> usize {
        self.hosts[id.0].nic_queue.iter().map(Vec::len).sum()
    }

    /// Set the in-flight loss probability (per-mille) of the link
    /// direction transmitted from `from`. Models a degrading wireless
    /// channel; change it over time to model fading.
    ///
    /// Probabilities are capped at 1000 ‰ (certain loss); the returned
    /// value is the one actually installed, so callers passing a larger
    /// number can see the clamp instead of silently getting 100% loss
    /// labeled with their original figure.
    ///
    /// # Panics
    /// Panics if `from` is not connected.
    pub fn set_link_loss(&mut self, from: Endpoint, loss_permille: u16) -> u16 {
        let link = self
            .link_mut(from.node(), from.port())
            .unwrap_or_else(|| panic!("{from:?} is not connected"));
        let effective = loss_permille.min(1000);
        link.loss_permille = effective;
        effective
    }

    /// Install a seeded [`FaultPlan`]: schedules every entry on the
    /// event queue and arms the dedicated fault RNG with the plan's
    /// seed. May be called before or after the simulation starts (times
    /// already in the past fire immediately on the next step).
    /// Installing a second plan replaces the RNG and adds the new
    /// entries.
    ///
    /// # Panics
    /// Panics if an entry references a disconnected endpoint or an
    /// unknown switch (construction-time programmer errors).
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for (_, action) in plan.entries() {
            match action {
                FaultAction::LinkDown { at }
                | FaultAction::LinkUp { at }
                | FaultAction::SetChannel { from: at, .. } => {
                    assert!(
                        self.link(at.node(), at.port()).is_some(),
                        "{at:?} is not connected"
                    );
                }
                FaultAction::SwitchReboot { switch } => {
                    assert!(switch.0 < self.switches.len(), "{switch:?} does not exist");
                }
            }
        }
        self.fault_rng = Some(StdRng::seed_from_u64(plan.seed()));
        for (t_ns, action) in plan.entries() {
            self.events
                .push(*t_ns, EventKind::Fault { action: *action });
        }
    }

    /// Running totals of injected faults.
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault_counters
    }

    /// Override the stats-tick interval — and therefore the sampling
    /// period of the time-series layer. The next tick is scheduled from
    /// the current value, so call before the first `run_until` to set
    /// the period for the whole run.
    pub fn set_tick_interval_ns(&mut self, ns: u64) {
        assert!(ns > 0, "tick interval must be positive");
        self.tick_interval_ns = ns;
    }

    /// Enable the per-tick time-series layer: from now on every stats
    /// tick samples queue depth, link utilization, drop and cache-hit
    /// rates for every switch (plus fleet-wide fault/loss rates) into
    /// fixed-capacity ring series — see [`crate::series`]. `capacity`
    /// bounds each series' point count; longer runs downsample instead
    /// of growing. Calling again discards the recorded series.
    pub fn enable_series(&mut self, capacity: usize) {
        let ids: Vec<u32> = self.switches.iter().map(|sw| sw.asic.switch_id()).collect();
        self.series = Some(SeriesSet::new(&ids, capacity));
    }

    /// The recorded time series, if [`Simulator::enable_series`] was
    /// called.
    pub fn series(&self) -> Option<&SeriesSet> {
        self.series.as_ref()
    }

    /// Take one stats-tick sample of every switch into the series
    /// layer. Off the fast path: the tick handler calls this only when
    /// series are enabled.
    #[cold]
    #[inline(never)]
    fn sample_series(&mut self) {
        let now = self.now_ns;
        let Some(set) = self.series.as_mut() else {
            return;
        };
        set.ticks += 1;
        for (sw, series) in self.switches.iter().zip(set.switches.iter_mut()) {
            let asic = &sw.asic;
            let (total, max) = asic.queue_occupancy();
            series.offer("queue.total_bytes", now, total);
            series.offer("queue.max_bytes", now, max);
            let mut util = 0u64;
            let mut dropped = 0u64;
            for p in 0..asic.num_ports() {
                let stats = asic.port_stats(p as PortId);
                util = util.max(stats.tx_utilization_permille as u64);
                dropped += stats.bytes_dropped;
            }
            series.offer("link.tx_util_permille", now, util);
            // Saturating: a switch reboot resets its counters.
            let delta = dropped.saturating_sub(series.prev_drop_bytes);
            series.offer("drop.bytes_per_tick", now, delta);
            series.prev_drop_bytes = dropped;
            let (fh, fm) = asic.flow_cache_stats();
            series.offer("cache.flow_hit_permille", now, permille(fh, fm));
            let (dh, dm) = asic.decode_cache_stats();
            series.offer("cache.decode_hit_permille", now, permille(dh, dm));
        }
        let f = self.fault_counters;
        let faults =
            f.link_down_drops + f.duplicated + f.corrupted + f.reordered + f.reboots + f.link_downs;
        set.offer_fleet(
            "fault.events_per_tick",
            now,
            faults.saturating_sub(set.prev_faults),
        );
        set.prev_faults = faults;
        let losses: u64 = self.link_losses.values().sum();
        set.offer_fleet(
            "link.frames_lost_per_tick",
            now,
            losses.saturating_sub(set.prev_losses),
        );
        set.prev_losses = losses;
    }

    /// A switch's current boot epoch (ground truth for tests; end-hosts
    /// read the same value via `Switch:BootEpoch`).
    pub fn boot_epoch(&self, id: SwitchId) -> u32 {
        self.switches[id.0].asic.regs().boot_epoch
    }

    /// Frames lost in flight on the link direction transmitted from
    /// `from`.
    pub fn link_losses(&self, from: Endpoint) -> u64 {
        self.link_losses
            .get(&(from.node(), from.port()))
            .copied()
            .unwrap_or(0)
    }

    /// Start capturing frame summaries at an endpoint (both directions).
    pub fn enable_tap(&mut self, at: Endpoint) {
        self.taps.entry((at.node(), at.port())).or_default();
    }

    /// The frames captured at a tapped endpoint so far (empty for
    /// untapped endpoints).
    pub fn tap_records(&self, at: Endpoint) -> &[TapRecord] {
        self.taps
            .get(&(at.node(), at.port()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn tap(&mut self, node: NodeRef, port: PortId, dir: TapDir, frame: &[u8]) {
        // Untapped runs (the common case) must not pay a hash probe per
        // frame.
        if self.taps.is_empty() {
            return;
        }
        let now = self.now_ns;
        if let Some(records) = self.taps.get_mut(&(node, port)) {
            if let Some(record) = TapRecord::capture(now, dir, frame) {
                records.push(record);
            }
        }
    }

    /// Attach one shared trace sink (a ring buffer of `capacity` events)
    /// to every switch, so the whole fleet's pipeline events interleave
    /// in one stream ordered by emission. Simulator-level fault events
    /// (link flaps, corruption, reboots) are recorded into the same
    /// stream. Returns a handle to read the events back; call again to
    /// replace the fleet's sink.
    pub fn trace_all(&mut self, capacity: usize) -> SharedSink {
        let sink = SharedSink::new(capacity);
        for sw in &mut self.switches {
            sw.asic.set_trace_sink(Some(Box::new(sink.clone())));
        }
        self.fleet_sink = Some(sink.clone());
        sink
    }

    /// Attach a shared trace sink to one switch only.
    pub fn trace_switch(&mut self, id: SwitchId, capacity: usize) -> SharedSink {
        let sink = SharedSink::new(capacity);
        self.switches[id.0]
            .asic
            .set_trace_sink(Some(Box::new(sink.clone())));
        sink
    }

    /// Detach every switch's trace sink (and the simulator's fault
    /// event sink).
    pub fn trace_off(&mut self) {
        for sw in &mut self.switches {
            sw.asic.set_trace_sink(None);
        }
        self.fleet_sink = None;
    }

    /// Record a simulator-level fault event into the fleet sink, if one
    /// is attached. `switch_id` is the dataplane switch id of the node
    /// involved (0 for hosts), matching the ASIC's own events.
    fn emit_fault(&mut self, switch_id: u32, kind: TraceEventKind) {
        if let Some(sink) = self.fleet_sink.as_mut() {
            sink.record(TraceEvent {
                t_ns: self.now_ns,
                switch_id,
                seq: 0,
                kind,
            });
        }
    }

    /// The dataplane switch id of a node (0 for hosts, which have no
    /// switch id).
    fn node_switch_id(&self, node: NodeRef) -> u32 {
        match node {
            NodeRef::Switch(s) => self.switches[s.0].asic.switch_id(),
            NodeRef::Host(_) => 0,
        }
    }

    /// The fleet-wide metrics registry, rebuilt from every switch's
    /// registers at the time of the call (counters summed across
    /// switches, distributions merged). Rebuilding on access instead of
    /// on every stats tick keeps the clear-and-re-export cost out of the
    /// event loop; ticks only advance the switches' EWMAs.
    pub fn metrics(&mut self) -> &MetricsRegistry {
        self.rebuild_metrics();
        &self.metrics
    }

    fn rebuild_metrics(&mut self) {
        self.metrics.clear();
        for sw in &self.switches {
            sw.asic.export_metrics(&mut self.metrics);
        }
        let lost: u64 = self.link_losses.values().sum();
        self.metrics.set("link.frames_lost", lost);
        let f = self.fault_counters;
        if f != FaultCounters::default() {
            self.metrics.set("fault.link_down_drops", f.link_down_drops);
            self.metrics.set("fault.duplicated", f.duplicated);
            self.metrics.set("fault.corrupted", f.corrupted);
            self.metrics.set("fault.reordered", f.reordered);
            self.metrics.set("fault.reboots", f.reboots);
            self.metrics.set("fault.link_downs", f.link_downs);
        }
    }

    /// `(reused, fresh, recycled)` counters of the frame-buffer pool:
    /// allocations served from recycled capacity, allocations that fell
    /// through to the allocator, and buffers accepted back.
    pub fn frame_pool_stats(&self) -> (u64, u64, u64) {
        self.frame_pool.stats()
    }

    /// Install L2 forwarding entries for every host at every switch along
    /// shortest paths (BFS over the physical topology). Call once after
    /// `build()`; this plays the role of a pre-converged control plane.
    pub fn populate_l2(&mut self) {
        for h in 0..self.hosts.len() {
            let host = HostId(h);
            let mac = self.hosts[h].mac;
            // BFS from the host; `reached_via` is the port at each
            // discovered switch that faces back toward the host.
            let mut visited: HashMap<NodeRef, ()> = HashMap::new();
            let mut frontier: VecDeque<NodeRef> = VecDeque::new();
            let start = NodeRef::Host(host);
            visited.insert(start, ());
            frontier.push_back(start);
            while let Some(node) = frontier.pop_front() {
                let ports: Vec<PortId> = match node {
                    NodeRef::Host(_) => vec![0],
                    NodeRef::Switch(s) => {
                        (0..self.switches[s.0].asic.num_ports() as PortId).collect()
                    }
                };
                for port in ports {
                    let Some(Link {
                        peer, peer_port, ..
                    }) = self.link(node, port)
                    else {
                        continue;
                    };
                    if visited.contains_key(&peer) {
                        continue;
                    }
                    visited.insert(peer, ());
                    if let NodeRef::Switch(s) = peer {
                        // At `peer`, the way back toward the host is the
                        // port we arrived on.
                        self.switches[s.0].asic.l2_mut().insert(mac, peer_port);
                        frontier.push_back(peer);
                    }
                    // Hosts terminate the search along this branch but
                    // are still marked visited.
                }
            }
        }
    }

    /// Run the event loop until simulation time `t_end_ns`.
    ///
    /// May be called repeatedly with increasing times; experiments step
    /// the clock in increments to sample ground-truth state in between.
    pub fn run_until(&mut self, t_end_ns: u64) {
        if !self.started {
            self.started = true;
            self.events
                .push(self.now_ns + self.tick_interval_ns, EventKind::StatsTick);
            for h in 0..self.hosts.len() {
                self.call_host(HostId(h), |app, ctx| app.on_start(ctx));
            }
        }
        while let Some(t) = self.events.peek_time() {
            if t > t_end_ns {
                break;
            }
            let event = self.events.pop().expect("peeked");
            self.now_ns = event.time;
            self.dispatch(event.kind);
        }
        self.now_ns = self.now_ns.max(t_end_ns);
    }

    /// Run until the event queue only contains future stats ticks (i.e.
    /// all traffic has drained), or `t_limit_ns` is reached.
    pub fn run_until_quiescent(&mut self, t_limit_ns: u64) {
        // StatsTicks self-perpetuate, so "quiescent" means stepping tick
        // by tick until no other events remain.
        while self.now_ns < t_limit_ns {
            let next = self.now_ns + self.tick_interval_ns;
            self.run_until(next.min(t_limit_ns));
            if self.events.len() <= 1 {
                break;
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::FrameArrive { node, port, frame } => match node {
                NodeRef::Switch(s) => {
                    self.tap(node, port, TapDir::Rx, &frame);
                    let now = self.now_ns;
                    let outcome = self.switches[s.0].asic.handle_frame(frame, port, now);
                    if let Outcome::Enqueued { port: out, .. } = outcome {
                        self.try_tx_switch(s, out);
                    }
                }
                NodeRef::Host(h) => {
                    self.tap(node, 0, TapDir::Rx, &frame);
                    self.call_host(h, |app, ctx| app.on_frame(frame, ctx));
                }
            },
            EventKind::LinkFree { node, port } => match node {
                NodeRef::Switch(s) => {
                    self.switches[s.0].tx_busy[port as usize] = false;
                    self.try_tx_switch(s, port);
                }
                NodeRef::Host(h) => {
                    self.hosts[h.0].nic_busy = false;
                    self.try_tx_host(h);
                }
            },
            EventKind::Timer { host, token } => {
                self.call_host(host, |app, ctx| app.on_timer(token, ctx));
            }
            EventKind::StatsTick => {
                // Ticks only advance the switches' EWMAs; the fleet
                // registry is rebuilt lazily by `metrics()`.
                let now = self.now_ns;
                for sw in &mut self.switches {
                    sw.asic.tick(now);
                }
                if self.series.is_some() {
                    self.sample_series();
                }
                self.events
                    .push(now + self.tick_interval_ns, EventKind::StatsTick);
            }
            EventKind::Fault { action } => self.apply_fault(action),
        }
    }

    /// Execute one scheduled fault action.
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::LinkDown { at } | FaultAction::LinkUp { at } => {
                let going_up = matches!(action, FaultAction::LinkUp { .. });
                // A link is full-duplex: flapping takes both directions
                // with it. Resolve the peer direction through the
                // forward one.
                let a = (at.node(), at.port());
                let link = self.link(a.0, a.1).expect("validated on install");
                let b = (link.peer, link.peer_port);
                for key in [a, b] {
                    let dir = self.link_mut(key.0, key.1).expect("resolved above");
                    let was_up = dir.up;
                    dir.up = going_up;
                    if was_up == going_up {
                        continue;
                    }
                    let switch_id = self.node_switch_id(key.0);
                    let kind = if going_up {
                        TraceEventKind::LinkUp { port: key.1 }
                    } else {
                        self.fault_counters.link_downs += 1;
                        TraceEventKind::LinkDown { port: key.1 }
                    };
                    self.emit_fault(switch_id, kind);
                }
            }
            FaultAction::SwitchReboot { switch } => {
                let now = self.now_ns;
                self.switches[switch.0].asic.reset(now);
                self.fault_counters.reboots += 1;
                // The control plane reconverges: re-install L2 routes
                // (idempotent for the switches that kept their tables).
                self.populate_l2();
            }
            FaultAction::SetChannel { from, profile } => {
                self.link_mut(from.node(), from.port())
                    .expect("validated on install")
                    .faults = profile;
            }
        }
    }

    /// Start transmitting the next queued frame on a switch port, if the
    /// transmitter is idle and the port is connected.
    fn try_tx_switch(&mut self, s: SwitchId, port: PortId) {
        if self.switches[s.0].tx_busy[port as usize] {
            return;
        }
        let Some(link) = self.link(NodeRef::Switch(s), port) else {
            // Unconnected port: black-hole anything queued there,
            // reclaiming the buffers.
            while let Some(frame) = self.switches[s.0].asic.dequeue(port) {
                self.frame_pool.recycle(frame);
            }
            return;
        };
        let Some(frame) = self.switches[s.0].asic.dequeue(port) else {
            return;
        };
        let rate = self.switches[s.0].asic.port_capacity_kbps(port);
        let tx = tx_time_ns(frame.len(), rate);
        self.switches[s.0].tx_busy[port as usize] = true;
        self.events.push(
            self.now_ns + tx,
            EventKind::LinkFree {
                node: NodeRef::Switch(s),
                port,
            },
        );
        self.transmit(NodeRef::Switch(s), port, link, tx, frame);
    }

    /// Start transmitting the next queued frame from a host NIC.
    fn try_tx_host(&mut self, h: HostId) {
        if self.hosts[h.0].nic_busy {
            return;
        }
        let Some(link) = self.link(NodeRef::Host(h), 0) else {
            while let Some(frame) = self.hosts[h.0].nic_queue.pop_front() {
                self.frame_pool.recycle(frame);
            }
            return;
        };
        let Some(frame) = self.hosts[h.0].nic_queue.pop_front() else {
            return;
        };
        let rate = self.hosts[h.0].nic_rate_kbps;
        let tx = tx_time_ns(frame.len(), rate);
        self.hosts[h.0].nic_busy = true;
        self.events.push(
            self.now_ns + tx,
            EventKind::LinkFree {
                node: NodeRef::Host(h),
                port: 0,
            },
        );
        self.transmit(NodeRef::Host(h), 0, link, tx, frame);
    }

    /// Put a frame on the wire: deliver after serialization +
    /// propagation, unless the channel eats it (or an installed fault
    /// plan duplicates, corrupts, or delays it).
    fn transmit(&mut self, from: NodeRef, port: PortId, link: Link, tx_ns: u64, frame: Vec<u8>) {
        self.tap(from, port, TapDir::Tx, &frame);
        if !link.up {
            *self.link_losses.entry((from, port)).or_insert(0) += 1;
            self.fault_counters.link_down_drops += 1;
            self.frame_pool.recycle(frame);
            return;
        }
        if link.loss_permille > 0 && self.rng.gen_range(0..1000u32) < link.loss_permille as u32 {
            *self.link_losses.entry((from, port)).or_insert(0) += 1;
            self.frame_pool.recycle(frame);
            return;
        }
        let mut frame = frame;
        let mut arrival = self.now_ns + tx_ns + link.delay_ns;
        let mut duplicate = false;
        if !link.faults.is_clean() {
            // Fixed consultation order (corrupt → duplicate → reorder)
            // keeps the fault RNG stream, and with it the whole run,
            // deterministic for a given plan.
            let f = link.faults;
            let rng = self
                .fault_rng
                .as_mut()
                .expect("fault windows only open via install_faults");
            if f.corrupt_permille > 0 && rng.gen_range(0..1000u32) < f.corrupt_permille as u32 {
                if let Some((byte, bit)) = Self::pick_tpp_bit(rng, &frame) {
                    frame[byte] ^= 1 << bit;
                    self.fault_counters.corrupted += 1;
                    let switch_id = self.node_switch_id(from);
                    self.emit_fault(
                        switch_id,
                        TraceEventKind::CorruptionInjected {
                            port,
                            byte: byte as u32,
                            bit,
                        },
                    );
                }
            }
            let rng = self.fault_rng.as_mut().expect("checked above");
            if f.duplicate_permille > 0 && rng.gen_range(0..1000u32) < f.duplicate_permille as u32 {
                duplicate = true;
                self.fault_counters.duplicated += 1;
            }
            let rng = self.fault_rng.as_mut().expect("checked above");
            if f.reorder_permille > 0
                && f.reorder_spread_ns > 0
                && rng.gen_range(0..1000u32) < f.reorder_permille as u32
            {
                arrival += rng.gen_range(0..f.reorder_spread_ns);
                self.fault_counters.reordered += 1;
            }
        }
        if duplicate {
            let copy = self.frame_pool.copy_of(&frame);
            self.events.push(
                arrival,
                EventKind::FrameArrive {
                    node: link.peer,
                    port: link.peer_port,
                    frame: copy,
                },
            );
        }
        self.events.push(
            arrival,
            EventKind::FrameArrive {
                node: link.peer,
                port: link.peer_port,
                frame,
            },
        );
    }

    /// Choose a random bit inside the TPP section of `frame` for
    /// corruption. Returns `(byte_offset, bit)` relative to the whole
    /// frame, or `None` for frames without a parseable TPP section
    /// (non-TPP traffic is never corrupted: the fault models §3's
    /// concern that a damaged TPP must not wedge a switch, not generic
    /// payload corruption). Consumes RNG draws only when a target
    /// exists, keeping the stream deterministic per plan.
    fn pick_tpp_bit(rng: &mut StdRng, frame: &[u8]) -> Option<(usize, u8)> {
        let parsed = Frame::new_checked(frame).ok()?;
        if !parsed.is_tpp() {
            return None;
        }
        let tpp = TppPacket::new_checked(parsed.payload()).ok()?;
        let len = tpp.tpp_len();
        if len == 0 {
            return None;
        }
        let byte = ETHERNET_HEADER_LEN + rng.gen_range(0..len);
        let bit = rng.gen_range(0..8u32) as u8;
        Some((byte, bit))
    }

    /// Invoke a host-app callback and apply the actions it requested.
    fn call_host<F>(&mut self, h: HostId, f: F)
    where
        F: FnOnce(&mut dyn HostApp, &mut HostCtx<'_>),
    {
        // Reuse one scratch buffer across all callbacks instead of
        // allocating a fresh Vec per invocation. `call_host` never
        // re-enters itself (applying actions only pushes events), so
        // taking the buffer out of `self` for the duration is safe.
        let mut actions = std::mem::take(&mut self.host_actions);
        {
            let host = &mut self.hosts[h.0];
            let mut ctx = HostCtx {
                now_ns: self.now_ns,
                host: h,
                mac: host.mac,
                actions: &mut actions,
                pool: &mut self.frame_pool,
            };
            f(host.app.as_mut(), &mut ctx);
        }
        for action in actions.drain(..) {
            match action {
                HostAction::Send(frame) => {
                    self.hosts[h.0].nic_queue.push_back(frame);
                    self.try_tx_host(h);
                }
                HostAction::Timer { delay_ns, token } => {
                    self.events
                        .push(self.now_ns + delay_ns, EventKind::Timer { host: h, token });
                }
            }
        }
        self.host_actions = actions;
    }
}
