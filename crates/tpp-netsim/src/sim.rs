//! The simulator core: topology wiring, the event loop, and link
//! transmission logic.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{EventKind, EventQueue, NodeRef};
use crate::node::{HostAction, HostApp, HostCtx, HostId, SwitchId};
use crate::time::tx_time_ns;
use tpp_asic::{Asic, AsicConfig, Outcome, PortId};
use tpp_telemetry::{MetricsRegistry, SharedSink};
use tpp_wire::ethernet::Frame;
use tpp_wire::tpp::TppPacket;
use tpp_wire::EthernetAddress;

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A numbered port of a switch.
    SwitchPort(SwitchId, PortId),
    /// A host's NIC (hosts have exactly one port).
    Host(HostId),
}

impl Endpoint {
    /// A switch port endpoint.
    pub fn switch(switch: SwitchId, port: PortId) -> Self {
        Endpoint::SwitchPort(switch, port)
    }

    /// A host endpoint.
    pub fn host(host: HostId) -> Self {
        Endpoint::Host(host)
    }

    fn node(self) -> NodeRef {
        match self {
            Endpoint::SwitchPort(s, _) => NodeRef::Switch(s),
            Endpoint::Host(h) => NodeRef::Host(h),
        }
    }

    fn port(self) -> PortId {
        match self {
            Endpoint::SwitchPort(_, p) => p,
            Endpoint::Host(_) => 0,
        }
    }
}

/// Builder for a [`Simulator`].
pub struct NetworkBuilder {
    switches: Vec<AsicConfig>,
    hosts: Vec<(Box<dyn HostApp>, u32)>,
    links: Vec<(Endpoint, Endpoint, u64)>,
    tick_interval_ns: u64,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// An empty network.
    pub fn new() -> Self {
        NetworkBuilder {
            switches: Vec::new(),
            hosts: Vec::new(),
            links: Vec::new(),
            tick_interval_ns: crate::time::millis(1),
        }
    }

    /// How often switch utilization EWMAs tick (default 1 ms).
    pub fn tick_interval_ns(&mut self, ns: u64) -> &mut Self {
        self.tick_interval_ns = ns;
        self
    }

    /// Add a switch; returns its id.
    pub fn add_switch(&mut self, config: AsicConfig) -> SwitchId {
        self.switches.push(config);
        SwitchId(self.switches.len() - 1)
    }

    /// Add a host running `app`, with a NIC of `nic_rate_kbps`; returns
    /// its id. The host's MAC is `EthernetAddress::from_host_id(id)`.
    pub fn add_host(&mut self, app: Box<dyn HostApp>, nic_rate_kbps: u32) -> HostId {
        self.hosts.push((app, nic_rate_kbps));
        HostId(self.hosts.len() - 1)
    }

    /// Connect two endpoints with a full-duplex link of propagation delay
    /// `delay_ns`. Serialization rate in each direction comes from the
    /// transmitting side (the switch port's configured capacity, or the
    /// host's NIC rate).
    pub fn connect(&mut self, a: Endpoint, b: Endpoint, delay_ns: u64) {
        self.links.push((a, b, delay_ns));
    }

    /// Build the simulator.
    ///
    /// # Panics
    /// Panics on invalid wiring: out-of-range switch ports or endpoints
    /// used by more than one link. These are construction-time programmer
    /// errors, not runtime conditions.
    pub fn build(self) -> Simulator {
        let switches: Vec<SwitchNode> = self
            .switches
            .into_iter()
            .map(|cfg| {
                let ports = cfg.num_ports();
                SwitchNode {
                    asic: Asic::new(cfg),
                    tx_busy: vec![false; ports],
                }
            })
            .collect();
        let hosts: Vec<HostNode> = self
            .hosts
            .into_iter()
            .enumerate()
            .map(|(i, (app, rate))| HostNode {
                app,
                mac: EthernetAddress::from_host_id(i as u32),
                nic_rate_kbps: rate,
                nic_queue: VecDeque::new(),
                nic_busy: false,
            })
            .collect();

        let mut conn: HashMap<(NodeRef, PortId), Link> = HashMap::new();
        for (a, b, delay) in &self.links {
            for ep in [a, b] {
                if let Endpoint::SwitchPort(s, p) = ep {
                    assert!(
                        s.0 < switches.len() && (*p as usize) < switches[s.0].asic.num_ports(),
                        "link endpoint {ep:?} out of range"
                    );
                }
                if let Endpoint::Host(h) = ep {
                    assert!(h.0 < hosts.len(), "link endpoint {ep:?} out of range");
                }
            }
            let ka = (a.node(), a.port());
            let kb = (b.node(), b.port());
            assert!(
                !conn.contains_key(&ka) && !conn.contains_key(&kb),
                "endpoint used by two links: {a:?} <-> {b:?}"
            );
            conn.insert(
                ka,
                Link {
                    peer: b.node(),
                    peer_port: b.port(),
                    delay_ns: *delay,
                    loss_permille: 0,
                },
            );
            conn.insert(
                kb,
                Link {
                    peer: a.node(),
                    peer_port: a.port(),
                    delay_ns: *delay,
                    loss_permille: 0,
                },
            );
        }

        Simulator {
            now_ns: 0,
            started: false,
            events: EventQueue::new(),
            switches,
            hosts,
            conn,
            tick_interval_ns: self.tick_interval_ns,
            rng: StdRng::seed_from_u64(0x7199_7199),
            link_losses: HashMap::new(),
            taps: HashMap::new(),
            metrics: MetricsRegistry::new(),
        }
    }
}

/// Which way a tapped frame was travelling relative to the tap point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDir {
    /// The tapped endpoint transmitted the frame.
    Tx,
    /// The tapped endpoint received the frame.
    Rx,
}

/// A captured frame summary — the simulator's pcap analogue. Summaries,
/// not copies: taps are for understanding experiments, not for giving
/// end-host code a side channel around the TPP interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapRecord {
    /// Capture time, ns.
    pub t_ns: u64,
    /// Direction relative to the tapped endpoint.
    pub dir: TapDir,
    /// Frame length in bytes.
    pub len: usize,
    /// EtherType.
    pub ethertype: u16,
    /// Source MAC.
    pub src: EthernetAddress,
    /// Destination MAC.
    pub dst: EthernetAddress,
    /// For TPP frames: the hop counter at capture time.
    pub tpp_hop: Option<u8>,
}

impl TapRecord {
    fn capture(t_ns: u64, dir: TapDir, frame: &[u8]) -> Option<TapRecord> {
        let parsed = Frame::new_checked(frame).ok()?;
        let tpp_hop = if parsed.is_tpp() {
            TppPacket::new_checked(parsed.payload())
                .ok()
                .map(|t| t.hop())
        } else {
            None
        };
        Some(TapRecord {
            t_ns,
            dir,
            len: frame.len(),
            ethertype: parsed.ethertype().0,
            src: parsed.src_addr(),
            dst: parsed.dst_addr(),
            tpp_hop,
        })
    }
}

/// One direction of a link: the peer and the channel properties.
#[derive(Debug, Clone, Copy)]
struct Link {
    peer: NodeRef,
    peer_port: PortId,
    delay_ns: u64,
    /// In-flight loss probability in per-mille. 0 = lossless (and the
    /// RNG is never consulted, so lossless runs are unchanged by the
    /// feature). Models a fading wireless channel; set per direction
    /// via [`Simulator::set_link_loss`].
    loss_permille: u16,
}

struct SwitchNode {
    asic: Asic,
    tx_busy: Vec<bool>,
}

struct HostNode {
    app: Box<dyn HostApp>,
    mac: EthernetAddress,
    nic_rate_kbps: u32,
    nic_queue: VecDeque<Vec<u8>>,
    nic_busy: bool,
}

/// The assembled network simulation.
pub struct Simulator {
    now_ns: u64,
    started: bool,
    events: EventQueue,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
    conn: HashMap<(NodeRef, PortId), Link>,
    tick_interval_ns: u64,
    rng: StdRng,
    link_losses: HashMap<(NodeRef, PortId), u64>,
    taps: HashMap<(NodeRef, PortId), Vec<TapRecord>>,
    /// Fleet-wide metrics, rebuilt from every switch on each stats tick.
    metrics: MetricsRegistry,
}

impl Simulator {
    /// Current simulation time, ns.
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Immutable access to a switch's ASIC (for sampling ground truth in
    /// experiments and tests).
    pub fn switch(&self, id: SwitchId) -> &Asic {
        &self.switches[id.0].asic
    }

    /// Mutable access to a switch's ASIC (control-plane operations:
    /// installing routes, flow entries, SRAM initialization).
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut Asic {
        &mut self.switches[id.0].asic
    }

    /// A host's MAC address.
    pub fn host_mac(&self, id: HostId) -> EthernetAddress {
        self.hosts[id.0].mac
    }

    /// Downcast a host's app to its concrete type.
    ///
    /// # Panics
    /// Panics if the app at `id` is not a `T`.
    pub fn host_app<T: HostApp>(&self, id: HostId) -> &T {
        self.hosts[id.0]
            .app
            .as_any()
            .downcast_ref::<T>()
            .expect("host app type mismatch")
    }

    /// Mutable downcast of a host's app.
    ///
    /// # Panics
    /// Panics if the app at `id` is not a `T`.
    pub fn host_app_mut<T: HostApp>(&mut self, id: HostId) -> &mut T {
        self.hosts[id.0]
            .app
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("host app type mismatch")
    }

    /// Bytes currently backlogged in a host's NIC queue.
    pub fn host_nic_backlog(&self, id: HostId) -> usize {
        self.hosts[id.0].nic_queue.iter().map(Vec::len).sum()
    }

    /// Set the in-flight loss probability (per-mille) of the link
    /// direction transmitted from `from`. Models a degrading wireless
    /// channel; change it over time to model fading.
    ///
    /// # Panics
    /// Panics if `from` is not connected.
    pub fn set_link_loss(&mut self, from: Endpoint, loss_permille: u16) {
        let key = (from.node(), from.port());
        let link = self
            .conn
            .get_mut(&key)
            .unwrap_or_else(|| panic!("{from:?} is not connected"));
        link.loss_permille = loss_permille.min(1000);
    }

    /// Frames lost in flight on the link direction transmitted from
    /// `from`.
    pub fn link_losses(&self, from: Endpoint) -> u64 {
        self.link_losses
            .get(&(from.node(), from.port()))
            .copied()
            .unwrap_or(0)
    }

    /// Start capturing frame summaries at an endpoint (both directions).
    pub fn enable_tap(&mut self, at: Endpoint) {
        self.taps.entry((at.node(), at.port())).or_default();
    }

    /// The frames captured at a tapped endpoint so far (empty for
    /// untapped endpoints).
    pub fn tap_records(&self, at: Endpoint) -> &[TapRecord] {
        self.taps
            .get(&(at.node(), at.port()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn tap(&mut self, node: NodeRef, port: PortId, dir: TapDir, frame: &[u8]) {
        let now = self.now_ns;
        if let Some(records) = self.taps.get_mut(&(node, port)) {
            if let Some(record) = TapRecord::capture(now, dir, frame) {
                records.push(record);
            }
        }
    }

    /// Attach one shared trace sink (a ring buffer of `capacity` events)
    /// to every switch, so the whole fleet's pipeline events interleave
    /// in one stream ordered by emission. Returns a handle to read the
    /// events back; call again to replace the fleet's sink.
    pub fn trace_all(&mut self, capacity: usize) -> SharedSink {
        let sink = SharedSink::new(capacity);
        for sw in &mut self.switches {
            sw.asic.set_trace_sink(Some(Box::new(sink.clone())));
        }
        sink
    }

    /// Attach a shared trace sink to one switch only.
    pub fn trace_switch(&mut self, id: SwitchId, capacity: usize) -> SharedSink {
        let sink = SharedSink::new(capacity);
        self.switches[id.0]
            .asic
            .set_trace_sink(Some(Box::new(sink.clone())));
        sink
    }

    /// Detach every switch's trace sink.
    pub fn trace_off(&mut self) {
        for sw in &mut self.switches {
            sw.asic.set_trace_sink(None);
        }
    }

    /// The fleet-wide metrics registry, rebuilt from every switch's
    /// registers on the most recent stats tick (counters summed across
    /// switches, distributions merged). Empty before the first tick.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Install L2 forwarding entries for every host at every switch along
    /// shortest paths (BFS over the physical topology). Call once after
    /// `build()`; this plays the role of a pre-converged control plane.
    pub fn populate_l2(&mut self) {
        for h in 0..self.hosts.len() {
            let host = HostId(h);
            let mac = self.hosts[h].mac;
            // BFS from the host; `reached_via` is the port at each
            // discovered switch that faces back toward the host.
            let mut visited: HashMap<NodeRef, ()> = HashMap::new();
            let mut frontier: VecDeque<NodeRef> = VecDeque::new();
            let start = NodeRef::Host(host);
            visited.insert(start, ());
            frontier.push_back(start);
            while let Some(node) = frontier.pop_front() {
                let ports: Vec<PortId> = match node {
                    NodeRef::Host(_) => vec![0],
                    NodeRef::Switch(s) => {
                        (0..self.switches[s.0].asic.num_ports() as PortId).collect()
                    }
                };
                for port in ports {
                    let Some(&Link {
                        peer, peer_port, ..
                    }) = self.conn.get(&(node, port))
                    else {
                        continue;
                    };
                    if visited.contains_key(&peer) {
                        continue;
                    }
                    visited.insert(peer, ());
                    if let NodeRef::Switch(s) = peer {
                        // At `peer`, the way back toward the host is the
                        // port we arrived on.
                        self.switches[s.0].asic.l2_mut().insert(mac, peer_port);
                        frontier.push_back(peer);
                    }
                    // Hosts terminate the search along this branch but
                    // are still marked visited.
                }
            }
        }
    }

    /// Run the event loop until simulation time `t_end_ns`.
    ///
    /// May be called repeatedly with increasing times; experiments step
    /// the clock in increments to sample ground-truth state in between.
    pub fn run_until(&mut self, t_end_ns: u64) {
        if !self.started {
            self.started = true;
            self.events
                .push(self.now_ns + self.tick_interval_ns, EventKind::StatsTick);
            for h in 0..self.hosts.len() {
                self.call_host(HostId(h), |app, ctx| app.on_start(ctx));
            }
        }
        while let Some(t) = self.events.peek_time() {
            if t > t_end_ns {
                break;
            }
            let event = self.events.pop().expect("peeked");
            self.now_ns = event.time;
            self.dispatch(event.kind);
        }
        self.now_ns = self.now_ns.max(t_end_ns);
    }

    /// Run until the event queue only contains future stats ticks (i.e.
    /// all traffic has drained), or `t_limit_ns` is reached.
    pub fn run_until_quiescent(&mut self, t_limit_ns: u64) {
        // StatsTicks self-perpetuate, so "quiescent" means stepping tick
        // by tick until no other events remain.
        while self.now_ns < t_limit_ns {
            let next = self.now_ns + self.tick_interval_ns;
            self.run_until(next.min(t_limit_ns));
            if self.events.len() <= 1 {
                break;
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::FrameArrive { node, port, frame } => match node {
                NodeRef::Switch(s) => {
                    self.tap(node, port, TapDir::Rx, &frame);
                    let now = self.now_ns;
                    let outcome = self.switches[s.0].asic.handle_frame(frame, port, now);
                    if let Outcome::Enqueued { port: out, .. } = outcome {
                        self.try_tx_switch(s, out);
                    }
                }
                NodeRef::Host(h) => {
                    self.tap(node, 0, TapDir::Rx, &frame);
                    self.call_host(h, |app, ctx| app.on_frame(frame, ctx));
                }
            },
            EventKind::LinkFree { node, port } => match node {
                NodeRef::Switch(s) => {
                    self.switches[s.0].tx_busy[port as usize] = false;
                    self.try_tx_switch(s, port);
                }
                NodeRef::Host(h) => {
                    self.hosts[h.0].nic_busy = false;
                    self.try_tx_host(h);
                }
            },
            EventKind::Timer { host, token } => {
                self.call_host(host, |app, ctx| app.on_timer(token, ctx));
            }
            EventKind::StatsTick => {
                let now = self.now_ns;
                for sw in &mut self.switches {
                    sw.asic.tick(now);
                }
                self.metrics.clear();
                for sw in &self.switches {
                    sw.asic.export_metrics(&mut self.metrics);
                }
                self.events
                    .push(now + self.tick_interval_ns, EventKind::StatsTick);
            }
        }
    }

    /// Start transmitting the next queued frame on a switch port, if the
    /// transmitter is idle and the port is connected.
    fn try_tx_switch(&mut self, s: SwitchId, port: PortId) {
        if self.switches[s.0].tx_busy[port as usize] {
            return;
        }
        let Some(&link) = self.conn.get(&(NodeRef::Switch(s), port)) else {
            // Unconnected port: black-hole anything queued there.
            while self.switches[s.0].asic.dequeue(port).is_some() {}
            return;
        };
        let Some(frame) = self.switches[s.0].asic.dequeue(port) else {
            return;
        };
        let rate = self.switches[s.0].asic.port_capacity_kbps(port);
        let tx = tx_time_ns(frame.len(), rate);
        self.switches[s.0].tx_busy[port as usize] = true;
        self.events.push(
            self.now_ns + tx,
            EventKind::LinkFree {
                node: NodeRef::Switch(s),
                port,
            },
        );
        self.transmit(NodeRef::Switch(s), port, link, tx, frame);
    }

    /// Start transmitting the next queued frame from a host NIC.
    fn try_tx_host(&mut self, h: HostId) {
        if self.hosts[h.0].nic_busy {
            return;
        }
        let Some(&link) = self.conn.get(&(NodeRef::Host(h), 0)) else {
            self.hosts[h.0].nic_queue.clear();
            return;
        };
        let Some(frame) = self.hosts[h.0].nic_queue.pop_front() else {
            return;
        };
        let rate = self.hosts[h.0].nic_rate_kbps;
        let tx = tx_time_ns(frame.len(), rate);
        self.hosts[h.0].nic_busy = true;
        self.events.push(
            self.now_ns + tx,
            EventKind::LinkFree {
                node: NodeRef::Host(h),
                port: 0,
            },
        );
        self.transmit(NodeRef::Host(h), 0, link, tx, frame);
    }

    /// Put a frame on the wire: deliver after serialization +
    /// propagation, unless the channel eats it.
    fn transmit(&mut self, from: NodeRef, port: PortId, link: Link, tx_ns: u64, frame: Vec<u8>) {
        self.tap(from, port, TapDir::Tx, &frame);
        if link.loss_permille > 0 && self.rng.gen_range(0..1000u32) < link.loss_permille as u32 {
            *self.link_losses.entry((from, port)).or_insert(0) += 1;
            return;
        }
        self.events.push(
            self.now_ns + tx_ns + link.delay_ns,
            EventKind::FrameArrive {
                node: link.peer,
                port: link.peer_port,
                frame,
            },
        );
    }

    /// Invoke a host-app callback and apply the actions it requested.
    fn call_host<F>(&mut self, h: HostId, f: F)
    where
        F: FnOnce(&mut dyn HostApp, &mut HostCtx<'_>),
    {
        let mut actions = Vec::new();
        {
            let host = &mut self.hosts[h.0];
            let mut ctx = HostCtx {
                now_ns: self.now_ns,
                host: h,
                mac: host.mac,
                actions: &mut actions,
            };
            f(host.app.as_mut(), &mut ctx);
        }
        for action in actions {
            match action {
                HostAction::Send(frame) => {
                    self.hosts[h.0].nic_queue.push_back(frame);
                    self.try_tx_host(h);
                }
                HostAction::Timer { delay_ns, token } => {
                    self.events
                        .push(self.now_ns + delay_ns, EventKind::Timer { host: h, token });
                }
            }
        }
    }
}
