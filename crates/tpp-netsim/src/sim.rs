//! The simulator core: topology wiring, the sharded run loop, and the
//! public control surface.
//!
//! The event loop itself lives in [`crate::shard`]; this module owns the
//! topology arrays, partitions them into shards at build time, drives
//! the window schedule (and the stats-tick barrier), and re-aggregates
//! per-shard state (fault counters, losses, pools, taps) behind the same
//! accessors the single-threaded simulator had.

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{RunLimit, SimConfig};
use crate::event::{node_port_key, Event, EventKey, EventKind, FaultApply, NodeId};
use crate::fault::{ChannelProfile, FaultAction, FaultCounters, FaultPlan};
use crate::node::{HostApp, HostId, SwitchId};
use crate::series::{permille, SeriesSet};
use crate::shard::{mix64, run_windows_parallel, step_shards, ShardRun, ShardState};
use tpp_asic::{Asic, AsicConfig, PortId, ProgramInterner};
use tpp_telemetry::{MetricsRegistry, SharedSink};
use tpp_wire::ethernet::Frame;
use tpp_wire::tpp::TppPacket;
use tpp_wire::EthernetAddress;

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A numbered port of a switch.
    SwitchPort(SwitchId, PortId),
    /// A host's first NIC (shorthand for `HostPort(h, 0)`; the common
    /// single-homed case).
    Host(HostId),
    /// A numbered NIC of a multi-homed host (see
    /// [`NetworkBuilder::add_host_multi`]).
    HostPort(HostId, PortId),
}

impl Endpoint {
    /// A switch port endpoint.
    pub fn switch(switch: SwitchId, port: PortId) -> Self {
        Endpoint::SwitchPort(switch, port)
    }

    /// A host endpoint (NIC 0).
    pub fn host(host: HostId) -> Self {
        Endpoint::Host(host)
    }

    /// A specific NIC of a multi-homed host.
    pub fn host_port(host: HostId, port: PortId) -> Self {
        Endpoint::HostPort(host, port)
    }

    fn node(self) -> NodeId {
        match self {
            Endpoint::SwitchPort(s, _) => NodeId::switch(s),
            Endpoint::Host(h) | Endpoint::HostPort(h, _) => NodeId::host(h),
        }
    }

    fn port(self) -> PortId {
        match self {
            Endpoint::SwitchPort(_, p) | Endpoint::HostPort(_, p) => p,
            Endpoint::Host(_) => 0,
        }
    }
}

/// Builder for a [`Simulator`]: the topology description consumed by
/// [`NetworkBuilder::build`].
pub struct NetworkBuilder {
    switches: Vec<AsicConfig>,
    hosts: Vec<(Box<dyn HostApp>, u32, u16)>,
    links: Vec<(Endpoint, Endpoint, u64)>,
    config: SimConfig,
}

/// Role alias: the builder *is* the topology half of the
/// `SimConfig + Topology → Simulator` surface.
pub type Topology = NetworkBuilder;

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// An empty network under the default [`SimConfig`].
    pub fn new() -> Self {
        NetworkBuilder::with_config(SimConfig::default())
    }

    /// An empty network under an explicit configuration.
    pub fn with_config(config: SimConfig) -> Self {
        NetworkBuilder {
            switches: Vec::new(),
            hosts: Vec::new(),
            links: Vec::new(),
            config,
        }
    }

    /// Add a switch; returns its id.
    pub fn add_switch(&mut self, config: AsicConfig) -> SwitchId {
        self.switches.push(config);
        SwitchId(self.switches.len() - 1)
    }

    /// Add a host running `app`, with a single NIC of `nic_rate_kbps`;
    /// returns its id. The host's MAC is
    /// `EthernetAddress::from_host_id(id)`.
    pub fn add_host(&mut self, app: Box<dyn HostApp>, nic_rate_kbps: u32) -> HostId {
        self.add_host_multi(app, nic_rate_kbps, 1)
    }

    /// Add a multi-homed host with `ports` independent NICs, each of
    /// `nic_rate_kbps`. NIC `p` is addressed as
    /// [`Endpoint::host_port`]`(id, p)` when wiring links, and apps pick
    /// a NIC per frame with [`crate::HostCtx::send_on`]. All NICs share
    /// the host's single MAC: which paths lead where is a property of
    /// the wiring, and bonding logic above decides how to spread load.
    pub fn add_host_multi(
        &mut self,
        app: Box<dyn HostApp>,
        nic_rate_kbps: u32,
        ports: u16,
    ) -> HostId {
        assert!(ports > 0, "a host needs at least one NIC");
        self.hosts.push((app, nic_rate_kbps, ports));
        HostId(self.hosts.len() - 1)
    }

    /// Connect two endpoints with a full-duplex link of propagation delay
    /// `delay_ns`. Serialization rate in each direction comes from the
    /// transmitting side (the switch port's configured capacity, or the
    /// host's NIC rate).
    pub fn connect(&mut self, a: Endpoint, b: Endpoint, delay_ns: u64) {
        self.links.push((a, b, delay_ns));
    }

    /// Build the simulator: wire the dense adjacency, partition nodes
    /// into shards, compute the conservative lookahead (the minimum
    /// inter-shard propagation delay) and the control-plane L2 tables.
    ///
    /// The shard count is clamped to the node count, and a topology with
    /// a zero-delay link crossing a shard boundary falls back to one
    /// shard (zero lookahead would serialize the windows anyway). Seeded
    /// results are bit-identical for every shard count.
    ///
    /// # Panics
    /// Panics on invalid wiring: out-of-range switch ports or endpoints
    /// used by more than one link. These are construction-time programmer
    /// errors, not runtime conditions.
    pub fn build(self) -> Simulator {
        let cfg = self.config;
        // One fleet-wide program interner: every switch's decode cache
        // fills from it, so a program appearing at N switches is decoded
        // once and shares one allocation.
        let interner = ProgramInterner::new();
        let switches: Vec<SwitchNode> = self
            .switches
            .into_iter()
            .map(|config| {
                let ports = config.num_ports();
                let mut asic = Asic::new(config);
                asic.set_program_interner(interner.clone());
                SwitchNode {
                    asic,
                    tx_busy: vec![false; ports],
                }
            })
            .collect();
        let hosts: Vec<HostNode> = self
            .hosts
            .into_iter()
            .enumerate()
            .map(|(i, (app, rate, ports))| HostNode {
                app,
                mac: EthernetAddress::from_host_id(i as u32),
                nics: (0..ports)
                    .map(|_| Nic {
                        rate_kbps: rate,
                        queue: VecDeque::new(),
                        busy: false,
                    })
                    .collect(),
                timer_seq: 0,
            })
            .collect();

        // Dense adjacency: one slot per (node, port), so the per-frame
        // hot path indexes an array instead of probing a HashMap.
        let mut switch_links: Vec<Vec<Option<Link>>> = switches
            .iter()
            .map(|sw| {
                let ports = sw.asic.num_ports();
                let mut v = Vec::with_capacity(ports);
                v.resize_with(ports, || None);
                v
            })
            .collect();
        let mut host_links: Vec<Vec<Option<Link>>> = hosts
            .iter()
            .map(|h| {
                let mut v = Vec::with_capacity(h.nics.len());
                v.resize_with(h.nics.len(), || None);
                v
            })
            .collect();
        for (a, b, delay) in &self.links {
            for ep in [a, b] {
                match ep {
                    Endpoint::SwitchPort(s, p) => assert!(
                        s.0 < switches.len() && (*p as usize) < switches[s.0].asic.num_ports(),
                        "link endpoint {ep:?} out of range"
                    ),
                    Endpoint::Host(h) | Endpoint::HostPort(h, _) => assert!(
                        h.0 < hosts.len() && (ep.port() as usize) < hosts[h.0].nics.len(),
                        "link endpoint {ep:?} out of range"
                    ),
                }
            }
            for (ep, peer) in [(a, b), (b, a)] {
                let link = Link {
                    peer: peer.node(),
                    peer_port: peer.port(),
                    peer_shard: 0,
                    delay_ns: *delay,
                    loss_permille: 0,
                    up: true,
                    faults: ChannelProfile::default(),
                    profile: None,
                    key: node_port_key(ep.node(), ep.port()),
                    seq: 0,
                    losses: 0,
                    loss_rng: None,
                    fault_rng: None,
                    fault_rng_epoch: 0,
                };
                let slot = match ep {
                    Endpoint::SwitchPort(s, p) => &mut switch_links[s.0][*p as usize],
                    Endpoint::Host(h) | Endpoint::HostPort(h, _) => {
                        &mut host_links[h.0][ep.port() as usize]
                    }
                };
                assert!(
                    slot.is_none(),
                    "endpoint used by two links: {a:?} <-> {b:?}"
                );
                *slot = Some(link);
            }
        }

        // Partition: contiguous blocks of switch and host indices per
        // shard. Retry at one shard if any inter-shard link has zero
        // propagation delay (no usable lookahead).
        let total_nodes = switches.len() + hosts.len();
        let mut num_shards = cfg.shards.clamp(1, total_nodes.max(1));
        let (switch_shard, host_shard, switch_ranges, host_ranges, lookahead_ns) = loop {
            let switch_ranges = block_ranges(switches.len(), num_shards);
            let host_ranges = block_ranges(hosts.len(), num_shards);
            let switch_shard = expand_ranges(&switch_ranges, switches.len());
            let host_shard = expand_ranges(&host_ranges, hosts.len());
            let shard_of = |node: NodeId| {
                if node.is_host() {
                    host_shard[node.index()]
                } else {
                    switch_shard[node.index()]
                }
            };
            let mut lookahead_ns = u64::MAX;
            let mut zero_delay_cross = false;
            let mut visit = |own: usize, link: &Link| {
                if shard_of(link.peer) != own {
                    if link.delay_ns == 0 {
                        zero_delay_cross = true;
                    }
                    lookahead_ns = lookahead_ns.min(link.delay_ns);
                }
            };
            for (s, ports) in switch_links.iter().enumerate() {
                for link in ports.iter().flatten() {
                    visit(switch_shard[s], link);
                }
            }
            for (h, ports) in host_links.iter().enumerate() {
                for link in ports.iter().flatten() {
                    visit(host_shard[h], link);
                }
            }
            if zero_delay_cross && num_shards > 1 {
                num_shards = 1;
                continue;
            }
            break (
                switch_shard,
                host_shard,
                switch_ranges,
                host_ranges,
                lookahead_ns,
            );
        };
        let shard_of = |node: NodeId| {
            if node.is_host() {
                host_shard[node.index()]
            } else {
                switch_shard[node.index()]
            }
        };
        for link in switch_links.iter_mut().flatten().flatten() {
            link.peer_shard = shard_of(link.peer);
        }
        for link in host_links.iter_mut().flatten().flatten() {
            link.peer_shard = shard_of(link.peer);
        }

        let l2_routes = compute_l2_routes(&switches, &hosts, &switch_links, &host_links);
        let ecmp = cfg.ecmp.then(|| {
            crate::routing::EcmpTable::build(
                cfg.seed,
                &switches,
                &hosts,
                &switch_links,
                &host_links,
            )
        });
        let series = cfg.series_capacity.map(|cap| {
            let ids: Vec<u32> = switches.iter().map(|sw| sw.asic.switch_id()).collect();
            SeriesSet::new(&ids, cap)
        });

        Simulator {
            now_ns: 0,
            started: false,
            next_tick_ns: 0,
            tick_interval_ns: cfg.tick_interval_ns,
            seed: cfg.seed,
            parallel: cfg.parallel,
            num_shards,
            lookahead_ns,
            switches,
            hosts,
            switch_links,
            host_links,
            switch_ranges,
            host_ranges,
            switch_shard,
            host_shard,
            shards: (0..num_shards)
                .map(|_| ShardState::new(cfg.frame_pool_buffers))
                .collect(),
            inboxes: (0..num_shards).map(|_| Mutex::new(Vec::new())).collect(),
            l2_routes,
            ecmp,
            fault_seed: 0,
            fault_epoch: 0,
            next_fault_entry: 0,
            metrics: MetricsRegistry::new(),
            fleet_sink: None,
            series,
            interner,
        }
    }
}

fn block_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    (0..shards)
        .map(|k| (k * n / shards)..((k + 1) * n / shards))
        .collect()
}

fn expand_ranges(ranges: &[Range<usize>], n: usize) -> Vec<usize> {
    let mut owner = vec![0usize; n];
    for (k, range) in ranges.iter().enumerate() {
        for slot in &mut owner[range.clone()] {
            *slot = k;
        }
    }
    owner
}

fn peek_link<'a>(
    switch_links: &'a [Vec<Option<Link>>],
    host_links: &'a [Vec<Option<Link>>],
    node: NodeId,
    port: PortId,
) -> Option<&'a Link> {
    if node.is_host() {
        host_links[node.index()]
            .get(port as usize)
            .and_then(Option::as_ref)
    } else {
        switch_links[node.index()]
            .get(port as usize)
            .and_then(Option::as_ref)
    }
}

/// Shortest-path L2 tables (BFS over the physical topology), computed
/// once at build time: `routes[s]` lists the `(mac, out_port)` entries
/// switch `s` needs for every host. [`Simulator::populate_l2`] installs
/// them; a rebooted switch restores only its own slice — which is what
/// lets `SwitchReboot` stay shard-local.
fn compute_l2_routes(
    switches: &[SwitchNode],
    hosts: &[HostNode],
    switch_links: &[Vec<Option<Link>>],
    host_links: &[Vec<Option<Link>>],
) -> Vec<Vec<(EthernetAddress, PortId)>> {
    let mut routes: Vec<Vec<(EthernetAddress, PortId)>> = vec![Vec::new(); switches.len()];
    for (h, host) in hosts.iter().enumerate() {
        let mac = host.mac;
        // BFS from the host; at each discovered switch, the way back
        // toward the host is the port the search arrived on.
        let mut visited: HashMap<NodeId, ()> = HashMap::new();
        let mut frontier: VecDeque<NodeId> = VecDeque::new();
        let start = NodeId::host(HostId(h));
        visited.insert(start, ());
        frontier.push_back(start);
        while let Some(node) = frontier.pop_front() {
            let ports: u16 = if node.is_host() {
                hosts[node.index()].nics.len() as u16
            } else {
                switches[node.index()].asic.num_ports() as u16
            };
            for port in 0..ports {
                let Some(link) = peek_link(switch_links, host_links, node, port) else {
                    continue;
                };
                let (peer, peer_port) = (link.peer, link.peer_port);
                if visited.contains_key(&peer) {
                    continue;
                }
                visited.insert(peer, ());
                if !peer.is_host() {
                    routes[peer.index()].push((mac, peer_port));
                    frontier.push_back(peer);
                }
                // Hosts terminate the search along this branch but are
                // still marked visited.
            }
        }
    }
    routes
}

/// Which way a tapped frame was travelling relative to the tap point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDir {
    /// The tapped endpoint transmitted the frame.
    Tx,
    /// The tapped endpoint received the frame.
    Rx,
}

/// A captured frame summary — the simulator's pcap analogue. Summaries,
/// not copies: taps are for understanding experiments, not for giving
/// end-host code a side channel around the TPP interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapRecord {
    /// Capture time, ns.
    pub t_ns: u64,
    /// Direction relative to the tapped endpoint.
    pub dir: TapDir,
    /// Frame length in bytes.
    pub len: usize,
    /// EtherType.
    pub ethertype: u16,
    /// Source MAC.
    pub src: EthernetAddress,
    /// Destination MAC.
    pub dst: EthernetAddress,
    /// For TPP frames: the hop counter at capture time.
    pub tpp_hop: Option<u8>,
}

impl TapRecord {
    pub(crate) fn capture(t_ns: u64, dir: TapDir, frame: &[u8]) -> Option<TapRecord> {
        let parsed = Frame::new_checked(frame).ok()?;
        let tpp_hop = if parsed.is_tpp() {
            TppPacket::new_checked(parsed.payload())
                .ok()
                .map(|t| t.hop())
        } else {
            None
        };
        Some(TapRecord {
            t_ns,
            dir,
            len: frame.len(),
            ethertype: parsed.ethertype().0,
            src: parsed.src_addr(),
            dst: parsed.dst_addr(),
            tpp_hop,
        })
    }
}

/// One direction of a link: the peer, the channel properties, and the
/// direction-owned determinism state (frame sequence counter and the
/// lazily-armed per-direction RNG streams).
#[derive(Debug)]
pub(crate) struct Link {
    pub(crate) peer: NodeId,
    pub(crate) peer_port: PortId,
    /// Shard owning the receiving node; transmissions to another shard
    /// go through its mailbox.
    pub(crate) peer_shard: usize,
    pub(crate) delay_ns: u64,
    /// In-flight loss probability in per-mille. 0 = lossless (and the
    /// RNG is never consulted, so lossless runs are unchanged by the
    /// feature). Models a fading wireless channel; set per direction
    /// via [`Simulator::set_link_loss`].
    pub(crate) loss_permille: u16,
    /// False while an injected [`FaultAction::LinkDown`] holds the link
    /// down: every frame transmitted on this direction is lost.
    pub(crate) up: bool,
    /// Active channel fault profile (clean outside fault windows; the
    /// fault RNG is never consulted while clean).
    pub(crate) faults: ChannelProfile,
    /// Time-varying link profile (see [`crate::profile::LinkProfile`]):
    /// sampled as a pure function of time, so the extra loss/latency and
    /// the rate scale are identical on every shard. Boxed: unprofiled
    /// links (the common case) pay one pointer.
    pub(crate) profile: Option<Box<crate::profile::LinkProfile>>,
    /// Canonical key of this (transmitting) direction; seeds the
    /// per-direction RNG streams.
    pub(crate) key: u64,
    /// Frames placed on the wire in this direction — the `minor` order
    /// of arrival events at the peer.
    pub(crate) seq: u64,
    /// Frames lost in flight on this direction (channel loss + link-down
    /// drops).
    pub(crate) losses: u64,
    /// Per-direction loss stream, armed by [`Simulator::set_link_loss`]
    /// from `mix64(config seed, key)`. Boxed: lossless links (the common
    /// case) pay one pointer.
    pub(crate) loss_rng: Option<Box<StdRng>>,
    /// Per-direction fault stream, armed lazily from
    /// `mix64(plan seed, key)` on first use after a plan install.
    pub(crate) fault_rng: Option<Box<StdRng>>,
    /// Which plan install `fault_rng` belongs to.
    pub(crate) fault_rng_epoch: u32,
}

pub(crate) struct SwitchNode {
    pub(crate) asic: Asic,
    pub(crate) tx_busy: Vec<bool>,
}

/// One NIC of a host: its own rate, queue and transmitter state, so a
/// multi-homed host's ports serialize independently.
pub(crate) struct Nic {
    pub(crate) rate_kbps: u32,
    pub(crate) queue: VecDeque<Vec<u8>>,
    pub(crate) busy: bool,
}

pub(crate) struct HostNode {
    pub(crate) app: Box<dyn HostApp>,
    pub(crate) mac: EthernetAddress,
    pub(crate) nics: Vec<Nic>,
    /// Per-host timer counter: the `minor` order of this host's timer
    /// events at equal times.
    pub(crate) timer_seq: u64,
}

/// The assembled network simulation.
pub struct Simulator {
    now_ns: u64,
    started: bool,
    /// Absolute time of the next stats tick (valid once started). Ticks
    /// are coordinator-driven barriers, not queue events: every shard
    /// stops strictly before the tick time, the coordinator advances the
    /// EWMAs and samples the series, and the shards resume.
    next_tick_ns: u64,
    tick_interval_ns: u64,
    seed: u64,
    parallel: bool,
    num_shards: usize,
    /// Conservative window length: the minimum propagation delay of any
    /// inter-shard link (`u64::MAX` when nothing crosses a boundary).
    lookahead_ns: u64,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
    /// Dense adjacency: `switch_links[s][p]` is the link transmitted
    /// from switch `s` port `p`; `host_links[h][p]` from host `h`'s NIC
    /// `p`. Indexed arrays instead of a `HashMap<(NodeRef, PortId),
    /// Link>` because `transmit`/`try_tx_*` consult the topology once
    /// per frame.
    switch_links: Vec<Vec<Option<Link>>>,
    host_links: Vec<Vec<Option<Link>>>,
    /// Contiguous index blocks per shard (switches and hosts partition
    /// independently); the slices handed to [`ShardRun`]s split here.
    switch_ranges: Vec<Range<usize>>,
    host_ranges: Vec<Range<usize>>,
    switch_shard: Vec<usize>,
    host_shard: Vec<usize>,
    shards: Vec<ShardState>,
    /// Cross-shard mailboxes, one per destination shard, drained into
    /// the owner's queue at window barriers.
    inboxes: Vec<Mutex<Vec<Event>>>,
    /// Precomputed control-plane L2 tables (see [`compute_l2_routes`]).
    l2_routes: Vec<Vec<(EthernetAddress, PortId)>>,
    /// Equal-cost next-hop groups, built only under [`SimConfig::ecmp`]
    /// (see [`crate::routing`]). Shards read it by shared reference.
    ecmp: Option<crate::routing::EcmpTable>,
    /// Seed of the installed fault plan; per-link fault streams derive
    /// from it.
    fault_seed: u64,
    /// Bumped per [`Simulator::install_faults`] so links re-arm their
    /// fault streams lazily.
    fault_epoch: u32,
    /// Global fault-plan entry counter: preserves plan order at equal
    /// times across installs.
    next_fault_entry: u64,
    /// Fleet-wide metrics, rebuilt lazily from every switch's registers
    /// when [`Simulator::metrics`] is called.
    metrics: MetricsRegistry,
    /// Clone of the fleet trace sink handed out by
    /// [`ObsHandle::trace_all`](crate::ObsHandle::trace_all); shards
    /// record simulator-level fault events into their own clones.
    fleet_sink: Option<SharedSink>,
    /// Ring-buffer time series sampled on every stats tick
    /// (observability plane layer 2); `None` (the default) keeps the
    /// tick handler at one extra branch.
    series: Option<SeriesSet>,
    /// Fleet-wide program interner shared by every switch's decode
    /// cache (see [`ProgramInterner`]).
    interner: ProgramInterner,
}

impl Simulator {
    /// Current simulation time, ns.
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// The effective shard count (the configured count clamped at build
    /// time).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The conservative window length: minimum inter-shard propagation
    /// delay, or `u64::MAX` when no link crosses a shard boundary.
    pub fn lookahead_ns(&self) -> u64 {
        self.lookahead_ns
    }

    /// The equal-cost routing table, when built under
    /// [`SimConfig::ecmp`] (ground truth for routing tests).
    pub fn ecmp_table(&self) -> Option<&crate::routing::EcmpTable> {
        self.ecmp.as_ref()
    }

    /// Total events dispatched so far, summed over shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// The fleet-wide program interner shared by every switch's decode
    /// cache: `(shared, decoded)` counters and distinct-program count
    /// are read through it.
    pub fn program_interner(&self) -> &ProgramInterner {
        &self.interner
    }

    /// Approximate resident heap bytes of one switch's state, averaged
    /// over the fleet: per-switch slabs (SRAM, tables, queues, caches)
    /// plus the shared interner amortized across switches. The FCT
    /// benchmark reports this as `bytes_per_switch`.
    pub fn approx_bytes_per_switch(&self) -> usize {
        if self.switches.is_empty() {
            return 0;
        }
        let per_switch: usize = self
            .switches
            .iter()
            .map(|sw| sw.asic.approx_bytes())
            .sum::<usize>();
        (per_switch + self.interner.approx_bytes()) / self.switches.len()
    }

    /// The link transmitted from `(node, port)`, if connected.
    fn link(&self, node: NodeId, port: PortId) -> Option<&Link> {
        peek_link(&self.switch_links, &self.host_links, node, port)
    }

    /// Mutable view of the link transmitted from `(node, port)`.
    fn link_mut(&mut self, node: NodeId, port: PortId) -> Option<&mut Link> {
        if node.is_host() {
            self.host_links[node.index()]
                .get_mut(port as usize)
                .and_then(Option::as_mut)
        } else {
            self.switch_links[node.index()]
                .get_mut(port as usize)
                .and_then(Option::as_mut)
        }
    }

    fn node_shard(&self, node: NodeId) -> usize {
        if node.is_host() {
            self.host_shard[node.index()]
        } else {
            self.switch_shard[node.index()]
        }
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Immutable access to a switch's ASIC (for sampling ground truth in
    /// experiments and tests).
    pub fn switch(&self, id: SwitchId) -> &Asic {
        &self.switches[id.0].asic
    }

    /// Mutable access to a switch's ASIC (control-plane operations:
    /// installing routes, flow entries, SRAM initialization).
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut Asic {
        &mut self.switches[id.0].asic
    }

    /// A host's MAC address.
    pub fn host_mac(&self, id: HostId) -> EthernetAddress {
        self.hosts[id.0].mac
    }

    /// Downcast a host's app to its concrete type.
    ///
    /// # Panics
    /// Panics if the app at `id` is not a `T`.
    pub fn host_app<T: HostApp>(&self, id: HostId) -> &T {
        self.hosts[id.0]
            .app
            .as_any()
            .downcast_ref::<T>()
            .expect("host app type mismatch")
    }

    /// Mutable downcast of a host's app.
    ///
    /// # Panics
    /// Panics if the app at `id` is not a `T`.
    pub fn host_app_mut<T: HostApp>(&mut self, id: HostId) -> &mut T {
        self.hosts[id.0]
            .app
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("host app type mismatch")
    }

    /// Bytes currently backlogged across all of a host's NIC queues.
    pub fn host_nic_backlog(&self, id: HostId) -> usize {
        self.hosts[id.0]
            .nics
            .iter()
            .flat_map(|nic| nic.queue.iter())
            .map(Vec::len)
            .sum()
    }

    /// Bytes currently backlogged in one NIC queue of a host.
    pub fn host_nic_backlog_on(&self, id: HostId, port: PortId) -> usize {
        self.hosts[id.0].nics[port as usize]
            .queue
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// How many NICs a host has.
    pub fn host_ports(&self, id: HostId) -> u16 {
        self.hosts[id.0].nics.len() as u16
    }

    /// Set the in-flight loss probability (per-mille) of the link
    /// direction transmitted from `from`. Models a degrading wireless
    /// channel; change it over time to model fading. Losses draw from a
    /// per-direction RNG stream seeded from the configured seed and the
    /// direction's canonical key, so outcomes are independent of shard
    /// layout.
    ///
    /// The total effective loss is capped at 1000 ‰ (certain loss); the
    /// returned value is the effective probability at the current
    /// simulation time — the clamped static value *plus* whatever an
    /// installed [`LinkProfile`](crate::profile::LinkProfile) is
    /// currently contributing — so callers see what the wire will
    /// actually do rather than only the static half.
    ///
    /// # Panics
    /// Panics if `from` is not connected.
    pub fn set_link_loss(&mut self, from: Endpoint, loss_permille: u16) -> u16 {
        let seed = self.seed;
        let now = self.now_ns;
        let link = self
            .link_mut(from.node(), from.port())
            .unwrap_or_else(|| panic!("{from:?} is not connected"));
        let stat = loss_permille.min(1000);
        link.loss_permille = stat;
        let profile_max = link.profile.as_ref().map_or(0, |p| p.max_loss_permille());
        if (stat > 0 || profile_max > 0) && link.loss_rng.is_none() {
            link.loss_rng = Some(Box::new(StdRng::seed_from_u64(mix64(seed, link.key))));
        }
        let profile_now = link
            .profile
            .as_ref()
            .map_or(0, |p| p.sample(now).loss_permille);
        (stat as u32 + profile_now as u32).min(1000) as u16
    }

    /// Install (or replace, with `Some`/`None`) the time-varying profile
    /// of the link direction transmitted from `from`. The profile's
    /// extra loss adds to the static [`set_link_loss`](Self::set_link_loss)
    /// value, its extra delay adds to the propagation delay, and its
    /// rate scale stretches serialization time — all sampled as a pure
    /// function of simulation time, so profiled runs stay bit-identical
    /// at every shard count. If the profile can ever contribute loss,
    /// the direction's seeded loss stream is armed here (the same stream
    /// `set_link_loss` arms, so static and profiled loss compose on one
    /// deterministic sequence of dice).
    ///
    /// # Panics
    /// Panics if `from` is not connected.
    pub fn set_link_profile(
        &mut self,
        from: Endpoint,
        profile: Option<crate::profile::LinkProfile>,
    ) {
        let seed = self.seed;
        let link = self
            .link_mut(from.node(), from.port())
            .unwrap_or_else(|| panic!("{from:?} is not connected"));
        let arm =
            profile.as_ref().is_some_and(|p| p.max_loss_permille() > 0) || link.loss_permille > 0;
        link.profile = profile.map(Box::new);
        if arm && link.loss_rng.is_none() {
            link.loss_rng = Some(Box::new(StdRng::seed_from_u64(mix64(seed, link.key))));
        }
    }

    /// Frames actually placed on the wire so far by the link direction
    /// transmitted from `from` (losses and link-down drops excluded).
    /// Per-direction ground truth for bonding tests and fingerprints.
    pub fn link_tx_frames(&self, from: Endpoint) -> u64 {
        self.link(from.node(), from.port())
            .map(|l| l.seq)
            .unwrap_or(0)
    }

    /// Install a seeded [`FaultPlan`]: expands every entry into
    /// shard-local steps on the owning shards' queues and re-arms the
    /// per-link fault streams from the plan's seed. May be called before
    /// or after the simulation starts (times already in the past fire
    /// immediately on the next step). Installing a second plan replaces
    /// the streams and adds the new entries.
    ///
    /// # Panics
    /// Panics if an entry references a disconnected endpoint or an
    /// unknown switch (construction-time programmer errors).
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for (_, action) in plan.entries() {
            match action {
                FaultAction::LinkDown { at }
                | FaultAction::LinkUp { at }
                | FaultAction::SetChannel { from: at, .. } => {
                    assert!(
                        self.link(at.node(), at.port()).is_some(),
                        "{at:?} is not connected"
                    );
                }
                FaultAction::SwitchReboot { switch } => {
                    assert!(switch.0 < self.switches.len(), "{switch:?} does not exist");
                }
            }
        }
        self.fault_seed = plan.seed();
        self.fault_epoch += 1;
        for (t_ns, action) in plan.entries() {
            let entry = self.next_fault_entry;
            self.next_fault_entry += 1;
            match action {
                FaultAction::LinkDown { at } | FaultAction::LinkUp { at } => {
                    let up = matches!(action, FaultAction::LinkUp { .. });
                    // A link is full-duplex: flapping takes both
                    // directions with it, as two per-direction steps
                    // routed to the owning shards (forward first).
                    let a = (at.node(), at.port());
                    let link = self.link(a.0, a.1).expect("validated above");
                    let b = (link.peer, link.peer_port);
                    for (dir, (node, port)) in [(0u64, a), (1, b)] {
                        let shard = self.node_shard(node);
                        self.shards[shard].events.push(
                            EventKey::fault(*t_ns, entry, dir),
                            EventKind::Fault {
                                apply: FaultApply::SetLinkUp { node, port, up },
                            },
                        );
                    }
                }
                FaultAction::SwitchReboot { switch } => {
                    let shard = self.switch_shard[switch.0];
                    self.shards[shard].events.push(
                        EventKey::fault(*t_ns, entry, 0),
                        EventKind::Fault {
                            apply: FaultApply::Reboot { switch: *switch },
                        },
                    );
                }
                FaultAction::SetChannel { from, profile } => {
                    let node = from.node();
                    let shard = self.node_shard(node);
                    self.shards[shard].events.push(
                        EventKey::fault(*t_ns, entry, 0),
                        EventKind::Fault {
                            apply: FaultApply::SetChannel {
                                node,
                                port: from.port(),
                                profile: *profile,
                            },
                        },
                    );
                }
            }
        }
    }

    /// Running totals of injected faults, summed over shards.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for shard in &self.shards {
            let c = shard.counters;
            total.link_down_drops += c.link_down_drops;
            total.duplicated += c.duplicated;
            total.corrupted += c.corrupted;
            total.reordered += c.reordered;
            total.reboots += c.reboots;
            total.link_downs += c.link_downs;
        }
        total
    }

    /// The recorded time series, if enabled (via
    /// [`SimConfig::series_capacity`] or
    /// [`ObsHandle::series`](crate::ObsHandle::series)).
    pub fn series(&self) -> Option<&SeriesSet> {
        self.series.as_ref()
    }

    /// Take one stats-tick sample of every switch into the series
    /// layer. Off the fast path: the tick handler calls this only when
    /// series are enabled.
    #[cold]
    #[inline(never)]
    fn sample_series(&mut self) {
        let now = self.now_ns;
        let faults = {
            let f = self.fault_counters();
            f.link_down_drops + f.duplicated + f.corrupted + f.reordered + f.reboots + f.link_downs
        };
        let losses = self.total_losses();
        let Some(set) = self.series.as_mut() else {
            return;
        };
        set.ticks += 1;
        for (sw, series) in self.switches.iter().zip(set.switches.iter_mut()) {
            let asic = &sw.asic;
            let (total, max) = asic.queue_occupancy();
            series.offer("queue.total_bytes", now, total);
            series.offer("queue.max_bytes", now, max);
            let mut util = 0u64;
            let mut dropped = 0u64;
            for p in 0..asic.num_ports() {
                let stats = asic.port_stats(p as PortId);
                util = util.max(stats.tx_utilization_permille as u64);
                dropped += stats.bytes_dropped;
            }
            series.offer("link.tx_util_permille", now, util);
            // Saturating: a switch reboot resets its counters.
            let delta = dropped.saturating_sub(series.prev_drop_bytes);
            series.offer("drop.bytes_per_tick", now, delta);
            series.prev_drop_bytes = dropped;
            let (fh, fm) = asic.flow_cache_stats();
            series.offer("cache.flow_hit_permille", now, permille(fh, fm));
            let (dh, dm) = asic.decode_cache_stats();
            series.offer("cache.decode_hit_permille", now, permille(dh, dm));
        }
        set.offer_fleet(
            "fault.events_per_tick",
            now,
            faults.saturating_sub(set.prev_faults),
        );
        set.prev_faults = faults;
        set.offer_fleet(
            "link.frames_lost_per_tick",
            now,
            losses.saturating_sub(set.prev_losses),
        );
        set.prev_losses = losses;
    }

    /// A switch's current boot epoch (ground truth for tests; end-hosts
    /// read the same value via `Switch:BootEpoch`).
    pub fn boot_epoch(&self, id: SwitchId) -> u32 {
        self.switches[id.0].asic.regs().boot_epoch
    }

    /// Frames lost in flight on the link direction transmitted from
    /// `from`.
    pub fn link_losses(&self, from: Endpoint) -> u64 {
        self.link(from.node(), from.port())
            .map(|l| l.losses)
            .unwrap_or(0)
    }

    fn total_losses(&self) -> u64 {
        let switch: u64 = self
            .switch_links
            .iter()
            .flatten()
            .flatten()
            .map(|l| l.losses)
            .sum();
        let host: u64 = self
            .host_links
            .iter()
            .flatten()
            .flatten()
            .map(|l| l.losses)
            .sum();
        switch + host
    }

    /// The frames captured at a tapped endpoint so far (empty for
    /// untapped endpoints).
    pub fn tap_records(&self, at: Endpoint) -> &[TapRecord] {
        let shard = self.node_shard(at.node());
        self.shards[shard]
            .taps
            .get(&(at.node(), at.port()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    pub(crate) fn enable_tap_impl(&mut self, at: Endpoint) {
        let shard = self.node_shard(at.node());
        self.shards[shard]
            .taps
            .entry((at.node(), at.port()))
            .or_default();
    }

    pub(crate) fn trace_all_impl(&mut self, capacity: usize) -> SharedSink {
        let sink = SharedSink::new(capacity);
        for sw in &mut self.switches {
            sw.asic.set_trace_sink(Some(Box::new(sink.clone())));
        }
        for shard in &mut self.shards {
            shard.sink = Some(sink.clone());
        }
        self.fleet_sink = Some(sink.clone());
        sink
    }

    pub(crate) fn trace_switch_impl(&mut self, id: SwitchId, capacity: usize) -> SharedSink {
        let sink = SharedSink::new(capacity);
        self.switches[id.0]
            .asic
            .set_trace_sink(Some(Box::new(sink.clone())));
        sink
    }

    pub(crate) fn trace_off_impl(&mut self) {
        for sw in &mut self.switches {
            sw.asic.set_trace_sink(None);
        }
        for shard in &mut self.shards {
            shard.sink = None;
        }
        self.fleet_sink = None;
    }

    pub(crate) fn set_tick_interval_impl(&mut self, ns: u64) {
        assert!(ns > 0, "tick interval must be positive");
        self.tick_interval_ns = ns;
    }

    pub(crate) fn enable_series_impl(&mut self, capacity: usize) {
        let ids: Vec<u32> = self.switches.iter().map(|sw| sw.asic.switch_id()).collect();
        self.series = Some(SeriesSet::new(&ids, capacity));
    }

    /// The observability handle: tick interval, time series, taps and
    /// trace sinks live behind one accessor (see [`crate::ObsHandle`]).
    pub fn observe(&mut self) -> crate::ObsHandle<'_> {
        crate::ObsHandle::new(self)
    }

    /// The fleet-wide metrics registry, rebuilt from every switch's
    /// registers at the time of the call (counters summed across
    /// switches, distributions merged). Rebuilding on access instead of
    /// on every stats tick keeps the clear-and-re-export cost out of the
    /// event loop; ticks only advance the switches' EWMAs.
    pub fn metrics(&mut self) -> &MetricsRegistry {
        self.rebuild_metrics();
        &self.metrics
    }

    fn rebuild_metrics(&mut self) {
        self.metrics.clear();
        for sw in &self.switches {
            sw.asic.export_metrics(&mut self.metrics);
        }
        let lost = self.total_losses();
        self.metrics.set("link.frames_lost", lost);
        let f = self.fault_counters();
        if f != FaultCounters::default() {
            self.metrics.set("fault.link_down_drops", f.link_down_drops);
            self.metrics.set("fault.duplicated", f.duplicated);
            self.metrics.set("fault.corrupted", f.corrupted);
            self.metrics.set("fault.reordered", f.reordered);
            self.metrics.set("fault.reboots", f.reboots);
            self.metrics.set("fault.link_downs", f.link_downs);
        }
    }

    /// `(reused, fresh, recycled)` counters of the frame-buffer pools,
    /// summed over shards: allocations served from recycled capacity,
    /// allocations that fell through to the allocator, and buffers
    /// accepted back.
    pub fn frame_pool_stats(&self) -> (u64, u64, u64) {
        let mut totals = (0, 0, 0);
        for shard in &self.shards {
            let (reused, fresh, recycled) = shard.pool.stats();
            totals.0 += reused;
            totals.1 += fresh;
            totals.2 += recycled;
        }
        totals
    }

    /// Install L2 forwarding entries for every host at every switch along
    /// shortest paths (BFS over the physical topology, precomputed at
    /// build time). Call once after `build()`; this plays the role of a
    /// pre-converged control plane.
    pub fn populate_l2(&mut self) {
        for (s, routes) in self.l2_routes.iter().enumerate() {
            let asic = &mut self.switches[s].asic;
            for (mac, port) in routes {
                asic.l2_mut().insert(*mac, *port);
            }
        }
    }

    /// Pending events across all shard queues and mailboxes.
    fn pending_events(&self) -> usize {
        let queued: usize = self.shards.iter().map(|s| s.events.len()).sum();
        let mailed: usize = self
            .inboxes
            .iter()
            .map(|m| m.lock().expect("inbox lock").len())
            .sum();
        queued + mailed
    }

    /// Construct the per-shard working views by splitting the node and
    /// link arrays at the partition boundaries.
    fn shard_runs(&mut self) -> Vec<ShardRun<'_>> {
        let now_ns = self.now_ns;
        let fault_seed = self.fault_seed;
        let fault_epoch = self.fault_epoch;
        let mut runs = Vec::with_capacity(self.num_shards);
        let mut switches = self.switches.as_mut_slice();
        let mut hosts = self.hosts.as_mut_slice();
        let mut switch_links = self.switch_links.as_mut_slice();
        let mut host_links = self.host_links.as_mut_slice();
        let mut shards = self.shards.as_mut_slice();
        for k in 0..self.num_shards {
            let n_switches = self.switch_ranges[k].len();
            let n_hosts = self.host_ranges[k].len();
            let (sw, rest) = switches.split_at_mut(n_switches);
            switches = rest;
            let (h, rest) = hosts.split_at_mut(n_hosts);
            hosts = rest;
            let (sl, rest) = switch_links.split_at_mut(n_switches);
            switch_links = rest;
            let (hl, rest) = host_links.split_at_mut(n_hosts);
            host_links = rest;
            let (st, rest) = shards.split_at_mut(1);
            shards = rest;
            runs.push(ShardRun {
                idx: k,
                now_ns,
                switch_base: self.switch_ranges[k].start,
                host_base: self.host_ranges[k].start,
                switches: sw,
                hosts: h,
                switch_links: sl,
                host_links: hl,
                state: &mut st[0],
                inboxes: &self.inboxes,
                l2_routes: &self.l2_routes,
                ecmp: self.ecmp.as_ref(),
                fault_seed,
                fault_epoch,
            });
        }
        runs
    }

    /// Advance every shard until no pending event lies strictly before
    /// `limit`.
    fn step_events_below(&mut self, limit: u64) {
        let lookahead = self.lookahead_ns;
        let parallel = self.parallel;
        let mut runs = self.shard_runs();
        step_shards(&mut runs, limit, lookahead, parallel);
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.next_tick_ns = self.now_ns + self.tick_interval_ns;
        let mut runs = self.shard_runs();
        for run in runs.iter_mut() {
            for h in run.host_base..run.host_base + run.hosts.len() {
                run.call_host(HostId(h), 0, |app, ctx| app.on_start(ctx));
            }
        }
    }

    /// One coordinator-driven stats tick at time `t`: every shard has
    /// drained all events strictly before `t`, so the EWMAs and series
    /// observe a globally consistent state.
    fn do_tick(&mut self, t: u64) {
        self.now_ns = t;
        for sw in &mut self.switches {
            sw.asic.tick(t);
        }
        if self.series.is_some() {
            self.sample_series();
        }
    }

    /// Run the event loop under `limit` — the single entry point of the
    /// redesigned surface.
    ///
    /// * [`RunLimit::Until`] runs to an absolute time (inclusive); may
    ///   be issued repeatedly with increasing times.
    /// * [`RunLimit::Quiescent`] steps tick by tick until all traffic
    ///   has drained or the limit is reached.
    pub fn run(&mut self, limit: RunLimit) {
        self.ensure_started();
        match limit {
            RunLimit::Until(t_end_ns) => {
                if self.parallel && self.num_shards > 1 && self.series.is_none() {
                    // Fused threaded schedule: one thread per shard for
                    // the whole run, ticking shard-owned switches at the
                    // window barriers, instead of respawning threads per
                    // tick. Bit-identical (same window schedule, same
                    // tick times); see `run_windows_parallel`.
                    let first_tick = self.next_tick_ns;
                    let interval = self.tick_interval_ns;
                    let lookahead = self.lookahead_ns;
                    let mut runs = self.shard_runs();
                    run_windows_parallel(&mut runs, first_tick, interval, t_end_ns, lookahead);
                    drop(runs);
                    if first_tick <= t_end_ns {
                        let ticks = (t_end_ns - first_tick) / interval + 1;
                        self.next_tick_ns = first_tick + ticks * interval;
                    }
                } else {
                    while self.next_tick_ns <= t_end_ns {
                        let t = self.next_tick_ns;
                        self.step_events_below(t);
                        self.do_tick(t);
                        self.next_tick_ns = t + self.tick_interval_ns;
                    }
                    self.step_events_below(t_end_ns.saturating_add(1));
                }
                self.now_ns = self.now_ns.max(t_end_ns);
            }
            RunLimit::Quiescent { limit_ns } => loop {
                let t = self.next_tick_ns;
                if t > limit_ns {
                    self.step_events_below(limit_ns.saturating_add(1));
                    self.now_ns = self.now_ns.max(limit_ns);
                    break;
                }
                self.step_events_below(t);
                self.do_tick(t);
                self.next_tick_ns = t + self.tick_interval_ns;
                if self.pending_events() == 0 {
                    break;
                }
            },
        }
    }
}
