//! Ring-buffer time series: the observability plane's per-tick layer.
//!
//! [`crate::ObsHandle::series`] samples every switch on every
//! stats tick into fixed-capacity [`RingSeries`] — queue depth, link
//! utilization, drop and fault rates, cache hit rates. A full series
//! never reallocates: it *downsamples* (keeps every other point and
//! doubles its stride), so an arbitrarily long run always fits in the
//! same memory with uniformly-spaced points, recent and old alike. The
//! JSONL exporter in `tpp-obs` dumps a [`SeriesSet`] for offline
//! plotting.

use std::collections::BTreeMap;

/// A fixed-capacity `(t_ns, value)` series that downsamples on
/// overflow: when full, every other point is discarded and the
/// recording stride doubles, halving resolution instead of dropping
/// history.
#[derive(Debug, Clone)]
pub struct RingSeries {
    points: Vec<(u64, u64)>,
    cap: usize,
    stride: u64,
    offered: u64,
}

impl RingSeries {
    /// A series holding at most `cap` points (min 2).
    pub fn new(cap: usize) -> Self {
        RingSeries {
            points: Vec::new(),
            cap: cap.max(2),
            stride: 1,
            offered: 0,
        }
    }

    /// Offer one sample; recorded only when the offer index lands on
    /// the current stride.
    pub fn offer(&mut self, t_ns: u64, value: u64) {
        let take = self.offered.is_multiple_of(self.stride);
        self.offered += 1;
        if !take {
            return;
        }
        if self.points.len() == self.cap {
            // Keep even indices: those are the multiples of the doubled
            // stride, so spacing stays uniform across the whole series.
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
            if !(self.offered - 1).is_multiple_of(self.stride) {
                // The point that triggered the compaction falls on an
                // odd multiple of the new stride; drop it too.
                return;
            }
        }
        self.points.push((t_ns, value));
    }

    /// The recorded points, oldest first.
    pub fn points(&self) -> &[(u64, u64)] {
        &self.points
    }

    /// Current recording stride (1 until the first overflow, then
    /// doubling).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Samples offered over the series' lifetime.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The most recent recorded point.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.points.last().copied()
    }

    /// Largest recorded value.
    pub fn max_value(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }
}

/// The per-tick metrics sampled for every switch.
pub const SWITCH_SERIES_METRICS: &[&str] = &[
    "queue.total_bytes",
    "queue.max_bytes",
    "link.tx_util_permille",
    "drop.bytes_per_tick",
    "cache.flow_hit_permille",
    "cache.decode_hit_permille",
];

/// The per-tick fleet-wide metrics (faults and losses are simulator
/// state, not per-switch registers).
pub const FLEET_SERIES_METRICS: &[&str] = &["fault.events_per_tick", "link.frames_lost_per_tick"];

/// One switch's series, keyed by metric name.
#[derive(Debug, Clone)]
pub struct SwitchSeries {
    /// The dataplane switch id the series describe.
    pub switch_id: u32,
    series: BTreeMap<&'static str, RingSeries>,
    /// Previous cumulative drop bytes (for the per-tick delta).
    pub(crate) prev_drop_bytes: u64,
}

impl SwitchSeries {
    fn new(switch_id: u32, cap: usize) -> Self {
        let series = SWITCH_SERIES_METRICS
            .iter()
            .map(|&m| (m, RingSeries::new(cap)))
            .collect();
        SwitchSeries {
            switch_id,
            series,
            prev_drop_bytes: 0,
        }
    }

    /// The series for a metric name from [`SWITCH_SERIES_METRICS`].
    pub fn get(&self, metric: &str) -> Option<&RingSeries> {
        self.series.get(metric)
    }

    /// Iterate `(metric, series)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &RingSeries)> {
        self.series.iter().map(|(k, v)| (*k, v))
    }

    pub(crate) fn offer(&mut self, metric: &'static str, t_ns: u64, value: u64) {
        if let Some(s) = self.series.get_mut(metric) {
            s.offer(t_ns, value);
        }
    }
}

/// All series of a run: one [`SwitchSeries`] per switch (indexed like
/// the simulator's switches) plus fleet-wide series.
#[derive(Debug, Clone)]
pub struct SeriesSet {
    /// Per-switch series, indexed by the simulator's switch index.
    pub switches: Vec<SwitchSeries>,
    fleet: BTreeMap<&'static str, RingSeries>,
    pub(crate) prev_faults: u64,
    pub(crate) prev_losses: u64,
    /// Stats ticks sampled.
    pub(crate) ticks: u64,
}

impl SeriesSet {
    /// Build for `switch_ids` (the simulator's switches in index
    /// order), each series holding at most `cap` points.
    pub fn new(switch_ids: &[u32], cap: usize) -> Self {
        SeriesSet {
            switches: switch_ids
                .iter()
                .map(|&id| SwitchSeries::new(id, cap))
                .collect(),
            fleet: FLEET_SERIES_METRICS
                .iter()
                .map(|&m| (m, RingSeries::new(cap)))
                .collect(),
            prev_faults: 0,
            prev_losses: 0,
            ticks: 0,
        }
    }

    /// A fleet-wide series from [`FLEET_SERIES_METRICS`].
    pub fn fleet(&self, metric: &str) -> Option<&RingSeries> {
        self.fleet.get(metric)
    }

    /// Iterate the fleet series in name order.
    pub fn fleet_iter(&self) -> impl Iterator<Item = (&'static str, &RingSeries)> {
        self.fleet.iter().map(|(k, v)| (*k, v))
    }

    /// Stats ticks sampled so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    pub(crate) fn offer_fleet(&mut self, metric: &'static str, t_ns: u64, value: u64) {
        if let Some(s) = self.fleet.get_mut(metric) {
            s.offer(t_ns, value);
        }
    }
}

/// Hit rate in permille; 0 when there were no lookups.
pub(crate) fn permille(hits: u64, misses: u64) -> u64 {
    (hits * 1000).checked_div(hits + misses).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_series_records_until_capacity() {
        let mut s = RingSeries::new(8);
        for i in 0..8u64 {
            s.offer(i * 10, i);
        }
        assert_eq!(s.points().len(), 8);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.last(), Some((70, 7)));
    }

    #[test]
    fn overflow_downsamples_and_doubles_stride() {
        let mut s = RingSeries::new(8);
        for i in 0..32u64 {
            s.offer(i, i);
        }
        assert_eq!(s.stride(), 4, "two compactions: 1 → 2 → 4");
        assert!(s.points().len() <= 8);
        // Uniform spacing: every recorded offer index is a multiple of
        // the final stride.
        for &(t, _) in s.points() {
            assert_eq!(t % s.stride(), 0, "point at {t} off the stride grid");
        }
        // History is preserved: first point is still the first sample.
        assert_eq!(s.points()[0], (0, 0));
        assert_eq!(s.offered(), 32);
    }

    #[test]
    fn long_runs_stay_bounded() {
        let mut s = RingSeries::new(16);
        for i in 0..100_000u64 {
            s.offer(i, i % 7);
        }
        assert!(s.points().len() <= 16);
        assert!(s.stride() >= 100_000 / 16);
    }

    #[test]
    fn series_set_lookup() {
        let set = SeriesSet::new(&[0x10, 0x20], 4);
        assert_eq!(set.switches.len(), 2);
        assert_eq!(set.switches[1].switch_id, 0x20);
        assert!(set.switches[0].get("queue.total_bytes").is_some());
        assert!(set.switches[0].get("bogus").is_none());
        assert!(set.fleet("fault.events_per_tick").is_some());
    }

    #[test]
    fn permille_rates() {
        assert_eq!(permille(0, 0), 0);
        assert_eq!(permille(3, 1), 750);
        assert_eq!(permille(5, 0), 1000);
    }
}
