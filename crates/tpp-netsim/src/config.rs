//! Simulation-wide configuration ([`SimConfig`]) and run limits
//! ([`RunLimit`]).
//!
//! `SimConfig` is the one place where knobs that used to be scattered
//! over `NetworkBuilder` setters and post-build `Simulator` methods now
//! live: shard count, tick interval, RNG seed, series capacity and
//! frame-pool bounds. It is an owned value with chainable builder
//! methods, consumed by [`NetworkBuilder::with_config`] — no `&mut`
//! chaining, no partially-applied state.
//!
//! [`NetworkBuilder::with_config`]: crate::NetworkBuilder::with_config

/// Configuration for a [`Simulator`](crate::Simulator).
///
/// Marked `#[non_exhaustive]` so future knobs can be added without a
/// breaking release: construct it with [`SimConfig::new`] /
/// [`SimConfig::default`] and the chainable setters, not with a struct
/// literal.
///
/// ```
/// use tpp_netsim::SimConfig;
/// let cfg = SimConfig::new().shards(4).tick_interval_ns(500_000);
/// assert_eq!(cfg.shards, 4);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of scheduler shards the topology is partitioned into
    /// (clamped to the node count at build time; zero-delay inter-shard
    /// links force a single shard). Seeded results are bit-identical
    /// for every shard count.
    pub shards: usize,
    /// Step shards on worker threads when `shards > 1`. Purely a
    /// throughput knob: the sequential and threaded drivers share the
    /// identical window schedule, so results never depend on it.
    pub parallel: bool,
    /// How often switch utilization EWMAs (and the series layer) tick,
    /// ns. Default 1 ms.
    pub tick_interval_ns: u64,
    /// Seed of the simulator-owned RNG streams (per-link in-flight loss).
    /// Fault-plan streams are seeded separately by
    /// [`FaultPlan::seed`](crate::FaultPlan::seed).
    pub seed: u64,
    /// When `Some(capacity)`, the per-tick time-series layer is enabled
    /// from the start with ring series of that capacity (see
    /// [`crate::series`]).
    pub series_capacity: Option<usize>,
    /// Retired frame buffers each shard's pool retains for reuse.
    pub frame_pool_buffers: usize,
    /// Enable ECMP routing: at build time an equal-cost next-hop table
    /// is derived from the topology (all shortest paths, not just the
    /// BFS tree), and switches with more than one candidate egress pick
    /// one by a pure flow-key hash of `(seed, src, dst, flow label)` —
    /// see [`crate::routing`]. Off by default: single-path runs stay
    /// byte-identical to builds predating this knob.
    pub ecmp: bool,
}

/// The historical simulator seed; kept as the default so seeded runs
/// predating `SimConfig` reproduce unchanged.
pub(crate) const DEFAULT_SEED: u64 = 0x7199_7199;

impl Default for SimConfig {
    /// The single-shard configuration every pre-existing experiment ran
    /// under. The `TPP_SHARDS` environment variable overrides the shard
    /// count so whole unmodified test suites can be replayed sharded
    /// (the multi-shard CI determinism lane does exactly this).
    fn default() -> Self {
        let shards = std::env::var("TPP_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1);
        SimConfig {
            shards,
            parallel: true,
            tick_interval_ns: crate::time::millis(1),
            seed: DEFAULT_SEED,
            series_capacity: None,
            frame_pool_buffers: 1024,
            ecmp: false,
        }
    }
}

impl SimConfig {
    /// Alias of [`SimConfig::default`].
    pub fn new() -> Self {
        SimConfig::default()
    }

    /// Set the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Force sequential shard stepping (one thread), e.g. for profiling.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Set whether multi-shard runs use worker threads.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Set the stats-tick interval (must be positive).
    pub fn tick_interval_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "tick interval must be positive");
        self.tick_interval_ns = ns;
        self
    }

    /// Set the seed of the simulator-owned RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable the time-series layer from the start with ring series of
    /// `capacity` points.
    pub fn series_capacity(mut self, capacity: usize) -> Self {
        self.series_capacity = Some(capacity);
        self
    }

    /// Bound each shard's frame pool to `buffers` retired buffers.
    pub fn frame_pool_buffers(mut self, buffers: usize) -> Self {
        self.frame_pool_buffers = buffers;
        self
    }

    /// Enable (or disable) hash-based ECMP over equal-cost next hops.
    pub fn ecmp(mut self, ecmp: bool) -> Self {
        self.ecmp = ecmp;
        self
    }
}

/// How long [`Simulator::run`](crate::Simulator::run) runs.
///
/// Replaces the old `run_until` / `run_until_quiescent` method pair with
/// one argument, so the run loop has a single entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLimit {
    /// Run until simulation time `t_end_ns` (inclusive). May be issued
    /// repeatedly with increasing times; experiments step the clock in
    /// increments to sample ground-truth state in between.
    Until(u64),
    /// Run until all traffic has drained (no pending events anywhere),
    /// or `limit_ns` is reached, whichever comes first. Quiescence is
    /// checked at stats-tick boundaries.
    Quiescent {
        /// Hard time limit, ns.
        limit_ns: u64,
    },
}

impl RunLimit {
    /// Shorthand for [`RunLimit::Until`].
    pub fn until(t_end_ns: u64) -> Self {
        RunLimit::Until(t_end_ns)
    }

    /// Shorthand for [`RunLimit::Quiescent`].
    pub fn quiescent(limit_ns: u64) -> Self {
        RunLimit::Quiescent { limit_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_chain_by_value() {
        let cfg = SimConfig::new()
            .shards(4)
            .sequential()
            .tick_interval_ns(42)
            .seed(7)
            .series_capacity(128)
            .frame_pool_buffers(8)
            .ecmp(true);
        assert_eq!(cfg.shards, 4);
        assert!(!cfg.parallel);
        assert_eq!(cfg.tick_interval_ns, 42);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.series_capacity, Some(128));
        assert_eq!(cfg.frame_pool_buffers, 8);
        assert!(cfg.ecmp);
        assert!(!SimConfig::new().ecmp, "ECMP is opt-in");
    }

    #[test]
    fn shards_clamped_to_at_least_one() {
        assert_eq!(SimConfig::new().shards(0).shards, 1);
    }

    #[test]
    fn run_limit_shorthands() {
        assert_eq!(RunLimit::until(5), RunLimit::Until(5));
        assert_eq!(RunLimit::quiescent(9), RunLimit::Quiescent { limit_ns: 9 });
    }
}
