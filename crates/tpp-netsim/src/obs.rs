//! The observability handle: one accessor grouping every observation
//! knob that used to be a loose `Simulator` method.
//!
//! `sim.observe()` returns an [`ObsHandle`] borrowing the simulator;
//! tick cadence, the time-series layer, frame taps and instruction-level
//! trace sinks all hang off it. The handle exists so the `Simulator`
//! surface reads as *control* (build, run, inject) while everything that
//! merely watches the run lives in one place.

use crate::node::SwitchId;
use crate::sim::{Endpoint, Simulator};
use tpp_telemetry::SharedSink;

/// Borrowed access to a simulator's observability plane; obtained from
/// [`Simulator::observe`].
///
/// ```no_run
/// # let mut sim: tpp_netsim::Simulator = unimplemented!();
/// let sink = sim.observe().trace_all(4096);
/// sim.observe().series(512).tick_interval_ns(500_000);
/// ```
pub struct ObsHandle<'a> {
    sim: &'a mut Simulator,
}

impl<'a> ObsHandle<'a> {
    pub(crate) fn new(sim: &'a mut Simulator) -> Self {
        ObsHandle { sim }
    }

    /// Set how often switch utilization EWMAs (and the series layer)
    /// tick.
    ///
    /// # Panics
    /// Panics if `ns` is zero.
    pub fn tick_interval_ns(self, ns: u64) -> Self {
        self.sim.set_tick_interval_impl(ns);
        self
    }

    /// Enable the per-tick time-series layer with ring series of
    /// `capacity` points (see [`crate::series`]). Read back via
    /// [`Simulator::series`].
    pub fn series(self, capacity: usize) -> Self {
        self.sim.enable_series_impl(capacity);
        self
    }

    /// Start capturing frame summaries at an endpoint, both directions.
    /// Read back via [`Simulator::tap_records`].
    pub fn tap(self, at: Endpoint) -> Self {
        self.sim.enable_tap_impl(at);
        self
    }

    /// Attach one shared trace sink (capacity `capacity` events) to every
    /// switch, and to the simulator itself for fault events. Returns a
    /// handle that stays readable while the simulation runs.
    pub fn trace_all(self, capacity: usize) -> SharedSink {
        self.sim.trace_all_impl(capacity)
    }

    /// Attach a shared trace sink to one switch only.
    pub fn trace_switch(self, id: SwitchId, capacity: usize) -> SharedSink {
        self.sim.trace_switch_impl(id, capacity)
    }

    /// Detach every trace sink.
    pub fn trace_off(self) {
        self.sim.trace_off_impl();
    }
}
