//! Canned topologies for experiments.
//!
//! Three shapes cover the paper's evaluation needs:
//!
//! * [`linear_chain`] — the Figure 1 setting: a TPP walking a multi-hop
//!   path, recording one value per hop;
//! * [`dumbbell`] — the Figure 2 setting: N sender/receiver pairs sharing
//!   one bottleneck link (the classic congestion-control topology);
//! * [`leaf_spine`] — the §2.1 setting: a two-tier datacenter fabric
//!   where incast across leaves creates micro-bursts;
//! * [`fat_tree`] — the 3-tier k-ary datacenter at realistic structure;
//! * [`bonded_diamond`] — two multi-homed hosts joined by disjoint
//!   paths, the multipath bonding setting.
//!
//! Every builder assigns each switch a distinct `Switch:SwitchID`
//! (chain/dumbbell: `1 + index`; leaf-spine: leaves `0x10 + l`, spines
//! `0x20 + s`), installs shortest-path L2 routes, and returns handle
//! structs so experiments can reach any element.

use crate::config::SimConfig;
use crate::node::{HostApp, HostId, SwitchId};
use crate::sim::{Endpoint, NetworkBuilder, Simulator};
use tpp_asic::{AsicConfig, PortId};

/// A switch config with uniform per-port capacity and queue limit — the
/// shape every canned topology starts from (some then override
/// individual ports, e.g. the dumbbell bottleneck).
fn uniform_cfg(id: u32, ports: usize, link_kbps: u32, queue_limit_bytes: u32) -> AsicConfig {
    AsicConfig::with_ports(id, ports)
        .capacity_kbps(link_kbps)
        .queue_limit_bytes(queue_limit_bytes)
}

/// Attach `count` hosts (drawn from `apps`) to consecutive ports of
/// `switch` starting at `first_port`, one link each. Returns the hosts
/// in port order. Shared by the leaf-spine and fat-tree builders.
fn attach_hosts(
    net: &mut NetworkBuilder,
    apps: &mut impl Iterator<Item = Box<dyn HostApp>>,
    switch: SwitchId,
    first_port: PortId,
    count: usize,
    nic_kbps: u32,
    delay_ns: u64,
) -> Vec<HostId> {
    (0..count)
        .map(|i| {
            let host = net.add_host(apps.next().expect("app count checked by caller"), nic_kbps);
            net.connect(
                Endpoint::host(host),
                Endpoint::switch(switch, first_port + i as PortId),
                delay_ns,
            );
            host
        })
        .collect()
}

/// Wire a chain of two-port switches between two host-side endpoints:
/// `left -- s0 -- s1 -- ... -- s(n-1) -- right`, each switch using port
/// 0 toward the left and port 1 toward the right. Shared by the linear
/// chain and each bonded-diamond path.
fn wire_switch_chain(
    net: &mut NetworkBuilder,
    left: Endpoint,
    path: &[SwitchId],
    right: Endpoint,
    delay_ns: u64,
) {
    net.connect(left, Endpoint::switch(path[0], 0), delay_ns);
    for w in path.windows(2) {
        net.connect(
            Endpoint::switch(w[0], 1),
            Endpoint::switch(w[1], 0),
            delay_ns,
        );
    }
    net.connect(
        Endpoint::switch(*path.last().expect("non-empty chain"), 1),
        right,
        delay_ns,
    );
}

/// Build the simulator and install the pre-converged L2 control plane —
/// the common tail of every canned topology.
fn finish(net: NetworkBuilder) -> Simulator {
    let mut sim = net.build();
    sim.populate_l2();
    sim
}

/// Parameters for [`linear_chain`].
#[derive(Debug, Clone)]
pub struct LinearChainParams {
    /// Number of switches on the path.
    pub n_switches: usize,
    /// Capacity of every link, kbps.
    pub link_kbps: u32,
    /// Egress queue limit at every switch port, bytes.
    pub queue_limit_bytes: u32,
    /// Propagation delay of every link, ns.
    pub delay_ns: u64,
    /// Host NIC rate, kbps.
    pub host_nic_kbps: u32,
}

impl Default for LinearChainParams {
    fn default() -> Self {
        LinearChainParams {
            n_switches: 3,
            link_kbps: 10_000_000, // 10 Gb/s
            queue_limit_bytes: 512 * 1024,
            delay_ns: crate::time::micros(1),
            host_nic_kbps: 10_000_000,
        }
    }
}

/// Handles into a linear chain.
#[derive(Debug)]
pub struct LinearChain {
    /// The switches, left to right.
    pub switches: Vec<SwitchId>,
    /// Host attached left of the first switch.
    pub left: HostId,
    /// Host attached right of the last switch.
    pub right: HostId,
}

/// Build `left -- s0 -- s1 -- ... -- s(n-1) -- right`.
///
/// Each switch uses port 0 toward the left, port 1 toward the right.
pub fn linear_chain(
    params: LinearChainParams,
    left_app: Box<dyn HostApp>,
    right_app: Box<dyn HostApp>,
) -> (Simulator, LinearChain) {
    linear_chain_with(SimConfig::default(), params, left_app, right_app)
}

/// [`linear_chain`] under an explicit [`SimConfig`] (shard count, seed,
/// tick interval, ...).
pub fn linear_chain_with(
    config: SimConfig,
    params: LinearChainParams,
    left_app: Box<dyn HostApp>,
    right_app: Box<dyn HostApp>,
) -> (Simulator, LinearChain) {
    assert!(params.n_switches >= 1, "chain needs at least one switch");
    let mut net = NetworkBuilder::with_config(config);
    let switches: Vec<SwitchId> = (0..params.n_switches)
        .map(|i| {
            net.add_switch(uniform_cfg(
                1 + i as u32,
                2,
                params.link_kbps,
                params.queue_limit_bytes,
            ))
        })
        .collect();
    let left = net.add_host(left_app, params.host_nic_kbps);
    let right = net.add_host(right_app, params.host_nic_kbps);
    wire_switch_chain(
        &mut net,
        Endpoint::host(left),
        &switches,
        Endpoint::host(right),
        params.delay_ns,
    );
    (
        finish(net),
        LinearChain {
            switches,
            left,
            right,
        },
    )
}

/// Parameters for [`dumbbell`].
#[derive(Debug, Clone)]
pub struct DumbbellParams {
    /// Sender/receiver pairs.
    pub n_pairs: usize,
    /// Capacity of the host-facing edge links, kbps.
    pub edge_kbps: u32,
    /// Capacity of the shared bottleneck link, kbps.
    pub bottleneck_kbps: u32,
    /// Egress queue limit, bytes.
    pub queue_limit_bytes: u32,
    /// Propagation delay of every link, ns.
    pub delay_ns: u64,
    /// Host NIC rate, kbps.
    pub host_nic_kbps: u32,
}

impl Default for DumbbellParams {
    fn default() -> Self {
        DumbbellParams {
            n_pairs: 3,
            edge_kbps: 100_000,      // 100 Mb/s edges
            bottleneck_kbps: 10_000, // the paper's 10 Mb/s bottleneck
            queue_limit_bytes: 128 * 1024,
            delay_ns: crate::time::micros(500),
            host_nic_kbps: 100_000,
        }
    }
}

/// Handles into a dumbbell.
#[derive(Debug)]
pub struct Dumbbell {
    /// Left (sender-side) switch; its last port is the bottleneck egress.
    pub left: SwitchId,
    /// Right (receiver-side) switch.
    pub right: SwitchId,
    /// Sender hosts, attached to the left switch.
    pub senders: Vec<HostId>,
    /// Receiver hosts, attached to the right switch.
    pub receivers: Vec<HostId>,
    /// The left switch's bottleneck egress port (where the interesting
    /// queue lives).
    pub bottleneck_port: PortId,
}

/// Build N sender/receiver pairs around one bottleneck:
///
/// ```text
/// s0..sN -> [left switch] --bottleneck--> [right switch] -> r0..rN
/// ```
pub fn dumbbell(
    params: DumbbellParams,
    apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)>,
) -> (Simulator, Dumbbell) {
    dumbbell_with(SimConfig::default(), params, apps)
}

/// [`dumbbell`] under an explicit [`SimConfig`].
pub fn dumbbell_with(
    config: SimConfig,
    params: DumbbellParams,
    apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)>,
) -> (Simulator, Dumbbell) {
    assert_eq!(apps.len(), params.n_pairs, "one app pair per host pair");
    let n = params.n_pairs;
    let mut net = NetworkBuilder::with_config(config);
    // Ports 0..n face hosts at edge rate; port n is the bottleneck.
    let mk_cfg = |id: u32| {
        let mut cfg = uniform_cfg(id, n + 1, params.edge_kbps, params.queue_limit_bytes);
        cfg.ports[n].capacity_kbps = params.bottleneck_kbps;
        cfg
    };
    let left = net.add_switch(mk_cfg(1));
    let right = net.add_switch(mk_cfg(2));
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for (i, (sender_app, receiver_app)) in apps.into_iter().enumerate() {
        let s = net.add_host(sender_app, params.host_nic_kbps);
        let r = net.add_host(receiver_app, params.host_nic_kbps);
        net.connect(
            Endpoint::host(s),
            Endpoint::switch(left, i as PortId),
            params.delay_ns,
        );
        net.connect(
            Endpoint::host(r),
            Endpoint::switch(right, i as PortId),
            params.delay_ns,
        );
        senders.push(s);
        receivers.push(r);
    }
    net.connect(
        Endpoint::switch(left, n as PortId),
        Endpoint::switch(right, n as PortId),
        params.delay_ns,
    );
    (
        finish(net),
        Dumbbell {
            left,
            right,
            senders,
            receivers,
            bottleneck_port: n as PortId,
        },
    )
}

/// Parameters for [`leaf_spine`].
#[derive(Debug, Clone)]
pub struct LeafSpineParams {
    /// Number of leaf (top-of-rack) switches.
    pub n_leaves: usize,
    /// Number of spine switches.
    pub n_spines: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Host-facing link capacity, kbps.
    pub host_link_kbps: u32,
    /// Leaf-spine fabric link capacity, kbps.
    pub fabric_link_kbps: u32,
    /// Egress queue limit, bytes.
    pub queue_limit_bytes: u32,
    /// Propagation delay of every link, ns.
    pub delay_ns: u64,
    /// Host NIC rate, kbps.
    pub host_nic_kbps: u32,
}

impl Default for LeafSpineParams {
    fn default() -> Self {
        LeafSpineParams {
            n_leaves: 4,
            n_spines: 2,
            hosts_per_leaf: 4,
            host_link_kbps: 10_000_000,   // 10 Gb/s to hosts
            fabric_link_kbps: 40_000_000, // 40 Gb/s fabric
            queue_limit_bytes: 256 * 1024,
            delay_ns: crate::time::micros(1),
            host_nic_kbps: 10_000_000,
        }
    }
}

/// Handles into a leaf-spine fabric.
#[derive(Debug)]
pub struct LeafSpine {
    /// Leaf switches.
    pub leaves: Vec<SwitchId>,
    /// Spine switches.
    pub spines: Vec<SwitchId>,
    /// `hosts[l][i]` is host `i` under leaf `l`.
    pub hosts: Vec<Vec<HostId>>,
}

impl LeafSpine {
    /// All hosts, flattened in (leaf, index) order.
    pub fn all_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.hosts.iter().flatten().copied()
    }
}

/// Parameters for [`fat_tree`].
#[derive(Debug, Clone)]
pub struct FatTreeParams {
    /// The fat-tree arity `k` (must be even): `k` pods, each with `k/2`
    /// edge and `k/2` aggregation switches; `(k/2)^2` core switches;
    /// `k * (k/2) * hosts_per_edge` hosts.
    pub k: usize,
    /// Hosts attached to each edge switch. `0` (the default) means the
    /// textbook `k/2`; larger values oversubscribe the edge tier, the
    /// way production fabrics pack more servers per rack than uplinks.
    pub hosts_per_edge: usize,
    /// Capacity of every link, kbps (classic fat-trees are uniform).
    pub link_kbps: u32,
    /// Egress queue limit, bytes.
    pub queue_limit_bytes: u32,
    /// Propagation delay of every link, ns.
    pub delay_ns: u64,
    /// Host NIC rate, kbps.
    pub host_nic_kbps: u32,
}

impl Default for FatTreeParams {
    fn default() -> Self {
        FatTreeParams {
            k: 4,
            hosts_per_edge: 0,
            link_kbps: 10_000_000,
            queue_limit_bytes: 256 * 1024,
            delay_ns: crate::time::micros(1),
            host_nic_kbps: 10_000_000,
        }
    }
}

impl FatTreeParams {
    /// The effective hosts per edge switch (`k/2` unless overridden).
    pub fn effective_hosts_per_edge(&self) -> usize {
        if self.hosts_per_edge == 0 {
            self.k / 2
        } else {
            self.hosts_per_edge
        }
    }

    /// Total hosts this parameterization wires.
    pub fn n_hosts(&self) -> usize {
        self.k * (self.k / 2) * self.effective_hosts_per_edge()
    }

    /// Total switches (edge + aggregation + core).
    pub fn n_switches(&self) -> usize {
        self.k * self.k + (self.k / 2) * (self.k / 2)
    }
}

/// Handles into a fat-tree.
#[derive(Debug)]
pub struct FatTree {
    /// `edges[pod][e]` — edge (ToR) switches.
    pub edges: Vec<Vec<SwitchId>>,
    /// `aggs[pod][a]` — aggregation switches.
    pub aggs: Vec<Vec<SwitchId>>,
    /// Core switches.
    pub cores: Vec<SwitchId>,
    /// `hosts[pod][e][h]` — hosts under each edge switch.
    pub hosts: Vec<Vec<Vec<HostId>>>,
}

impl FatTree {
    /// All hosts in (pod, edge, index) order.
    pub fn all_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.hosts.iter().flatten().flatten().copied()
    }
}

/// Build the classic 3-tier k-ary fat-tree of Al-Fares et al. — the §4
/// "datacenters" deployment environment at realistic structure. Switch
/// IDs: edge `0x100 + pod*16 + e`, aggregation `0x200 + pod*16 + a`,
/// core `0x300 + c`. Routing is shortest-path L2 (BFS; no ECMP).
///
/// # Panics
/// Panics if `k` is odd or zero, or if the app count ≠ `k^3/4`.
pub fn fat_tree(params: FatTreeParams, apps: Vec<Box<dyn HostApp>>) -> (Simulator, FatTree) {
    fat_tree_with(SimConfig::default(), params, apps)
}

/// [`fat_tree`] under an explicit [`SimConfig`].
pub fn fat_tree_with(
    config: SimConfig,
    params: FatTreeParams,
    apps: Vec<Box<dyn HostApp>>,
) -> (Simulator, FatTree) {
    let k = params.k;
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let hpe = params.effective_hosts_per_edge();
    assert_eq!(apps.len(), k * half * hpe, "one app per host");
    let mut net = NetworkBuilder::with_config(config);

    // Edge switch ports: 0..hpe hosts, hpe..hpe+half up to aggs.
    // Agg switch ports: 0..half down to edges, half..k up to cores.
    // Core switch ports: one per pod.
    let mk_cfg =
        |id: u32, ports: usize| uniform_cfg(id, ports, params.link_kbps, params.queue_limit_bytes);
    let mut edges = Vec::new();
    let mut aggs = Vec::new();
    for pod in 0..k {
        edges.push(
            (0..half)
                .map(|e| net.add_switch(mk_cfg(0x100 + (pod * 16 + e) as u32, hpe + half)))
                .collect::<Vec<_>>(),
        );
        aggs.push(
            (0..half)
                .map(|a| net.add_switch(mk_cfg(0x200 + (pod * 16 + a) as u32, k)))
                .collect::<Vec<_>>(),
        );
    }
    let cores: Vec<SwitchId> = (0..half * half)
        .map(|c| net.add_switch(mk_cfg(0x300 + c as u32, k)))
        .collect();

    let mut apps = apps.into_iter();
    let mut hosts = Vec::new();
    for pod in 0..k {
        let mut pod_hosts = Vec::new();
        for (e, &edge) in edges[pod].clone().iter().enumerate() {
            pod_hosts.push(attach_hosts(
                &mut net,
                &mut apps,
                edge,
                0,
                hpe,
                params.host_nic_kbps,
                params.delay_ns,
            ));
            // Edge -> every agg in the pod.
            for (a, agg) in aggs[pod].iter().enumerate() {
                net.connect(
                    Endpoint::switch(edge, (hpe + a) as PortId),
                    Endpoint::switch(*agg, e as PortId),
                    params.delay_ns,
                );
            }
        }
        // Agg a -> cores [a*half .. a*half + half).
        for (a, agg) in aggs[pod].iter().enumerate() {
            for j in 0..half {
                let core = cores[a * half + j];
                net.connect(
                    Endpoint::switch(*agg, (half + j) as PortId),
                    Endpoint::switch(core, pod as PortId),
                    params.delay_ns,
                );
            }
        }
        hosts.push(pod_hosts);
    }
    (
        finish(net),
        FatTree {
            edges,
            aggs,
            cores,
            hosts,
        },
    )
}

/// Build a two-tier leaf-spine fabric. Leaf `l` uses ports
/// `0..hosts_per_leaf` for hosts and `hosts_per_leaf + s` toward spine
/// `s`; spine `s` uses port `l` toward leaf `l`. Routing is shortest-path
/// L2 (no ECMP: BFS picks the lowest-numbered spine deterministically).
pub fn leaf_spine(params: LeafSpineParams, apps: Vec<Box<dyn HostApp>>) -> (Simulator, LeafSpine) {
    leaf_spine_with(SimConfig::default(), params, apps)
}

/// [`leaf_spine`] under an explicit [`SimConfig`].
pub fn leaf_spine_with(
    config: SimConfig,
    params: LeafSpineParams,
    apps: Vec<Box<dyn HostApp>>,
) -> (Simulator, LeafSpine) {
    assert_eq!(
        apps.len(),
        params.n_leaves * params.hosts_per_leaf,
        "one app per host"
    );
    let mut net = NetworkBuilder::with_config(config);
    let leaves: Vec<SwitchId> = (0..params.n_leaves)
        .map(|l| {
            let mut cfg = uniform_cfg(
                0x10 + l as u32,
                params.hosts_per_leaf + params.n_spines,
                params.host_link_kbps,
                params.queue_limit_bytes,
            );
            for s in 0..params.n_spines {
                cfg.ports[params.hosts_per_leaf + s].capacity_kbps = params.fabric_link_kbps;
            }
            net.add_switch(cfg)
        })
        .collect();
    let spines: Vec<SwitchId> = (0..params.n_spines)
        .map(|s| {
            net.add_switch(uniform_cfg(
                0x20 + s as u32,
                params.n_leaves,
                params.fabric_link_kbps,
                params.queue_limit_bytes,
            ))
        })
        .collect();
    let mut apps = apps.into_iter();
    let mut hosts = Vec::new();
    for (l, leaf) in leaves.iter().enumerate() {
        hosts.push(attach_hosts(
            &mut net,
            &mut apps,
            *leaf,
            0,
            params.hosts_per_leaf,
            params.host_nic_kbps,
            params.delay_ns,
        ));
        for (s, spine) in spines.iter().enumerate() {
            net.connect(
                Endpoint::switch(*leaf, (params.hosts_per_leaf + s) as PortId),
                Endpoint::switch(*spine, l as PortId),
                params.delay_ns,
            );
        }
    }
    (
        finish(net),
        LeafSpine {
            leaves,
            spines,
            hosts,
        },
    )
}

/// Parameters for [`bonded_diamond`].
#[derive(Debug, Clone)]
pub struct BondedDiamondParams {
    /// Number of disjoint paths between the two hosts (= NICs per host).
    pub n_paths: usize,
    /// Switches on each path.
    pub switches_per_path: usize,
    /// Capacity of every link, kbps.
    pub link_kbps: u32,
    /// Egress queue limit, bytes.
    pub queue_limit_bytes: u32,
    /// Propagation delay of every link, ns.
    pub delay_ns: u64,
    /// Host NIC rate, kbps.
    pub host_nic_kbps: u32,
}

impl Default for BondedDiamondParams {
    fn default() -> Self {
        BondedDiamondParams {
            n_paths: 2,
            switches_per_path: 2,
            link_kbps: 1_000_000, // 1 Gb/s
            queue_limit_bytes: 128 * 1024,
            delay_ns: crate::time::micros(20),
            host_nic_kbps: 1_000_000,
        }
    }
}

/// Handles into a bonded diamond.
#[derive(Debug)]
pub struct BondedDiamond {
    /// `paths[p]` — the switches of path `p`, sender side first.
    pub paths: Vec<Vec<SwitchId>>,
    /// The multi-homed sender (NIC `p` faces path `p`).
    pub sender: HostId,
    /// The multi-homed receiver (NIC `p` faces path `p`).
    pub receiver: HostId,
}

impl BondedDiamond {
    /// The sender's NIC endpoint on path `p` (where degradation profiles
    /// and loss usually go in bonding experiments).
    pub fn sender_nic(&self, p: usize) -> Endpoint {
        Endpoint::host_port(self.sender, p as PortId)
    }

    /// The receiver's NIC endpoint on path `p`.
    pub fn receiver_nic(&self, p: usize) -> Endpoint {
        Endpoint::host_port(self.receiver, p as PortId)
    }
}

/// Build the multipath bonding topology: two multi-homed hosts joined by
/// `n_paths` fully disjoint switch chains —
///
/// ```text
///          ┌─ a0 ─ a1 ─┐
/// sender ──┤           ├── receiver
///          └─ b0 ─ b1 ─┘
/// ```
///
/// Sender NIC `p` connects to path `p`'s first switch (port 0); each
/// chain runs port 1 → port 0; the last switch's port 1 connects to
/// receiver NIC `p`. Switch IDs are `0x40 + p*16 + i` for switch `i` of
/// path `p`. Both hosts share one MAC-per-host, so L2 routes on each
/// path lead to the local NIC — which NIC a frame leaves on (and so
/// which path it takes) is entirely the sender's choice via
/// [`crate::HostCtx::send_on`].
pub fn bonded_diamond(
    params: BondedDiamondParams,
    sender_app: Box<dyn HostApp>,
    receiver_app: Box<dyn HostApp>,
) -> (Simulator, BondedDiamond) {
    bonded_diamond_with(SimConfig::default(), params, sender_app, receiver_app)
}

/// [`bonded_diamond`] under an explicit [`SimConfig`].
pub fn bonded_diamond_with(
    config: SimConfig,
    params: BondedDiamondParams,
    sender_app: Box<dyn HostApp>,
    receiver_app: Box<dyn HostApp>,
) -> (Simulator, BondedDiamond) {
    assert!(params.n_paths >= 1, "bond needs at least one path");
    assert!(
        params.n_paths <= 16,
        "switch-ID scheme supports at most 16 paths"
    );
    assert!(
        params.switches_per_path >= 1 && params.switches_per_path <= 16,
        "switch-ID scheme supports 1..=16 switches per path"
    );
    let mut net = NetworkBuilder::with_config(config);
    let paths: Vec<Vec<SwitchId>> = (0..params.n_paths)
        .map(|p| {
            (0..params.switches_per_path)
                .map(|i| {
                    net.add_switch(uniform_cfg(
                        0x40 + (p * 16 + i) as u32,
                        2,
                        params.link_kbps,
                        params.queue_limit_bytes,
                    ))
                })
                .collect()
        })
        .collect();
    let sender = net.add_host_multi(sender_app, params.host_nic_kbps, params.n_paths as u16);
    let receiver = net.add_host_multi(receiver_app, params.host_nic_kbps, params.n_paths as u16);
    for (p, path) in paths.iter().enumerate() {
        wire_switch_chain(
            &mut net,
            Endpoint::host_port(sender, p as PortId),
            path,
            Endpoint::host_port(receiver, p as PortId),
            params.delay_ns,
        );
    }
    (
        finish(net),
        BondedDiamond {
            paths,
            sender,
            receiver,
        },
    )
}
