//! The event queue: a binary heap ordered by a canonical [`EventKey`].
//!
//! The single-threaded simulator used to break time ties by insertion
//! order, which is deterministic but *schedule-dependent*: two shards
//! inserting the same logical events in different orders would disagree.
//! The canonical key orders events by content instead —
//! `(time, class, major, minor)` — so every shard's heap, and the
//! one-shard heap, pop the same logical sequence. Cross-shard mailboxes
//! need no separate merge step: delivered events simply take their place
//! in key order.
//!
//! Classes at equal time: scheduled faults fire first (they were
//! installed before the run, lowest legacy sequence numbers), then host
//! timers, then transmitter-free events, then frame arrivals (which are
//! pushed last by the transmit path). `major` identifies the target
//! (a `(node, port)` key, a host, or a fault-plan entry index) and
//! `minor` a per-target monotone sequence (per-link-direction frame
//! counter, per-host timer counter).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fault::ChannelProfile;
use crate::node::{HostId, SwitchId};
use tpp_asic::PortId;

/// Where an event is delivered: a dense `u32` node id. Switches are
/// their index, hosts set the top bit. Half the size of the old
/// two-word `NodeRef` enum, which matters because every frame arrival
/// and link-free event in every shard queue carries one; the ordering
/// (switches below hosts, then index) matches the canonical key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

const HOST_BIT: u32 = 1 << 31;

impl NodeId {
    /// The id of a switch.
    pub fn switch(s: SwitchId) -> Self {
        debug_assert!((s.0 as u32) < HOST_BIT);
        NodeId(s.0 as u32)
    }

    /// The id of a host.
    pub fn host(h: HostId) -> Self {
        debug_assert!((h.0 as u32) < HOST_BIT);
        NodeId(h.0 as u32 | HOST_BIT)
    }

    /// Whether this id names a host (else a switch).
    pub fn is_host(self) -> bool {
        self.0 & HOST_BIT != 0
    }

    /// The dense switch or host index.
    pub fn index(self) -> usize {
        (self.0 & !HOST_BIT) as usize
    }
}

pub(crate) const CLASS_FAULT: u8 = 0;
pub(crate) const CLASS_TIMER: u8 = 1;
pub(crate) const CLASS_LINK_FREE: u8 = 2;
pub(crate) const CLASS_FRAME: u8 = 3;

/// A canonical `(node, port)` ordering key: switches below hosts, then
/// node index, then port. Bit-compatible with the pre-`NodeId` key, so
/// fingerprints and RNG streams keyed on it are unchanged.
pub(crate) fn node_port_key(node: NodeId, port: PortId) -> u64 {
    let host_bit = ((node.0 >> 31) as u64) << 63;
    host_bit | ((node.index() as u64) << 16) | port as u64
}

/// The canonical total order on simulation events.
///
/// Keys are derived from event *content*, never from insertion order, so
/// seeded runs order identically for every shard count. Lexicographic:
/// time, then class, then target, then per-target sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Absolute simulation time, ns.
    pub time: u64,
    pub(crate) class: u8,
    pub(crate) major: u64,
    pub(crate) minor: u64,
}

impl EventKey {
    /// Key of a scheduled fault step: `entry` is the global plan-entry
    /// index (plan order is preserved at equal times), `dir` orders the
    /// two per-direction steps of a full-duplex link fault.
    pub(crate) fn fault(time: u64, entry: u64, dir: u64) -> Self {
        EventKey {
            time,
            class: CLASS_FAULT,
            major: entry,
            minor: dir,
        }
    }

    /// Key of a host timer firing; `seq` is the per-host timer counter.
    pub(crate) fn timer(time: u64, host: HostId, seq: u64) -> Self {
        EventKey {
            time,
            class: CLASS_TIMER,
            major: (1u64 << 63) | ((host.0 as u64) << 16),
            minor: seq,
        }
    }

    /// Key of a transmitter becoming free at `(node, port)`.
    pub(crate) fn link_free(time: u64, node: NodeId, port: PortId) -> Self {
        EventKey {
            time,
            class: CLASS_LINK_FREE,
            major: node_port_key(node, port),
            minor: 0,
        }
    }

    /// Key of a frame arrival at `(node, port)`; `seq` is the
    /// transmitting link direction's frame counter (duplicated copies
    /// take the lower sequence, so they deliver before the original).
    pub(crate) fn frame(time: u64, node: NodeId, port: PortId, seq: u64) -> Self {
        EventKey {
            time,
            class: CLASS_FRAME,
            major: node_port_key(node, port),
            minor: seq,
        }
    }
}

/// One shard-local step of an injected fault.
///
/// [`FaultAction`](crate::fault::FaultAction) entries are expanded at
/// install time into steps that each touch state owned by exactly one
/// shard (a full-duplex link flap becomes two per-direction steps), so
/// fault application never reaches across a shard boundary.
#[derive(Debug, Clone, Copy)]
pub enum FaultApply {
    /// Set the up/down state of the link direction transmitted from
    /// `(node, port)`.
    SetLinkUp {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
        /// New state: `true` restores the direction, `false` black-holes
        /// it.
        up: bool,
    },
    /// Reboot a switch: wipe SRAM, bump the boot epoch, restore its L2
    /// routes from the precomputed control-plane tables.
    Reboot {
        /// The switch.
        switch: SwitchId,
    },
    /// Replace the channel fault profile of the link direction
    /// transmitted from `(node, port)`.
    SetChannel {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
        /// The new profile.
        profile: ChannelProfile,
    },
}

/// What happens.
#[derive(Debug)]
pub enum EventKind {
    /// A frame finished arriving at `node` on `port` (for hosts, the NIC
    /// index).
    FrameArrive {
        /// Receiving node.
        node: NodeId,
        /// Receiving port (NIC index for hosts).
        port: PortId,
        /// The frame bytes.
        frame: Vec<u8>,
    },
    /// The transmitter at `(node, port)` finished serializing a frame and
    /// may start the next one.
    LinkFree {
        /// Transmitting node.
        node: NodeId,
        /// Transmitting port.
        port: PortId,
    },
    /// A host timer fired.
    Timer {
        /// The host.
        host: HostId,
        /// App-defined token.
        token: u64,
    },
    /// A scheduled fault step fires (installed via
    /// [`Simulator::install_faults`](crate::Simulator::install_faults)).
    Fault {
        /// The shard-local step to apply.
        apply: FaultApply,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// Canonical ordering key.
    pub key: EventKey,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other.key.cmp(&self.key)
    }
}

/// A deterministic min-queue of events in canonical key order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` under canonical key `key`.
    pub fn push(&mut self, key: EventKey, kind: EventKind) {
        self.heap.push(Event { key, kind });
    }

    /// Re-insert an already-keyed event (mailbox delivery).
    pub fn push_event(&mut self, event: Event) {
        self.heap.push(event);
    }

    /// Key of the earliest pending event.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.key.time)
    }

    /// The earliest pending event, without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_kind(token: u64) -> EventKind {
        EventKind::Timer {
            host: HostId(0),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(EventKey::timer(30, HostId(0), 0), timer_kind(0));
        q.push(EventKey::timer(10, HostId(0), 1), timer_kind(1));
        q.push(EventKey::timer(20, HostId(0), 2), timer_kind(2));
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop().unwrap().key.time, 10);
        assert_eq!(q.pop().unwrap().key.time, 20);
        assert_eq!(q.pop().unwrap().key.time, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn node_id_roundtrips_and_orders() {
        let s = NodeId::switch(SwitchId(3));
        let h = NodeId::host(HostId(3));
        assert!(!s.is_host());
        assert!(h.is_host());
        assert_eq!(s.index(), 3);
        assert_eq!(h.index(), 3);
        assert!(s < h, "switches order below hosts");
        assert_eq!(
            node_port_key(s, 2),
            (3u64 << 16) | 2,
            "bit-compatible with the pre-NodeId key"
        );
        assert_eq!(node_port_key(h, 2), (1u64 << 63) | (3u64 << 16) | 2);
    }

    #[test]
    fn ties_break_by_class_then_target() {
        let mut q = EventQueue::new();
        let node = NodeId::switch(SwitchId(1));
        // Push in scrambled order; pops must follow the canonical class
        // order: fault, timer, link-free, frame.
        q.push(
            EventKey::frame(5, node, 0, 0),
            EventKind::FrameArrive {
                node,
                port: 0,
                frame: vec![],
            },
        );
        q.push(
            EventKey::link_free(5, node, 0),
            EventKind::LinkFree { node, port: 0 },
        );
        q.push(EventKey::timer(5, HostId(0), 0), timer_kind(0));
        q.push(
            EventKey::fault(5, 0, 0),
            EventKind::Fault {
                apply: FaultApply::Reboot {
                    switch: SwitchId(1),
                },
            },
        );
        let classes: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.key.class)
            .collect();
        assert_eq!(
            classes,
            vec![CLASS_FAULT, CLASS_TIMER, CLASS_LINK_FREE, CLASS_FRAME]
        );
    }

    #[test]
    fn equal_time_timers_pop_in_sequence_order() {
        let mut q = EventQueue::new();
        for (seq, token) in [(2u64, 3u64), (0, 1), (1, 2)] {
            q.push(EventKey::timer(5, HostId(0), seq), timer_kind(token));
        }
        let mut tokens = Vec::new();
        while let Some(e) = q.pop() {
            if let EventKind::Timer { token, .. } = e.kind {
                tokens.push(token);
            }
        }
        assert_eq!(tokens, vec![1, 2, 3], "per-host timer sequence orders ties");
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        // The property the sharded scheduler rests on: any insertion
        // order of the same event set pops identically.
        let node = NodeId::host(HostId(2));
        let keys = [
            EventKey::frame(7, node, 0, 4),
            EventKey::frame(7, node, 0, 1),
            EventKey::timer(7, HostId(2), 0),
            EventKey::frame(6, node, 0, 9),
        ];
        let pop_order = |order: &[usize]| -> Vec<EventKey> {
            let mut q = EventQueue::new();
            for &i in order {
                q.push(keys[i], EventKind::LinkFree { node, port: 0 });
            }
            std::iter::from_fn(|| q.pop()).map(|e| e.key).collect()
        };
        let a = pop_order(&[0, 1, 2, 3]);
        let b = pop_order(&[3, 2, 1, 0]);
        let c = pop_order(&[1, 3, 0, 2]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(EventKey::timer(1, HostId(0), 0), timer_kind(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
