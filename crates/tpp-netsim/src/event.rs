//! The event queue: a binary heap ordered by `(time, seq)`.
//!
//! The sequence number breaks ties deterministically in insertion order,
//! which is what makes whole simulations reproducible bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{HostId, SwitchId};
use tpp_asic::PortId;

/// Where an event is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// A switch.
    Switch(SwitchId),
    /// A host.
    Host(HostId),
}

/// What happens.
#[derive(Debug)]
pub enum EventKind {
    /// A frame finished arriving at `node` on `port` (hosts have a single
    /// implicit port).
    FrameArrive {
        /// Receiving node.
        node: NodeRef,
        /// Receiving port (0 for hosts).
        port: PortId,
        /// The frame bytes.
        frame: Vec<u8>,
    },
    /// The transmitter at `(node, port)` finished serializing a frame and
    /// may start the next one.
    LinkFree {
        /// Transmitting node.
        node: NodeRef,
        /// Transmitting port.
        port: PortId,
    },
    /// A host timer fired.
    Timer {
        /// The host.
        host: HostId,
        /// App-defined token.
        token: u64,
    },
    /// Periodic statistics tick (utilization EWMAs).
    StatsTick,
    /// A scheduled fault fires (installed via
    /// [`Simulator::install_faults`](crate::Simulator::install_faults)).
    Fault {
        /// What to inject.
        action: crate::fault::FaultAction,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// Absolute time in ns.
    pub time: u64,
    /// Tie-breaking sequence number.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::StatsTick);
        q.push(10, EventKind::StatsTick);
        q.push(20, EventKind::StatsTick);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop().unwrap().time, 10);
        assert_eq!(q.pop().unwrap().time, 20);
        assert_eq!(q.pop().unwrap().time, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(
            5,
            EventKind::Timer {
                host: HostId(0),
                token: 1,
            },
        );
        q.push(
            5,
            EventKind::Timer {
                host: HostId(0),
                token: 2,
            },
        );
        q.push(
            5,
            EventKind::Timer {
                host: HostId(0),
                token: 3,
            },
        );
        let mut tokens = Vec::new();
        while let Some(e) = q.pop() {
            if let EventKind::Timer { token, .. } = e.kind {
                tokens.push(token);
            }
        }
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, EventKind::StatsTick);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
