//! Host applications — the "smartness at the edge" of the paper's design
//! principle ("Any complexity in implementing a network task is pushed to
//! fully programmable end-hosts", §3).
//!
//! A [`HostApp`] is the programmable end-host: it reacts to start-of-run,
//! incoming frames, and timers, and emits frames / timer requests through
//! its [`HostCtx`]. Everything an app does is mediated by the context, so
//! apps stay pure state machines and the simulator stays deterministic.

use std::any::Any;

/// Identifier of a host in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// Identifier of a switch in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub usize);

/// Blanket upcast to `Any`, so experiments can downcast their apps back
/// out of the simulator to read results.
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An end-host application.
///
/// All methods have empty defaults, so simple apps implement only what
/// they need. Apps must be `'static` (owned state only) so they can be
/// recovered by downcast via [`crate::Simulator::host_app`], and `Send`
/// because the sharded simulator steps hosts from worker threads.
pub trait HostApp: AsAny + Send + 'static {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let _ = ctx;
    }

    /// Called when a frame is delivered to this host.
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let _ = (frame, ctx);
    }

    /// Called when a timer set via [`HostCtx::set_timer`] fires.
    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        let _ = (token, ctx);
    }
}

/// Actions an app can request; collected by the context and applied by
/// the simulator after the callback returns.
#[derive(Debug)]
pub(crate) enum HostAction {
    Send { port: u16, frame: Vec<u8> },
    Timer { delay_ns: u64, token: u64 },
}

/// The app's window onto the simulation during a callback.
#[derive(Debug)]
pub struct HostCtx<'a> {
    pub(crate) now_ns: u64,
    pub(crate) host: HostId,
    pub(crate) mac: tpp_wire::EthernetAddress,
    pub(crate) rx_port: u16,
    pub(crate) ports: u16,
    pub(crate) actions: &'a mut Vec<HostAction>,
    pub(crate) pool: &'a mut crate::pool::FramePool,
}

impl HostCtx<'_> {
    /// Current simulation time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// This host's id.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// This host's MAC address (what peers address frames to).
    pub fn mac(&self) -> tpp_wire::EthernetAddress {
        self.mac
    }

    /// Transmit a frame out of the host's first NIC (port 0). Frames
    /// queue at the NIC and serialize at its configured rate, in order.
    /// Multi-homed hosts pick a NIC with [`send_on`](Self::send_on).
    pub fn send(&mut self, frame: Vec<u8>) {
        self.send_on(0, frame);
    }

    /// Transmit a frame out of a specific NIC of a multi-homed host.
    /// Each NIC has its own queue and serializes independently, so
    /// backlog on one port never blocks another.
    pub fn send_on(&mut self, port: u16, frame: Vec<u8>) {
        assert!(
            port < self.ports,
            "host {:?} has {} NIC(s), no port {}",
            self.host,
            self.ports,
            port
        );
        self.actions.push(HostAction::Send { port, frame });
    }

    /// The NIC the frame being delivered arrived on (0 outside
    /// [`HostApp::on_frame`]). Echo-style apps reply on this port so the
    /// response retraces the arrival path.
    pub fn rx_port(&self) -> u16 {
        self.rx_port
    }

    /// How many NICs this host has (1 unless it was added with
    /// [`crate::NetworkBuilder::add_host_multi`]).
    pub fn ports(&self) -> u16 {
        self.ports
    }

    /// An empty buffer with at least `capacity` bytes reserved, drawn
    /// from the simulator's frame pool. Heavy senders that build frames
    /// into this buffer reuse the capacity of frames the network already
    /// consumed instead of hitting the allocator per packet.
    pub fn alloc_frame(&mut self, capacity: usize) -> Vec<u8> {
        self.pool.alloc(capacity)
    }

    /// Return a consumed frame's capacity to the simulator's frame pool.
    /// Delivered frames are owned by the receiving app; apps that are
    /// done with one can hand it back here so the next
    /// [`alloc_frame`](Self::alloc_frame) anywhere in the simulation
    /// reuses the allocation.
    pub fn recycle_frame(&mut self, frame: Vec<u8>) {
        self.pool.recycle(frame);
    }

    /// Arrange for [`HostApp::on_timer`] to fire `delay_ns` from now with
    /// `token`.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.actions.push(HostAction::Timer { delay_ns, token });
    }
}
