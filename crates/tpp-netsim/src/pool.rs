//! Frame-buffer pool: recycles `Vec<u8>` capacity through the simulator's
//! hot loop.
//!
//! Every frame in flight is an owned `Vec<u8>`. Without a pool, each send
//! allocates and each drop frees — at datacenter scale that is one
//! allocator round-trip per frame. The pool keeps the capacity of frames
//! the simulator consumed (in-flight losses, link-down drops, black-holed
//! frames on unconnected ports) and hands it back to senders through
//! [`crate::HostCtx::alloc_frame`] and to the fault layer's duplication
//! path.
//!
//! The pool is pure capacity reuse: a recycled buffer is always cleared
//! before reuse, so it has no effect on simulation results.

/// A bounded stack of retired frame buffers.
#[derive(Debug)]
pub struct FramePool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    recycled: u64,
    reused: u64,
    fresh: u64,
}

impl Default for FramePool {
    fn default() -> Self {
        FramePool::new(1024)
    }
}

impl FramePool {
    /// A pool retaining at most `max_buffers` retired buffers.
    pub fn new(max_buffers: usize) -> Self {
        FramePool {
            free: Vec::new(),
            max_buffers,
            recycled: 0,
            reused: 0,
            fresh: 0,
        }
    }

    /// An empty buffer with at least `capacity` bytes reserved, reusing a
    /// retired buffer's allocation when one is available.
    pub fn alloc(&mut self, capacity: usize) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                self.reused += 1;
                buf.clear();
                if buf.capacity() < capacity {
                    buf.reserve(capacity - buf.len());
                }
                buf
            }
            None => {
                self.fresh += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    /// A buffer holding a copy of `bytes` (the duplication fast path).
    pub fn copy_of(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut buf = self.alloc(bytes.len());
        buf.extend_from_slice(bytes);
        buf
    }

    /// Retire a consumed frame, keeping its capacity for a later
    /// [`alloc`](Self::alloc). Buffers beyond the pool bound (or with no
    /// capacity worth keeping) are simply freed.
    pub fn recycle(&mut self, frame: Vec<u8>) {
        if frame.capacity() == 0 || self.free.len() >= self.max_buffers {
            return;
        }
        self.recycled += 1;
        self.free.push(frame);
    }

    /// Buffers currently retired and waiting for reuse.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// `(reused, fresh, recycled)` counters: allocations served from the
    /// pool, allocations that fell through to the allocator, and buffers
    /// accepted back.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reused, self.fresh, self.recycled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_capacity_is_reused() {
        let mut pool = FramePool::new(8);
        let mut frame = Vec::with_capacity(1500);
        frame.extend_from_slice(&[7u8; 100]);
        pool.recycle(frame);
        let buf = pool.alloc(64);
        assert!(buf.is_empty(), "recycled buffers come back cleared");
        assert!(buf.capacity() >= 1500, "capacity survived the round trip");
        assert_eq!(pool.stats(), (1, 0, 1));
    }

    #[test]
    fn pool_bound_is_respected() {
        let mut pool = FramePool::new(2);
        for _ in 0..5 {
            pool.recycle(vec![0u8; 10]);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn copy_of_round_trips_bytes() {
        let mut pool = FramePool::new(4);
        pool.recycle(vec![0u8; 64]);
        let copy = pool.copy_of(b"abc");
        assert_eq!(copy, b"abc");
    }
}
