//! The sharded scheduler: per-shard event loops, conservative windows,
//! and cross-shard mailboxes.
//!
//! The topology is partitioned into shards, each owning a contiguous
//! block of switches and hosts together with their outgoing link
//! directions, event queue, frame pool, fault counters and taps. Time
//! advances in *conservative windows*: if the earliest pending event
//! anywhere is at `T`, every shard may safely process events in
//! `[T, T + L)` where the lookahead `L` is the minimum propagation delay
//! of any inter-shard link — no frame sent inside the window can arrive
//! at another shard before the window closes. Frames that cross a shard
//! boundary are pushed into the destination shard's mailbox and drained
//! into its queue at the next window barrier.
//!
//! Determinism does not depend on the schedule: every queue orders by
//! the canonical [`EventKey`], which is derived from event content, so
//! the order in which mailbox items were deposited (or which thread ran
//! first) is irrelevant. The sequential and threaded drivers execute
//! the identical window schedule, and a one-shard run degenerates to
//! the classic single event loop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Barrier, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{Event, EventKey, EventKind, EventQueue, FaultApply, NodeId};
use crate::fault::FaultCounters;
use crate::node::{HostAction, HostApp, HostCtx, HostId, SwitchId};
use crate::pool::FramePool;
use crate::sim::{HostNode, Link, SwitchNode, TapDir, TapRecord};
use crate::time::tx_time_ns;
use tpp_asic::{Outcome, PortId};
use tpp_telemetry::{SharedSink, TraceEvent, TraceEventKind, TraceSink};
use tpp_wire::ethernet::{Frame, ETHERNET_HEADER_LEN};
use tpp_wire::tpp::TppPacket;
use tpp_wire::EthernetAddress;

/// Mix a seed and a per-link key into an independent RNG stream seed
/// (splitmix64 finalizer). Streams depend only on `(seed, key)`, never
/// on shard layout or draw interleaving across links.
pub(crate) fn mix64(seed: u64, key: u64) -> u64 {
    let mut x = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mutable state owned by one shard: its event queue and the per-shard
/// halves of every cross-cutting facility (pool, counters, taps, trace
/// sink). Aggregated views are summed by the `Simulator` accessors.
pub(crate) struct ShardState {
    pub(crate) events: EventQueue,
    pub(crate) pool: FramePool,
    pub(crate) counters: FaultCounters,
    pub(crate) actions: Vec<HostAction>,
    /// Scratch buffer the mailbox contents are swapped into at each
    /// drain, so the lock is held only for a pointer swap and both
    /// buffers keep their capacity warm across windows.
    pub(crate) inbox_scratch: Vec<Event>,
    pub(crate) taps: HashMap<(NodeId, PortId), Vec<TapRecord>>,
    pub(crate) sink: Option<SharedSink>,
    pub(crate) processed: u64,
}

impl ShardState {
    pub(crate) fn new(frame_pool_buffers: usize) -> Self {
        ShardState {
            events: EventQueue::new(),
            pool: FramePool::new(frame_pool_buffers),
            counters: FaultCounters::default(),
            actions: Vec::new(),
            inbox_scratch: Vec::new(),
            taps: HashMap::new(),
            sink: None,
            processed: 0,
        }
    }
}

/// A shard's working view for one stepping call: disjoint `&mut` slices
/// of the simulator's node/link arrays (split at the partition
/// boundaries) plus its own [`ShardState`]. Global ids are translated
/// through `switch_base` / `host_base`.
pub(crate) struct ShardRun<'a> {
    pub(crate) idx: usize,
    pub(crate) now_ns: u64,
    pub(crate) switch_base: usize,
    pub(crate) host_base: usize,
    pub(crate) switches: &'a mut [SwitchNode],
    pub(crate) hosts: &'a mut [HostNode],
    pub(crate) switch_links: &'a mut [Vec<Option<Link>>],
    pub(crate) host_links: &'a mut [Vec<Option<Link>>],
    pub(crate) state: &'a mut ShardState,
    pub(crate) inboxes: &'a [Mutex<Vec<Event>>],
    pub(crate) l2_routes: &'a [Vec<(EthernetAddress, PortId)>],
    /// Equal-cost next-hop table, present only under
    /// [`SimConfig::ecmp`](crate::SimConfig::ecmp); shared read-only by
    /// every shard.
    pub(crate) ecmp: Option<&'a crate::routing::EcmpTable>,
    pub(crate) fault_seed: u64,
    pub(crate) fault_epoch: u32,
}

impl ShardRun<'_> {
    /// Move mailbox deliveries into the event queue. Items deposited by
    /// other shards during the previous window all lie at or beyond the
    /// current barrier, so delivery is never late. The mailbox contents
    /// are swapped into a per-shard scratch buffer: the lock is held
    /// only for the swap, and the two buffers' capacities are reused
    /// across windows instead of reallocating.
    pub(crate) fn drain_inbox(&mut self) {
        let mut scratch = std::mem::take(&mut self.state.inbox_scratch);
        {
            let mut inbox = self.inboxes[self.idx].lock().expect("inbox lock");
            std::mem::swap(&mut *inbox, &mut scratch);
        }
        for event in scratch.drain(..) {
            self.state.events.push_event(event);
        }
        self.state.inbox_scratch = scratch;
    }

    /// Time of this shard's earliest pending event.
    pub(crate) fn next_pending(&self) -> u64 {
        self.state.events.peek_time().unwrap_or(u64::MAX)
    }

    /// Process every pending event strictly before `end_exclusive`.
    pub(crate) fn step_until(&mut self, end_exclusive: u64) {
        while let Some(key) = self.state.events.peek_key() {
            if key.time >= end_exclusive {
                break;
            }
            let event = self.state.events.pop().expect("peeked");
            self.now_ns = event.key.time;
            self.state.processed += 1;
            self.dispatch(event.kind);
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::FrameArrive { node, port, frame } => {
                if !node.is_host() {
                    self.switch_arrival(SwitchId(node.index()), port, frame);
                    self.drain_arrival_burst(node);
                } else {
                    if !self.state.taps.is_empty() {
                        self.tap(node, port, TapDir::Rx, &frame);
                    }
                    let h = HostId(node.index());
                    self.call_host(h, port, |app, ctx| app.on_frame(frame, ctx));
                }
            }
            EventKind::LinkFree { node, port } => {
                if !node.is_host() {
                    let s = SwitchId(node.index());
                    self.switches[s.0 - self.switch_base].tx_busy[port as usize] = false;
                    self.try_tx_switch(s, port);
                } else {
                    let h = HostId(node.index());
                    self.hosts[h.0 - self.host_base].nics[port as usize].busy = false;
                    self.try_tx_host(h, port);
                }
            }
            EventKind::Timer { host, token } => {
                self.call_host(host, 0, |app, ctx| app.on_timer(token, ctx));
            }
            EventKind::Fault { apply } => self.apply_fault(apply),
        }
    }

    /// Hand one frame to a switch ASIC and start transmitting its output.
    fn switch_arrival(&mut self, s: SwitchId, port: PortId, frame: Vec<u8>) {
        if !self.state.taps.is_empty() {
            self.tap(NodeId::switch(s), port, TapDir::Rx, &frame);
        }
        let now = self.now_ns;
        let route = self.ecmp.and_then(|table| self.ecmp_pick(table, s, &frame));
        let local = s.0 - self.switch_base;
        let outcome = match route {
            Some(out) => self.switches[local]
                .asic
                .handle_frame_routed(frame, port, now, Some(out)),
            None => self.switches[local].asic.handle_frame(frame, port, now),
        };
        if let Outcome::Enqueued { port: out, .. } = outcome {
            self.try_tx_switch(s, out);
        }
    }

    /// The ECMP egress override for one frame at switch `s`, or `None`
    /// when hashing does not apply (no flow key, unknown destination,
    /// or a group of at most one — single-path tiers keep the ASIC's
    /// own lookup and its flow cache). Candidates are filtered to up
    /// egress links (owned by this shard, so the filter is as
    /// deterministic as the hash); a fully-dark group falls back to the
    /// unfiltered pick and the frame drops at the transmitter.
    fn ecmp_pick(
        &self,
        table: &crate::routing::EcmpTable,
        s: SwitchId,
        frame: &[u8],
    ) -> Option<PortId> {
        let parsed = Frame::new_checked(frame).ok()?;
        let dst = parsed.dst_addr();
        let dst_host = dst.host_id()?;
        let group = table.group(s.0, dst_host);
        if group.len() < 2 {
            return None;
        }
        let local = s.0 - self.switch_base;
        let is_up = |p: &&PortId| {
            self.switch_links[local]
                .get(**p as usize)
                .and_then(Option::as_ref)
                .is_some_and(|l| l.up)
        };
        let hash = table.flow_hash(
            self.switches[local].asic.switch_id(),
            parsed.src_addr(),
            dst,
            crate::routing::flow_label(frame),
        );
        // Stack buffer: groups are tiny (≤ radix/2), and this runs per
        // frame. A group wider than the buffer keeps the first 32 up
        // candidates, which preserves determinism (same truncation on
        // every shard layout).
        let mut up = [0 as PortId; 32];
        let mut n = 0;
        for p in group.iter().filter(is_up) {
            if n < up.len() {
                up[n] = *p;
                n += 1;
            }
        }
        let pick = if n == 0 {
            crate::routing::EcmpTable::pick(group, hash)
        } else {
            crate::routing::EcmpTable::pick(&up[..n], hash)
        };
        Some(pick)
    }

    /// Batched TCPU execution: frames landing on switch `s` at the same
    /// instant are adjacent in canonical key order (same time, same
    /// class, same receiver-major), so run the whole burst back to back
    /// without re-entering the dispatcher. The ASIC's decode-cache memo
    /// then decodes a repeated program once for the burst.
    fn drain_arrival_burst(&mut self, node: NodeId) {
        let s = SwitchId(node.index());
        loop {
            let same_burst = matches!(
                self.state.events.peek(),
                Some(Event {
                    key,
                    kind: EventKind::FrameArrive { node: n2, .. },
                }) if key.time == self.now_ns && *n2 == node
            );
            if !same_burst {
                break;
            }
            let Some(Event {
                kind: EventKind::FrameArrive { port, frame, .. },
                ..
            }) = self.state.events.pop()
            else {
                unreachable!("peek matched a frame arrival");
            };
            self.state.processed += 1;
            self.switch_arrival(s, port, frame);
        }
    }

    fn apply_fault(&mut self, apply: FaultApply) {
        match apply {
            FaultApply::SetLinkUp { node, port, up } => {
                let switch_id = self.node_switch_id(node);
                let flipped = {
                    let link = self.link_mut(node, port).expect("validated on install");
                    let was_up = link.up;
                    link.up = up;
                    was_up != up
                };
                if !flipped {
                    return;
                }
                if up {
                    self.emit_fault(switch_id, TraceEventKind::LinkUp { port });
                } else {
                    self.state.counters.link_downs += 1;
                    self.emit_fault(switch_id, TraceEventKind::LinkDown { port });
                }
            }
            FaultApply::Reboot { switch } => {
                let now = self.now_ns;
                let local = switch.0 - self.switch_base;
                self.switches[local].asic.reset(now);
                self.state.counters.reboots += 1;
                // The control plane reconverges: restore this switch's
                // L2 routes from the precomputed tables (other switches
                // kept theirs).
                for (mac, port) in &self.l2_routes[switch.0] {
                    self.switches[local].asic.l2_mut().insert(*mac, *port);
                }
            }
            FaultApply::SetChannel {
                node,
                port,
                profile,
            } => {
                self.link_mut(node, port)
                    .expect("validated on install")
                    .faults = profile;
            }
        }
    }

    /// Start transmitting the next queued frame on a switch port, if the
    /// transmitter is idle and the port is connected.
    fn try_tx_switch(&mut self, s: SwitchId, port: PortId) {
        let local = s.0 - self.switch_base;
        if self.switches[local].tx_busy[port as usize] {
            return;
        }
        let connected = self.switch_links[local]
            .get(port as usize)
            .map(Option::is_some)
            .unwrap_or(false);
        if !connected {
            // Unconnected port: black-hole anything queued there,
            // reclaiming the buffers.
            while let Some(frame) = self.switches[local].asic.dequeue(port) {
                self.state.pool.recycle(frame);
            }
            return;
        }
        let Some(frame) = self.switches[local].asic.dequeue(port) else {
            return;
        };
        let rate = self.switches[local].asic.port_capacity_kbps(port);
        let tx = self.profiled_tx_ns(
            tx_time_ns(frame.len(), rate),
            self.switch_links[local][port as usize]
                .as_ref()
                .expect("connected"),
        );
        self.switches[local].tx_busy[port as usize] = true;
        let node = NodeId::switch(s);
        self.state.events.push(
            EventKey::link_free(self.now_ns + tx, node, port),
            EventKind::LinkFree { node, port },
        );
        self.transmit(node, port, tx, frame);
    }

    /// Start transmitting the next queued frame from one host NIC.
    fn try_tx_host(&mut self, h: HostId, port: PortId) {
        let local = h.0 - self.host_base;
        if self.hosts[local].nics[port as usize].busy {
            return;
        }
        let connected = self.host_links[local]
            .get(port as usize)
            .map(Option::is_some)
            .unwrap_or(false);
        if !connected {
            while let Some(frame) = self.hosts[local].nics[port as usize].queue.pop_front() {
                self.state.pool.recycle(frame);
            }
            return;
        }
        let Some(frame) = self.hosts[local].nics[port as usize].queue.pop_front() else {
            return;
        };
        let rate = self.hosts[local].nics[port as usize].rate_kbps;
        let tx = self.profiled_tx_ns(
            tx_time_ns(frame.len(), rate),
            self.host_links[local][port as usize]
                .as_ref()
                .expect("connected"),
        );
        self.hosts[local].nics[port as usize].busy = true;
        let node = NodeId::host(h);
        self.state.events.push(
            EventKey::link_free(self.now_ns + tx, node, port),
            EventKind::LinkFree { node, port },
        );
        self.transmit(node, port, tx, frame);
    }

    /// Serialization time through the link's time-varying profile, if
    /// one is installed: a degraded rate stretches the wire time (and so
    /// both the transmitter-busy interval and the arrival time).
    fn profiled_tx_ns(&self, tx: u64, link: &Link) -> u64 {
        match &link.profile {
            Some(p) => crate::profile::scale_tx_ns(tx, p.sample(self.now_ns).rate_permille),
            None => tx,
        }
    }

    /// Put a frame on the wire: deliver after serialization +
    /// propagation, unless the channel eats it (or an installed fault
    /// plan duplicates, corrupts, or delays it). Delivery lands in this
    /// shard's queue or, across a shard boundary, in the destination
    /// shard's mailbox — propagation delay of inter-shard links is at
    /// least the lookahead, so the frame always arrives at or beyond
    /// the next window barrier.
    fn transmit(&mut self, from: NodeId, port: PortId, tx_ns: u64, frame: Vec<u8>) {
        if !self.state.taps.is_empty() {
            self.tap(from, port, TapDir::Tx, &frame);
        }
        let switch_id = self.node_switch_id(from);
        let now = self.now_ns;
        let fault_seed = self.fault_seed;
        let fault_epoch = self.fault_epoch;
        let link = if !from.is_host() {
            self.switch_links[from.index() - self.switch_base][port as usize]
                .as_mut()
                .expect("transmit on unconnected port")
        } else {
            self.host_links[from.index() - self.host_base][port as usize]
                .as_mut()
                .expect("transmit on unconnected NIC")
        };
        if !link.up {
            link.losses += 1;
            self.state.counters.link_down_drops += 1;
            self.state.pool.recycle(frame);
            return;
        }
        // A time-varying profile composes with the static channel: its
        // loss adds to the static probability (clamped), its extra delay
        // adds to propagation (it can only *add*, so the conservative
        // lookahead bound stays sound). Sampling is a pure function of
        // `now`, identical on every shard.
        let profile_now = link.profile.as_deref().map(|p| p.sample(now));
        let effective_loss = (link.loss_permille as u32
            + profile_now.map_or(0, |s| s.loss_permille as u32))
        .min(1000);
        if effective_loss > 0 {
            let lost = {
                let rng = link
                    .loss_rng
                    .as_mut()
                    .expect("armed by set_link_loss or set_link_profile");
                rng.gen_range(0..1000u32) < effective_loss
            };
            if lost {
                link.losses += 1;
                self.state.pool.recycle(frame);
                return;
            }
        }
        let mut frame = frame;
        let mut arrival = now + tx_ns + link.delay_ns + profile_now.map_or(0, |s| s.extra_delay_ns);
        let mut duplicate = false;
        let mut corrupt_emit = None;
        if !link.faults.is_clean() {
            // Per-link-direction fault stream, lazily (re)seeded from
            // `(plan seed, link key)` whenever a new plan was installed:
            // draws depend only on the plan and this direction's frame
            // order, never on shard layout.
            if link.fault_rng.is_none() || link.fault_rng_epoch != fault_epoch {
                link.fault_rng = Some(Box::new(StdRng::seed_from_u64(mix64(fault_seed, link.key))));
                link.fault_rng_epoch = fault_epoch;
            }
            let f = link.faults;
            let rng = link.fault_rng.as_mut().expect("armed above");
            // Fixed consultation order (corrupt → duplicate → reorder)
            // keeps the fault stream deterministic for a given plan.
            if f.corrupt_permille > 0 && rng.gen_range(0..1000u32) < f.corrupt_permille as u32 {
                if let Some((byte, bit)) = pick_tpp_bit(rng, &frame) {
                    frame[byte] ^= 1 << bit;
                    corrupt_emit = Some(TraceEventKind::CorruptionInjected {
                        port,
                        byte: byte as u32,
                        bit,
                    });
                }
            }
            if f.duplicate_permille > 0 && rng.gen_range(0..1000u32) < f.duplicate_permille as u32 {
                duplicate = true;
            }
            if f.reorder_permille > 0
                && f.reorder_spread_ns > 0
                && rng.gen_range(0..1000u32) < f.reorder_permille as u32
            {
                arrival += rng.gen_range(0..f.reorder_spread_ns);
                self.state.counters.reordered += 1;
            }
        }
        let peer = link.peer;
        let peer_port = link.peer_port;
        let peer_shard = link.peer_shard;
        let seq = link.seq;
        link.seq += if duplicate { 2 } else { 1 };
        if let Some(kind) = corrupt_emit {
            self.state.counters.corrupted += 1;
            self.emit_fault(switch_id, kind);
        }
        if duplicate {
            // The copy takes the lower link sequence, so it delivers
            // before the original at the same arrival time (matching the
            // duplicate-before-original order of the classic loop).
            self.state.counters.duplicated += 1;
            let copy = self.state.pool.copy_of(&frame);
            self.deliver(
                peer_shard,
                Event {
                    key: EventKey::frame(arrival, peer, peer_port, seq),
                    kind: EventKind::FrameArrive {
                        node: peer,
                        port: peer_port,
                        frame: copy,
                    },
                },
            );
        }
        let seq = if duplicate { seq + 1 } else { seq };
        self.deliver(
            peer_shard,
            Event {
                key: EventKey::frame(arrival, peer, peer_port, seq),
                kind: EventKind::FrameArrive {
                    node: peer,
                    port: peer_port,
                    frame,
                },
            },
        );
    }

    fn deliver(&mut self, shard: usize, event: Event) {
        if shard == self.idx {
            self.state.events.push_event(event);
        } else {
            self.inboxes[shard].lock().expect("inbox lock").push(event);
        }
    }

    /// Invoke a host-app callback and apply the actions it requested.
    /// `rx_port` is the NIC the triggering frame arrived on (0 for
    /// timers and start-of-run).
    pub(crate) fn call_host<F>(&mut self, h: HostId, rx_port: PortId, f: F)
    where
        F: FnOnce(&mut dyn HostApp, &mut HostCtx<'_>),
    {
        // Reuse one scratch buffer per shard instead of allocating a
        // fresh Vec per invocation. `call_host` never re-enters itself
        // (applying actions only pushes events), so taking the buffer
        // out of the state for the duration is safe.
        let mut actions = std::mem::take(&mut self.state.actions);
        {
            let host = &mut self.hosts[h.0 - self.host_base];
            let mut ctx = HostCtx {
                now_ns: self.now_ns,
                host: h,
                mac: host.mac,
                rx_port,
                ports: host.nics.len() as u16,
                actions: &mut actions,
                pool: &mut self.state.pool,
            };
            f(host.app.as_mut(), &mut ctx);
        }
        for action in actions.drain(..) {
            match action {
                HostAction::Send { port, frame } => {
                    self.hosts[h.0 - self.host_base].nics[port as usize]
                        .queue
                        .push_back(frame);
                    self.try_tx_host(h, port);
                }
                HostAction::Timer { delay_ns, token } => {
                    let host = &mut self.hosts[h.0 - self.host_base];
                    let seq = host.timer_seq;
                    host.timer_seq += 1;
                    self.state.events.push(
                        EventKey::timer(self.now_ns + delay_ns, h, seq),
                        EventKind::Timer { host: h, token },
                    );
                }
            }
        }
        self.state.actions = actions;
    }

    fn link_mut(&mut self, node: NodeId, port: PortId) -> Option<&mut Link> {
        if !node.is_host() {
            self.switch_links[node.index() - self.switch_base]
                .get_mut(port as usize)
                .and_then(Option::as_mut)
        } else {
            self.host_links[node.index() - self.host_base]
                .get_mut(port as usize)
                .and_then(Option::as_mut)
        }
    }

    /// The dataplane switch id of a node (0 for hosts, which have no
    /// switch id).
    fn node_switch_id(&self, node: NodeId) -> u32 {
        if !node.is_host() {
            self.switches[node.index() - self.switch_base]
                .asic
                .switch_id()
        } else {
            0
        }
    }

    /// Record a simulator-level fault event into the fleet sink, if one
    /// is attached.
    fn emit_fault(&mut self, switch_id: u32, kind: TraceEventKind) {
        if let Some(sink) = self.state.sink.as_mut() {
            sink.record(TraceEvent {
                t_ns: self.now_ns,
                switch_id,
                seq: 0,
                kind,
            });
        }
    }

    #[cold]
    #[inline(never)]
    fn tap(&mut self, node: NodeId, port: PortId, dir: TapDir, frame: &[u8]) {
        let now = self.now_ns;
        if let Some(records) = self.state.taps.get_mut(&(node, port)) {
            if let Some(record) = TapRecord::capture(now, dir, frame) {
                records.push(record);
            }
        }
    }
}

/// Choose a random bit inside the TPP section of `frame` for
/// corruption. Returns `(byte_offset, bit)` relative to the whole
/// frame, or `None` for frames without a parseable TPP section
/// (non-TPP traffic is never corrupted: the fault models §3's
/// concern that a damaged TPP must not wedge a switch, not generic
/// payload corruption). Consumes RNG draws only when a target
/// exists, keeping the stream deterministic per plan.
fn pick_tpp_bit(rng: &mut StdRng, frame: &[u8]) -> Option<(usize, u8)> {
    let parsed = Frame::new_checked(frame).ok()?;
    if !parsed.is_tpp() {
        return None;
    }
    let tpp = TppPacket::new_checked(parsed.payload()).ok()?;
    let len = tpp.tpp_len();
    if len == 0 {
        return None;
    }
    let byte = ETHERNET_HEADER_LEN + rng.gen_range(0..len);
    let bit = rng.gen_range(0..8u32) as u8;
    Some((byte, bit))
}

/// Step every shard through conservative windows until no shard holds a
/// pending event before `limit`. The sequential and threaded drivers
/// execute the identical window schedule — windows always open at the
/// *global* minimum pending time — so results are bit-identical.
pub(crate) fn step_shards(
    runs: &mut [ShardRun<'_>],
    limit: u64,
    lookahead_ns: u64,
    parallel: bool,
) {
    if runs.len() <= 1 || !parallel {
        step_shards_sequential(runs, limit, lookahead_ns);
    } else {
        step_shards_parallel(runs, limit, lookahead_ns);
    }
}

fn step_shards_sequential(runs: &mut [ShardRun<'_>], limit: u64, lookahead_ns: u64) {
    loop {
        let mut min_pending = u64::MAX;
        for run in runs.iter_mut() {
            run.drain_inbox();
            min_pending = min_pending.min(run.next_pending());
        }
        if min_pending >= limit {
            return;
        }
        // Jump straight to the earliest work: empty windows are skipped,
        // so sparse simulations don't spin through barriers.
        let end = limit.min(min_pending.saturating_add(lookahead_ns));
        for run in runs.iter_mut() {
            run.step_until(end);
        }
    }
}

/// Drive the whole tick schedule of a `RunLimit::Until` run through one
/// persistent worker per shard: window-step to each tick, tick the
/// shard's own switches at the barrier, and continue to the next tick —
/// instead of spawning fresh threads (and a fresh [`Barrier`]) for every
/// tick interval, which cost ~14 heap allocations per tick and dominated
/// the threaded allocation count in `perf_baseline`.
///
/// The window protocol is identical to [`step_shards_parallel`], so the
/// event schedule — and therefore every simulation result — is
/// bit-identical. A stats tick at `T` happens once every shard has
/// agreed (via the shared minimum) that nothing is pending strictly
/// below `T`, matching the coordinator-driven path; ticking touches only
/// shard-owned switches, so no extra barrier is needed around it.
///
/// `Simulator::run` falls back to per-tick stepping when a series set is
/// sampled (the sampler needs the whole fleet in one place) or when
/// running tick-by-tick toward quiescence.
pub(crate) fn run_windows_parallel(
    runs: &mut [ShardRun<'_>],
    first_tick_ns: u64,
    tick_interval_ns: u64,
    t_end_ns: u64,
    lookahead_ns: u64,
) {
    let barrier = Barrier::new(runs.len());
    let slots = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
    std::thread::scope(|scope| {
        for (i, run) in runs.iter_mut().enumerate() {
            let barrier = &barrier;
            let slots = &slots;
            scope.spawn(move || {
                let leader = i == 0;
                let mut round = 0usize;
                let mut next_tick = first_tick_ns;
                loop {
                    // The same window limit the per-tick driver would
                    // use: the next stats tick, or one past the end for
                    // the final drain.
                    let limit = if next_tick <= t_end_ns {
                        next_tick
                    } else {
                        t_end_ns.saturating_add(1)
                    };
                    loop {
                        run.drain_inbox();
                        slots[round & 1].fetch_min(run.next_pending(), AtomicOrdering::AcqRel);
                        barrier.wait();
                        if leader {
                            slots[(round + 1) & 1].store(u64::MAX, AtomicOrdering::Release);
                        }
                        barrier.wait();
                        let min_pending = slots[round & 1].load(AtomicOrdering::Acquire);
                        if min_pending >= limit {
                            // Nobody steps this round (the minimum is
                            // global), so nobody mails: the second
                            // barrier is enough to move on, on every
                            // thread alike.
                            round += 1;
                            break;
                        }
                        run.step_until(limit.min(min_pending.saturating_add(lookahead_ns)));
                        barrier.wait();
                        round += 1;
                    }
                    if next_tick > t_end_ns {
                        return;
                    }
                    run.now_ns = next_tick;
                    for sw in run.switches.iter_mut() {
                        sw.asic.tick(next_tick);
                    }
                    next_tick += tick_interval_ns;
                }
            });
        }
    });
}

/// Threaded driver: one scoped worker per shard, synchronized per window
/// by a [`Barrier`]. The global minimum pending time is agreed through
/// two alternating `fetch_min` slots (publish into slot `r % 2`, while
/// the leader resets the other slot for the next round between the two
/// barrier waits).
fn step_shards_parallel(runs: &mut [ShardRun<'_>], limit: u64, lookahead_ns: u64) {
    let barrier = Barrier::new(runs.len());
    let slots = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
    std::thread::scope(|scope| {
        for (i, run) in runs.iter_mut().enumerate() {
            let barrier = &barrier;
            let slots = &slots;
            scope.spawn(move || {
                let leader = i == 0;
                let mut round = 0usize;
                loop {
                    // Every thread passed the end-of-window barrier below
                    // (or this is the first round), so all mail from the
                    // previous window has been deposited: the drain and
                    // the published minimum see it.
                    run.drain_inbox();
                    slots[round & 1].fetch_min(run.next_pending(), AtomicOrdering::AcqRel);
                    barrier.wait();
                    if leader {
                        slots[(round + 1) & 1].store(u64::MAX, AtomicOrdering::Release);
                    }
                    // Second wait: the reset above must be visible before
                    // anyone publishes into that slot next round.
                    barrier.wait();
                    let min_pending = slots[round & 1].load(AtomicOrdering::Acquire);
                    if min_pending >= limit {
                        return;
                    }
                    run.step_until(limit.min(min_pending.saturating_add(lookahead_ns)));
                    // Third wait: nobody may start the next round's drain
                    // while a peer is still stepping (and mailing) this
                    // window.
                    barrier.wait();
                    round += 1;
                }
            });
        }
    });
}
