//! Hash-based ECMP over equal-cost next hops.
//!
//! The L2 tables installed by [`Simulator::populate_l2`] pin every
//! destination to the single port its BFS tree happened to discover
//! first, which collapses a fat-tree's bisection onto one uplink per
//! edge switch. When [`SimConfig::ecmp`] is set, build time also
//! derives an [`EcmpTable`]: for every `(switch, destination host)`
//! pair, *all* ports that start a shortest path — the equal-cost
//! next-hop group — and switches with more than one candidate pick one
//! per flow by hash.
//!
//! # Hash scheme and shard invariance
//!
//! The pick is a pure function of `(config seed, switch id, flow key)`
//! where the flow key is the frame's source MAC, destination MAC and —
//! for traffic that carries one — the 64-bit flow label embedded in the
//! payload (see [`flow_label`]). Nothing about shard layout, thread
//! interleaving or event order enters the hash, so a flow's path is
//! bit-identical at any shard count; and because every frame of a flow
//! hashes alike, all its packets ride one path (no intra-flow
//! reordering from the router). The switch id salts the hash so the
//! fleet does not polarize: without it, every switch with an
//! equal-sized group would make the correlated choice and half the
//! bisection would sit idle.
//!
//! # Link failures
//!
//! The candidate group is filtered down to *up* egress links before the
//! pick (a switch's egress links are owned by its shard, so the filter
//! is deterministic too). A `FaultPlan` link-down therefore re-hashes
//! exactly the flows that used the dead port onto the survivors, and a
//! link-up restores the original spread — the "next-hop re-hash"
//! composition with [`crate::fault`] / [`crate::profile`]. If every
//! candidate is down the pick falls back to the full group and the
//! frame dies at the transmitter as a `link_down_drop`, which is what a
//! real switch whose whole group is dark does.
//!
//! [`Simulator::populate_l2`]: crate::Simulator::populate_l2
//! [`SimConfig::ecmp`]: crate::SimConfig::ecmp

use std::collections::{HashMap, VecDeque};

use crate::event::NodeId;
use crate::node::HostId;
use crate::shard::mix64;
use crate::sim::{HostNode, Link, SwitchNode};
use tpp_asic::PortId;
use tpp_wire::ethernet::Frame;
use tpp_wire::tpp::TppPacket;
use tpp_wire::EthernetAddress;

/// Leading magic of a payload that carries a flow label (shared with
/// the FCT workload's frame metadata and the transport header in
/// `tpp-host`): `0xF1C7` at bytes `[0..2]`, label at bytes `[16..24]`.
pub const FLOW_LABEL_MAGIC: [u8; 2] = [0xF1, 0xC7];

/// Byte offset of the 64-bit big-endian flow label inside a labelled
/// payload.
pub const FLOW_LABEL_OFFSET: usize = 16;

/// Extract the 64-bit flow label of a frame, if it carries one.
///
/// For TPP frames the label lives in the *inner* payload (the bytes
/// after the TPP section), which the TCPU never rewrites — so a probe
/// stamped with its flow's label rides the same ECMP path as the
/// flow's data. For plain frames it is the Ethernet payload itself.
/// Payloads shorter than 24 bytes or without the magic have no label;
/// such flows hash on addresses alone.
pub fn flow_label(frame: &[u8]) -> Option<u64> {
    let parsed = Frame::new_checked(frame).ok()?;
    let payload = parsed.payload();
    let inner = if parsed.is_tpp() {
        let tpp = TppPacket::new_checked(payload).ok()?;
        let at = tpp.tpp_len();
        payload.get(at..)?
    } else {
        payload
    };
    label_of_payload(inner)
}

fn label_of_payload(p: &[u8]) -> Option<u64> {
    (p.len() >= FLOW_LABEL_OFFSET + 8 && p[0..2] == FLOW_LABEL_MAGIC)
        .then(|| u64::from_be_bytes(p[16..24].try_into().expect("length checked")))
}

/// Equal-cost next-hop groups for every `(switch, destination host)`
/// pair, plus the seeded flow hash. Built once at
/// [`NetworkBuilder::build`] time when [`SimConfig::ecmp`] is set;
/// immutable afterwards, so shards share it by reference.
///
/// Storage is pooled: `index` holds `(offset, len)` per pair into one
/// flat `ports` arena — a k=8 fat tree (80 switches × 1024 hosts)
/// costs ~0.7 MB rather than 80k separate `Vec`s.
///
/// [`NetworkBuilder::build`]: crate::NetworkBuilder::build
/// [`SimConfig::ecmp`]: crate::SimConfig::ecmp
#[derive(Debug)]
pub struct EcmpTable {
    seed: u64,
    num_hosts: usize,
    index: Vec<(u32, u16)>,
    ports: Vec<PortId>,
}

impl EcmpTable {
    /// The equal-cost egress group of `switch` toward `dst_host`, in
    /// ascending port order. Empty if the host is unreachable.
    pub fn group(&self, switch: usize, dst_host: u32) -> &[PortId] {
        let Some(&(off, len)) = self.index.get(switch * self.num_hosts + dst_host as usize) else {
            return &[];
        };
        &self.ports[off as usize..off as usize + len as usize]
    }

    /// The seeded flow hash: a pure function of the configured seed,
    /// the picking switch's dataplane id, the frame's addresses and its
    /// flow label.
    pub fn flow_hash(
        &self,
        switch_id: u32,
        src: EthernetAddress,
        dst: EthernetAddress,
        label: Option<u64>,
    ) -> u64 {
        let mut h = mix64(self.seed, switch_id as u64);
        h = mix64(h, mac_word(src));
        h = mix64(h, mac_word(dst));
        if let Some(l) = label {
            h = mix64(h, l);
        }
        h
    }

    /// Pick one port of a non-empty candidate slice by hash.
    pub fn pick(group: &[PortId], hash: u64) -> PortId {
        group[(hash % group.len() as u64) as usize]
    }

    /// Build the table from the wired topology: one BFS per host
    /// produces hop distances, and every connected port whose peer is
    /// strictly closer to the host starts a shortest path.
    pub(crate) fn build(
        seed: u64,
        switches: &[SwitchNode],
        hosts: &[HostNode],
        switch_links: &[Vec<Option<Link>>],
        host_links: &[Vec<Option<Link>>],
    ) -> EcmpTable {
        let num_hosts = hosts.len();
        let mut index = vec![(0u32, 0u16); switches.len() * num_hosts];
        let mut ports: Vec<PortId> = Vec::new();
        let peek = |node: NodeId, port: u16| -> Option<&Link> {
            if node.is_host() {
                host_links[node.index()].get(port as usize)?.as_ref()
            } else {
                switch_links[node.index()].get(port as usize)?.as_ref()
            }
        };
        let ports_of = |node: NodeId| -> u16 {
            if node.is_host() {
                hosts[node.index()].nics.len() as u16
            } else {
                switches[node.index()].asic.num_ports() as u16
            }
        };
        for h in 0..num_hosts {
            let mut dist: HashMap<NodeId, u32> = HashMap::new();
            let mut frontier: VecDeque<NodeId> = VecDeque::new();
            let start = NodeId::host(HostId(h));
            dist.insert(start, 0);
            frontier.push_back(start);
            while let Some(node) = frontier.pop_front() {
                let d = dist[&node];
                for port in 0..ports_of(node) {
                    let Some(link) = peek(node, port) else {
                        continue;
                    };
                    if dist.contains_key(&link.peer) {
                        continue;
                    }
                    dist.insert(link.peer, d + 1);
                    // Hosts terminate the search along this branch.
                    if !link.peer.is_host() {
                        frontier.push_back(link.peer);
                    }
                }
            }
            for (s, links) in switch_links.iter().enumerate() {
                let Some(&d) = dist.get(&NodeId::switch(crate::node::SwitchId(s))) else {
                    continue;
                };
                let off = ports.len() as u32;
                for (p, slot) in links.iter().enumerate() {
                    let closer = slot
                        .as_ref()
                        .is_some_and(|l| dist.get(&l.peer).is_some_and(|&pd| pd + 1 == d));
                    if closer {
                        ports.push(p as PortId);
                    }
                }
                let len = (ports.len() as u32 - off) as u16;
                index[s * num_hosts + h] = (off, len);
            }
        }
        EcmpTable {
            seed,
            num_hosts,
            index,
            ports,
        }
    }
}

fn mac_word(addr: EthernetAddress) -> u64 {
    let b = addr.0;
    u64::from_be_bytes([0, 0, b[0], b[1], b[2], b[3], b[4], b[5]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(groups: &[&[PortId]]) -> EcmpTable {
        let mut index = Vec::new();
        let mut ports = Vec::new();
        for g in groups {
            index.push((ports.len() as u32, g.len() as u16));
            ports.extend_from_slice(g);
        }
        EcmpTable {
            seed: 7,
            num_hosts: groups.len(),
            index,
            ports,
        }
    }

    #[test]
    fn pick_is_stable_and_in_group() {
        let t = table(&[&[2, 5, 9, 11]]);
        let src = EthernetAddress::from_host_id(3);
        let dst = EthernetAddress::from_host_id(8);
        let h = t.flow_hash(0x101, src, dst, Some(42));
        let first = EcmpTable::pick(t.group(0, 0), h);
        for _ in 0..8 {
            assert_eq!(
                EcmpTable::pick(t.group(0, 0), t.flow_hash(0x101, src, dst, Some(42))),
                first
            );
        }
        assert!(t.group(0, 0).contains(&first));
    }

    #[test]
    fn labels_spread_across_group() {
        let t = table(&[&[0, 1, 2, 3]]);
        let src = EthernetAddress::from_host_id(1);
        let dst = EthernetAddress::from_host_id(2);
        let mut counts = [0u32; 4];
        for label in 0..4000u64 {
            let h = t.flow_hash(0x42, src, dst, Some(label));
            let p = EcmpTable::pick(t.group(0, 0), h) as usize;
            counts[p] += 1;
        }
        for &c in &counts {
            assert!((500..=2000).contains(&c), "skewed spread: {counts:?}");
        }
    }

    #[test]
    fn label_extraction_requires_magic_and_length() {
        let mut payload = vec![0u8; 24];
        payload[0] = 0xF1;
        payload[1] = 0xC7;
        payload[16..24].copy_from_slice(&0xDEAD_BEEFu64.to_be_bytes());
        let frame = tpp_wire::ethernet::build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            tpp_wire::ethernet::EtherType(0x0802),
            &payload,
        );
        assert_eq!(flow_label(&frame), Some(0xDEAD_BEEF));

        payload[0] = 0x00;
        let frame = tpp_wire::ethernet::build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            tpp_wire::ethernet::EtherType(0x0802),
            &payload,
        );
        assert_eq!(flow_label(&frame), None, "no magic, no label");

        let frame = tpp_wire::ethernet::build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            tpp_wire::ethernet::EtherType(0x0802),
            &[0xF1, 0xC7, 0, 0],
        );
        assert_eq!(flow_label(&frame), None, "too short for a label");
    }
}
