//! Time-varying link profiles: piecewise bandwidth / loss / latency
//! traces layered on top of a link's static configuration.
//!
//! A [`LinkProfile`] is a sorted list of `(t_ns, LinkState)` breakpoints
//! plus an interpolation mode. Sampling is a **pure function of
//! simulation time** — no RNG, no mutable state — which is what makes
//! profiles trivially bit-identical across shard counts: every shard
//! evaluating `sample(t)` for the same `t` sees the same answer, and the
//! loss dice still come from the link's own seeded stream (see
//! `Simulator::set_link_profile`).
//!
//! Profiles *compose* with the static link configuration rather than
//! replacing it:
//!
//! * `loss_permille` **adds** to the static `set_link_loss` value
//!   (clamped to 1000),
//! * `extra_delay_ns` **adds** to the link's propagation delay — it can
//!   only increase latency, which keeps the conservative-lookahead bound
//!   (min static cross-shard delay) sound,
//! * `rate_permille` **scales** the serialization time (1000 = nominal
//!   rate, 500 = half rate ⇒ frames take twice as long on the wire).
//!
//! [`LinkProfile::cellular_degradation`] builds the canonical
//! ramp-hold-recover trace used by the bonding scenario: a link that
//! slides from pristine to awful and back, the shape of a cellular modem
//! driving under a bridge.

/// Effective link state at one instant: the three knobs a profile can
/// move over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkState {
    /// Additional loss probability in permille (added to the static
    /// `set_link_loss` value, total clamped to 1000).
    pub loss_permille: u16,
    /// Additional one-way latency in nanoseconds (added to the link's
    /// propagation delay).
    pub extra_delay_ns: u64,
    /// Rate scale in permille of the nominal link rate: 1000 = full
    /// rate, 500 = half rate. Values above 1000 are allowed (boost);
    /// 0 is treated as 1 (a link never serializes infinitely fast or
    /// infinitely slow — use loss/flaps to kill it outright).
    pub rate_permille: u32,
}

impl LinkState {
    /// The identity state: no extra loss, no extra delay, full rate.
    pub const fn nominal() -> Self {
        LinkState {
            loss_permille: 0,
            extra_delay_ns: 0,
            rate_permille: 1000,
        }
    }
}

impl Default for LinkState {
    fn default() -> Self {
        Self::nominal()
    }
}

/// How to evaluate the profile between breakpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interp {
    /// Each breakpoint holds until the next one (piecewise constant).
    #[default]
    Step,
    /// Linear interpolation between consecutive breakpoints (integer
    /// math, deterministic).
    Linear,
}

/// A piecewise time-varying link trace. Build with [`LinkProfile::new`]
/// and chained [`at`](LinkProfile::at) calls, or use a convenience
/// constructor like [`cellular_degradation`](LinkProfile::cellular_degradation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkProfile {
    points: Vec<(u64, LinkState)>,
    interp: Interp,
}

impl LinkProfile {
    /// An empty profile (samples to [`LinkState::nominal`] everywhere)
    /// with the given interpolation mode.
    pub fn new(interp: Interp) -> Self {
        LinkProfile {
            points: Vec::new(),
            interp,
        }
    }

    /// A step profile (most common case).
    pub fn step() -> Self {
        Self::new(Interp::Step)
    }

    /// A linearly interpolated profile.
    pub fn linear() -> Self {
        Self::new(Interp::Linear)
    }

    /// Append a breakpoint. Times must be strictly increasing.
    pub fn at(mut self, t_ns: u64, state: LinkState) -> Self {
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                t_ns > last,
                "LinkProfile breakpoints must be strictly increasing ({t_ns} after {last})"
            );
        }
        self.points.push((t_ns, state));
        self
    }

    /// The breakpoints of this profile.
    pub fn points(&self) -> &[(u64, LinkState)] {
        &self.points
    }

    /// The interpolation mode.
    pub fn interp(&self) -> Interp {
        self.interp
    }

    /// Sample the profile at `t_ns`. Pure: same `t_ns` in, same state
    /// out, on every shard. Before the first breakpoint the link is
    /// nominal; after the last breakpoint the last state holds.
    pub fn sample(&self, t_ns: u64) -> LinkState {
        // Index of the last breakpoint at or before t_ns.
        let idx = match self.points.binary_search_by_key(&t_ns, |&(t, _)| t) {
            Ok(i) => i,
            Err(0) => return LinkState::nominal(),
            Err(i) => i - 1,
        };
        let (t0, s0) = self.points[idx];
        match self.interp {
            Interp::Step => s0,
            Interp::Linear => match self.points.get(idx + 1) {
                None => s0,
                Some(&(t1, s1)) => lerp_state(t_ns, t0, s0, t1, s1),
            },
        }
    }

    /// The worst-case loss this profile can ever contribute. Used to
    /// decide whether the link's loss RNG must be armed at install time
    /// (the RNG is only ever consulted when the effective loss is
    /// non-zero, so clean profiles stay bit-identical to no profile).
    pub fn max_loss_permille(&self) -> u16 {
        self.points
            .iter()
            .map(|&(_, s)| s.loss_permille)
            .max()
            .unwrap_or(0)
    }

    /// The canonical degradation trace: nominal until `start_ns`, then a
    /// linear ramp over `ramp_ns` down to `worst`, held for `hold_ns`,
    /// then a linear recovery over `ramp_ns` back to nominal.
    pub fn cellular_degradation(
        start_ns: u64,
        ramp_ns: u64,
        hold_ns: u64,
        worst: LinkState,
    ) -> Self {
        assert!(ramp_ns > 0, "degradation ramp must be non-zero");
        Self::linear()
            .at(start_ns, LinkState::nominal())
            .at(start_ns + ramp_ns, worst)
            .at(start_ns + ramp_ns + hold_ns, worst)
            .at(start_ns + 2 * ramp_ns + hold_ns, LinkState::nominal())
    }
}

/// Integer linear interpolation of one scalar between two breakpoints.
fn lerp_u64(t: u64, t0: u64, v0: u64, t1: u64, v1: u64) -> u64 {
    debug_assert!(t0 <= t && t <= t1 && t0 < t1);
    let span = (t1 - t0) as u128;
    let frac = (t - t0) as u128;
    if v1 >= v0 {
        v0 + ((v1 - v0) as u128 * frac / span) as u64
    } else {
        v0 - ((v0 - v1) as u128 * frac / span) as u64
    }
}

fn lerp_state(t: u64, t0: u64, s0: LinkState, t1: u64, s1: LinkState) -> LinkState {
    LinkState {
        loss_permille: lerp_u64(t, t0, s0.loss_permille as u64, t1, s1.loss_permille as u64) as u16,
        extra_delay_ns: lerp_u64(t, t0, s0.extra_delay_ns, t1, s1.extra_delay_ns),
        rate_permille: lerp_u64(t, t0, s0.rate_permille as u64, t1, s1.rate_permille as u64) as u32,
    }
}

/// Scale a serialization time by a profile's rate: `rate_permille` of
/// 500 doubles the wire time. A rate of 0 is clamped to 1 so a frame
/// always finishes serializing eventually.
pub fn scale_tx_ns(tx_ns: u64, rate_permille: u32) -> u64 {
    if rate_permille == 1000 {
        return tx_ns;
    }
    (tx_ns as u128 * 1000 / rate_permille.max(1) as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_nominal() {
        let p = LinkProfile::step();
        assert_eq!(p.sample(0), LinkState::nominal());
        assert_eq!(p.sample(u64::MAX), LinkState::nominal());
        assert_eq!(p.max_loss_permille(), 0);
    }

    #[test]
    fn step_holds_between_breakpoints() {
        let bad = LinkState {
            loss_permille: 300,
            extra_delay_ns: 1_000,
            rate_permille: 250,
        };
        let p = LinkProfile::step()
            .at(100, bad)
            .at(200, LinkState::nominal());
        assert_eq!(p.sample(99), LinkState::nominal());
        assert_eq!(p.sample(100), bad);
        assert_eq!(p.sample(199), bad);
        assert_eq!(p.sample(200), LinkState::nominal());
        assert_eq!(p.sample(10_000), LinkState::nominal());
        assert_eq!(p.max_loss_permille(), 300);
    }

    #[test]
    fn linear_interpolates_and_holds_last() {
        let worst = LinkState {
            loss_permille: 400,
            extra_delay_ns: 2_000,
            rate_permille: 200,
        };
        let p = LinkProfile::linear()
            .at(1_000, LinkState::nominal())
            .at(2_000, worst);
        let mid = p.sample(1_500);
        assert_eq!(mid.loss_permille, 200);
        assert_eq!(mid.extra_delay_ns, 1_000);
        assert_eq!(mid.rate_permille, 600);
        // Last breakpoint holds forever.
        assert_eq!(p.sample(5_000), worst);
        // Before the first breakpoint: nominal.
        assert_eq!(p.sample(0), LinkState::nominal());
    }

    #[test]
    fn cellular_degradation_shape() {
        let worst = LinkState {
            loss_permille: 300,
            extra_delay_ns: 200_000,
            rate_permille: 200,
        };
        let p = LinkProfile::cellular_degradation(4_000_000, 2_000_000, 4_000_000, worst);
        assert_eq!(p.sample(0), LinkState::nominal());
        assert_eq!(p.sample(3_999_999), LinkState::nominal());
        // Midway down the ramp.
        let mid = p.sample(5_000_000);
        assert_eq!(mid.loss_permille, 150);
        assert_eq!(mid.rate_permille, 600);
        // Held at worst.
        assert_eq!(p.sample(7_000_000), worst);
        assert_eq!(p.sample(10_000_000), worst);
        // Recovered.
        assert_eq!(p.sample(12_000_000), LinkState::nominal());
        assert_eq!(p.sample(u64::MAX), LinkState::nominal());
    }

    #[test]
    fn sample_is_pure() {
        let p = LinkProfile::cellular_degradation(
            1_000,
            500,
            2_000,
            LinkState {
                loss_permille: 999,
                extra_delay_ns: 77,
                rate_permille: 1,
            },
        );
        for t in (0..10_000).step_by(37) {
            assert_eq!(p.sample(t), p.sample(t));
        }
    }

    #[test]
    fn scale_tx_clamps_zero_rate() {
        assert_eq!(scale_tx_ns(1_000, 1000), 1_000);
        assert_eq!(scale_tx_ns(1_000, 500), 2_000);
        assert_eq!(scale_tx_ns(1_000, 2000), 500);
        assert_eq!(scale_tx_ns(1_000, 0), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_breakpoints_panic() {
        let _ = LinkProfile::step()
            .at(100, LinkState::nominal())
            .at(100, LinkState::nominal());
    }
}
