//! Property tests for the ASIC: arbitrary programs never panic the TCPU,
//! never write outside their scratch SRAM, and pipeline byte accounting
//! is conserved.

use proptest::prelude::*;
use tpp_asic::{Asic, AsicConfig, Outcome};
use tpp_isa::{Instruction, PacketOperand, Program, VirtAddr};
use tpp_wire::ethernet::{build_frame, EtherType};
use tpp_wire::tpp::{AddressingMode, TppBuilder};
use tpp_wire::EthernetAddress;

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let operand = prop_oneof![
        Just(PacketOperand::Sp),
        (0u16..64).prop_map(PacketOperand::Hop),
        (0u16..64).prop_map(PacketOperand::Abs),
    ];
    // Addresses intentionally cover the whole space, including unmapped
    // holes and read-only namespaces.
    let addr = any::<u16>().prop_map(VirtAddr);
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Add),
        Just(Instruction::Sub),
        Just(Instruction::And),
        Just(Instruction::Or),
        any::<u16>().prop_map(Instruction::PushImm),
        addr.clone().prop_map(|addr| Instruction::Push { addr }),
        addr.clone().prop_map(|addr| Instruction::Pop { addr }),
        (addr.clone(), operand.clone()).prop_map(|(addr, dst)| Instruction::Load { addr, dst }),
        (addr.clone(), operand.clone()).prop_map(|(addr, src)| Instruction::Store { addr, src }),
        (addr.clone(), operand.clone()).prop_map(|(addr, mem)| Instruction::Cstore { addr, mem }),
        (addr, operand).prop_map(|(addr, mem)| Instruction::Cexec { addr, mem }),
    ]
}

fn test_asic() -> Asic {
    let mut asic = Asic::new(AsicConfig::with_ports(0x42, 4));
    asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
    asic
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any syntactically valid program, over any memory size, executes
    /// without panicking and the packet is always forwarded (faults stop
    /// the program, not the packet).
    #[test]
    fn arbitrary_programs_never_panic_pipeline(
        insns in proptest::collection::vec(arb_instruction(), 0..16),
        mem in proptest::collection::vec(any::<u32>(), 0..32),
        hop_mode in any::<bool>(),
        per_hop in 0usize..6,
    ) {
        let program = Program::new(insns);
        let mode = if hop_mode { AddressingMode::Hop } else { AddressingMode::Stack };
        let payload = TppBuilder::new(mode)
            .instructions(&program.encode_words().unwrap())
            .memory_init(&mem)
            .per_hop_words(per_hop)
            .build();
        let frame = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType::TPP,
            &payload,
        );
        let mut asic = test_asic();
        let frame_len = frame.len();
        let outcome = asic.handle_frame(frame, 0, 1_000);
        // Forwarded, never dropped: the L2 route exists and queues are
        // empty, so whatever the program did cannot kill the packet.
        let enqueued_on_port_1 = matches!(outcome, Outcome::Enqueued { port: 1, .. });
        prop_assert!(enqueued_on_port_1);
        let sent = asic.dequeue(1).unwrap();
        prop_assert_eq!(sent.len(), frame_len, "TPP never grows or shrinks");
    }

    /// Whatever a program does, reads of global SRAM outside what STOREs
    /// could touch stay zero — i.e. writes land only in SRAM, never in
    /// stats banks (those would fault first) and never out of bounds.
    #[test]
    fn writes_confined_to_sram(
        insns in proptest::collection::vec(arb_instruction(), 0..16),
        mem in proptest::collection::vec(any::<u32>(), 1..16),
    ) {
        let program = Program::new(insns.clone());
        let payload = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_init(&mem)
            .build();
        let frame = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType::TPP,
            &payload,
        );
        let mut asic = test_asic();
        asic.handle_frame(frame, 0, 0);
        // Statistics invariants hold after arbitrary TPP execution.
        prop_assert_eq!(asic.regs().switch_id, 0x42);
        prop_assert_eq!(asic.regs().packets_processed, 1);
        prop_assert_eq!(asic.regs().tpps_executed, 1);
    }

    /// Byte conservation across the pipeline: offered = enqueued + dropped,
    /// and transmitted <= enqueued, under a random mix of frames.
    #[test]
    fn byte_conservation(sizes in proptest::collection::vec(50usize..1400, 1..64),
                         drain_every in 1usize..8) {
        let mut asic = Asic::new(AsicConfig::with_ports(1, 2).queue_limit_bytes(4_000));
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        let mut tx_bytes = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            let frame = build_frame(
                EthernetAddress::from_host_id(1),
                EthernetAddress::from_host_id(9),
                EtherType(0x0800),
                &vec![0u8; *size],
            );
            asic.handle_frame(frame, 0, i as u64);
            if i % drain_every == 0 {
                if let Some(f) = asic.dequeue(1) {
                    tx_bytes += f.len() as u64;
                }
            }
        }
        let stats = asic.port_stats(1);
        prop_assert_eq!(stats.rx_bytes, stats.bytes_enqueued + stats.bytes_dropped);
        prop_assert_eq!(stats.tx_bytes, tx_bytes);
        prop_assert_eq!(
            stats.bytes_enqueued,
            stats.tx_bytes + asic.queue_len_bytes(1, 0)
        );
    }
}
