//! Property tests for the TCPU execution model: determinism, the
//! prefix-execution property, and cycle-budget monotonicity.

use proptest::prelude::*;
use tpp_asic::tcpu::PIPELINE_LATENCY_CYCLES;
use tpp_asic::{Asic, AsicConfig, Outcome};
use tpp_isa::{Instruction, PacketOperand, Program, VirtAddr};
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket};
use tpp_wire::EthernetAddress;

/// Instructions that are safe (no switch writes), so different runs of
/// the same program over identical switch state behave identically.
fn arb_read_instruction() -> impl Strategy<Value = Instruction> {
    let addr = prop_oneof![
        Just(VirtAddr(0x0000)),          // Switch:SwitchID
        Just(VirtAddr(0x2000)),          // Queue:QueueSize
        Just(VirtAddr(0x1000)),          // Link:RX-Bytes
        Just(VirtAddr(0x3014)),          // PacketMetadata:PacketLength
        Just(VirtAddr(0x4000)),          // Link scratch word 0 (reads as 0)
        any::<u16>().prop_map(VirtAddr), // arbitrary (may fault)
    ];
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Add),
        Just(Instruction::Sub),
        any::<u16>().prop_map(Instruction::PushImm),
        addr.clone().prop_map(|addr| Instruction::Push { addr }),
        (addr, (0u16..32)).prop_map(|(addr, o)| Instruction::Load {
            addr,
            dst: PacketOperand::Abs(o),
        }),
    ]
}

fn execute(
    insns: &[Instruction],
    mem_words: usize,
    budget: u32,
) -> (tpp_asic::ExecReport, Vec<u32>) {
    let mut cfg = AsicConfig::with_ports(0x5A, 2);
    cfg.tcpu_cycle_budget = budget;
    let mut asic = Asic::new(cfg);
    asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
    let program = Program::new(insns.to_vec());
    let payload = TppBuilder::new(AddressingMode::Stack)
        .instructions(&program.encode_words().unwrap())
        .memory_words(mem_words)
        .build();
    let frame = build_frame(
        EthernetAddress::from_host_id(1),
        EthernetAddress::from_host_id(0),
        EtherType::TPP,
        &payload,
    );
    let outcome = asic.handle_frame(frame, 0, 0);
    let Outcome::Enqueued {
        port,
        exec: Some(report),
        ..
    } = outcome
    else {
        panic!("TPP must be executed and forwarded");
    };
    let sent = asic.dequeue(port).unwrap();
    let parsed = Frame::new_checked(&sent[..]).unwrap();
    let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
    (report, tpp.memory_words())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same program, same switch: identical report and identical memory.
    #[test]
    fn execution_is_deterministic(
        insns in proptest::collection::vec(arb_read_instruction(), 0..16),
        mem in 0usize..32,
    ) {
        prop_assert_eq!(execute(&insns, mem, 300), execute(&insns, mem, 300));
    }

    /// Cycle accounting: cycles == latency + instructions executed, and
    /// instructions executed never exceeds the program length.
    #[test]
    fn cycle_accounting_holds(
        insns in proptest::collection::vec(arb_read_instruction(), 0..16),
        mem in 0usize..32,
        budget in 4u32..64,
    ) {
        let (report, _) = execute(&insns, mem, budget);
        prop_assert_eq!(
            report.cycles,
            PIPELINE_LATENCY_CYCLES + report.instructions_executed
        );
        prop_assert!(report.instructions_executed as usize <= insns.len());
        prop_assert!(report.cycles <= budget.max(PIPELINE_LATENCY_CYCLES));
    }

    /// Budget monotonicity: a larger budget never executes fewer
    /// instructions, and with both budgets the executed portions agree
    /// (the smaller run is a prefix of the larger).
    #[test]
    fn budget_monotone_and_prefix(
        insns in proptest::collection::vec(arb_read_instruction(), 0..16),
        mem in 0usize..32,
        small in 4u32..20,
        extra in 0u32..20,
    ) {
        let large = small + extra;
        let (report_small, mem_small) = execute(&insns, mem, small);
        let (report_large, mem_large) = execute(&insns, mem, large);
        prop_assert!(
            report_large.instructions_executed >= report_small.instructions_executed
        );
        // If both executed the same count, the memory effects agree.
        if report_large.instructions_executed == report_small.instructions_executed {
            prop_assert_eq!(mem_small, mem_large);
        }
    }

    /// Read-only programs never set wrote_switch, and the switch SRAM
    /// stays zero.
    #[test]
    fn read_programs_do_not_write(
        insns in proptest::collection::vec(arb_read_instruction(), 0..16),
        mem in 0usize..32,
    ) {
        let (report, _) = execute(&insns, mem, 300);
        prop_assert!(!report.wrote_switch);
    }
}
