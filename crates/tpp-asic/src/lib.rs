//! # tpp-asic — a model of the TPP-capable switch ASIC of §3
//!
//! This crate reproduces the dataplane pipeline of Figure 3 and the TCPU of
//! Figure 5 in software:
//!
//! ```text
//!            +--------+   +----------------+   +------+   +---------------+
//! RX PHY --> | Header |-->| L2 / L3 / TCAM |-->| TCPU |-->| Egress queues |--> TX PHY
//!            | Parser |   |   forwarding   |   |      |   |  + scheduler  |
//!            +--------+   +----------------+   +------+   +---------------+
//!                                                  |
//!                                      unified memory-mapped IO
//!                                (stats registers + SRAM, §3.2.1)
//! ```
//!
//! Faithfulness notes (per DESIGN.md's substitution table — the paper
//! prototyped on a Linux router, we model the ASIC it argues for):
//!
//! * the TCPU sits "just after the L2/L3/TCAM tables" (§3.3), so a TPP sees
//!   the forwarding decision (egress port/queue, matched entry) *and* the
//!   queue state of its own egress port at the instant it traverses the
//!   switch — exactly the per-packet visibility §2.1 relies on;
//! * the TCPU is a 5-stage RISC pipeline with a throughput of 1
//!   instruction/cycle and a latency of 4 cycles (§3.3); we account cycles
//!   per packet and enforce a configurable budget (default 300 cycles ≙
//!   the 300 ns cut-through latency of a 1 GHz ASIC);
//! * "Non-TPP packets are ignored by the TCPU", and TPPs "are forwarded
//!   just like other packets; TPPs are therefore subject to congestion";
//! * all packet modifications happen in local buffers and are committed
//!   before the packet is copied to switch memory — in the model, the TCPU
//!   mutates the frame bytes before the frame enters the egress queue;
//! * a faulting TPP (bad address, exhausted packet memory, cycle budget)
//!   stops executing but the packet is still forwarded — a corrupted
//!   program must never disrupt the traffic carrying it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asic;
pub mod config;
pub mod decode_cache;
pub mod memmap;
pub mod profile;
pub mod queue;
pub mod sram;
pub mod state;
pub mod stats;
pub mod tables;
pub mod tcpu;

pub use asic::{Asic, DropReason, Outcome, PacketMeta, PortId, QueueId};
pub use config::{AsicConfig, PortConfig, StripAction};
pub use decode_cache::{DecodeCache, DecodedProgram, ProgramInterner};
pub use memmap::{Mmu, MmuFault};
pub use profile::{PipelineProfile, ProfStage, ProfileConfig, Reservoir, Span, StageStat};
pub use queue::DropTailQueue;
pub use sram::{SramError, SramView, SramViewMut};
pub use state::{AsicState, PortState, QueueState};
pub use stats::{PortStats, QueueStats, SwitchRegs};
pub use tables::{FlowAction, FlowEntry, FlowKey, FlowMatch, L2Table, LpmTable, Tcam};
pub use tcpu::{ExecReport, HaltReason, Tcpu};
