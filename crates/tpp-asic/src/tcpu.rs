//! The TCPU of §3.3: "a Reduced Instruction Set Computer (RISC) processor
//! that executes instructions in a five stage pipeline: (a) instruction
//! fetch, (b) instruction decode, (c) execute, (d) memory read and
//! (e) memory write."
//!
//! Cycle model: "With read/write/simple arithmetic instructions, each
//! stage takes only 1 cycle. Since instructions are pipelined, this RISC
//! processor runs at a throughput of 1 instruction per clock cycle, with a
//! latency of 4 cycles." A program of *n* instructions therefore occupies
//! the TCPU for `PIPELINE_LATENCY_CYCLES + n` cycles; [`Tcpu::execute`]
//! accounts these per packet and enforces the configured budget.
//!
//! Robustness: a TPP that faults (bad address, exhausted packet memory,
//! blown budget) stops executing *at that instruction*, but the packet is
//! still forwarded, its partial results intact — the dataplane must never
//! let a buggy program disturb the traffic carrying it. The fault is
//! reported in the [`ExecReport`] so end-hosts (and tests) can see it.

use std::sync::Arc;

use crate::decode_cache::{DecodeCache, DecodedProgram, ProgramInterner};
use crate::memmap::{Mmu, MmuFault};
use tpp_isa::{Instruction, PacketOperand};
use tpp_wire::tpp::{TppPacket, FLAG_EXECUTED, WORD_SIZE};
use tpp_wire::WireError;

/// Fill/drain latency of the 5-stage pipeline (4 pipeline registers
/// between the 5 stages; the paper quotes "a latency of 4 cycles").
pub const PIPELINE_LATENCY_CYCLES: u32 = 4;

/// Why execution stopped before the end of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// A `CEXEC` predicate failed: "all instructions that follow a failed
    /// CEXEC check will not be executed" (§3.2.3). This is normal control
    /// flow, not an error.
    CexecFailed {
        /// Index of the failing CEXEC.
        pc: usize,
    },
    /// The MMU rejected an access.
    Mmu {
        /// Index of the faulting instruction.
        pc: usize,
        /// The fault.
        fault: MmuFault,
    },
    /// A packet-memory access fell outside the preallocated region, or
    /// the stack under/overflowed.
    PacketMemory {
        /// Index of the faulting instruction.
        pc: usize,
    },
    /// An instruction word failed to decode.
    BadInstruction {
        /// Index of the undecodable word.
        pc: usize,
    },
    /// The per-packet cycle budget was exhausted (§3.3's line-rate
    /// argument: programs must fit the cut-through time budget).
    BudgetExceeded {
        /// Index of the first instruction that did not run.
        pc: usize,
    },
}

impl HaltReason {
    /// A stable short label for trace events and log lines.
    pub fn name(&self) -> &'static str {
        match self {
            HaltReason::CexecFailed { .. } => "cexec_failed",
            HaltReason::Mmu { .. } => "mmu_fault",
            HaltReason::PacketMemory { .. } => "packet_memory",
            HaltReason::BadInstruction { .. } => "bad_instruction",
            HaltReason::BudgetExceeded { .. } => "budget_exceeded",
        }
    }
}

/// The outcome of executing one TPP at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// Instructions that completed.
    pub instructions_executed: u32,
    /// Cycles consumed: pipeline latency + one per completed instruction.
    pub cycles: u32,
    /// Why execution stopped early, if it did.
    pub halt: Option<HaltReason>,
    /// True if any completed instruction wrote switch SRAM.
    pub wrote_switch: bool,
}

impl ExecReport {
    /// True when the whole program ran to completion.
    pub fn completed(&self) -> bool {
        self.halt.is_none()
    }
}

/// The TCPU execution engine. All per-packet state lives in the packet
/// and the [`Mmu`]; the engine itself carries only its configuration and
/// the (semantically invisible) decoded-program cache.
#[derive(Debug, Clone)]
pub struct Tcpu {
    cycle_budget: u32,
    cache: Option<DecodeCache>,
    /// Batched-dispatch run detection: when enabled, the program that
    /// served the previous packet stays pinned (an `Arc`, immune to slot
    /// eviction) and a run of same-program packets — the shape a switch
    /// sees when it drains an event window — executes against the one
    /// decode with a single byte-compare per packet and a fast
    /// straight-line loop. Semantically invisible; see [`Tcpu::execute`].
    batched: bool,
    window: Option<Arc<DecodedProgram>>,
}

impl Tcpu {
    /// A TCPU with the given per-packet cycle budget and no decode cache
    /// (every packet decodes every instruction, as in a cold ASIC).
    pub fn new(cycle_budget: u32) -> Self {
        Tcpu {
            cycle_budget,
            cache: None,
            batched: false,
            window: None,
        }
    }

    /// Attach a decoded-program cache with `slots` entries (`0` leaves the
    /// cache off). Execution semantics are identical with or without it.
    pub fn with_decode_cache(mut self, slots: usize) -> Self {
        self.cache = (slots > 0).then(|| DecodeCache::new(slots));
        self
    }

    /// Enable (or disable) batched dispatch. Requires the decode cache;
    /// with the cache off this is a no-op. Execution, counters, and
    /// profiler charging are bit-identical either way — proven by the
    /// batched-vs-unbatched proptests.
    pub fn with_batched_dispatch(mut self, on: bool) -> Self {
        self.batched = on;
        self
    }

    /// Route decode-cache misses through a fleet-wide program interner
    /// (no-op when the cache is off).
    pub fn set_interner(&mut self, interner: ProgramInterner) {
        if let Some(cache) = self.cache.as_mut() {
            cache.set_interner(interner);
        }
    }

    /// The configured budget.
    pub fn cycle_budget(&self) -> u32 {
        self.cycle_budget
    }

    /// Approximate resident bytes of the TCPU's per-switch state (the
    /// decode-cache slot array; interned program bodies are fleet-shared
    /// and accounted at the interner).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cache.as_ref().map_or(0, DecodeCache::approx_bytes)
    }

    /// Decode-cache `(hits, misses)`; `(0, 0)` when the cache is off.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        self.cache
            .as_ref()
            .map_or((0, 0), |c| (c.hits(), c.misses()))
    }

    /// Execute a TPP in place: decode its instruction words (or fetch the
    /// decoded program from the cache), run them against the packet memory
    /// and the switch [`Mmu`], then advance the hop counter and set
    /// [`FLAG_EXECUTED`].
    ///
    /// The hop counter advances even after a fault or failed CEXEC, so
    /// hop-addressed slots keep lining up with the path ("a TPP executes
    /// at all TCPU-enabled ASICs it traverses", §3.2 — traversal, not
    /// success, advances the hop).
    pub fn execute(&mut self, tpp: &mut TppPacket<&mut [u8]>, mmu: &mut Mmu<'_>) -> ExecReport {
        let budget = self.cycle_budget;
        let mut report = ExecReport {
            instructions_executed: 0,
            cycles: PIPELINE_LATENCY_CYCLES,
            halt: None,
            wrote_switch: false,
        };

        if let Some(cache) = self.cache.as_mut() {
            let program: &Arc<DecodedProgram> = if self.batched {
                // Batched dispatch: a run of packets carrying the program
                // that served the previous packet is detected by one byte
                // compare and executes against the pinned Arc — decode
                // once, run N. The pin serves exactly when the cache's
                // last-hit memo would (same compare against the same
                // program), so hit/miss counters stay identical.
                if matches!(&self.window, Some(p) if p.bytes() == tpp.instruction_bytes()) {
                    cache.note_window_hit();
                    self.window.as_ref().expect("matched above")
                } else {
                    let fresh = cache.lookup(tpp.instruction_bytes()).clone();
                    &*self.window.insert(fresh)
                }
            } else {
                cache.lookup(tpp.instruction_bytes())
            };
            // The uncached loop visits word positions 0..n, stopping at the
            // first undecodable word; replay exactly those positions, with
            // the budget check first at each pc, so halt interleaving is
            // bit-identical.
            let n = match program.bad_at {
                Some(bad) => bad + 1,
                None => program.insns.len(),
            };
            if self.batched
                && program.bad_at.is_none()
                && PIPELINE_LATENCY_CYCLES + n as u32 <= budget
            {
                // Straight-line fast path: every word decoded cleanly and
                // the whole program fits the budget, so the per-pc budget
                // check (`4 + pc + 1 > budget` is impossible while
                // `4 + n <= budget`) and the bad_at compare can never
                // fire — eliding them is branch-for-branch equivalent.
                // Faulting instructions still halt inside `run_insn`
                // exactly as in the exact-replay loop.
                for (pc, insn) in program.insns.iter().enumerate() {
                    if !Self::run_insn(*insn, pc, tpp, mmu, &mut report) {
                        break;
                    }
                }
            } else {
                for pc in 0..n {
                    if report.cycles + 1 > budget {
                        report.halt = Some(HaltReason::BudgetExceeded { pc });
                        break;
                    }
                    if program.bad_at == Some(pc) {
                        report.halt = Some(HaltReason::BadInstruction { pc });
                        break;
                    }
                    if !Self::run_insn(program.insns[pc], pc, tpp, mmu, &mut report) {
                        break;
                    }
                }
            }
        } else {
            let count = tpp.instruction_count();
            for pc in 0..count {
                if report.cycles + 1 > budget {
                    report.halt = Some(HaltReason::BudgetExceeded { pc });
                    break;
                }
                let word = tpp.instruction_word(pc);
                let insn = match Instruction::decode(word) {
                    Ok(insn) => insn,
                    Err(_) => {
                        report.halt = Some(HaltReason::BadInstruction { pc });
                        break;
                    }
                };
                if !Self::run_insn(insn, pc, tpp, mmu, &mut report) {
                    break;
                }
            }
        }

        tpp.advance_hop();
        let flags = tpp.flags();
        tpp.set_flags(flags | FLAG_EXECUTED);
        report
    }

    /// Step one decoded instruction and fold the result into `report`.
    /// Returns `false` when execution must stop.
    fn run_insn(
        insn: Instruction,
        pc: usize,
        tpp: &mut TppPacket<&mut [u8]>,
        mmu: &mut Mmu<'_>,
        report: &mut ExecReport,
    ) -> bool {
        match Self::step(insn, tpp, mmu) {
            Ok(wrote) => {
                report.instructions_executed += 1;
                report.cycles += 1;
                report.wrote_switch |= wrote;
                true
            }
            Err(StepHalt::Cexec) => {
                // The CEXEC itself counts as executed.
                report.instructions_executed += 1;
                report.cycles += 1;
                report.halt = Some(HaltReason::CexecFailed { pc });
                false
            }
            Err(StepHalt::Mmu(fault)) => {
                report.halt = Some(HaltReason::Mmu { pc, fault });
                false
            }
            Err(StepHalt::PacketMemory) => {
                report.halt = Some(HaltReason::PacketMemory { pc });
                false
            }
        }
    }

    /// Resolve a packet operand to a byte offset in packet memory.
    fn operand_offset(op: PacketOperand, tpp: &TppPacket<&mut [u8]>) -> usize {
        match op {
            PacketOperand::Sp => tpp.sp(),
            PacketOperand::Hop(words) => tpp.hop_base() + words as usize * WORD_SIZE,
            PacketOperand::Abs(words) => words as usize * WORD_SIZE,
        }
    }

    fn step(
        insn: Instruction,
        tpp: &mut TppPacket<&mut [u8]>,
        mmu: &mut Mmu<'_>,
    ) -> Result<bool, StepHalt> {
        match insn {
            Instruction::Nop => Ok(false),
            Instruction::Push { addr } => {
                let value = mmu.read(addr)?;
                tpp.push_word(value)?;
                Ok(false)
            }
            Instruction::PushImm(imm) => {
                tpp.push_word(imm as u32)?;
                Ok(false)
            }
            Instruction::Pop { addr } => {
                let value = tpp.pop_word()?;
                mmu.write(addr, value)?;
                Ok(true)
            }
            Instruction::Load { addr, dst } => {
                let value = mmu.read(addr)?;
                let off = Self::operand_offset(dst, tpp);
                tpp.write_word(off, value)?;
                Ok(false)
            }
            Instruction::Store { addr, src } => {
                let off = Self::operand_offset(src, tpp);
                let value = tpp.read_word(off)?;
                mmu.write(addr, value)?;
                Ok(true)
            }
            Instruction::Cstore { addr, mem } => {
                // CSTORE dst, cond, src: "stores src into dst only if
                // dst == cond" (§2.2); linearizable because the model
                // executes one packet at a time per switch, exactly like
                // the serialized dataplane pipeline.
                let base = Self::operand_offset(mem, tpp);
                let cond = tpp.read_word(base)?;
                let src = tpp.read_word(base + WORD_SIZE)?;
                let old = mmu.read(addr)?;
                if old == cond {
                    mmu.write(addr, src)?;
                }
                // Write the old value back so the end-host can tell
                // whether its update won.
                tpp.write_word(base + 2 * WORD_SIZE, old)?;
                Ok(old == cond)
            }
            Instruction::Cexec { addr, mem } => {
                // CEXEC reg, mask, value: "ensures the TPP executes on a
                // switch only if (reg & mask) == value" (§2.2).
                let base = Self::operand_offset(mem, tpp);
                let mask = tpp.read_word(base)?;
                let value = tpp.read_word(base + WORD_SIZE)?;
                let reg = mmu.read(addr)?;
                if reg & mask != value {
                    return Err(StepHalt::Cexec);
                }
                Ok(false)
            }
            Instruction::Add => Self::binop(tpp, u32::wrapping_add),
            Instruction::Sub => Self::binop(tpp, u32::wrapping_sub),
            Instruction::And => Self::binop(tpp, |a, b| a & b),
            Instruction::Or => Self::binop(tpp, |a, b| a | b),
        }
    }

    fn binop(tpp: &mut TppPacket<&mut [u8]>, f: fn(u32, u32) -> u32) -> Result<bool, StepHalt> {
        let b = tpp.pop_word()?;
        let a = tpp.pop_word()?;
        tpp.push_word(f(a, b))?;
        Ok(false)
    }
}

/// Internal step outcome.
enum StepHalt {
    Cexec,
    Mmu(MmuFault),
    PacketMemory,
}

impl From<MmuFault> for StepHalt {
    fn from(fault: MmuFault) -> Self {
        StepHalt::Mmu(fault)
    }
}

impl From<WireError> for StepHalt {
    fn from(_: WireError) -> Self {
        StepHalt::PacketMemory
    }
}

/// Convenience used by tests and benches: the cycles a program of `n`
/// instructions costs on the TCPU.
pub fn cycles_for(n: u32) -> u32 {
    PIPELINE_LATENCY_CYCLES + n
}

#[cfg(test)]
#[allow(clippy::drop_non_drop, clippy::field_reassign_with_default)] // drop() ends Mmu borrows between executions
mod tests {
    use super::*;
    use crate::memmap::PacketMeta;
    use crate::stats::{PortStats, QueueStats, SwitchRegs};
    use tpp_isa::assemble;
    use tpp_wire::tpp::{AddressingMode, TppBuilder};

    struct Banks {
        switch: SwitchRegs,
        port: PortStats,
        queue: QueueStats,
        meta: PacketMeta,
        link_sram: Vec<u32>,
        global_sram: Vec<u32>,
    }

    fn banks(switch_id: u32) -> Banks {
        let mut queue = QueueStats::default();
        queue.queue_size_bytes = 0xa0;
        Banks {
            switch: SwitchRegs::new(switch_id),
            port: PortStats::default(),
            queue,
            meta: PacketMeta {
                input_port: 1,
                output_port: 2,
                matched_entry_id: 0,
                matched_entry_version: 0,
                queue_id: 0,
                packet_length: 100,
                arrival_time_ns: 0,
                alternate_routes: 1,
            },
            link_sram: vec![0; 64],
            global_sram: vec![0; 64],
        }
    }

    fn mmu(b: &mut Banks) -> Mmu<'_> {
        Mmu {
            switch: &b.switch,
            port: &b.port,
            port_capacity_kbps: 10_000,
            queue: &b.queue,
            queue_limit_bytes: 64_000,
            meta: &b.meta,
            link_sram: &mut b.link_sram,
            global_sram: &mut b.global_sram,
        }
    }

    fn run(src: &str, mem_words: usize, b: &mut Banks) -> (Vec<u32>, ExecReport) {
        run_init(src, &vec![0; mem_words], b)
    }

    fn run_init(src: &str, mem: &[u32], b: &mut Banks) -> (Vec<u32>, ExecReport) {
        let program = assemble(src).unwrap();
        let mut bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_init(mem)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        let mut tcpu = Tcpu::new(300);
        let mut m = mmu(b);
        let report = tcpu.execute(&mut tpp, &mut m);
        (tpp.memory_words(), report)
    }

    #[test]
    fn push_reads_queue_size() {
        // §2.1: "PUSH [Queue:QueueSize] copies the queue register onto
        // packet memory".
        let mut b = banks(1);
        let (mem, report) = run("PUSH [Queue:QueueSize]", 2, &mut b);
        assert_eq!(mem[0], 0xa0);
        assert!(report.completed());
        assert_eq!(report.instructions_executed, 1);
        assert_eq!(report.cycles, cycles_for(1));
        assert!(!report.wrote_switch);
    }

    #[test]
    fn load_hop_addressing() {
        let mut b = banks(0x77);
        let program = assemble("LOAD [Switch:SwitchID], [Packet:Hop[1]]").unwrap();
        let mut bytes = TppBuilder::new(AddressingMode::Hop)
            .instructions(&program.encode_words().unwrap())
            .memory_words(8)
            .per_hop_words(2)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        let mut tcpu = Tcpu::new(300);
        // First hop writes slot 1 of hop 0; simulate second execution too.
        let mut m = mmu(&mut b);
        tcpu.execute(&mut tpp, &mut m);
        drop(m);
        let mut b2 = banks(0x88);
        let mut m2 = mmu(&mut b2);
        tcpu.execute(&mut tpp, &mut m2);
        drop(m2);
        let mem = tpp.memory_words();
        assert_eq!(mem[1], 0x77, "hop 0, offset 1");
        assert_eq!(mem[3], 0x88, "hop 1, offset 1");
        assert_eq!(tpp.hop(), 2);
    }

    #[test]
    fn store_and_pop_write_sram() {
        let mut b = banks(1);
        let (_, report) = run_init(
            "STORE [Switch:Scratch[5]], [Packet:0]",
            &[0xfeed_f00d],
            &mut b,
        );
        assert!(report.completed());
        assert!(report.wrote_switch);
        assert_eq!(b.global_sram[5], 0xfeed_f00d);

        let mut b = banks(1);
        let (_, report) = run_init("POP [Link:Scratch[3]]", &[77], &mut b);
        // POP with sp=0 underflows; first push something.
        assert!(!report.completed());
        let mut b = banks(1);
        let (_, report) = run_init("PUSHI 99\nPOP [Link:Scratch[3]]", &[0, 0], &mut b);
        assert!(report.completed());
        assert_eq!(b.link_sram[3], 99);
    }

    #[test]
    fn cstore_success_and_failure() {
        // CSTORE dst, cond, src with [cond, src, old] at Packet:0.
        let mut b = banks(1);
        b.global_sram[0] = 10;
        // cond = 10 matches -> store 55, old (10) written to mem[2].
        let (mem, report) = run_init(
            "CSTORE [Switch:Scratch[0]], [Packet:0]",
            &[10, 55, 0],
            &mut b,
        );
        assert!(report.completed());
        assert!(report.wrote_switch);
        assert_eq!(b.global_sram[0], 55);
        assert_eq!(mem[2], 10);

        // cond = 10 no longer matches -> no store, old (55) reported.
        let (mem, report) = run_init(
            "CSTORE [Switch:Scratch[0]], [Packet:0]",
            &[10, 77, 0],
            &mut b,
        );
        assert!(report.completed());
        assert!(!report.wrote_switch, "failed CSTORE writes nothing");
        assert_eq!(b.global_sram[0], 55, "value unchanged");
        assert_eq!(mem[2], 55, "old value reported for retry");
    }

    #[test]
    fn cexec_gates_following_instructions() {
        // §2.2 Phase 3: execute only on the switch whose ID matches.
        let mut b = banks(0xb0b);
        // mask = 0xffffffff, value = 0xb0b -> matches, STORE runs.
        let (_, report) = run_init(
            "CEXEC [Switch:SwitchID], [Packet:0]\nSTORE [Switch:Scratch[1]], [Packet:2]",
            &[0xffff_ffff, 0xb0b, 1234],
            &mut b,
        );
        assert!(report.completed());
        assert_eq!(b.global_sram[1], 1234);

        // Different target switch -> STORE must not run.
        let mut b = banks(0xec0);
        let (_, report) = run_init(
            "CEXEC [Switch:SwitchID], [Packet:0]\nSTORE [Switch:Scratch[1]], [Packet:2]",
            &[0xffff_ffff, 0xb0b, 1234],
            &mut b,
        );
        assert_eq!(report.halt, Some(HaltReason::CexecFailed { pc: 0 }));
        assert_eq!(report.instructions_executed, 1, "the CEXEC itself ran");
        assert_eq!(b.global_sram[1], 0, "gated store did not run");
    }

    #[test]
    fn cexec_mask_selects_switch_subsets() {
        // Execute on "all switches whose low nibble is 2" — the §3.2.3
        // use case of targeting a subset (e.g. all ToR switches).
        for (id, should_run) in [(0x12, true), (0x22, true), (0x13, false)] {
            let mut b = banks(id);
            let (_, report) = run_init(
                "CEXEC [Switch:SwitchID], [Packet:0]\nSTORE [Switch:Scratch[0]], [Packet:2]",
                &[0xf, 0x2, 7],
                &mut b,
            );
            assert_eq!(
                b.global_sram[0] == 7,
                should_run,
                "switch {id:#x} gating wrong"
            );
            assert_eq!(report.completed(), should_run);
        }
    }

    #[test]
    fn arithmetic_on_stack() {
        let mut b = banks(1);
        let (mem, report) = run("PUSHI 7\nPUSHI 5\nSUB", 4, &mut b);
        assert!(report.completed());
        assert_eq!(mem[0], 2, "7 - 5");
        let (mem, _) = run("PUSHI 6\nPUSHI 3\nADD", 4, &mut b);
        assert_eq!(mem[0], 9);
        let (mem, _) = run("PUSHI 12\nPUSHI 10\nAND", 4, &mut b);
        assert_eq!(mem[0], 8);
        let (mem, _) = run("PUSHI 12\nPUSHI 3\nOR", 4, &mut b);
        assert_eq!(mem[0], 15);
    }

    #[test]
    fn faults_stop_but_do_not_destroy() {
        // Writing a read-only stat faults at pc 1; the first push stays.
        let mut b = banks(1);
        let (mem, report) = run("PUSHI 42\nPOP [Queue:QueueSize]\nPUSHI 7", 4, &mut b);
        match report.halt {
            Some(HaltReason::Mmu {
                pc: 1,
                fault: MmuFault::ReadOnly(_),
            }) => {}
            other => panic!("unexpected halt {other:?}"),
        }
        assert_eq!(report.instructions_executed, 1);
        assert_eq!(mem[0], 42, "partial results preserved");
    }

    #[test]
    fn packet_memory_exhaustion_faults() {
        let mut b = banks(1);
        let (_, report) = run("PUSHI 1\nPUSHI 2\nPUSHI 3", 2, &mut b);
        assert_eq!(report.halt, Some(HaltReason::PacketMemory { pc: 2 }));
        assert_eq!(report.instructions_executed, 2);
    }

    #[test]
    fn budget_exceeded_halts() {
        let mut b = banks(1);
        let program = assemble(&"NOP\n".repeat(10)).unwrap();
        let mut bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_words(0)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        // Budget of 7 cycles = 4 latency + 3 instructions.
        let mut tcpu = Tcpu::new(7);
        let mut m = mmu(&mut b);
        let report = tcpu.execute(&mut tpp, &mut m);
        assert_eq!(report.instructions_executed, 3);
        assert_eq!(report.halt, Some(HaltReason::BudgetExceeded { pc: 3 }));
    }

    #[test]
    fn five_instruction_program_fits_default_budget() {
        // §3.3: a 5-instruction TPP costs 9 cycles, well within the 300
        // cycle cut-through budget of a 1 GHz ASIC.
        assert!(cycles_for(5) <= 300);
        assert_eq!(cycles_for(5), 9);
    }

    #[test]
    fn hop_advances_even_on_fault() {
        let mut b = banks(1);
        let program = assemble("POP [Switch:Scratch[0]]").unwrap(); // underflow
        let mut bytes = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_words(1)
            .build();
        let mut tpp = TppPacket::new_checked(&mut bytes[..]).unwrap();
        let mut tcpu = Tcpu::new(300);
        let mut m = mmu(&mut b);
        let report = tcpu.execute(&mut tpp, &mut m);
        assert!(!report.completed());
        assert_eq!(tpp.hop(), 1, "hop advances on traversal, not success");
        assert_ne!(tpp.flags() & FLAG_EXECUTED, 0);
    }
}
