//! The unified memory-mapped IO interface of §3.2.1.
//!
//! "A TPP has access to any switch statistic tracked by the ASIC. ...
//! These statistics reside in different memory banks, but providing a
//! unified address space makes them available to TPPs."
//!
//! [`Mmu`] is that address space, assembled *per packet*: it borrows the
//! global registers, the statistics banks of the packet's **egress** port
//! and queue, the per-packet metadata the pipeline produced, and the two
//! writable scratch SRAMs. Context-relative resolution is what makes one
//! address mean "the queue size on the link the packet will be sent out"
//! (§2) on every switch.
//!
//! Permission model (§4): statistics and metadata are read-only; only the
//! scratch SRAM namespaces accept STOREs. "The memory map isolates
//! critical forwarding state from state modifiable by TPPs."

use crate::stats::{PortStats, QueueStats, SwitchRegs};
use crate::tables::PortId;
use tpp_isa::{Namespace, Stat, VirtAddr};

/// An egress queue index on a port.
pub type QueueId = u8;

/// Per-packet metadata produced by the forwarding pipeline, backing the
/// `PacketMetadata` namespace (Table 2 row 4).
///
/// "In its registers, the ASIC keeps metadata such as input port, the
/// selected route, etc. for every packet" (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Ingress port (`PacketMetadata:InputPort`).
    pub input_port: PortId,
    /// Egress port chosen by the pipeline (`PacketMetadata:OutputPort`).
    pub output_port: PortId,
    /// Matched flow entry id, 0 if the TCAM missed
    /// (`PacketMetadata:MatchedEntryID`).
    pub matched_entry_id: u32,
    /// Matched flow entry version (`PacketMetadata:MatchedEntryVersion`).
    pub matched_entry_version: u32,
    /// Egress queue (`PacketMetadata:QueueID`).
    pub queue_id: QueueId,
    /// Frame length in bytes (`PacketMetadata:PacketLength`).
    pub packet_length: u32,
    /// Arrival time at this switch, ns (`PacketMetadata:ArrivalTime`).
    pub arrival_time_ns: u64,
    /// Route diversity indicator (`PacketMetadata:AlternateRoutes`).
    pub alternate_routes: u32,
}

/// A fault raised by the MMU on an illegal access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuFault {
    /// The address maps to no register or SRAM cell.
    Unmapped(VirtAddr),
    /// A write targeted a read-only namespace.
    ReadOnly(VirtAddr),
    /// The address falls in SRAM but past the configured size.
    OutOfRange(VirtAddr),
}

impl core::fmt::Display for MmuFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MmuFault::Unmapped(a) => write!(f, "unmapped address {a}"),
            MmuFault::ReadOnly(a) => write!(f, "write to read-only address {a}"),
            MmuFault::OutOfRange(a) => write!(f, "SRAM address {a} out of range"),
        }
    }
}

/// The per-packet view of switch memory the TCPU executes against.
///
/// Counters wider than 32 bits expose their wrapping low 32 bits, like
/// real ASIC/SNMP counters; end-hosts that need full width read twice and
/// reconcile (or use deltas, as all the paper's tasks do).
#[derive(Debug)]
pub struct Mmu<'a> {
    /// Global switch registers.
    pub switch: &'a SwitchRegs,
    /// Egress-port statistics bank.
    pub port: &'a PortStats,
    /// Egress link capacity (backs `Link:CapacityKbps`).
    pub port_capacity_kbps: u32,
    /// Egress-queue statistics bank.
    pub queue: &'a QueueStats,
    /// Egress queue byte limit (backs `Queue:Limit`).
    pub queue_limit_bytes: u32,
    /// This packet's metadata.
    pub meta: &'a PacketMeta,
    /// Writable per-link scratch SRAM of the egress port.
    pub link_sram: &'a mut [u32],
    /// Writable global scratch SRAM.
    pub global_sram: &'a mut [u32],
}

impl<'a> Mmu<'a> {
    /// Read the 32-bit word at a virtual address.
    pub fn read(&self, addr: VirtAddr) -> Result<u32, MmuFault> {
        match addr.namespace() {
            Namespace::Switch => self.read_switch(addr),
            Namespace::Link => self.read_link(addr),
            Namespace::Queue => self.read_queue(addr),
            Namespace::PacketMetadata => self.read_meta(addr),
            Namespace::LinkSram => Self::sram_get(self.link_sram, addr),
            Namespace::GlobalSram => Self::sram_get(self.global_sram, addr),
            Namespace::Reserved => Err(MmuFault::Unmapped(addr)),
        }
    }

    /// Write the 32-bit word at a virtual address. Only the scratch SRAM
    /// namespaces are writable.
    pub fn write(&mut self, addr: VirtAddr, value: u32) -> Result<(), MmuFault> {
        match addr.namespace() {
            Namespace::LinkSram => Self::sram_set(self.link_sram, addr, value),
            Namespace::GlobalSram => Self::sram_set(self.global_sram, addr, value),
            Namespace::Switch | Namespace::Link | Namespace::Queue | Namespace::PacketMetadata => {
                Err(MmuFault::ReadOnly(addr))
            }
            Namespace::Reserved => Err(MmuFault::Unmapped(addr)),
        }
    }

    fn sram_get(sram: &[u32], addr: VirtAddr) -> Result<u32, MmuFault> {
        sram.get(addr.word_index())
            .copied()
            .ok_or(MmuFault::OutOfRange(addr))
    }

    fn sram_set(sram: &mut [u32], addr: VirtAddr, value: u32) -> Result<(), MmuFault> {
        match sram.get_mut(addr.word_index()) {
            Some(cell) => {
                *cell = value;
                Ok(())
            }
            None => Err(MmuFault::OutOfRange(addr)),
        }
    }

    fn read_switch(&self, addr: VirtAddr) -> Result<u32, MmuFault> {
        let s = self.switch;
        Ok(match addr {
            a if a == Stat::SwitchId.addr() => s.switch_id,
            a if a == Stat::FlowTableVersion.addr() => s.flow_table_version,
            a if a == Stat::L2TableHits.addr() => s.l2_hits as u32,
            a if a == Stat::L3TableHits.addr() => s.l3_hits as u32,
            a if a == Stat::TcamHits.addr() => s.tcam_hits as u32,
            a if a == Stat::PacketsProcessed.addr() => s.packets_processed as u32,
            a if a == Stat::TppsExecuted.addr() => s.tpps_executed as u32,
            a if a == Stat::WallClock.addr() => s.wall_clock_ns as u32,
            a if a == Stat::BootEpoch.addr() => s.boot_epoch,
            other => return Err(MmuFault::Unmapped(other)),
        })
    }

    fn read_link(&self, addr: VirtAddr) -> Result<u32, MmuFault> {
        let p = self.port;
        Ok(match addr {
            a if a == Stat::RxBytes.addr() => p.rx_bytes as u32,
            a if a == Stat::TxBytes.addr() => p.tx_bytes as u32,
            a if a == Stat::RxUtilization.addr() => p.rx_utilization_permille,
            a if a == Stat::TxUtilization.addr() => p.tx_utilization_permille,
            a if a == Stat::LinkBytesDropped.addr() => p.bytes_dropped as u32,
            a if a == Stat::LinkBytesEnqueued.addr() => p.bytes_enqueued as u32,
            a if a == Stat::RxPackets.addr() => p.rx_packets as u32,
            a if a == Stat::TxPackets.addr() => p.tx_packets as u32,
            a if a == Stat::LinkCapacityKbps.addr() => self.port_capacity_kbps,
            a if a == Stat::LinkQueueSize.addr() => self.queue.queue_size_bytes as u32,
            a if a == Stat::EcnMarked.addr() => p.ecn_marked as u32,
            a if a == Stat::SnrDeciBel.addr() => p.snr_decidb,
            other => return Err(MmuFault::Unmapped(other)),
        })
    }

    fn read_queue(&self, addr: VirtAddr) -> Result<u32, MmuFault> {
        let q = self.queue;
        Ok(match addr {
            a if a == Stat::QueueSize.addr() => q.queue_size_bytes as u32,
            a if a == Stat::QueueBytesEnqueued.addr() => q.bytes_enqueued as u32,
            a if a == Stat::QueueBytesDropped.addr() => q.bytes_dropped as u32,
            a if a == Stat::QueuePacketsEnqueued.addr() => q.packets_enqueued as u32,
            a if a == Stat::QueuePacketsDropped.addr() => q.packets_dropped as u32,
            a if a == Stat::QueueHighWatermark.addr() => q.high_watermark_bytes as u32,
            a if a == Stat::QueueLimit.addr() => self.queue_limit_bytes,
            other => return Err(MmuFault::Unmapped(other)),
        })
    }

    fn read_meta(&self, addr: VirtAddr) -> Result<u32, MmuFault> {
        let m = self.meta;
        Ok(match addr {
            a if a == Stat::InputPort.addr() => m.input_port as u32,
            a if a == Stat::OutputPort.addr() => m.output_port as u32,
            a if a == Stat::MatchedEntryId.addr() => m.matched_entry_id,
            a if a == Stat::MatchedEntryVersion.addr() => m.matched_entry_version,
            a if a == Stat::QueueId.addr() => m.queue_id as u32,
            a if a == Stat::PacketLength.addr() => m.packet_length,
            a if a == Stat::ArrivalTime.addr() => m.arrival_time_ns as u32,
            a if a == Stat::AlternateRoutes.addr() => m.alternate_routes,
            other => return Err(MmuFault::Unmapped(other)),
        })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::drop_non_drop)]
mod tests {
    use super::*;

    fn meta() -> PacketMeta {
        PacketMeta {
            input_port: 2,
            output_port: 5,
            matched_entry_id: 42,
            matched_entry_version: 7,
            queue_id: 1,
            packet_length: 1500,
            arrival_time_ns: 0x1_0000_0001,
            alternate_routes: 3,
        }
    }

    struct Banks {
        switch: SwitchRegs,
        port: PortStats,
        queue: QueueStats,
        meta: PacketMeta,
        link_sram: Vec<u32>,
        global_sram: Vec<u32>,
    }

    fn banks() -> Banks {
        let mut switch = SwitchRegs::new(11);
        switch.flow_table_version = 9;
        switch.packets_processed = 0x2_0000_0005; // exercises wrap
        let mut port = PortStats::default();
        port.rx_bytes = 1000;
        port.rx_utilization_permille = 750;
        let mut queue = QueueStats::default();
        queue.queue_size_bytes = 4096;
        queue.bytes_dropped = 64;
        Banks {
            switch,
            port,
            queue,
            meta: meta(),
            link_sram: vec![0; 16],
            global_sram: vec![0; 16],
        }
    }

    fn mmu(b: &mut Banks) -> Mmu<'_> {
        Mmu {
            switch: &b.switch,
            port: &b.port,
            port_capacity_kbps: 10_000,
            queue: &b.queue,
            queue_limit_bytes: 64_000,
            meta: &b.meta,
            link_sram: &mut b.link_sram,
            global_sram: &mut b.global_sram,
        }
    }

    #[test]
    fn every_defined_stat_is_readable() {
        let mut b = banks();
        let m = mmu(&mut b);
        for stat in Stat::ALL {
            assert!(m.read(stat.addr()).is_ok(), "unreadable {}", stat.symbol());
        }
    }

    #[test]
    fn reads_reflect_bank_values() {
        let mut b = banks();
        let m = mmu(&mut b);
        assert_eq!(m.read(Stat::SwitchId.addr()).unwrap(), 11);
        assert_eq!(m.read(Stat::FlowTableVersion.addr()).unwrap(), 9);
        assert_eq!(m.read(Stat::QueueSize.addr()).unwrap(), 4096);
        assert_eq!(m.read(Stat::LinkQueueSize.addr()).unwrap(), 4096);
        assert_eq!(m.read(Stat::RxUtilization.addr()).unwrap(), 750);
        assert_eq!(m.read(Stat::LinkCapacityKbps.addr()).unwrap(), 10_000);
        assert_eq!(m.read(Stat::QueueLimit.addr()).unwrap(), 64_000);
        assert_eq!(m.read(Stat::InputPort.addr()).unwrap(), 2);
        assert_eq!(m.read(Stat::OutputPort.addr()).unwrap(), 5);
        assert_eq!(m.read(Stat::MatchedEntryId.addr()).unwrap(), 42);
        assert_eq!(m.read(Stat::PacketLength.addr()).unwrap(), 1500);
        assert_eq!(m.read(Stat::AlternateRoutes.addr()).unwrap(), 3);
    }

    #[test]
    fn wide_counters_expose_wrapping_low_bits() {
        let mut b = banks();
        let m = mmu(&mut b);
        // packets_processed = 0x2_0000_0005 -> low 32 bits = 5.
        assert_eq!(m.read(Stat::PacketsProcessed.addr()).unwrap(), 5);
        // arrival_time_ns = 0x1_0000_0001 -> low 32 bits = 1.
        assert_eq!(m.read(Stat::ArrivalTime.addr()).unwrap(), 1);
    }

    #[test]
    fn sram_read_write_roundtrip() {
        let mut b = banks();
        let mut m = mmu(&mut b);
        let link = VirtAddr(0x4004);
        let global = VirtAddr(0x8008);
        m.write(link, 0xaaaa_bbbb).unwrap();
        m.write(global, 0xcccc_dddd).unwrap();
        assert_eq!(m.read(link).unwrap(), 0xaaaa_bbbb);
        assert_eq!(m.read(global).unwrap(), 0xcccc_dddd);
        drop(m);
        assert_eq!(b.link_sram[1], 0xaaaa_bbbb);
        assert_eq!(b.global_sram[2], 0xcccc_dddd);
    }

    #[test]
    fn statistics_are_read_only() {
        let mut b = banks();
        let mut m = mmu(&mut b);
        for addr in [
            Stat::SwitchId.addr(),
            Stat::QueueSize.addr(),
            Stat::RxUtilization.addr(),
            Stat::InputPort.addr(),
        ] {
            assert_eq!(m.write(addr, 1), Err(MmuFault::ReadOnly(addr)));
        }
    }

    #[test]
    fn unmapped_and_out_of_range_fault() {
        let mut b = banks();
        let mut m = mmu(&mut b);
        // Hole between defined stats inside a namespace.
        assert!(matches!(
            m.read(VirtAddr(0x0ffc)),
            Err(MmuFault::Unmapped(_))
        ));
        // Reserved hole between namespaces.
        assert!(matches!(
            m.read(VirtAddr(0x5000)),
            Err(MmuFault::Unmapped(_))
        ));
        // SRAM past the configured 16 words.
        assert!(matches!(
            m.read(VirtAddr(0x4000 + 16 * 4)),
            Err(MmuFault::OutOfRange(_))
        ));
        assert!(matches!(
            m.write(VirtAddr(0x8000 + 16 * 4), 0),
            Err(MmuFault::OutOfRange(_))
        ));
    }
}
