//! The ASIC's statistics registers — the backing store of Table 2.
//!
//! "Today, the ASIC memory manager already keeps track of per-port,
//! per-queue occupancies in its registers" (§2.1). These structs are those
//! registers. Counters are `u64` internally and expose wrapping low-32-bit
//! views to TPPs (see `memmap`), like real ASIC/SNMP counters.

/// Per-switch (global) registers.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchRegs {
    /// `Switch:SwitchID`.
    pub switch_id: u32,
    /// `Switch:FlowTableVersion` — bumped by the control plane on every
    /// rule update (ndb's version stamp, §2.3).
    pub flow_table_version: u32,
    /// `Switch:L2TableHits`.
    pub l2_hits: u64,
    /// `Switch:L3TableHits`.
    pub l3_hits: u64,
    /// `Switch:TcamHits`.
    pub tcam_hits: u64,
    /// `Switch:PacketsProcessed`.
    pub packets_processed: u64,
    /// `Switch:TppsExecuted`.
    pub tpps_executed: u64,
    /// `Switch:WallClock` — switch-local time in ns, updated as packets
    /// arrive (the model is event-driven, so the clock advances with
    /// traffic).
    pub wall_clock_ns: u64,
    /// `Switch:BootEpoch` — incremented by every [`reset`](crate::Asic::reset)
    /// (reboot). Survives the reset itself; everything else volatile is
    /// wiped. End-hosts compare it against a cached value to detect that
    /// SRAM state they seeded earlier is gone.
    pub boot_epoch: u32,
}

impl SwitchRegs {
    /// Fresh registers for a switch.
    pub fn new(switch_id: u32) -> Self {
        SwitchRegs {
            switch_id,
            flow_table_version: 0,
            l2_hits: 0,
            l3_hits: 0,
            tcam_hits: 0,
            packets_processed: 0,
            tpps_executed: 0,
            wall_clock_ns: 0,
            boot_epoch: 0,
        }
    }

    /// Export the registers into a [`tpp_telemetry::MetricsRegistry`]
    /// under stable `switch.*` names. Counters are exported with `add`,
    /// so exporting several switches into one registry sums them —
    /// which is the fleet-wide view the simulator publishes on every
    /// stats tick.
    pub fn export_metrics(&self, registry: &mut tpp_telemetry::MetricsRegistry) {
        registry.add("switch.packets_processed", self.packets_processed);
        registry.add("switch.tpps_executed", self.tpps_executed);
        registry.add("switch.l2_hits", self.l2_hits);
        registry.add("switch.l3_hits", self.l3_hits);
        registry.add("switch.tcam_hits", self.tcam_hits);
    }
}

/// Per-port (link) registers.
///
/// Naming follows the link's perspective, matching §2.2's
/// `[Link:RX-Utilization]` being RCP's y(t) (the *offered load* on the
/// link): `rx_*` counts bytes the link receives to carry (enqueued into
/// the egress port, including bytes later dropped by the queue), `tx_*`
/// counts bytes actually transmitted onto the wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PortStats {
    /// `Link:RX-Bytes` — bytes offered to this egress link.
    pub rx_bytes: u64,
    /// `Link:RX-Packets`.
    pub rx_packets: u64,
    /// `Link:TX-Bytes` — bytes transmitted.
    pub tx_bytes: u64,
    /// `Link:TX-Packets`.
    pub tx_packets: u64,
    /// `Link:BytesDropped` — bytes dropped at this port (queue overflow).
    pub bytes_dropped: u64,
    /// `Link:BytesEnqueued` — bytes accepted into the egress queues.
    pub bytes_enqueued: u64,
    /// `Link:EcnMarked` — packets ECN-marked at this egress port.
    pub ecn_marked: u64,
    /// `Link:SnrDeciBel` — signal-to-noise ratio of the attached link in
    /// deci-dB (tenths of a dB), for wireless egress ports. Updated by
    /// the radio (in the model: the experiment harness), read by TPPs —
    /// the §2.3 "access points can annotate end-host packets with
    /// channel SNR which changes very quickly" use case.
    pub snr_decidb: u32,
    /// `Link:RX-Utilization` in per-mille of capacity (EWMA). RCP's y(t).
    pub rx_utilization_permille: u32,
    /// `Link:TX-Utilization` in per-mille of capacity (EWMA).
    pub tx_utilization_permille: u32,
    /// Full-precision EWMA state behind the RX register.
    pub(crate) rx_utilization_ewma: f64,
    /// Full-precision EWMA state behind the TX register.
    pub(crate) tx_utilization_ewma: f64,
    /// Bytes offered since the last utilization tick (EWMA window input).
    pub(crate) rx_window_bytes: u64,
    /// Bytes transmitted since the last utilization tick.
    pub(crate) tx_window_bytes: u64,
    /// Timestamp of the last utilization tick, ns.
    pub(crate) last_tick_ns: u64,
}

impl PortStats {
    /// Export the port counters into a [`tpp_telemetry::MetricsRegistry`]
    /// under stable `port.*` names (summed across ports and switches;
    /// see [`SwitchRegs::export_metrics`]). Utilization EWMAs are
    /// observed as histogram samples so the aggregate view keeps the
    /// distribution, not just a meaningless sum.
    pub fn export_metrics(&self, registry: &mut tpp_telemetry::MetricsRegistry) {
        registry.add("port.rx_bytes", self.rx_bytes);
        registry.add("port.rx_packets", self.rx_packets);
        registry.add("port.tx_bytes", self.tx_bytes);
        registry.add("port.tx_packets", self.tx_packets);
        registry.add("port.bytes_dropped", self.bytes_dropped);
        registry.add("port.bytes_enqueued", self.bytes_enqueued);
        registry.add("port.ecn_marked", self.ecn_marked);
        registry.observe(
            "port.rx_utilization_permille",
            self.rx_utilization_permille as u64,
        );
        registry.observe(
            "port.tx_utilization_permille",
            self.tx_utilization_permille as u64,
        );
    }

    /// Fold the bytes seen since the last tick into the utilization EWMAs.
    ///
    /// Called periodically by the ASIC owner (the simulator); `alpha` is
    /// the EWMA weight of the newest sample and `capacity_kbps` the link
    /// rate. Idempotent for zero-length intervals.
    pub fn tick_utilization(&mut self, now_ns: u64, capacity_kbps: u32, alpha: f64) {
        let dt_ns = now_ns.saturating_sub(self.last_tick_ns);
        if dt_ns == 0 {
            return;
        }
        self.last_tick_ns = now_ns;
        let capacity_bits_per_ns = capacity_kbps as f64 * 1_000.0 / 1e9;
        let denom = capacity_bits_per_ns * dt_ns as f64;
        let rx_inst = (self.rx_window_bytes as f64 * 8.0 / denom) * 1000.0;
        let tx_inst = (self.tx_window_bytes as f64 * 8.0 / denom) * 1000.0;
        self.rx_window_bytes = 0;
        self.tx_window_bytes = 0;
        self.rx_utilization_ewma = ewma(self.rx_utilization_ewma, rx_inst, alpha);
        self.tx_utilization_ewma = ewma(self.tx_utilization_ewma, tx_inst, alpha);
        self.rx_utilization_permille = to_register(self.rx_utilization_ewma);
        self.tx_utilization_permille = to_register(self.tx_utilization_ewma);
    }
}

fn ewma(current: f64, sample: f64, alpha: f64) -> f64 {
    alpha * sample + (1.0 - alpha) * current
}

fn to_register(value: f64) -> u32 {
    // Truncate, so an EWMA decaying to zero reads zero rather than
    // sticking at 1 through round-half-up.
    value.clamp(0.0, u32::MAX as f64) as u32
}

/// Per-queue registers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueStats {
    /// `Queue:QueueSize` — instantaneous occupancy in bytes.
    pub queue_size_bytes: u64,
    /// `Queue:BytesEnqueued`.
    pub bytes_enqueued: u64,
    /// `Queue:BytesDropped`.
    pub bytes_dropped: u64,
    /// `Queue:PacketsEnqueued`.
    pub packets_enqueued: u64,
    /// `Queue:PacketsDropped`.
    pub packets_dropped: u64,
    /// `Queue:HighWatermark` — maximum occupancy ever observed, bytes.
    pub high_watermark_bytes: u64,
}

impl QueueStats {
    /// Export the queue counters into a [`tpp_telemetry::MetricsRegistry`]
    /// under stable `queue.*` names. Occupancy and high-watermark go in
    /// as histogram samples (one per queue per export), so the
    /// cross-switch aggregate exposes the *distribution* of queue state
    /// — the quantity the paper's microburst use case cares about.
    pub fn export_metrics(&self, registry: &mut tpp_telemetry::MetricsRegistry) {
        registry.add("queue.bytes_enqueued", self.bytes_enqueued);
        registry.add("queue.bytes_dropped", self.bytes_dropped);
        registry.add("queue.packets_enqueued", self.packets_enqueued);
        registry.add("queue.packets_dropped", self.packets_dropped);
        registry.observe("queue.depth_bytes", self.queue_size_bytes);
        registry.observe("queue.high_watermark_bytes", self.high_watermark_bytes);
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn utilization_tick_full_load() {
        // A 10 Mb/s port offered exactly 10 Mb/s for 1 ms reads ~1000 ‰
        // after enough ticks for the EWMA to converge.
        let mut stats = PortStats::default();
        let capacity_kbps = 10_000; // 10 Mb/s
        let mut now = 0u64;
        for _ in 0..32 {
            now += 1_000_000; // 1 ms
            stats.rx_window_bytes = 1250; // 10 Mb/s * 1 ms / 8
            stats.tick_utilization(now, capacity_kbps, 0.5);
        }
        assert!(
            (995..=1005).contains(&stats.rx_utilization_permille),
            "got {}",
            stats.rx_utilization_permille
        );
        assert_eq!(stats.tx_utilization_permille, 0);
    }

    #[test]
    fn utilization_half_load_and_decay() {
        let mut stats = PortStats::default();
        let mut now = 0u64;
        for _ in 0..32 {
            now += 1_000_000;
            stats.rx_window_bytes = 625; // half of 10 Mb/s
            stats.tick_utilization(now, 10_000, 0.5);
        }
        assert!((495..=505).contains(&stats.rx_utilization_permille));
        // Load vanishes: utilization must decay towards zero.
        for _ in 0..32 {
            now += 1_000_000;
            stats.tick_utilization(now, 10_000, 0.5);
        }
        assert_eq!(stats.rx_utilization_permille, 0);
    }

    #[test]
    fn zero_interval_tick_is_noop() {
        let mut stats = PortStats::default();
        stats.rx_window_bytes = 1000;
        stats.tick_utilization(0, 10_000, 0.5);
        assert_eq!(stats.rx_window_bytes, 1000, "window preserved");
        assert_eq!(stats.rx_utilization_permille, 0);
    }
}
