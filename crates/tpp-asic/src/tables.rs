//! The forwarding tables of the Fig. 3 pipeline: "a combination of layer 2
//! MAC table, layer 3 longest-prefix match table and a flexible TCAM table".
//!
//! The TCAM carries SDN-style flow entries with the *unique version number*
//! ndb stamps on every rule (§2.3): the TCPU exposes the matched entry's id
//! and version through the `PacketMetadata` namespace so end-hosts can
//! reconstruct exactly which rule forwarded each packet.

use std::collections::HashMap;
use tpp_wire::EthernetAddress;

/// A port index on the switch.
pub type PortId = u16;

/// The header fields the parser extracts for table lookups.
///
/// `Hash` lets the exact-match flow cache key on the whole tuple, the
/// OVS-megaflow-style fast path in front of the TCAM→L3→L2 walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Ingress port the packet arrived on.
    pub in_port: PortId,
    /// Destination MAC.
    pub dst_mac: EthernetAddress,
    /// Source MAC.
    pub src_mac: EthernetAddress,
    /// EtherType.
    pub ethertype: u16,
    /// Destination IPv4 address, when the frame carries one.
    pub ipv4_dst: Option<u32>,
}

/// A TCAM match pattern. `None` fields are wildcards (the "ternary" in
/// TCAM); present fields match exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    /// Match on ingress port.
    pub in_port: Option<PortId>,
    /// Match on destination MAC.
    pub dst_mac: Option<EthernetAddress>,
    /// Match on source MAC.
    pub src_mac: Option<EthernetAddress>,
    /// Match on EtherType.
    pub ethertype: Option<u16>,
}

impl FlowMatch {
    /// True if this pattern matches the key.
    pub fn matches(&self, key: &FlowKey) -> bool {
        self.in_port.is_none_or(|p| p == key.in_port)
            && self.dst_mac.is_none_or(|m| m == key.dst_mac)
            && self.src_mac.is_none_or(|m| m == key.src_mac)
            && self.ethertype.is_none_or(|e| e == key.ethertype)
    }
}

/// What to do with a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowAction {
    /// Forward out of a port (egress queue 0).
    Forward(PortId),
    /// Forward out of a port into a specific egress queue — how the
    /// pipeline hands the Fig. 3 scheduler its priority metadata
    /// ("using metadata (such as the packet's priority), the scheduler
    /// decides when it is time for the packet to be transmitted").
    /// Queue 0 is highest priority; the scheduler is strict-priority.
    ForwardQueue(PortId, u8),
    /// Drop the packet.
    Drop,
}

/// A versioned TCAM flow entry.
///
/// "ndb works by ... stamping each flow entry with a unique version
/// number" (§2.3); the control plane bumps `version` whenever it rewrites
/// the entry, and the dataplane reports `(id, version)` to TPPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEntry {
    /// Stable entry identifier.
    pub id: u32,
    /// Version stamp, bumped on every modification.
    pub version: u32,
    /// Higher priority wins.
    pub priority: u16,
    /// Match pattern.
    pub pattern: FlowMatch,
    /// Action on match.
    pub action: FlowAction,
}

/// The flexible TCAM table: priority-ordered ternary matching.
#[derive(Debug, Default)]
pub struct Tcam {
    entries: Vec<FlowEntry>,
}

impl Tcam {
    /// An empty TCAM.
    pub fn new() -> Self {
        Tcam::default()
    }

    /// Install or replace (by id) an entry. Keeps entries sorted by
    /// descending priority, ties broken by lower id first (deterministic).
    pub fn install(&mut self, entry: FlowEntry) {
        self.entries.retain(|e| e.id != entry.id);
        self.entries.push(entry);
        self.entries
            .sort_by(|a, b| b.priority.cmp(&a.priority).then(a.id.cmp(&b.id)));
    }

    /// Remove an entry by id; returns it if present.
    pub fn remove(&mut self, id: u32) -> Option<FlowEntry> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(pos))
    }

    /// Highest-priority entry matching the key.
    pub fn lookup(&self, key: &FlowKey) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.pattern.matches(key))
    }

    /// Entry by id (control-plane view).
    pub fn get(&self, id: u32) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident heap bytes of this TCAM.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.capacity() * std::mem::size_of::<FlowEntry>()
    }

    /// Iterate over installed entries in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }
}

/// Exact-match L2 MAC table.
#[derive(Debug, Default)]
pub struct L2Table {
    entries: HashMap<EthernetAddress, PortId>,
}

impl L2Table {
    /// An empty table.
    pub fn new() -> Self {
        L2Table::default()
    }

    /// Bind a MAC to an egress port.
    pub fn insert(&mut self, mac: EthernetAddress, port: PortId) {
        self.entries.insert(mac, port);
    }

    /// Look up a destination MAC.
    pub fn lookup(&self, mac: EthernetAddress) -> Option<PortId> {
        self.entries.get(&mac).copied()
    }

    /// Number of bound MACs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident heap bytes of this table.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.capacity()
                * (std::mem::size_of::<(EthernetAddress, PortId)>() + std::mem::size_of::<u64>())
    }
}

/// Longest-prefix-match table over IPv4 addresses, as a binary trie.
#[derive(Debug, Default)]
pub struct LpmTable {
    root: Node,
    len: usize,
}

#[derive(Debug, Default)]
struct Node {
    port: Option<PortId>,
    children: [Option<Box<Node>>; 2],
}

impl LpmTable {
    /// An empty LPM table.
    pub fn new() -> Self {
        LpmTable::default()
    }

    /// Insert a route `prefix/prefix_len -> port`. Replaces an identical
    /// prefix if present.
    ///
    /// # Panics
    /// Panics if `prefix_len > 32` (a programmer error, not wire input).
    pub fn insert(&mut self, prefix: u32, prefix_len: u8, port: PortId) {
        assert!(prefix_len <= 32, "IPv4 prefix length exceeds 32");
        let mut node = &mut self.root;
        for i in 0..prefix_len {
            let bit = ((prefix >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        if node.port.replace(port).is_none() {
            self.len += 1;
        }
    }

    /// Longest-prefix match for an address.
    pub fn lookup(&self, addr: u32) -> Option<PortId> {
        let mut node = &self.root;
        let mut best = node.port;
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.port.is_some() {
                        best = node.port;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefixes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate resident heap bytes of the trie.
    pub fn approx_bytes(&self) -> usize {
        fn nodes(node: &Node) -> usize {
            1 + node
                .children
                .iter()
                .flatten()
                .map(|child| nodes(child))
                .sum::<usize>()
        }
        std::mem::size_of::<Self>() + (nodes(&self.root) - 1) * std::mem::size_of::<Node>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(in_port: PortId, dst: u32, ethertype: u16) -> FlowKey {
        FlowKey {
            in_port,
            dst_mac: EthernetAddress::from_host_id(dst),
            src_mac: EthernetAddress::from_host_id(999),
            ethertype,
            ipv4_dst: None,
        }
    }

    #[test]
    fn tcam_priority_and_wildcards() {
        let mut tcam = Tcam::new();
        tcam.install(FlowEntry {
            id: 1,
            version: 1,
            priority: 10,
            pattern: FlowMatch {
                ethertype: Some(0x0800),
                ..Default::default()
            },
            action: FlowAction::Forward(1),
        });
        tcam.install(FlowEntry {
            id: 2,
            version: 1,
            priority: 20,
            pattern: FlowMatch {
                ethertype: Some(0x0800),
                in_port: Some(3),
                ..Default::default()
            },
            action: FlowAction::Drop,
        });
        // Higher priority, more specific entry wins.
        assert_eq!(tcam.lookup(&key(3, 5, 0x0800)).unwrap().id, 2);
        // Other ports fall to the wildcard entry.
        assert_eq!(tcam.lookup(&key(1, 5, 0x0800)).unwrap().id, 1);
        // Unmatched ethertype misses entirely.
        assert!(tcam.lookup(&key(1, 5, 0x6666)).is_none());
    }

    #[test]
    fn tcam_install_replaces_by_id() {
        let mut tcam = Tcam::new();
        let mut e = FlowEntry {
            id: 7,
            version: 1,
            priority: 5,
            pattern: FlowMatch::default(),
            action: FlowAction::Forward(1),
        };
        tcam.install(e);
        e.version = 2;
        e.action = FlowAction::Forward(2);
        tcam.install(e);
        assert_eq!(tcam.len(), 1);
        let got = tcam.get(7).unwrap();
        assert_eq!(got.version, 2);
        assert_eq!(got.action, FlowAction::Forward(2));
        assert!(tcam.remove(7).is_some());
        assert!(tcam.is_empty());
    }

    #[test]
    fn tcam_deterministic_tie_break() {
        let mut tcam = Tcam::new();
        for id in [9, 3, 6] {
            tcam.install(FlowEntry {
                id,
                version: 1,
                priority: 10,
                pattern: FlowMatch::default(),
                action: FlowAction::Forward(id as PortId),
            });
        }
        // Same priority: lowest id wins, regardless of install order.
        assert_eq!(tcam.lookup(&key(0, 0, 0)).unwrap().id, 3);
    }

    #[test]
    fn l2_exact_match() {
        let mut l2 = L2Table::new();
        l2.insert(EthernetAddress::from_host_id(1), 4);
        assert_eq!(l2.lookup(EthernetAddress::from_host_id(1)), Some(4));
        assert_eq!(l2.lookup(EthernetAddress::from_host_id(2)), None);
        assert_eq!(l2.len(), 1);
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut lpm = LpmTable::new();
        lpm.insert(0x0a000000, 8, 1); // 10.0.0.0/8 -> 1
        lpm.insert(0x0a010000, 16, 2); // 10.1.0.0/16 -> 2
        lpm.insert(0x0a010100, 24, 3); // 10.1.1.0/24 -> 3
        assert_eq!(lpm.lookup(0x0a010105), Some(3)); // 10.1.1.5
        assert_eq!(lpm.lookup(0x0a010205), Some(2)); // 10.1.2.5
        assert_eq!(lpm.lookup(0x0a020305), Some(1)); // 10.2.3.5
        assert_eq!(lpm.lookup(0x0b000001), None); // 11.0.0.1
        assert_eq!(lpm.len(), 3);
    }

    #[test]
    fn lpm_default_route_and_replace() {
        let mut lpm = LpmTable::new();
        lpm.insert(0, 0, 9); // default route
        assert_eq!(lpm.lookup(0xffffffff), Some(9));
        lpm.insert(0, 0, 8); // replace
        assert_eq!(lpm.lookup(0x01020304), Some(8));
        assert_eq!(lpm.len(), 1, "replacement does not double-count");
    }

    #[test]
    fn lpm_host_route() {
        let mut lpm = LpmTable::new();
        lpm.insert(0xc0a80101, 32, 5); // 192.168.1.1/32
        assert_eq!(lpm.lookup(0xc0a80101), Some(5));
        assert_eq!(lpm.lookup(0xc0a80102), None);
    }
}
