//! Checked control-plane views over switch SRAM.
//!
//! The original accessors on [`Asic`](crate::Asic) indexed straight into
//! the backing `Vec<u32>` and panicked on an out-of-range word — fine for
//! tests, hostile to control-plane code that computes addresses from
//! packet contents. These views return `Result` instead, and carry the
//! bounds so errors are self-describing. TPP-visible accesses are *not*
//! routed through here: the TCPU's MMU has its own fault model
//! ([`MmuFault`](crate::MmuFault)) matching §3.2.1's address map.

use std::fmt;

use crate::tables::PortId;

/// A failed control-plane SRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SramError {
    /// The word index is beyond the SRAM region.
    OutOfBounds {
        /// The requested word index.
        word: usize,
        /// The region's size in words.
        len: usize,
    },
    /// The port does not exist on this ASIC.
    NoSuchPort {
        /// The requested port.
        port: PortId,
        /// How many ports the ASIC has.
        num_ports: usize,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::OutOfBounds { word, len } => {
                write!(
                    f,
                    "SRAM word {word} out of bounds (region holds {len} words)"
                )
            }
            SramError::NoSuchPort { port, num_ports } => {
                write!(f, "port {port} does not exist (ASIC has {num_ports} ports)")
            }
        }
    }
}

impl std::error::Error for SramError {}

/// A read-only view of an SRAM region.
#[derive(Debug, Clone, Copy)]
pub struct SramView<'a> {
    words: &'a [u32],
}

impl<'a> SramView<'a> {
    pub(crate) fn new(words: &'a [u32]) -> Self {
        SramView { words }
    }

    /// Read one word.
    pub fn word(&self, word: usize) -> Result<u32, SramError> {
        self.words.get(word).copied().ok_or(SramError::OutOfBounds {
            word,
            len: self.words.len(),
        })
    }

    /// The region size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the region has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The whole region as a slice (bulk reads, e.g. snapshotting).
    pub fn words(&self) -> &'a [u32] {
        self.words
    }
}

/// A mutable view of an SRAM region.
#[derive(Debug)]
pub struct SramViewMut<'a> {
    words: &'a mut [u32],
}

impl<'a> SramViewMut<'a> {
    pub(crate) fn new(words: &'a mut [u32]) -> Self {
        SramViewMut { words }
    }

    /// Read one word.
    pub fn word(&self, word: usize) -> Result<u32, SramError> {
        self.words.get(word).copied().ok_or(SramError::OutOfBounds {
            word,
            len: self.words.len(),
        })
    }

    /// Write one word.
    pub fn set_word(&mut self, word: usize, value: u32) -> Result<(), SramError> {
        let len = self.words.len();
        match self.words.get_mut(word) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(SramError::OutOfBounds { word, len }),
        }
    }

    /// The region size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the region has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The whole region as a mutable slice (bulk initialization).
    pub fn words_mut(&mut self) -> &mut [u32] {
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_view_bounds() {
        let data = [1u32, 2, 3];
        let view = SramView::new(&data);
        assert_eq!(view.word(0), Ok(1));
        assert_eq!(view.word(2), Ok(3));
        assert_eq!(
            view.word(3),
            Err(SramError::OutOfBounds { word: 3, len: 3 })
        );
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn write_view_bounds() {
        let mut data = [0u32; 2];
        let mut view = SramViewMut::new(&mut data);
        assert_eq!(view.set_word(1, 42), Ok(()));
        assert_eq!(view.word(1), Ok(42));
        assert_eq!(
            view.set_word(2, 1),
            Err(SramError::OutOfBounds { word: 2, len: 2 })
        );
        assert_eq!(data, [0, 42]);
    }

    #[test]
    fn errors_render() {
        let e = SramError::OutOfBounds { word: 9, len: 4 };
        assert!(e.to_string().contains("word 9"));
        let e = SramError::NoSuchPort {
            port: 7,
            num_ports: 2,
        };
        assert!(e.to_string().contains("port 7"));
    }
}
