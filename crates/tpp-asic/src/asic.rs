//! The assembled dataplane pipeline of Figure 3.
//!
//! [`Asic::handle_frame`] walks a frame through: header parser → edge TPP
//! filter (§4) → TCAM / L2 / L3 forwarding → per-packet metadata → TCPU
//! (TPPs only, §3.3 "just after the L2/L3/TCAM tables") → egress drop-tail
//! queue. The simulator's links later call [`Asic::dequeue`] to transmit,
//! which is the scheduler of Fig. 3.
//!
//! The ASIC is a passive object driven by its owner (a `tpp-netsim` switch
//! node or a unit test): it never knows about time except through the
//! `now_ns` it is handed, which keeps the whole system deterministic.

use crate::config::{AsicConfig, PortConfig, StripAction};
use crate::decode_cache::ProgramInterner;
use crate::memmap::Mmu;
pub use crate::memmap::PacketMeta;
use crate::profile::{
    table_walk_cycles, PipelineProfile, ProfileConfig, EDGE_FILTER_CYCLES, MMU_ADMIT_CYCLES,
    PARSE_CYCLES, PARSE_TPP_EXTRA_CYCLES,
};
use crate::queue::DropTailQueue;
use crate::sram::{SramError, SramView, SramViewMut};
use crate::state::{AsicState, PortState, QueueState};
use crate::stats::{PortStats, QueueStats, SwitchRegs};
use crate::tables::{FlowAction, FlowEntry, FlowKey, L2Table, LpmTable, Tcam};
use crate::tcpu::{ExecReport, Tcpu};
use std::collections::HashMap;
use tpp_telemetry::{DropKind, LookupKind, TcpuOutcome, TraceEvent, TraceEventKind, TraceSink};
use tpp_wire::ethernet::{EtherType, Frame, ETHERNET_HEADER_LEN};
use tpp_wire::tpp::TppPacket;

pub use crate::memmap::QueueId;
pub use crate::tables::PortId;

/// Why the pipeline dropped a frame.
///
/// Marked `#[non_exhaustive]`: future pipeline stages may add reasons, so
/// downstream matches need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DropReason {
    /// No table produced an egress port.
    NoRoute,
    /// The egress queue was full (drop-tail).
    QueueFull {
        /// The congested egress port.
        port: PortId,
    },
    /// A TCAM entry's action was `Drop`.
    FlowDrop {
        /// The matching entry id.
        entry_id: u32,
    },
    /// The §4 edge security policy dropped a TPP from an untrusted port.
    EdgeFiltered,
    /// The frame failed to parse.
    ParseError,
}

impl DropReason {
    /// The telemetry mirror of this reason.
    pub fn kind(&self) -> DropKind {
        match self {
            DropReason::NoRoute => DropKind::NoRoute,
            DropReason::QueueFull { .. } => DropKind::QueueFull,
            DropReason::FlowDrop { .. } => DropKind::FlowDrop,
            DropReason::EdgeFiltered => DropKind::EdgeFiltered,
            DropReason::ParseError => DropKind::ParseError,
        }
    }

    /// The egress port involved, when the drop happened after a lookup.
    pub fn port(&self) -> Option<PortId> {
        match self {
            DropReason::QueueFull { port } => Some(*port),
            _ => None,
        }
    }
}

/// The pipeline's verdict on one frame.
///
/// Marked `#[non_exhaustive]` (a future pipeline could, say, punt frames
/// to a slow path); prefer the accessors over exhaustive matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Outcome {
    /// Enqueued for transmission.
    Enqueued {
        /// Egress port.
        port: PortId,
        /// Egress queue on that port.
        queue: QueueId,
        /// TCPU execution report, when the frame carried a TPP and the
        /// TCPU ran it.
        exec: Option<ExecReport>,
    },
    /// Dropped.
    Dropped {
        /// Why.
        reason: DropReason,
    },
}

impl Outcome {
    /// True if the frame survived the pipeline.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Outcome::Enqueued { .. })
    }

    /// True if the frame was dropped.
    pub fn is_drop(&self) -> bool {
        matches!(self, Outcome::Dropped { .. })
    }

    /// The TCPU execution report, when the frame carried a TPP that ran.
    pub fn exec_report(&self) -> Option<&ExecReport> {
        match self {
            Outcome::Enqueued { exec, .. } => exec.as_ref(),
            _ => None,
        }
    }

    /// The egress `(port, queue)` the frame was admitted to, if any.
    pub fn egress(&self) -> Option<(PortId, QueueId)> {
        match self {
            Outcome::Enqueued { port, queue, .. } => Some((*port, *queue)),
            _ => None,
        }
    }

    /// Why the frame was dropped, if it was.
    pub fn drop_reason(&self) -> Option<DropReason> {
        match self {
            Outcome::Dropped { reason } => Some(*reason),
            _ => None,
        }
    }
}

/// Largest SRAM region (in words) served lazily from the shared zero
/// slab. Regions configured larger than this are allocated eagerly so
/// read-only views never have to invent zeros beyond the slab.
const LAZY_SRAM_MAX_WORDS: usize = 16384;

/// One fleet-shared page of zeros backing read views of SRAM regions no
/// TPP has touched yet (64 KiB of immutable static, vs. 36 KiB of heap
/// per switch eagerly zero-filled before this existed).
static ZERO_SRAM: [u32; LAZY_SRAM_MAX_WORDS] = [0; LAZY_SRAM_MAX_WORDS];

/// The lazy initial state for a region of `words` words: empty (backed by
/// [`ZERO_SRAM`] for reads, materialized on first write) unless the
/// region is too large for the zero slab.
fn lazy_sram(words: usize) -> Vec<u32> {
    if words > LAZY_SRAM_MAX_WORDS {
        vec![0; words]
    } else {
        Vec::new()
    }
}

/// Materialize a lazy SRAM region before handing out mutable access.
fn ensure_sram(region: &mut Vec<u32>, words: usize) {
    if region.is_empty() && words > 0 {
        region.resize(words, 0);
    }
}

/// A read view of a possibly-unmaterialized region: zeros of the
/// configured length until the first write, the real words after.
fn sram_view(region: &[u32], words: usize) -> SramView<'_> {
    if region.is_empty() && words > 0 {
        SramView::new(&ZERO_SRAM[..words.min(LAZY_SRAM_MAX_WORDS)])
    } else {
        SramView::new(region)
    }
}

/// One physical port: configuration, statistics, queues, link SRAM.
#[derive(Debug)]
struct Port {
    config: PortConfig,
    stats: PortStats,
    queues: Vec<DropTailQueue>,
    /// Lazily materialized: empty until the first TCPU execution or
    /// control-plane write through this port, then `link_sram_words`
    /// long. A fat-tree core switch that never carries a TPP pays
    /// nothing for scratch SRAM it never reads.
    link_sram: Vec<u32>,
}

impl Port {
    fn new(config: PortConfig, link_sram_words: usize) -> Self {
        let queues = (0..config.num_queues.max(1))
            .map(|_| DropTailQueue::new(config.queue_limit_bytes))
            .collect();
        Port {
            stats: PortStats::default(),
            queues,
            link_sram: lazy_sram(link_sram_words),
            config,
        }
    }

    /// Approximate resident heap bytes of this port.
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.link_sram.capacity() * 4
            + self
                .queues
                .iter()
                .map(DropTailQueue::approx_bytes)
                .sum::<usize>()
    }
}

/// The cached resolution of one exact-match flow: enough to replay the
/// registers and trace events of a full table walk without touching the
/// tables. Valid only for the generation it was inserted under.
#[derive(Debug, Clone, Copy)]
enum CachedLookup {
    /// A table produced an egress decision.
    Forward {
        table: LookupKind,
        port: PortId,
        queue: QueueId,
        entry_id: u32,
        entry_version: u32,
        alternates: u32,
    },
    /// A TCAM entry's action was `Drop` (counts as a TCAM hit).
    FlowDrop { entry_id: u32 },
    /// No table matched.
    Miss,
}

/// A TPP-capable switch ASIC.
pub struct Asic {
    config: AsicConfig,
    regs: SwitchRegs,
    ports: Vec<Port>,
    l2: L2Table,
    l3: LpmTable,
    tcam: Tcam,
    global_sram: Vec<u32>,
    tcpu: Tcpu,
    /// Exact-match fast path in front of the TCAM→L3→L2 walk. Entries
    /// are valid only while `flow_cache_gen == table_gen`; any table
    /// mutation bumps `table_gen` and the next lookup flushes the cache.
    flow_cache: HashMap<FlowKey, CachedLookup>,
    /// Generation the cache contents were built under.
    flow_cache_gen: u64,
    /// Current table generation: bumped by `install_flow`, `remove_flow`,
    /// `l2_mut`, `l3_mut` (handing out `&mut` counts as a mutation) and
    /// `reset`.
    table_gen: u64,
    flow_cache_hits: u64,
    flow_cache_misses: u64,
    /// One-shot egress substitution for the frame currently in the
    /// pipeline, set by [`Asic::handle_frame_routed`] and consumed by the
    /// next lookup. Models an ECMP selector stage in front of the L2
    /// table: the substitution applies only when the L2 stage wins the
    /// walk (TCAM and L3 entries keep their precedence), and the flow
    /// cache is bypassed for the frame because the cached resolution
    /// would pin every flow of a `(src, dst)` pair to one member port.
    route_override: Option<PortId>,
    /// Structured trace sink; `None` (the default) keeps every stage's
    /// emission down to one branch.
    trace: Option<Box<dyn TraceSink>>,
    /// Per-packet span profiler (observability plane layer 1); `None`
    /// (the default) keeps every stage's attribution down to one
    /// branch, like the trace sink.
    profile: Option<Box<PipelineProfile>>,
    /// Fleet-wide program interner handle, kept so `reset` can re-install
    /// it into the rebuilt TCPU (a reboot wipes the decode cache, not the
    /// fleet's shared decodes).
    interner: Option<ProgramInterner>,
}

impl Asic {
    /// Build an ASIC from its configuration.
    pub fn new(config: AsicConfig) -> Self {
        let ports = config
            .ports
            .iter()
            .map(|p| Port::new(p.clone(), config.link_sram_words))
            .collect();
        Asic {
            regs: SwitchRegs::new(config.switch_id),
            ports,
            l2: L2Table::new(),
            l3: LpmTable::new(),
            tcam: Tcam::new(),
            global_sram: lazy_sram(config.global_sram_words),
            tcpu: Tcpu::new(config.tcpu_cycle_budget)
                .with_decode_cache(config.decode_cache_slots)
                .with_batched_dispatch(config.batched_dispatch),
            flow_cache: HashMap::new(),
            flow_cache_gen: 0,
            table_gen: 0,
            flow_cache_hits: 0,
            flow_cache_misses: 0,
            route_override: None,
            trace: None,
            profile: None,
            interner: None,
            config,
        }
    }

    /// Share a fleet-wide program interner with this switch: decode-cache
    /// misses consult it before decoding, so one distinct TPP program is
    /// decoded (and resident) once per simulation instead of once per
    /// switch. Survives [`reset`](Asic::reset). No-op when the decode
    /// cache is disabled.
    pub fn set_program_interner(&mut self, interner: ProgramInterner) {
        self.tcpu.set_interner(interner.clone());
        self.interner = Some(interner);
    }

    /// Approximate resident heap bytes of this switch's state: SRAM
    /// slabs, tables, queues (including buffered frames), flow cache, and
    /// decode-cache slot array. Interned program bodies are fleet-shared
    /// and excluded (see [`ProgramInterner::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.global_sram.capacity() * 4
            + self.ports.iter().map(Port::approx_bytes).sum::<usize>()
            + self.l2.approx_bytes()
            + self.l3.approx_bytes()
            + self.tcam.approx_bytes()
            + self.flow_cache.capacity() * std::mem::size_of::<(FlowKey, u64, CachedLookup)>()
            + self.tcpu.approx_bytes()
    }

    /// Attach (or with `None`, detach) a structured trace sink. While a
    /// sink is attached every pipeline stage emits one
    /// [`TraceEvent`] per transition; detached, tracing costs one branch
    /// per stage.
    pub fn set_trace_sink(&mut self, sink: Option<Box<dyn TraceSink>>) {
        self.trace = sink;
    }

    /// True when a trace sink is attached.
    pub fn is_traced(&self) -> bool {
        self.trace.is_some()
    }

    /// Emit one trace event (no-op without a sink). `seq` is the
    /// current `packets_processed` register, so all events of one
    /// packet's walk share a sequence number. `#[cold]` keeps the
    /// emission blocks (and the event construction feeding them) out of
    /// the untraced hot path's code layout.
    #[cold]
    #[inline(never)]
    fn emit(&mut self, kind: TraceEventKind) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(TraceEvent {
                t_ns: self.regs.wall_clock_ns,
                switch_id: self.regs.switch_id,
                seq: self.regs.packets_processed,
                kind,
            });
        }
    }

    /// Enable per-packet span profiling (observability plane layer 1):
    /// per-stage cycle attribution, reservoir-sampled stage-latency
    /// histograms, TCPU per-opcode breakdown, and cut-through
    /// budget-violation counters. Off by default; enabling replaces any
    /// previous profile.
    pub fn enable_profiling(&mut self, config: ProfileConfig) {
        self.profile = Some(Box::new(PipelineProfile::new(
            config,
            self.config.switch_id as u64,
        )));
    }

    /// Disable profiling, discarding collected statistics.
    pub fn disable_profiling(&mut self) {
        self.profile = None;
    }

    /// The span profiler, when profiling is enabled.
    pub fn profile(&self) -> Option<&PipelineProfile> {
        self.profile.as_deref()
    }

    /// True when span profiling is enabled.
    pub fn is_profiled(&self) -> bool {
        self.profile.is_some()
    }

    /// Begin a packet span and charge the parser stage. `#[cold]` like
    /// [`Asic::emit`]: the unprofiled hot path pays one branch.
    #[cold]
    #[inline(never)]
    fn profile_begin(&mut self, now_ns: u64, is_tpp: bool) {
        if let Some(p) = self.profile.as_deref_mut() {
            p.begin(now_ns);
            let tpp_extra = if is_tpp { PARSE_TPP_EXTRA_CYCLES } else { 0 };
            p.charge_parser(PARSE_CYCLES + tpp_extra);
        }
    }

    /// Complete the current span for a packet dropped before reaching
    /// MMU admission (parse error, edge filter, no route, flow drop).
    #[cold]
    #[inline(never)]
    fn profile_finish_drop(&mut self) {
        if let Some(p) = self.profile.as_deref_mut() {
            p.finish(0, 0, false);
        }
    }

    /// Charge the §4 edge filter's consultation to the parser stage.
    #[cold]
    #[inline(never)]
    fn profile_edge_filter(&mut self) {
        if let Some(p) = self.profile.as_deref_mut() {
            p.charge_parser(EDGE_FILTER_CYCLES);
        }
    }

    /// Charge the table walk. `consulted_l3`/`consulted_l2` derive from
    /// the winning table and the flow key only, so cached and uncached
    /// lookups charge identically (see `profile::table_walk_cycles`).
    #[cold]
    #[inline(never)]
    fn profile_tables(&mut self, consulted_l3: bool, consulted_l2: bool) {
        if let Some(p) = self.profile.as_deref_mut() {
            p.charge_tables(table_walk_cycles(consulted_l3, consulted_l2));
        }
    }

    /// Charge a TCPU execution, attributing executed instructions to
    /// opcodes via `word_at`.
    #[cold]
    #[inline(never)]
    fn profile_tcpu(&mut self, report: &ExecReport, word_at: impl Fn(usize) -> u32) {
        if let Some(p) = self.profile.as_deref_mut() {
            p.charge_tcpu(report, word_at);
        }
    }

    /// Complete the current span at MMU admission: charge the MMU stage
    /// and run the cut-through budget check against the head-of-line
    /// drain estimate of `depth_before` bytes at `capacity_kbps`.
    #[cold]
    #[inline(never)]
    fn profile_finish_enqueue(&mut self, depth_before: u64, capacity_kbps: u32, enqueued: bool) {
        if let Some(p) = self.profile.as_deref_mut() {
            let wait_ns = depth_before.saturating_mul(8_000_000) / capacity_kbps.max(1) as u64;
            p.finish(MMU_ADMIT_CYCLES, wait_ns, enqueued);
        }
    }

    /// Record a scheduler service (strict-priority scan depth).
    #[cold]
    #[inline(never)]
    fn profile_dequeue(&mut self, queues_scanned: u32) {
        if let Some(p) = self.profile.as_deref_mut() {
            p.record_dequeue(queues_scanned);
        }
    }

    /// The switch's identifier.
    pub fn switch_id(&self) -> u32 {
        self.config.switch_id
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Global switch registers (read-only view).
    pub fn regs(&self) -> &SwitchRegs {
        &self.regs
    }

    /// Per-port statistics (read-only view).
    pub fn port_stats(&self, port: PortId) -> &PortStats {
        &self.ports[port as usize].stats
    }

    /// Per-queue statistics (read-only view).
    pub fn queue_stats(&self, port: PortId, queue: QueueId) -> &QueueStats {
        self.ports[port as usize].queues[queue as usize].stats()
    }

    /// Instantaneous egress queue occupancy in bytes.
    pub fn queue_len_bytes(&self, port: PortId, queue: QueueId) -> u64 {
        self.ports[port as usize].queues[queue as usize].len_bytes()
    }

    /// The L2 MAC table (control-plane access). Handing out `&mut`
    /// conservatively counts as a mutation and invalidates the flow cache.
    pub fn l2_mut(&mut self) -> &mut L2Table {
        self.table_gen = self.table_gen.wrapping_add(1);
        &mut self.l2
    }

    /// The L3 LPM table (control-plane access). Handing out `&mut`
    /// conservatively counts as a mutation and invalidates the flow cache.
    pub fn l3_mut(&mut self) -> &mut LpmTable {
        self.table_gen = self.table_gen.wrapping_add(1);
        &mut self.l3
    }

    /// The TCAM (control-plane read access).
    pub fn tcam(&self) -> &Tcam {
        &self.tcam
    }

    /// Install a TCAM flow entry, bumping `Switch:FlowTableVersion` — the
    /// dataplane version stamp ndb depends on (§2.3).
    pub fn install_flow(&mut self, entry: FlowEntry) {
        self.tcam.install(entry);
        self.regs.flow_table_version = self.regs.flow_table_version.wrapping_add(1);
        self.table_gen = self.table_gen.wrapping_add(1);
    }

    /// Remove a TCAM flow entry (also bumps the table version).
    pub fn remove_flow(&mut self, id: u32) -> Option<FlowEntry> {
        let removed = self.tcam.remove(id);
        if removed.is_some() {
            self.regs.flow_table_version = self.regs.flow_table_version.wrapping_add(1);
            self.table_gen = self.table_gen.wrapping_add(1);
        }
        removed
    }

    /// Flow-cache `(hits, misses)` since construction or the last reset.
    pub fn flow_cache_stats(&self) -> (u64, u64) {
        (self.flow_cache_hits, self.flow_cache_misses)
    }

    /// Decode-cache `(hits, misses)`; `(0, 0)` when the cache is off.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        self.tcpu.decode_cache_stats()
    }

    /// Reconfigure a port's ingress TPP filter (the §4 edge policy).
    pub fn set_ingress_tpp_filter(&mut self, port: PortId, filter: Option<StripAction>) {
        self.ports[port as usize].config.ingress_tpp_filter = filter;
    }

    /// Configure ECN marking on a port's egress queues (the §4
    /// fixed-function comparison; `None` disables).
    pub fn set_ecn_threshold(&mut self, port: PortId, threshold_bytes: Option<u32>) {
        self.ports[port as usize].config.ecn_threshold_bytes = threshold_bytes;
    }

    /// Update a wireless egress port's SNR register (deci-dB). In a real
    /// AP the radio writes this "very quickly" changing state (§2.3);
    /// in the model the experiment harness plays the radio.
    pub fn set_port_snr(&mut self, port: PortId, snr_decidb: u32) {
        self.ports[port as usize].stats.snr_decidb = snr_decidb;
    }

    /// Checked read-only view of the global SRAM (control-plane / test
    /// access).
    pub fn global_sram(&self) -> SramView<'_> {
        sram_view(&self.global_sram, self.config.global_sram_words)
    }

    /// Checked mutable view of the global SRAM (control-plane
    /// initialization, e.g. "a control plane program initializes each
    /// link's fair share rate", §2.2 footnote).
    pub fn global_sram_mut(&mut self) -> SramViewMut<'_> {
        ensure_sram(&mut self.global_sram, self.config.global_sram_words);
        SramViewMut::new(&mut self.global_sram)
    }

    /// Checked read-only view of a port's link SRAM.
    pub fn link_sram(&self, port: PortId) -> Result<SramView<'_>, SramError> {
        match self.ports.get(port as usize) {
            Some(p) => Ok(sram_view(&p.link_sram, self.config.link_sram_words)),
            None => Err(SramError::NoSuchPort {
                port,
                num_ports: self.ports.len(),
            }),
        }
    }

    /// Checked mutable view of a port's link SRAM.
    pub fn link_sram_mut(&mut self, port: PortId) -> Result<SramViewMut<'_>, SramError> {
        let num_ports = self.ports.len();
        let words = self.config.link_sram_words;
        match self.ports.get_mut(port as usize) {
            Some(p) => {
                ensure_sram(&mut p.link_sram, words);
                Ok(SramViewMut::new(&mut p.link_sram))
            }
            None => Err(SramError::NoSuchPort { port, num_ports }),
        }
    }

    /// Capture every piece of mutable, TPP-visible state — registers,
    /// port stats, queue stats and contents, and both scratch SRAMs —
    /// into a comparable, restorable [`AsicState`]. Forwarding tables,
    /// configuration, and the hot-path caches are deliberately excluded
    /// (see the [`state`](crate::state) module docs).
    pub fn snapshot(&self) -> AsicState {
        // Unmaterialized SRAM regions snapshot as their full-length zero
        // contents, so snapshots are invariant to when (or whether) the
        // lazy slabs were materialized.
        let full = |region: &Vec<u32>, words: usize| {
            if region.is_empty() && words > 0 {
                vec![0; words]
            } else {
                region.clone()
            }
        };
        AsicState {
            regs: self.regs.clone(),
            global_sram: full(&self.global_sram, self.config.global_sram_words),
            ports: self
                .ports
                .iter()
                .map(|port| PortState {
                    stats: port.stats.clone(),
                    link_sram: full(&port.link_sram, self.config.link_sram_words),
                    queues: port
                        .queues
                        .iter()
                        .map(|q| QueueState {
                            stats: q.stats().clone(),
                            frames: q.frames_snapshot(),
                            limit_bytes: q.limit_bytes(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Replay a [`snapshot`](Asic::snapshot) onto this ASIC, overwriting
    /// registers, stats, queue contents, and SRAMs. The snapshot's shape
    /// must match this ASIC's configuration (same port count, same queue
    /// counts per port); SRAM lengths are taken from the snapshot. The
    /// hot-path caches are left untouched — by construction they may
    /// never change observable behavior, so a differential harness can
    /// restore the same state onto a cached and an uncached ASIC and
    /// expect bit-identical runs.
    ///
    /// # Panics
    ///
    /// If the snapshot's port or queue counts disagree with this ASIC's.
    pub fn restore(&mut self, state: &AsicState) {
        assert_eq!(
            state.ports.len(),
            self.ports.len(),
            "snapshot port count must match the ASIC's"
        );
        self.regs = state.regs.clone();
        self.global_sram = state.global_sram.clone();
        for (port, saved) in self.ports.iter_mut().zip(&state.ports) {
            assert_eq!(
                saved.queues.len(),
                port.queues.len(),
                "snapshot queue count must match the port's"
            );
            port.stats = saved.stats.clone();
            port.link_sram = saved.link_sram.clone();
            port.queues = saved
                .queues
                .iter()
                .map(|q| {
                    DropTailQueue::from_state(q.limit_bytes, q.stats.clone(), q.frames.clone())
                })
                .collect();
        }
    }

    /// Reboot the switch: wipe every piece of volatile state — statistics
    /// registers, forwarding tables (L2/L3/TCAM), per-port statistics,
    /// queued frames, and both scratch SRAMs — then bump
    /// `Switch:BootEpoch`. The configuration survives (it models
    /// NVRAM/firmware), as does an attached trace sink (an observer of
    /// the switch, not part of it). End-hosts that cached state derived
    /// from this switch detect the reboot by reading the epoch register
    /// through a TPP and comparing against their cached value.
    pub fn reset(&mut self, now_ns: u64) {
        let epoch = self.regs.boot_epoch.wrapping_add(1);
        self.regs = SwitchRegs::new(self.config.switch_id);
        self.regs.boot_epoch = epoch;
        self.regs.wall_clock_ns = now_ns;
        self.l2 = L2Table::new();
        self.l3 = LpmTable::new();
        self.tcam = Tcam::new();
        // Both hot-path caches are volatile state too: the flow cache is
        // invalidated by the generation bump, and the decode cache loses
        // its warmed programs along with its hit counters.
        self.table_gen = self.table_gen.wrapping_add(1);
        self.flow_cache.clear();
        self.flow_cache_gen = self.table_gen;
        self.flow_cache_hits = 0;
        self.flow_cache_misses = 0;
        self.tcpu = Tcpu::new(self.config.tcpu_cycle_budget)
            .with_decode_cache(self.config.decode_cache_slots)
            .with_batched_dispatch(self.config.batched_dispatch);
        if let Some(interner) = &self.interner {
            self.tcpu.set_interner(interner.clone());
        }
        // Drop the SRAM slab back to lazy: a rebooted switch reads zeros
        // either way, and releasing the allocation is what "sized on
        // demand" means across a reboot.
        self.global_sram = lazy_sram(self.config.global_sram_words);
        let link_sram_words = self.config.link_sram_words;
        for port in &mut self.ports {
            // Port::new rebuilds stats, queues, and link SRAM from the
            // port's *current* config, so runtime reconfiguration (edge
            // filters, ECN thresholds) survives like the rest of config.
            *port = Port::new(port.config.clone(), link_sram_words);
            port.stats.last_tick_ns = now_ns;
        }
        if self.trace.is_some() {
            self.emit(TraceEventKind::SwitchReboot { epoch });
        }
    }

    /// Export this switch's registers, port stats and queue stats into a
    /// metrics registry under stable `switch.*` / `port.*` / `queue.*`
    /// names. Exporting many switches into one registry aggregates them
    /// (counters sum, distributions merge) — the view the simulator
    /// publishes on every stats tick.
    pub fn export_metrics(&self, registry: &mut tpp_telemetry::MetricsRegistry) {
        self.regs.export_metrics(registry);
        for port in &self.ports {
            port.stats.export_metrics(registry);
            for queue in &port.queues {
                queue.stats().export_metrics(registry);
            }
        }
        let (fh, fm) = self.flow_cache_stats();
        registry.add("switch.flow_cache_hits", fh);
        registry.add("switch.flow_cache_misses", fm);
        let (dh, dm) = self.decode_cache_stats();
        registry.add("switch.decode_cache_hits", dh);
        registry.add("switch.decode_cache_misses", dm);
        if let Some(p) = self.profile.as_deref() {
            p.export_metrics(registry);
        }
    }

    /// Fold per-port byte windows into the utilization EWMAs. The owner
    /// calls this periodically (the simulator does, every tick interval).
    pub fn tick(&mut self, now_ns: u64) {
        let alpha = self.config.utilization_ewma_alpha;
        for port in &mut self.ports {
            port.stats
                .tick_utilization(now_ns, port.config.capacity_kbps, alpha);
        }
    }

    /// Process one arriving frame through the full pipeline.
    pub fn handle_frame(&mut self, mut frame: Vec<u8>, in_port: PortId, now_ns: u64) -> Outcome {
        assert!(
            (in_port as usize) < self.ports.len(),
            "in_port {in_port} out of range"
        );
        self.regs.wall_clock_ns = now_ns;
        self.regs.packets_processed += 1;

        // --- Header parser (Fig. 3) ---
        let frame_len = frame.len() as u32;
        let parsed = match Frame::new_checked(&frame[..]) {
            Ok(f) => f,
            Err(_) => {
                if self.trace.is_some() {
                    self.emit(TraceEventKind::Parse {
                        in_port,
                        len: frame_len,
                        is_tpp: false,
                        ok: false,
                    });
                    self.emit(TraceEventKind::Drop {
                        reason: DropKind::ParseError,
                        port: None,
                    });
                }
                if self.profile.is_some() {
                    self.profile_begin(now_ns, false);
                    self.profile_finish_drop();
                }
                return Outcome::Dropped {
                    reason: DropReason::ParseError,
                };
            }
        };
        let is_tpp = parsed.is_tpp();
        if self.trace.is_some() {
            self.emit(TraceEventKind::Parse {
                in_port,
                len: frame_len,
                is_tpp,
                ok: true,
            });
        }
        if self.profile.is_some() {
            self.profile_begin(now_ns, is_tpp);
        }

        // --- §4 edge security filter on ingress ---
        if is_tpp {
            if self.profile.is_some()
                && self.ports[in_port as usize]
                    .config
                    .ingress_tpp_filter
                    .is_some()
            {
                self.profile_edge_filter();
            }
            match self.ports[in_port as usize].config.ingress_tpp_filter {
                Some(StripAction::Drop) => {
                    if self.trace.is_some() {
                        self.emit(TraceEventKind::EdgeFilter {
                            in_port,
                            action: "drop",
                        });
                        self.emit(TraceEventKind::Drop {
                            reason: DropKind::EdgeFiltered,
                            port: None,
                        });
                    }
                    if self.profile.is_some() {
                        self.profile_finish_drop();
                    }
                    return Outcome::Dropped {
                        reason: DropReason::EdgeFiltered,
                    };
                }
                Some(StripAction::Unwrap) => {
                    if self.trace.is_some() {
                        self.emit(TraceEventKind::EdgeFilter {
                            in_port,
                            action: "unwrap",
                        });
                    }
                    return match strip_tpp(&mut frame) {
                        Some(inner_ethertype) => {
                            // The stripped frame is an ordinary packet now
                            // (unless the inner payload was itself a TPP).
                            let inner_is_tpp = EtherType(inner_ethertype) == EtherType::TPP;
                            self.forward_plain(frame, in_port, now_ns, inner_is_tpp)
                        }
                        None => {
                            if self.trace.is_some() {
                                self.emit(TraceEventKind::Drop {
                                    reason: DropKind::EdgeFiltered,
                                    port: None,
                                });
                            }
                            if self.profile.is_some() {
                                self.profile_finish_drop();
                            }
                            Outcome::Dropped {
                                reason: DropReason::EdgeFiltered,
                            }
                        }
                    };
                }
                None => {}
            }
        }

        if is_tpp {
            self.forward_tpp(frame, in_port, now_ns)
        } else {
            self.forward_plain(frame, in_port, now_ns, false)
        }
    }

    /// [`Asic::handle_frame`] with an optional ECMP egress substitution:
    /// when `out_port` is `Some`, the frame's forwarding lookup resolves
    /// to that port *if the L2 stage wins the table walk* (TCAM and L3
    /// keep their precedence, and an unknown destination still misses).
    /// The caller — the simulator's routing layer — picks the member
    /// port from the switch's equal-cost set by flow hash, so the choice
    /// lives outside the ASIC exactly like a real selector stage fed by
    /// a hash of header fields the exact-match `FlowKey` does not carry.
    pub fn handle_frame_routed(
        &mut self,
        frame: Vec<u8>,
        in_port: PortId,
        now_ns: u64,
        out_port: Option<PortId>,
    ) -> Outcome {
        self.route_override = out_port;
        let outcome = self.handle_frame(frame, in_port, now_ns);
        // Frames that drop before their lookup (parse error, edge
        // filter) must not leak the override into the next frame.
        self.route_override = None;
        outcome
    }

    /// Forwarding lookup shared by both paths. Returns the egress port,
    /// egress queue, matched entry info, and route diversity.
    ///
    /// With the flow cache on, repeated packets of a flow skip the table
    /// walk entirely; the cached resolution replays the same registers and
    /// trace events through [`Asic::commit_lookup`], so the cache is
    /// invisible to TPPs and telemetry alike.
    fn lookup(&mut self, key: &FlowKey) -> Result<(PortId, QueueId, u32, u32, u32), DropReason> {
        let override_port = self.route_override.take();
        // An overridden frame bypasses the cache entirely: its egress
        // depends on entropy outside the FlowKey, so neither reading nor
        // populating the exact-match cache would be sound.
        let capacity = if override_port.is_some() {
            0
        } else {
            self.config.flow_cache_entries
        };
        let mut resolved = if capacity > 0 {
            if self.flow_cache_gen != self.table_gen {
                self.flow_cache.clear();
                self.flow_cache_gen = self.table_gen;
            }
            match self.flow_cache.get(key) {
                Some(&cached) => {
                    self.flow_cache_hits += 1;
                    cached
                }
                None => {
                    self.flow_cache_misses += 1;
                    let resolved = self.lookup_tables(key);
                    if self.flow_cache.len() >= capacity {
                        // Wholesale eviction keeps the worst case at one
                        // rebuild per `capacity` distinct flows.
                        self.flow_cache.clear();
                    }
                    self.flow_cache.insert(*key, resolved);
                    resolved
                }
            }
        } else {
            self.lookup_tables(key)
        };
        if let Some(out) = override_port {
            if let CachedLookup::Forward {
                table: LookupKind::L2,
                port,
                ..
            } = &mut resolved
            {
                *port = out;
            }
        }
        if self.profile.is_some() {
            // Which tables the (cached or fresh) walk consulted is a
            // pure function of the winning table and the key, so the
            // attribution replays identically on cache hits.
            let has_ipv4 = key.ipv4_dst.is_some();
            let (l3, l2) = match resolved {
                CachedLookup::Forward {
                    table: LookupKind::Tcam,
                    ..
                }
                | CachedLookup::FlowDrop { .. } => (false, false),
                CachedLookup::Forward {
                    table: LookupKind::L3,
                    ..
                } => (true, false),
                CachedLookup::Forward {
                    table: LookupKind::L2,
                    ..
                }
                | CachedLookup::Miss => (has_ipv4, true),
            };
            self.profile_tables(l3, l2);
        }
        self.commit_lookup(resolved)
    }

    /// The pure TCAM→L3→L2 walk: no register or trace side effects, so a
    /// result can be cached and replayed later with identical observable
    /// behavior.
    fn lookup_tables(&self, key: &FlowKey) -> CachedLookup {
        // TCAM first (highest precedence, SDN-style), then L3 for IPv4,
        // then L2 exact match.
        if let Some(entry) = self.tcam.lookup(key) {
            return match entry.action {
                FlowAction::Forward(port) => CachedLookup::Forward {
                    table: LookupKind::Tcam,
                    port,
                    queue: 0,
                    entry_id: entry.id,
                    entry_version: entry.version,
                    alternates: self.route_diversity(key),
                },
                FlowAction::ForwardQueue(port, queue) => {
                    let n_queues = self
                        .ports
                        .get(port as usize)
                        .map(|p| p.queues.len())
                        .unwrap_or(1);
                    // An action naming a queue the port does not have
                    // degrades to the lowest-priority queue.
                    let queue = (queue as usize).min(n_queues.saturating_sub(1)) as QueueId;
                    CachedLookup::Forward {
                        table: LookupKind::Tcam,
                        port,
                        queue,
                        entry_id: entry.id,
                        entry_version: entry.version,
                        alternates: self.route_diversity(key),
                    }
                }
                FlowAction::Drop => CachedLookup::FlowDrop { entry_id: entry.id },
            };
        }
        if let Some(port) = key.ipv4_dst.and_then(|ip| self.l3.lookup(ip)) {
            return CachedLookup::Forward {
                table: LookupKind::L3,
                port,
                queue: 0,
                entry_id: 0,
                entry_version: 0,
                alternates: self.route_diversity(key),
            };
        }
        if let Some(port) = self.l2.lookup(key.dst_mac) {
            return CachedLookup::Forward {
                table: LookupKind::L2,
                port,
                queue: 0,
                entry_id: 0,
                entry_version: 0,
                alternates: self.route_diversity(key),
            };
        }
        CachedLookup::Miss
    }

    /// Apply a lookup resolution's side effects: bump the TPP-readable hit
    /// registers and emit the trace event, exactly as the uncached walk
    /// did. Cached and fresh lookups both funnel through here.
    fn commit_lookup(
        &mut self,
        resolved: CachedLookup,
    ) -> Result<(PortId, QueueId, u32, u32, u32), DropReason> {
        match resolved {
            CachedLookup::Forward {
                table,
                port,
                queue,
                entry_id,
                entry_version,
                alternates,
            } => {
                match table {
                    LookupKind::Tcam => self.regs.tcam_hits += 1,
                    LookupKind::L3 => self.regs.l3_hits += 1,
                    LookupKind::L2 => self.regs.l2_hits += 1,
                }
                if self.trace.is_some() {
                    self.emit(TraceEventKind::Lookup {
                        table,
                        out_port: port,
                        queue,
                        entry_id,
                    });
                }
                Ok((port, queue, entry_id, entry_version, alternates))
            }
            CachedLookup::FlowDrop { entry_id } => {
                self.regs.tcam_hits += 1;
                Err(DropReason::FlowDrop { entry_id })
            }
            CachedLookup::Miss => {
                if self.trace.is_some() {
                    self.emit(TraceEventKind::LookupMiss);
                }
                Err(DropReason::NoRoute)
            }
        }
    }

    /// How many distinct tables could forward this packet — the model's
    /// stand-in for "alternate routes for a packet" (Table 2; the paper
    /// cites per-packet route diversity work \[11\]).
    fn route_diversity(&self, key: &FlowKey) -> u32 {
        let mut n = 0;
        if self.tcam.lookup(key).is_some() {
            n += 1;
        }
        if key.ipv4_dst.is_some_and(|ip| self.l3.lookup(ip).is_some()) {
            n += 1;
        }
        if self.l2.lookup(key.dst_mac).is_some() {
            n += 1;
        }
        n
    }

    fn forward_plain(
        &mut self,
        frame: Vec<u8>,
        in_port: PortId,
        _now_ns: u64,
        is_tpp: bool,
    ) -> Outcome {
        let key = match flow_key(&frame, in_port) {
            Some(k) => k,
            None => return self.drop_frame(DropReason::ParseError),
        };
        let (out_port, queue_id, _, _, _) = match self.lookup(&key) {
            Ok(ok) => ok,
            Err(reason) => return self.drop_frame(reason),
        };
        self.enqueue(frame, out_port, queue_id, None, is_tpp)
    }

    /// Record a drop in the trace and build the outcome.
    fn drop_frame(&mut self, reason: DropReason) -> Outcome {
        if self.trace.is_some() {
            self.emit(TraceEventKind::Drop {
                reason: reason.kind(),
                port: reason.port(),
            });
        }
        if self.profile.is_some() {
            self.profile_finish_drop();
        }
        Outcome::Dropped { reason }
    }

    fn forward_tpp(&mut self, mut frame: Vec<u8>, in_port: PortId, now_ns: u64) -> Outcome {
        let key = match flow_key(&frame, in_port) {
            Some(k) => k,
            None => return self.drop_frame(DropReason::ParseError),
        };
        let (out_port, queue_id, entry_id, entry_version, alternates) = match self.lookup(&key) {
            Ok(ok) => ok,
            Err(reason) => return self.drop_frame(reason),
        };
        let meta = PacketMeta {
            input_port: in_port,
            output_port: out_port,
            matched_entry_id: entry_id,
            matched_entry_version: entry_version,
            queue_id,
            packet_length: frame.len() as u32,
            arrival_time_ns: now_ns,
            alternate_routes: alternates,
        };

        // --- TCPU (Fig. 3: placed just before packets enter memory) ---
        let exec = if self.config.tcpu_enabled {
            let frame_len = frame.len();
            let payload = &mut frame[ETHERNET_HEADER_LEN..];
            match TppPacket::new_checked(payload) {
                // A TPP the receiving end-host has already echoed is
                // inert: re-executing it on the reverse path would
                // corrupt the collected telemetry and re-apply writes
                // (a CSTORE would fire twice). The ECHOED header flag is
                // the end-host's "completed" mark and the TCPU honours
                // it, like the paper's receiver echoing a "fully
                // executed" TPP back through the network unchanged.
                Ok(tpp) if tpp.flags() & tpp_wire::tpp::FLAG_ECHOED != 0 => None,
                Ok(mut tpp) => {
                    debug_assert!(frame_len >= ETHERNET_HEADER_LEN);
                    let port = &mut self.ports[out_port as usize];
                    // First TPP through this switch/port materializes the
                    // lazy scratch slabs the MMU addresses (done before
                    // building the MMU — unconditionally, so state
                    // snapshots do not depend on what the program did).
                    ensure_sram(&mut self.global_sram, self.config.global_sram_words);
                    ensure_sram(&mut port.link_sram, self.config.link_sram_words);
                    let queue = &port.queues[queue_id as usize];
                    let mut mmu = Mmu {
                        switch: &self.regs,
                        port: &port.stats,
                        port_capacity_kbps: port.config.capacity_kbps,
                        queue: queue.stats(),
                        queue_limit_bytes: queue.limit_bytes(),
                        meta: &meta,
                        link_sram: &mut port.link_sram,
                        global_sram: &mut self.global_sram,
                    };
                    let report = self.tcpu.execute(&mut tpp, &mut mmu);
                    self.regs.tpps_executed += 1;
                    if self.trace.is_some() {
                        let outcome = match report.halt {
                            None => TcpuOutcome::Completed,
                            Some(h) => TcpuOutcome::Halted(h.name()),
                        };
                        let hop = tpp.hop();
                        let budget = self.tcpu.cycle_budget();
                        self.emit(TraceEventKind::TcpuExec {
                            out_port,
                            instructions: report.instructions_executed,
                            cycles: report.cycles,
                            budget,
                            outcome,
                            hop,
                            wrote_switch: report.wrote_switch,
                        });
                    }
                    if self.profile.is_some() {
                        self.profile_tcpu(&report, |i| tpp.instruction_word(i));
                    }
                    Some(report)
                }
                // A malformed TPP section is forwarded untouched: the
                // TCPU "ignores" what it cannot parse rather than
                // disrupting traffic.
                Err(_) => None,
            }
        } else {
            None
        };

        self.enqueue(frame, out_port, queue_id, exec, true)
    }

    /// Admit a frame to its egress queue. `is_tpp` is threaded from the
    /// parse stage (via the forward path) so the ECN check does not have
    /// to re-parse the Ethernet header.
    fn enqueue(
        &mut self,
        mut frame: Vec<u8>,
        out_port: PortId,
        queue_id: QueueId,
        exec: Option<ExecReport>,
        is_tpp: bool,
    ) -> Outcome {
        let len = frame.len() as u64;
        let traced = self.trace.is_some();
        let port = &mut self.ports[out_port as usize];
        let capacity_kbps = port.config.capacity_kbps;
        // Occupancy *before* this frame — the value ECN compares against
        // and the value a TPP's `PUSH [Queue:QueueSize]` read this walk.
        let depth_before = port.queues[queue_id as usize].len_bytes();
        let mut ecn_marked = false;
        // ECN: "a router stamps a bit ... whenever the egress queue
        // occupancy exceeds a configurable threshold" (§4). Marking is
        // supported on TPP-format frames (the reproduction's marked
        // header); occupancy is measured at enqueue, DCTCP-style.
        if let Some(threshold) = port.config.ecn_threshold_bytes {
            if depth_before >= threshold as u64 && is_tpp {
                if let Ok(mut tpp) = TppPacket::new_checked(&mut frame[ETHERNET_HEADER_LEN..]) {
                    let flags = tpp.flags();
                    tpp.set_flags(flags | tpp_wire::tpp::FLAG_ECN);
                    port.stats.ecn_marked += 1;
                    ecn_marked = true;
                }
            }
        }
        // Offered load on the egress link (RCP's y(t) input).
        port.stats.rx_bytes += len;
        port.stats.rx_packets += 1;
        port.stats.rx_window_bytes += len;
        let accepted = port.queues[queue_id as usize].enqueue(frame);
        if accepted {
            port.stats.bytes_enqueued += len;
        } else {
            port.stats.bytes_dropped += len;
        }
        if traced {
            if accepted {
                self.emit(TraceEventKind::Enqueue {
                    port: out_port,
                    queue: queue_id,
                    depth_bytes: depth_before,
                    len: len as u32,
                    ecn_marked,
                });
            } else {
                self.emit(TraceEventKind::Drop {
                    reason: DropKind::QueueFull,
                    port: Some(out_port),
                });
            }
        }
        if self.profile.is_some() {
            self.profile_finish_enqueue(depth_before, capacity_kbps, accepted);
        }
        if accepted {
            Outcome::Enqueued {
                port: out_port,
                queue: queue_id,
                exec,
            }
        } else {
            Outcome::Dropped {
                reason: DropReason::QueueFull { port: out_port },
            }
        }
    }

    /// Transmit the next frame of a port (the scheduler): queues are
    /// served in strict priority order, queue 0 first.
    pub fn dequeue(&mut self, port_id: PortId) -> Option<Vec<u8>> {
        let port = &mut self.ports[port_id as usize];
        let mut served: Option<(QueueId, Vec<u8>, u64)> = None;
        for (queue_id, queue) in port.queues.iter_mut().enumerate() {
            if let Some(frame) = queue.dequeue() {
                let len = frame.len() as u64;
                port.stats.tx_bytes += len;
                port.stats.tx_packets += 1;
                port.stats.tx_window_bytes += len;
                served = Some((queue_id as QueueId, frame, queue.len_bytes()));
                break;
            }
        }
        let (queue, frame, depth_after) = served?;
        if self.trace.is_some() {
            self.emit(TraceEventKind::Dequeue {
                port: port_id,
                queue,
                len: frame.len() as u32,
                depth_bytes: depth_after,
            });
        }
        if self.profile.is_some() {
            // The strict-priority scan inspected queues 0..=queue.
            self.profile_dequeue(queue as u32 + 1);
        }
        Some(frame)
    }

    /// Number of egress queues on a port.
    pub fn num_queues(&self, port: PortId) -> usize {
        self.ports[port as usize].queues.len()
    }

    /// `(total, max)` occupancy in bytes across every egress queue —
    /// the time-series layer's per-tick queue-depth sample.
    pub fn queue_occupancy(&self) -> (u64, u64) {
        let mut total = 0;
        let mut max = 0;
        for port in &self.ports {
            for queue in &port.queues {
                let len = queue.len_bytes();
                total += len;
                max = max.max(len);
            }
        }
        (total, max)
    }

    /// The queue with the highest high-watermark occupancy:
    /// `(port, queue, high_watermark_bytes)` — `tpp-top`'s "hot queue".
    pub fn hottest_queue(&self) -> (PortId, QueueId, u64) {
        let mut best = (0, 0, 0);
        for (p, port) in self.ports.iter().enumerate() {
            for (q, queue) in port.queues.iter().enumerate() {
                let hw = queue.stats().high_watermark_bytes;
                if hw > best.2 {
                    best = (p as PortId, q as QueueId, hw);
                }
            }
        }
        best
    }

    /// True if the port has nothing queued.
    pub fn port_idle(&self, port: PortId) -> bool {
        self.ports[port as usize]
            .queues
            .iter()
            .all(DropTailQueue::is_empty)
    }

    /// The capacity of a port in kbps.
    pub fn port_capacity_kbps(&self, port: PortId) -> u32 {
        self.ports[port as usize].config.capacity_kbps
    }
}

/// Extract the lookup key from a frame; `None` if unparseable.
fn flow_key(frame: &[u8], in_port: PortId) -> Option<FlowKey> {
    let parsed = Frame::new_checked(frame).ok()?;
    let ethertype = parsed.ethertype();
    // A frame claiming IPv4 gets a full header validation (version, IHL,
    // lengths, checksum); packets that fail it are treated as having no
    // routable IP destination and fall through to L2.
    let ipv4_dst = if ethertype == EtherType::IPV4 {
        tpp_wire::Ipv4Packet::new_checked(parsed.payload())
            .ok()
            .map(|p| p.dst_addr().0)
    } else {
        None
    };
    Some(FlowKey {
        in_port,
        dst_mac: parsed.dst_addr(),
        src_mac: parsed.src_addr(),
        ethertype: ethertype.0,
        ipv4_dst,
    })
}

/// Remove a TPP section in place, restoring the encapsulated payload as
/// an ordinary frame (the §4 "strip TPPs" edge action): the inner payload
/// is shifted up against the Ethernet header (`copy_within`) and the
/// frame truncated, reusing the arriving allocation. Returns the inner
/// EtherType, or `None` when there is no meaningful payload to restore
/// (the frame is then untouched).
fn strip_tpp(frame: &mut Vec<u8>) -> Option<u16> {
    let parsed = Frame::new_checked(&frame[..]).ok()?;
    let tpp = TppPacket::new_checked(parsed.payload()).ok()?;
    let inner_ethertype = tpp.inner_ethertype();
    if inner_ethertype == 0 || tpp.inner_payload().is_empty() {
        return None;
    }
    let inner_start = ETHERNET_HEADER_LEN + tpp.tpp_len();
    let inner_len = frame.len() - inner_start;
    frame.copy_within(inner_start.., ETHERNET_HEADER_LEN);
    frame.truncate(ETHERNET_HEADER_LEN + inner_len);
    Frame::new_unchecked(&mut frame[..]).set_ethertype(EtherType(inner_ethertype));
    Some(inner_ethertype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_isa::assemble;
    use tpp_wire::ethernet::build_frame;
    use tpp_wire::tpp::{AddressingMode, TppBuilder};
    use tpp_wire::EthernetAddress;

    fn asic() -> Asic {
        let mut asic = Asic::new(AsicConfig::with_ports(0xA1, 4));
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        asic.l2_mut().insert(EthernetAddress::from_host_id(2), 2);
        asic
    }

    fn tpp_frame(src_src: &str, mem_words: usize) -> Vec<u8> {
        let program = assemble(src_src).unwrap();
        let payload = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_words(mem_words)
            .build();
        build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType::TPP,
            &payload,
        )
    }

    #[test]
    fn plain_frame_forwarded_by_l2() {
        let mut asic = asic();
        let frame = build_frame(
            EthernetAddress::from_host_id(2),
            EthernetAddress::from_host_id(1),
            EtherType(0x0800),
            &[0u8; 64],
        );
        let outcome = asic.handle_frame(frame, 0, 1_000);
        assert!(matches!(
            outcome,
            Outcome::Enqueued {
                port: 2,
                queue: 0,
                exec: None
            }
        ));
        assert_eq!(asic.regs().l2_hits, 1);
        assert_eq!(asic.queue_len_bytes(2, 0), 14 + 64);
        let sent = asic.dequeue(2).unwrap();
        assert_eq!(sent.len(), 14 + 64);
        assert_eq!(asic.port_stats(2).tx_packets, 1);
        assert!(asic.port_idle(2));
    }

    #[test]
    fn unknown_destination_dropped() {
        let mut asic = asic();
        let frame = build_frame(
            EthernetAddress::from_host_id(77),
            EthernetAddress::from_host_id(1),
            EtherType(0x0800),
            &[],
        );
        assert_eq!(
            asic.handle_frame(frame, 0, 0),
            Outcome::Dropped {
                reason: DropReason::NoRoute
            }
        );
    }

    #[test]
    fn tpp_executes_and_is_forwarded() {
        let mut asic = asic();
        let frame = tpp_frame("PUSH [Switch:SwitchID]", 2);
        let outcome = asic.handle_frame(frame, 0, 5_000);
        let Outcome::Enqueued {
            port,
            exec: Some(report),
            ..
        } = outcome
        else {
            panic!("unexpected outcome {outcome:?}");
        };
        assert_eq!(port, 1);
        assert!(report.completed());
        assert_eq!(asic.regs().tpps_executed, 1);
        // The transmitted frame carries the pushed switch id.
        let sent = asic.dequeue(1).unwrap();
        let parsed = Frame::new_checked(&sent[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.stack_words(), vec![0xA1]);
        assert_eq!(tpp.hop(), 1);
    }

    #[test]
    fn profiled_span_attribution_sums_per_stage() {
        use crate::profile::{
            ProfStage, L2_SEARCH_CYCLES, MMU_ADMIT_CYCLES, PARSE_CYCLES, PARSE_TPP_EXTRA_CYCLES,
            TCAM_SEARCH_CYCLES,
        };
        let mut asic = asic();
        asic.enable_profiling(ProfileConfig::default());
        let frame = tpp_frame("PUSH [Switch:SwitchID]", 2);
        let outcome = asic.handle_frame(frame, 0, 5_000);
        assert!(outcome.is_enqueued());

        let p = asic.profile().unwrap();
        let span = p.last_span();
        assert_eq!(span.parser_cycles, PARSE_CYCLES + PARSE_TPP_EXTRA_CYCLES);
        // TPP ethertype → no IPv4, so the walk is TCAM (always) + L2.
        assert_eq!(span.tables_cycles, TCAM_SEARCH_CYCLES + L2_SEARCH_CYCLES);
        assert_eq!(span.tcpu_cycles, crate::tcpu::cycles_for(1));
        assert_eq!(span.mmu_cycles, MMU_ADMIT_CYCLES);
        assert_eq!(
            span.total_cycles(),
            span.parser_cycles + span.tables_cycles + span.tcpu_cycles + span.mmu_cycles
        );
        assert_eq!(p.total_cycles(), span.total_cycles() as u64);
        assert_eq!(p.packets(), 1);
        assert_eq!(p.budget_violations(), 0, "empty queue, tiny program");
        assert_eq!(p.stage(ProfStage::Tcpu).hist().count(), 1);
        let ops = p.opcode_breakdown();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0.mnemonic(), "PUSH");
        assert_eq!(ops[0].1, 1);

        // The scheduler stage is charged at dequeue.
        asic.dequeue(1).unwrap();
        assert_eq!(
            asic.profile()
                .unwrap()
                .stage(ProfStage::Scheduler)
                .hist()
                .count(),
            1
        );
    }

    #[test]
    fn profiling_is_invisible_to_forwarding() {
        let mut profiled = asic();
        profiled.enable_profiling(ProfileConfig::default());
        let mut plain = asic();
        for i in 0..20 {
            let frame = tpp_frame("PUSH [Queue:QueueSize]\nPUSH [Link:TX-Bytes]", 4);
            let a = profiled.handle_frame(frame.clone(), 0, 100 * i);
            let b = plain.handle_frame(frame, 0, 100 * i);
            assert_eq!(a, b);
            assert_eq!(profiled.dequeue(1), plain.dequeue(1));
        }
        assert_eq!(profiled.snapshot(), plain.snapshot());
        assert_eq!(profiled.profile().unwrap().packets(), 20);
    }

    #[test]
    fn budget_violation_under_queue_buildup() {
        let mut asic = asic();
        asic.enable_profiling(ProfileConfig::default());
        // Stack ~1.6 KB into port 1's queue: at 10 Gb/s the head-of-line
        // drain alone is ~1.2 µs, far past the 300 ns budget.
        for i in 0..2 {
            let filler = build_frame(
                EthernetAddress::from_host_id(1),
                EthernetAddress::from_host_id(2),
                EtherType(0x0800),
                &[0u8; 800],
            );
            asic.handle_frame(filler, 0, i);
        }
        let frame = tpp_frame("PUSH [Queue:QueueSize]", 2);
        assert!(asic.handle_frame(frame, 0, 10).is_enqueued());
        let p = asic.profile().unwrap();
        assert_eq!(p.packets(), 3);
        assert!(
            p.budget_violations() >= 1,
            "a packet behind 1.6 KB of queue cannot cut through in 300 ns"
        );
        assert!(p.last_span().queue_wait_ns > 300);
    }

    #[test]
    fn tpp_sees_queue_size_of_its_own_egress_port() {
        let mut asic = asic();
        // Pre-load the egress queue of port 1 with a 78-byte frame.
        let filler = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType(0x0800),
            &[0u8; 64],
        );
        asic.handle_frame(filler, 0, 100);
        let frame = tpp_frame("PUSH [Queue:QueueSize]", 2);
        asic.handle_frame(frame, 0, 200);
        // Read back from the queue: second frame saw 78 bytes ahead of it.
        asic.dequeue(1).unwrap();
        let sent = asic.dequeue(1).unwrap();
        let parsed = Frame::new_checked(&sent[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.stack_words(), vec![78]);
    }

    #[test]
    fn tcam_overrides_l2_and_reports_entry() {
        let mut asic = asic();
        asic.install_flow(FlowEntry {
            id: 9,
            version: 3,
            priority: 10,
            pattern: crate::tables::FlowMatch {
                dst_mac: Some(EthernetAddress::from_host_id(1)),
                ..Default::default()
            },
            action: FlowAction::Forward(3),
        });
        assert_eq!(asic.regs().flow_table_version, 1);
        let frame = tpp_frame(
            "PUSH [PacketMetadata:MatchedEntryID]\nPUSH [PacketMetadata:MatchedEntryVersion]",
            2,
        );
        let outcome = asic.handle_frame(frame, 2, 0);
        let Outcome::Enqueued { port, .. } = outcome else {
            panic!()
        };
        assert_eq!(port, 3, "TCAM action overrides the L2 table");
        let sent = asic.dequeue(3).unwrap();
        let parsed = Frame::new_checked(&sent[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.stack_words(), vec![9, 3]);
    }

    #[test]
    fn tcam_drop_action() {
        let mut asic = asic();
        asic.install_flow(FlowEntry {
            id: 4,
            version: 1,
            priority: 10,
            pattern: crate::tables::FlowMatch {
                ethertype: Some(0x0800),
                ..Default::default()
            },
            action: FlowAction::Drop,
        });
        let frame = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType(0x0800),
            &[],
        );
        assert_eq!(
            asic.handle_frame(frame, 0, 0),
            Outcome::Dropped {
                reason: DropReason::FlowDrop { entry_id: 4 }
            }
        );
    }

    #[test]
    fn l3_lpm_routes_ipv4() {
        use tpp_wire::{build_ipv4, Ipv4Address};
        let mut asic = asic();
        asic.l3_mut().insert(0x0a000000, 8, 3);
        // A real IPv4 packet (valid checksum) with dst 10.1.2.3.
        let ip = build_ipv4(
            Ipv4Address::new(192, 168, 0, 1),
            Ipv4Address::new(10, 1, 2, 3),
            17,
            64,
            b"datagram",
        );
        let frame = build_frame(
            EthernetAddress::from_host_id(99), // not in L2
            EthernetAddress::from_host_id(1),
            EtherType::IPV4,
            &ip,
        );
        let outcome = asic.handle_frame(frame, 0, 0);
        assert!(matches!(outcome, Outcome::Enqueued { port: 3, .. }));
        assert_eq!(asic.regs().l3_hits, 1);

        // A corrupted header (bad checksum) must NOT be L3-routed: it
        // falls back to L2 and, with no MAC entry, is dropped.
        let mut bad = build_ipv4(
            Ipv4Address::new(192, 168, 0, 1),
            Ipv4Address::new(10, 1, 2, 3),
            17,
            64,
            b"datagram",
        );
        bad[16] ^= 0xff;
        let frame = build_frame(
            EthernetAddress::from_host_id(99),
            EthernetAddress::from_host_id(1),
            EtherType::IPV4,
            &bad,
        );
        assert_eq!(
            asic.handle_frame(frame, 0, 1),
            Outcome::Dropped {
                reason: DropReason::NoRoute
            }
        );
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut asic = Asic::new(AsicConfig::with_ports(1, 2).queue_limit_bytes(200));
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        let mk = || {
            build_frame(
                EthernetAddress::from_host_id(1),
                EthernetAddress::from_host_id(2),
                EtherType(0x0800),
                &[0u8; 150],
            )
        };
        assert!(asic.handle_frame(mk(), 0, 0).is_enqueued());
        assert_eq!(
            asic.handle_frame(mk(), 0, 1),
            Outcome::Dropped {
                reason: DropReason::QueueFull { port: 1 }
            }
        );
        assert_eq!(asic.port_stats(1).bytes_dropped, 164);
        assert_eq!(asic.queue_stats(1, 0).packets_dropped, 1);
        // Offered (rx) counts both; enqueued only the accepted one.
        assert_eq!(asic.port_stats(1).rx_packets, 2);
        assert_eq!(asic.port_stats(1).bytes_enqueued, 164);
    }

    #[test]
    fn edge_filter_drop() {
        let mut asic = asic();
        asic.set_ingress_tpp_filter(0, Some(StripAction::Drop));
        let frame = tpp_frame("PUSH [Queue:QueueSize]", 2);
        assert_eq!(
            asic.handle_frame(frame, 0, 0),
            Outcome::Dropped {
                reason: DropReason::EdgeFiltered
            }
        );
        // Ordinary traffic from the same port is unaffected.
        let plain = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType(0x0800),
            &[],
        );
        assert!(asic.handle_frame(plain, 0, 0).is_enqueued());
        // TPPs from a trusted port still run.
        let frame = tpp_frame("PUSH [Queue:QueueSize]", 2);
        assert!(asic.handle_frame(frame, 2, 0).is_enqueued());
    }

    #[test]
    fn edge_filter_unwrap_restores_inner_payload() {
        let mut asic = asic();
        asic.set_ingress_tpp_filter(0, Some(StripAction::Unwrap));
        let program = assemble("PUSH [Queue:QueueSize]").unwrap();
        let payload = TppBuilder::new(AddressingMode::Stack)
            .instructions(&program.encode_words().unwrap())
            .memory_words(2)
            .payload(b"inner-datagram")
            .inner_ethertype(0x0800)
            .build();
        let frame = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType::TPP,
            &payload,
        );
        let outcome = asic.handle_frame(frame, 0, 0);
        assert!(outcome.is_enqueued());
        let sent = asic.dequeue(1).unwrap();
        let parsed = Frame::new_checked(&sent[..]).unwrap();
        assert_eq!(parsed.ethertype(), EtherType(0x0800));
        assert_eq!(parsed.payload(), b"inner-datagram");
        assert_eq!(asic.regs().tpps_executed, 0, "stripped TPP never ran");
    }

    #[test]
    fn edge_filter_unwrap_drops_empty_inner() {
        let mut asic = asic();
        asic.set_ingress_tpp_filter(0, Some(StripAction::Unwrap));
        let frame = tpp_frame("PUSH [Queue:QueueSize]", 2); // no inner payload
        assert_eq!(
            asic.handle_frame(frame, 0, 0),
            Outcome::Dropped {
                reason: DropReason::EdgeFiltered
            }
        );
    }

    #[test]
    fn tcpu_disabled_forwards_tpp_unexecuted() {
        let mut cfg = AsicConfig::with_ports(1, 2);
        cfg.tcpu_enabled = false;
        let mut asic = Asic::new(cfg);
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        let frame = tpp_frame("PUSH [Switch:SwitchID]", 2);
        let outcome = asic.handle_frame(frame, 0, 0);
        let Outcome::Enqueued { exec, .. } = outcome else {
            panic!()
        };
        assert!(exec.is_none());
        let sent = asic.dequeue(1).unwrap();
        let parsed = Frame::new_checked(&sent[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.hop(), 0, "no TCPU, no hop advance");
    }

    #[test]
    fn malformed_tpp_section_forwarded_untouched() {
        let mut asic = asic();
        // Valid Ethernet + TPP ethertype, but garbage payload.
        let frame = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType::TPP,
            &[0xff; 10],
        );
        let outcome = asic.handle_frame(frame, 0, 0);
        let Outcome::Enqueued { exec, .. } = outcome else {
            panic!()
        };
        assert!(exec.is_none(), "TCPU ignored the malformed section");
    }

    #[test]
    fn forward_queue_action_selects_priority_queue() {
        let mut cfg = AsicConfig::with_ports(1, 2);
        cfg.ports[1].num_queues = 2;
        let mut asic = Asic::new(cfg);
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 1);
        // Bulk traffic (L2 path) lands in queue 0 by default; steer it to
        // the low-priority queue 1 via the TCAM, leaving queue 0 for TPPs
        // marked by a higher-priority entry.
        asic.install_flow(FlowEntry {
            id: 1,
            version: 1,
            priority: 10,
            pattern: crate::tables::FlowMatch {
                ethertype: Some(0x0802),
                ..Default::default()
            },
            action: FlowAction::ForwardQueue(1, 1),
        });
        let bulk = || {
            build_frame(
                EthernetAddress::from_host_id(1),
                EthernetAddress::from_host_id(2),
                EtherType(0x0802),
                &[0u8; 500],
            )
        };
        // Two bulk frames queue first...
        assert!(asic.handle_frame(bulk(), 0, 0).is_enqueued());
        assert!(asic.handle_frame(bulk(), 0, 1).is_enqueued());
        assert_eq!(asic.queue_len_bytes(1, 1), 2 * 514);
        assert_eq!(asic.queue_len_bytes(1, 0), 0);
        // ...then a TPP arrives into queue 0 and reports its queue id.
        let frame = tpp_frame("PUSH [PacketMetadata:QueueID]\nPUSH [Queue:QueueSize]", 2);
        let outcome = asic.handle_frame(frame, 0, 2);
        assert!(outcome.is_enqueued());
        // Strict priority: the TPP (queue 0) transmits BEFORE the two
        // earlier bulk frames.
        let first = asic.dequeue(1).unwrap();
        let parsed = Frame::new_checked(&first[..]).unwrap();
        assert!(parsed.is_tpp(), "high-priority queue served first");
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        // It was in queue 0, and queue 0 was empty when it was enqueued.
        assert_eq!(tpp.stack_words(), vec![0, 0]);
        assert!(!Frame::new_checked(&asic.dequeue(1).unwrap()[..])
            .unwrap()
            .is_tpp());
    }

    #[test]
    fn forward_queue_out_of_range_degrades_to_last_queue() {
        let mut cfg = AsicConfig::with_ports(1, 2);
        cfg.ports[1].num_queues = 2;
        let mut asic = Asic::new(cfg);
        asic.install_flow(FlowEntry {
            id: 1,
            version: 1,
            priority: 10,
            pattern: crate::tables::FlowMatch::default(),
            action: FlowAction::ForwardQueue(1, 7),
        });
        let frame = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType(0x0802),
            &[0u8; 100],
        );
        let outcome = asic.handle_frame(frame, 0, 0);
        assert_eq!(
            outcome,
            Outcome::Enqueued {
                port: 1,
                queue: 1,
                exec: None
            }
        );
    }

    #[test]
    fn ecn_marks_tpps_above_threshold() {
        let mut asic = asic();
        asic.set_ecn_threshold(1, Some(100));
        // First TPP: queue empty, below threshold -> unmarked.
        let outcome = asic.handle_frame(tpp_frame("NOP", 1), 0, 0);
        assert!(outcome.is_enqueued());
        // Backlog past the threshold with a plain frame.
        let filler = build_frame(
            EthernetAddress::from_host_id(1),
            EthernetAddress::from_host_id(2),
            EtherType(0x0802),
            &[0u8; 200],
        );
        asic.handle_frame(filler, 0, 1);
        // Second TPP: queue >= 100 B -> marked.
        asic.handle_frame(tpp_frame("NOP", 1), 0, 2);
        assert_eq!(asic.port_stats(1).ecn_marked, 1);

        let check = |frame: Vec<u8>, want_marked: bool| {
            let parsed = Frame::new_checked(&frame[..]).unwrap();
            if !parsed.is_tpp() {
                return;
            }
            let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
            assert_eq!(
                tpp.flags() & tpp_wire::tpp::FLAG_ECN != 0,
                want_marked,
                "marking mismatch"
            );
        };
        check(asic.dequeue(1).unwrap(), false); // first TPP
        asic.dequeue(1).unwrap(); // filler (plain, unmarked by def.)
        check(asic.dequeue(1).unwrap(), true); // second TPP
    }

    #[test]
    fn ecn_disabled_marks_nothing() {
        let mut asic = asic();
        for _ in 0..10 {
            asic.handle_frame(tpp_frame("NOP", 1), 0, 0);
        }
        assert_eq!(asic.port_stats(1).ecn_marked, 0);
    }

    #[test]
    fn snr_register_readable_by_tpp() {
        let mut asic = asic();
        asic.set_port_snr(1, 257); // 25.7 dB
        let frame = tpp_frame("PUSH [Link:SnrDeciBel]", 2);
        assert!(asic.handle_frame(frame, 0, 0).is_enqueued());
        let sent = asic.dequeue(1).unwrap();
        let parsed = Frame::new_checked(&sent[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.stack_words(), vec![257]);
    }

    #[test]
    fn trace_records_full_pipeline_walk() {
        use tpp_telemetry::SharedSink;

        let shared = SharedSink::new(64);
        let mut asic = asic();
        asic.set_trace_sink(Some(Box::new(shared.clone())));
        assert!(asic.is_traced());
        let frame = tpp_frame("PUSH [Switch:SwitchID]", 2);
        assert!(asic.handle_frame(frame, 0, 7_000).is_enqueued());
        asic.dequeue(1).unwrap();
        let events = shared.events();
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            vec!["parse", "lookup_hit", "tcpu_exec", "enqueue", "dequeue"]
        );
        // All per-arrival events share the packet's sequence number.
        assert!(events[..4].iter().all(|e| e.seq == 1 && e.t_ns == 7_000));
        match &events[3].kind {
            TraceEventKind::Enqueue {
                port,
                queue,
                depth_bytes,
                ..
            } => {
                assert_eq!((*port, *queue, *depth_bytes), (1, 0, 0));
            }
            other => panic!("expected enqueue, got {other:?}"),
        }
    }

    #[test]
    fn trace_records_drops() {
        use tpp_telemetry::SharedSink;

        let shared = SharedSink::new(64);
        let mut asic = asic();
        asic.set_trace_sink(Some(Box::new(shared.clone())));
        // Unknown destination: parse ok, lookup miss, drop(no_route).
        let frame = build_frame(
            EthernetAddress::from_host_id(77),
            EthernetAddress::from_host_id(1),
            EtherType(0x0800),
            &[],
        );
        assert!(asic.handle_frame(frame, 0, 0).is_drop());
        let events = shared.events();
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, vec!["parse", "lookup_miss", "drop"]);
        match events[2].kind {
            TraceEventKind::Drop { reason, port } => {
                assert_eq!(reason, DropKind::NoRoute);
                assert_eq!(port, None);
            }
            ref other => panic!("expected drop, got {other:?}"),
        }
    }

    #[test]
    fn flow_cache_serves_repeats_and_tcam_mutations_invalidate() {
        let mut asic = asic();
        let mk = || {
            build_frame(
                EthernetAddress::from_host_id(1),
                EthernetAddress::from_host_id(2),
                EtherType(0x0800),
                &[0u8; 32],
            )
        };
        // First packet walks the tables, second is served from the cache.
        assert_eq!(asic.handle_frame(mk(), 0, 0).egress(), Some((1, 0)));
        assert_eq!(asic.handle_frame(mk(), 0, 1).egress(), Some((1, 0)));
        assert_eq!(asic.flow_cache_stats(), (1, 1));
        assert_eq!(asic.regs().l2_hits, 2, "cached hits still count");

        // Installing a higher-precedence TCAM route must invalidate the
        // cached L2 decision: stale packets would keep going to port 1.
        asic.install_flow(FlowEntry {
            id: 7,
            version: 1,
            priority: 10,
            pattern: crate::tables::FlowMatch {
                dst_mac: Some(EthernetAddress::from_host_id(1)),
                ..Default::default()
            },
            action: FlowAction::Forward(3),
        });
        assert_eq!(asic.handle_frame(mk(), 0, 2).egress(), Some((3, 0)));
        assert_eq!(asic.regs().tcam_hits, 1);

        // Removing it must re-expose the L2 route.
        asic.remove_flow(7);
        assert_eq!(asic.handle_frame(mk(), 0, 3).egress(), Some((1, 0)));
    }

    #[test]
    fn l2_and_l3_mutations_invalidate_cached_routes_and_misses() {
        let mut asic = asic();
        let unknown = || {
            build_frame(
                EthernetAddress::from_host_id(9),
                EthernetAddress::from_host_id(1),
                EtherType(0x0800),
                &[0u8; 16],
            )
        };
        // A cached *miss* must also be invalidated: learn the MAC and the
        // same flow must start forwarding.
        assert!(asic.handle_frame(unknown(), 0, 0).is_drop());
        assert!(asic.handle_frame(unknown(), 0, 1).is_drop());
        assert_eq!(asic.flow_cache_stats(), (1, 1));
        asic.l2_mut().insert(EthernetAddress::from_host_id(9), 3);
        assert_eq!(asic.handle_frame(unknown(), 0, 2).egress(), Some((3, 0)));

        // An L3 route change must override a cached L2 decision for IPv4.
        use tpp_wire::{build_ipv4, Ipv4Address};
        let ip_frame = || {
            let ip = build_ipv4(
                Ipv4Address::new(192, 168, 0, 1),
                Ipv4Address::new(10, 1, 2, 3),
                17,
                64,
                b"datagram",
            );
            build_frame(
                EthernetAddress::from_host_id(1),
                EthernetAddress::from_host_id(2),
                EtherType::IPV4,
                &ip,
            )
        };
        assert_eq!(
            asic.handle_frame(ip_frame(), 0, 3).egress(),
            Some((1, 0)),
            "L2 route before the prefix exists"
        );
        asic.l3_mut().insert(0x0a000000, 8, 2);
        assert_eq!(
            asic.handle_frame(ip_frame(), 0, 4).egress(),
            Some((2, 0)),
            "LPM insert must invalidate the cached L2 decision"
        );
    }

    #[test]
    fn reset_invalidates_flow_cache() {
        let mut asic = asic();
        let mk = || {
            build_frame(
                EthernetAddress::from_host_id(1),
                EthernetAddress::from_host_id(2),
                EtherType(0x0800),
                &[0u8; 32],
            )
        };
        assert_eq!(asic.handle_frame(mk(), 0, 0).egress(), Some((1, 0)));
        asic.reset(1_000);
        // Tables were wiped; a stale cache would still forward to port 1.
        assert!(asic.handle_frame(mk(), 0, 2_000).is_drop());
        // Re-learn a different route post-reboot.
        asic.l2_mut().insert(EthernetAddress::from_host_id(1), 2);
        assert_eq!(asic.handle_frame(mk(), 0, 3_000).egress(), Some((2, 0)));
    }

    #[test]
    fn decode_cache_hits_on_repeated_programs() {
        let mut asic = asic();
        for i in 0..4 {
            assert!(asic
                .handle_frame(tpp_frame("PUSH [Switch:SwitchID]", 2), 0, i)
                .is_enqueued());
        }
        let (hits, misses) = asic.decode_cache_stats();
        assert_eq!((hits, misses), (3, 1), "decode once, execute many");
    }

    #[test]
    fn snapshot_restore_roundtrip_rewinds_all_visible_state() {
        let mut asic = asic();
        asic.global_sram_mut().set_word(0, 0xdead_beef).unwrap();
        asic.link_sram_mut(1).unwrap().set_word(2, 7).unwrap();
        assert!(asic
            .handle_frame(tpp_frame("PUSH [Switch:SwitchID]", 2), 0, 1_000)
            .is_enqueued());
        let saved = asic.snapshot();
        assert_eq!(saved.ports[1].queues[0].frames.len(), 1);

        // Diverge: more traffic, SRAM writes, a dequeue.
        assert!(asic
            .handle_frame(tpp_frame("PUSH [Queue:QueueSize]", 2), 0, 2_000)
            .is_enqueued());
        asic.dequeue(1).unwrap();
        asic.global_sram_mut().set_word(0, 1).unwrap();
        assert_ne!(asic.snapshot(), saved);

        // Restore rewinds everything the snapshot captures...
        asic.restore(&saved);
        assert_eq!(asic.snapshot(), saved);
        assert_eq!(asic.regs().packets_processed, 1);
        assert_eq!(asic.global_sram().word(0).unwrap(), 0xdead_beef);
        assert_eq!(
            asic.queue_len_bytes(1, 0),
            saved.ports[1].queues[0].stats.queue_size_bytes
        );
        // ...and the restored queue still serves the frame it held.
        let sent = asic.dequeue(1).unwrap();
        let parsed = Frame::new_checked(&sent[..]).unwrap();
        let tpp = TppPacket::new_checked(parsed.payload()).unwrap();
        assert_eq!(tpp.stack_words(), vec![0xA1]);
    }

    #[test]
    fn wall_clock_and_packet_counters_advance() {
        let mut asic = asic();
        let frame = tpp_frame("PUSH [Switch:PacketsProcessed]", 2);
        asic.handle_frame(frame, 0, 42_000);
        assert_eq!(asic.regs().wall_clock_ns, 42_000);
        assert_eq!(asic.regs().packets_processed, 1);
    }
}
