//! Whole-ASIC state snapshots for differential testing.
//!
//! The conformance harness (`tpp-bench`) needs to (a) seed two ASICs —
//! one with the hot-path caches on, one with them off — with *identical*
//! adversarial state, and (b) prove after a run that every piece of
//! TPP-visible state came out bit-identical. [`AsicState`] is the value
//! type both halves use: `Asic::snapshot` captures it,
//! `Asic::restore` replays it, and `PartialEq` compares it.
//!
//! Deliberately **not** captured:
//!
//! - the forwarding tables (L2/L3/TCAM) and the configuration — those are
//!   control-plane inputs the harness constructs explicitly, not state a
//!   TPP can observe or mutate (only `FlowTableVersion`, which lives in
//!   [`SwitchRegs`], is TPP-visible);
//! - the flow cache and decode cache — they are semantically invisible by
//!   design, which is exactly the property the differential harness
//!   exists to check. Restoring them would let a buggy cache "restore"
//!   its own bug away.

use crate::stats::{PortStats, QueueStats, SwitchRegs};

/// Snapshot of one egress queue: registers plus the queued frames.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueState {
    /// The queue's statistics registers (`Queue:*`).
    pub stats: QueueStats,
    /// Queued frames, head first.
    pub frames: Vec<Vec<u8>>,
    /// The drop-tail byte limit (`Queue:Limit`).
    pub limit_bytes: u32,
}

/// Snapshot of one port: link registers, link SRAM, and every queue.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PortState {
    /// The port's statistics registers (`Link:*`).
    pub stats: PortStats,
    /// The per-port link-local scratch SRAM.
    pub link_sram: Vec<u32>,
    /// One entry per egress queue, in queue-id order.
    pub queues: Vec<QueueState>,
}

/// Snapshot of every piece of mutable, TPP-visible ASIC state.
///
/// See the [module docs](self) for what is intentionally excluded.
#[derive(Debug, Clone, PartialEq)]
pub struct AsicState {
    /// The global switch registers (`Switch:*`).
    pub regs: SwitchRegs,
    /// The switch-wide scratch SRAM.
    pub global_sram: Vec<u32>,
    /// One entry per port, in port-id order.
    pub ports: Vec<PortState>,
}
