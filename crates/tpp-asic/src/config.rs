//! Static configuration of an ASIC instance and its ports.

/// What an edge port does with TPPs arriving from an untrusted attachment
/// (§4: "the ingress switches at the network edge ... can strip TPPs
/// injected by VMs, or those TPPs received from the Internet").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripAction {
    /// Drop the whole frame.
    Drop,
    /// Remove the TPP section and forward the encapsulated payload as an
    /// ordinary frame (preserving the Ethernet header).
    Unwrap,
}

/// Per-port configuration.
#[derive(Debug, Clone)]
pub struct PortConfig {
    /// Egress link capacity in kilobits per second. Exposed to TPPs via
    /// `Link:CapacityKbps`.
    pub capacity_kbps: u32,
    /// Drop-tail limit of each egress queue, in bytes.
    pub queue_limit_bytes: u32,
    /// Number of egress queues on this port (scheduler is FIFO across
    /// queue 0 unless a packet carries a priority; the paper's examples
    /// use one queue).
    pub num_queues: usize,
    /// Whether frames *arriving* on this port may carry TPPs. `None`
    /// means trusted (no filtering); `Some(action)` applies the §4 edge
    /// security policy.
    pub ingress_tpp_filter: Option<StripAction>,
    /// ECN marking threshold in bytes for this port's egress queues.
    /// `None` disables marking. When enabled, a TPP-format frame whose
    /// enqueue finds the queue at/above the threshold gets its
    /// `FLAG_ECN` header bit set — the fixed-function congestion signal
    /// of §4's ECN comparison.
    pub ecn_threshold_bytes: Option<u32>,
}

impl Default for PortConfig {
    fn default() -> Self {
        PortConfig {
            capacity_kbps: 10_000_000, // 10 Gb/s, a datacenter link
            queue_limit_bytes: 512 * 1024,
            num_queues: 1,
            ingress_tpp_filter: None,
            ecn_threshold_bytes: None,
        }
    }
}

/// Configuration of one ASIC.
#[derive(Debug, Clone)]
pub struct AsicConfig {
    /// The switch's unique identifier (`Switch:SwitchID`).
    pub switch_id: u32,
    /// Per-port configuration; the vector length is the port count.
    pub ports: Vec<PortConfig>,
    /// Whether the TCPU executes TPPs at all ("Unless otherwise noted, a
    /// TPP executes at all TCPU-enabled ASICs it traverses", §3.2).
    pub tcpu_enabled: bool,
    /// TCPU cycle budget per packet. §3.3: low-latency ASICs switch
    /// minimum-sized packets with a 300 ns cut-through latency, "which is
    /// 300 clock cycles for a 1 GHz ASIC"; restricting a TPP to a handful
    /// of instructions keeps it inside that budget.
    pub tcpu_cycle_budget: u32,
    /// Words of global scratch SRAM (the `0x8000+` namespace).
    pub global_sram_words: usize,
    /// Words of per-port link scratch SRAM (the `0x4000+` namespace).
    pub link_sram_words: usize,
    /// EWMA weight (0..=1, applied per tick) for link utilization
    /// registers. Higher = more responsive, noisier.
    pub utilization_ewma_alpha: f64,
    /// Slots in the TCPU's decoded-program cache (rounded up to a power
    /// of two). `0` disables the cache and decodes every instruction of
    /// every packet, which is the pre-cache behavior `perf_baseline`
    /// measures against. Execution semantics are identical either way.
    pub decode_cache_slots: usize,
    /// Capacity of the exact-match flow cache fronting the TCAM→L3→L2
    /// lookup chain. `0` disables the cache (every packet walks the
    /// tables). Cached results are invalidated by a generation counter
    /// bumped on any table mutation or `reset()`.
    pub flow_cache_entries: usize,
    /// Batched TCPU dispatch: when a switch drains an event window, a run
    /// of packets carrying the same program is detected by one byte
    /// compare per packet and executed against a single pinned decode
    /// (decode once, run N) through a straight-line fast loop. Cycles,
    /// counters, traces, and profiler spans are charged identically to
    /// the per-frame path — bit-identical on or off, like the hot-path
    /// caches. Requires `decode_cache_slots > 0` to have any effect.
    pub batched_dispatch: bool,
}

impl AsicConfig {
    /// A switch with `num_ports` identical default ports.
    pub fn with_ports(switch_id: u32, num_ports: usize) -> Self {
        AsicConfig {
            switch_id,
            ports: vec![PortConfig::default(); num_ports],
            tcpu_enabled: true,
            tcpu_cycle_budget: 300,
            global_sram_words: 0x8000 / 4,
            link_sram_words: 0x1000 / 4,
            utilization_ewma_alpha: 0.5,
            decode_cache_slots: 64,
            flow_cache_entries: 1024,
            batched_dispatch: true,
        }
    }

    /// Disable both hot-path caches (decoded-program and flow lookup).
    /// `perf_baseline` uses this to measure the uncached pipeline.
    pub fn without_hot_path_caches(mut self) -> Self {
        self.decode_cache_slots = 0;
        self.flow_cache_entries = 0;
        self
    }

    /// Enable or disable batched TCPU dispatch (on by default; see
    /// [`AsicConfig::batched_dispatch`]). The differential tests run with
    /// it off to prove the batched path changes nothing observable.
    pub fn batched_dispatch(mut self, on: bool) -> Self {
        self.batched_dispatch = on;
        self
    }

    /// Set every port's capacity (convenience for uniform topologies).
    pub fn capacity_kbps(mut self, kbps: u32) -> Self {
        for p in &mut self.ports {
            p.capacity_kbps = kbps;
        }
        self
    }

    /// Set every port's queue limit in bytes.
    pub fn queue_limit_bytes(mut self, bytes: u32) -> Self {
        for p in &mut self.ports {
            p.queue_limit_bytes = bytes;
        }
        self
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_conveniences() {
        let cfg = AsicConfig::with_ports(7, 4)
            .capacity_kbps(10_000)
            .queue_limit_bytes(64_000);
        assert_eq!(cfg.num_ports(), 4);
        assert_eq!(cfg.switch_id, 7);
        assert!(cfg.ports.iter().all(|p| p.capacity_kbps == 10_000));
        assert!(cfg.ports.iter().all(|p| p.queue_limit_bytes == 64_000));
        assert_eq!(cfg.tcpu_cycle_budget, 300, "§3.3 default budget");
    }
}
