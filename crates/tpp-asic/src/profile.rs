//! Per-packet span profiling: cycle attribution across pipeline stages.
//!
//! The observability plane's lowest layer. When enabled (opt-in via
//! [`crate::Asic::enable_profiling`]; off by default and `#[cold]` off
//! the fast path), every packet walk is charged a deterministic cycle
//! cost per stage — parser, tables, TCPU, MMU, scheduler — and the
//! attribution is folded into reservoir-sampled stage-latency
//! histograms, a TCPU per-opcode cycle breakdown, and 300 ns
//! cut-through budget-violation counters.
//!
//! ## Cycle model
//!
//! The ASIC is modelled at 1 GHz (1 cycle ≙ 1 ns), matching the §3.3
//! argument that a 300 ns cut-through budget buys ~300 TCPU cycles:
//!
//! | Stage | Cycles |
//! |---|---|
//! | parser | [`PARSE_CYCLES`] + [`PARSE_TPP_EXTRA_CYCLES`] for TPP headers, + [`EDGE_FILTER_CYCLES`] when an ingress filter is configured |
//! | tables | [`TCAM_SEARCH_CYCLES`] always, + [`L3_SEARCH_CYCLES`] / [`L2_SEARCH_CYCLES`] per table actually consulted by the walk |
//! | TCPU | the execution report's cycles (4-cycle pipeline latency + 1/instruction) |
//! | MMU | [`MMU_ADMIT_CYCLES`] per enqueue admission (ECN check + drop-tail test) |
//! | scheduler | 1 cycle per priority queue scanned at dequeue |
//!
//! The tables charge is a pure function of the *winning* table and the
//! flow key, so cached (flow-cache hit) and uncached lookups attribute
//! identically — profiling never observes the hot-path caches. A
//! packet's span total is exactly `parser + tables + tcpu + mmu`
//! (scheduler cycles accrue at dequeue, outside the ingress span); the
//! `obs_invariants` proptests pin this sum.
//!
//! ## Budget violations
//!
//! A packet violates the cut-through budget when its pipeline cycles
//! (at 1 ns/cycle) plus the head-of-line drain time of the occupancy
//! already in its egress queue exceed
//! [`ProfileConfig::cut_through_ns`]: the packet demonstrably could not
//! cut through the switch in 300 ns. Under overload the queue-drain
//! term dominates — exactly the excursions the §2.1 microburst monitor
//! exists to catch.

use tpp_isa::{Instruction, Opcode};
use tpp_telemetry::{Histogram, MetricsRegistry};

use crate::tcpu::ExecReport;

/// Cycles charged by the header parser for any frame.
pub const PARSE_CYCLES: u32 = 4;
/// Extra parser cycles for recognizing and validating a TPP header.
pub const PARSE_TPP_EXTRA_CYCLES: u32 = 2;
/// Cycles for consulting the §4 ingress edge filter.
pub const EDGE_FILTER_CYCLES: u32 = 1;
/// Cycles for the (always-consulted) TCAM search.
pub const TCAM_SEARCH_CYCLES: u32 = 2;
/// Cycles for an LPM walk of the L3 table.
pub const L3_SEARCH_CYCLES: u32 = 4;
/// Cycles for the L2 exact-match lookup.
pub const L2_SEARCH_CYCLES: u32 = 2;
/// Cycles for MMU admission (ECN threshold check + drop-tail test).
pub const MMU_ADMIT_CYCLES: u32 = 2;

/// Default cut-through latency budget: "a 1 GHz switch ASIC" gives a
/// TPP "about 300 ns" (§3.3).
pub const DEFAULT_CUT_THROUGH_NS: u32 = 300;

/// The profiled pipeline stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfStage {
    /// Header parser (+ edge filter).
    Parser = 0,
    /// TCAM → L3 → L2 forwarding tables.
    Tables = 1,
    /// The tiny packet CPU.
    Tcpu = 2,
    /// MMU admission into the egress queue.
    Mmu = 3,
    /// Egress strict-priority scheduler (charged at dequeue).
    Scheduler = 4,
}

impl ProfStage {
    /// All stages, in pipeline order.
    pub const ALL: [ProfStage; 5] = [
        ProfStage::Parser,
        ProfStage::Tables,
        ProfStage::Tcpu,
        ProfStage::Mmu,
        ProfStage::Scheduler,
    ];

    /// Stable lowercase name for metric paths and display.
    pub fn name(self) -> &'static str {
        match self {
            ProfStage::Parser => "parser",
            ProfStage::Tables => "tables",
            ProfStage::Tcpu => "tcpu",
            ProfStage::Mmu => "mmu",
            ProfStage::Scheduler => "scheduler",
        }
    }
}

/// Cycles the table walk charges, given which tables it consulted.
/// Derived from the winning table and the flow key only, so cached and
/// uncached lookups charge identically.
pub fn table_walk_cycles(consulted_l3: bool, consulted_l2: bool) -> u32 {
    TCAM_SEARCH_CYCLES
        + if consulted_l3 { L3_SEARCH_CYCLES } else { 0 }
        + if consulted_l2 { L2_SEARCH_CYCLES } else { 0 }
}

/// One packet's ingress span: cycle stamps per stage plus the queueing
/// estimate the budget check uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// Arrival time at the ingress pipeline, ns.
    pub ingress_ns: u64,
    /// Parser (+ edge filter) cycles.
    pub parser_cycles: u32,
    /// Forwarding-table cycles.
    pub tables_cycles: u32,
    /// TCPU cycles (0 for non-TPP, echoed, or malformed frames).
    pub tcpu_cycles: u32,
    /// MMU admission cycles (0 when the packet dropped before enqueue).
    pub mmu_cycles: u32,
    /// Estimated head-of-line wait: drain time of the bytes already in
    /// the egress queue at admission, ns.
    pub queue_wait_ns: u64,
    /// Whether the packet was admitted to its egress queue.
    pub enqueued: bool,
}

impl Span {
    /// Total pipeline cycles charged to this packet
    /// (`parser + tables + tcpu + mmu`; scheduler cycles are charged at
    /// dequeue, outside the ingress span).
    pub fn total_cycles(&self) -> u32 {
        self.parser_cycles + self.tables_cycles + self.tcpu_cycles + self.mmu_cycles
    }

    /// Estimated egress stamp: ingress + pipeline (1 cycle ≙ 1 ns) +
    /// head-of-line wait.
    pub fn egress_ns(&self) -> u64 {
        self.ingress_ns + self.total_cycles() as u64 + self.queue_wait_ns
    }
}

/// Fixed-size uniform sample of a stream (Vitter's algorithm R) with a
/// deterministic xorshift64* generator, so profiled runs replay
/// bit-identically.
#[derive(Debug, Clone)]
pub struct Reservoir {
    samples: Vec<u64>,
    cap: usize,
    seen: u64,
    state: u64,
}

impl Reservoir {
    /// A reservoir keeping at most `cap` samples, seeded for replay.
    pub fn new(cap: usize, seed: u64) -> Self {
        Reservoir {
            samples: Vec::new(),
            cap: cap.max(1),
            seen: 0,
            // xorshift64* must not start at 0.
            state: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Offer one sample to the reservoir.
    pub fn offer(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(value);
            return;
        }
        let j = self.next_rand() % self.seen;
        if (j as usize) < self.cap {
            self.samples[j as usize] = value;
        }
    }

    /// Samples currently held (unordered).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Samples offered over the reservoir's lifetime.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Exact percentile over the held samples (nearest-rank); 0 when
    /// empty. `p` in 0..=1.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }
}

/// Per-stage aggregation: a log₂ histogram (mergeable, exportable) plus
/// a reservoir of raw samples (exact small-set percentiles for
/// `tpp-top`).
#[derive(Debug, Clone)]
pub struct StageStat {
    hist: Histogram,
    reservoir: Reservoir,
}

impl StageStat {
    fn new(cap: usize, seed: u64) -> Self {
        StageStat {
            hist: Histogram::default(),
            reservoir: Reservoir::new(cap, seed),
        }
    }

    fn record(&mut self, value: u64) {
        self.hist.observe(value);
        self.reservoir.offer(value);
    }

    /// The stage-latency histogram.
    pub fn hist(&self) -> &Histogram {
        &self.hist
    }

    /// The raw-sample reservoir.
    pub fn reservoir(&self) -> &Reservoir {
        &self.reservoir
    }

    /// Median over the reservoir (exact for small streams).
    pub fn p50(&self) -> u64 {
        self.reservoir.percentile(0.50)
    }

    /// 99th percentile over the reservoir.
    pub fn p99(&self) -> u64 {
        self.reservoir.percentile(0.99)
    }

    /// Largest sample ever recorded (from the histogram, not subject to
    /// reservoir eviction).
    pub fn max(&self) -> u64 {
        self.hist.max()
    }
}

/// Profiling knobs.
#[derive(Debug, Clone, Copy)]
pub struct ProfileConfig {
    /// Fold every Nth packet's span into the histograms/reservoirs
    /// (1 = every packet). Violation and total-cycle *counters* always
    /// cover every profiled packet.
    pub sample_every: u32,
    /// Cut-through latency budget, ns.
    pub cut_through_ns: u32,
    /// Reservoir capacity per stage.
    pub reservoir_capacity: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            sample_every: 1,
            cut_through_ns: DEFAULT_CUT_THROUGH_NS,
            reservoir_capacity: 1024,
        }
    }
}

const N_OPCODES: usize = Opcode::ALL.len();

fn opcode_index(op: Opcode) -> usize {
    match op {
        Opcode::Nop => 0,
        Opcode::Load => 1,
        Opcode::Store => 2,
        Opcode::Push => 3,
        Opcode::Pop => 4,
        Opcode::Cstore => 5,
        Opcode::Cexec => 6,
        Opcode::Add => 7,
        Opcode::Sub => 8,
        Opcode::And => 9,
        Opcode::Or => 10,
        Opcode::PushI => 11,
    }
}

/// Per-switch span profiler: accumulates the in-flight packet's span
/// and folds completed spans into stage statistics.
#[derive(Debug, Clone)]
pub struct PipelineProfile {
    config: ProfileConfig,
    cur: Span,
    last: Span,
    /// Packets whose span completed (enqueued or dropped).
    packets: u64,
    /// Packets folded into the histograms/reservoirs (`sample_every`).
    sampled: u64,
    /// Sum of every profiled packet's `Span::total_cycles`.
    total_cycles: u64,
    /// Packets that missed the cut-through budget.
    budget_violations: u64,
    stages: [StageStat; 5],
    /// Distribution of span totals (pipeline cycles, ingress only).
    total_stat: StageStat,
    /// Executed-instruction count per opcode (1 cycle each).
    opcode_counts: [u64; N_OPCODES],
    /// TCPU cycles not attributable to an instruction (the 4-cycle
    /// pipeline latency of each execution).
    tcpu_latency_cycles: u64,
}

impl PipelineProfile {
    /// A fresh profiler; `seed` (the switch id) keys the reservoirs'
    /// deterministic RNG streams.
    pub fn new(config: ProfileConfig, seed: u64) -> Self {
        let cap = config.reservoir_capacity;
        let stat = |i: u64| StageStat::new(cap, seed.wrapping_mul(0x9E3779B97F4A7C15) ^ i);
        PipelineProfile {
            config,
            cur: Span::default(),
            last: Span::default(),
            packets: 0,
            sampled: 0,
            total_cycles: 0,
            budget_violations: 0,
            stages: [stat(1), stat(2), stat(3), stat(4), stat(5)],
            total_stat: stat(6),
            opcode_counts: [0; N_OPCODES],
            tcpu_latency_cycles: 0,
        }
    }

    /// Start a new packet span at `now_ns`.
    pub fn begin(&mut self, now_ns: u64) {
        self.cur = Span {
            ingress_ns: now_ns,
            ..Span::default()
        };
    }

    /// Charge parser (or edge-filter) cycles to the current span.
    pub fn charge_parser(&mut self, cycles: u32) {
        self.cur.parser_cycles += cycles;
    }

    /// Charge forwarding-table cycles to the current span.
    pub fn charge_tables(&mut self, cycles: u32) {
        self.cur.tables_cycles += cycles;
    }

    /// Charge a TCPU execution to the current span, attributing each
    /// executed instruction word (fetched via `word_at`) to its opcode.
    pub fn charge_tcpu(&mut self, report: &ExecReport, word_at: impl Fn(usize) -> u32) {
        self.cur.tcpu_cycles += report.cycles;
        self.tcpu_latency_cycles +=
            report.cycles.saturating_sub(report.instructions_executed) as u64;
        for pc in 0..report.instructions_executed as usize {
            if let Ok(insn) = Instruction::decode(word_at(pc)) {
                self.opcode_counts[opcode_index(insn.opcode())] += 1;
            }
        }
    }

    /// Complete the current span at MMU admission. `queue_wait_ns` is
    /// the drain estimate of the occupancy ahead of the packet.
    pub fn finish(&mut self, mmu_cycles: u32, queue_wait_ns: u64, enqueued: bool) {
        self.cur.mmu_cycles = mmu_cycles;
        self.cur.queue_wait_ns = queue_wait_ns;
        self.cur.enqueued = enqueued;
        let total = self.cur.total_cycles();
        self.packets += 1;
        self.total_cycles += total as u64;
        if total as u64 + queue_wait_ns > self.config.cut_through_ns as u64 {
            self.budget_violations += 1;
        }
        if self
            .packets
            .is_multiple_of(self.config.sample_every.max(1) as u64)
        {
            self.sampled += 1;
            self.stages[ProfStage::Parser as usize].record(self.cur.parser_cycles as u64);
            self.stages[ProfStage::Tables as usize].record(self.cur.tables_cycles as u64);
            self.stages[ProfStage::Tcpu as usize].record(self.cur.tcpu_cycles as u64);
            self.stages[ProfStage::Mmu as usize].record(self.cur.mmu_cycles as u64);
            self.total_stat.record(total as u64);
        }
        self.last = self.cur;
    }

    /// Record a scheduler service: `queues_scanned` strict-priority
    /// queues were inspected to find the frame (1 cycle each).
    pub fn record_dequeue(&mut self, queues_scanned: u32) {
        self.stages[ProfStage::Scheduler as usize].record(queues_scanned as u64);
    }

    /// Spans completed (every profiled packet, sampled or not).
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Spans folded into histograms/reservoirs.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Sum of every span's total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Packets that missed the cut-through budget.
    pub fn budget_violations(&self) -> u64 {
        self.budget_violations
    }

    /// The most recently completed span.
    pub fn last_span(&self) -> Span {
        self.last
    }

    /// Stage statistics.
    pub fn stage(&self, stage: ProfStage) -> &StageStat {
        &self.stages[stage as usize]
    }

    /// Distribution of span totals.
    pub fn total_stat(&self) -> &StageStat {
        &self.total_stat
    }

    /// TCPU pipeline-latency cycles (not attributable to an opcode).
    pub fn tcpu_latency_cycles(&self) -> u64 {
        self.tcpu_latency_cycles
    }

    /// Per-opcode executed-instruction counts (1 cycle each), in
    /// [`Opcode::ALL`] order, zero entries skipped.
    pub fn opcode_breakdown(&self) -> Vec<(Opcode, u64)> {
        Opcode::ALL
            .iter()
            .map(|&op| (op, self.opcode_counts[opcode_index(op)]))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Export under `profile.*` names.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        registry.add("profile.packets", self.packets);
        registry.add("profile.sampled", self.sampled);
        registry.add("profile.total_cycles", self.total_cycles);
        registry.add("profile.budget_violations", self.budget_violations);
        registry.add("profile.tcpu.latency_cycles", self.tcpu_latency_cycles);
        for (op, count) in self.opcode_breakdown() {
            registry.add(&format!("profile.tcpu.opcode.{}", op.mnemonic()), count);
        }
        for stage in ProfStage::ALL {
            let name = format!("profile.stage.{}_cycles", stage.name());
            registry.merge_histogram(&name, self.stage(stage).hist());
        }
        registry.merge_histogram("profile.span.total_cycles", self.total_stat.hist());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let mut a = Reservoir::new(8, 42);
        let mut b = Reservoir::new(8, 42);
        for v in 0..1000 {
            a.offer(v);
            b.offer(v);
        }
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.samples().len(), 8);
        assert_eq!(a.seen(), 1000);
    }

    #[test]
    fn reservoir_percentiles() {
        let mut r = Reservoir::new(16, 1);
        for v in [10, 20, 30, 40] {
            r.offer(v);
        }
        assert_eq!(r.percentile(0.0), 10);
        assert_eq!(r.percentile(0.5), 20);
        assert_eq!(r.percentile(1.0), 40);
        assert_eq!(Reservoir::new(4, 1).percentile(0.5), 0);
    }

    #[test]
    fn span_total_is_stage_sum() {
        let span = Span {
            parser_cycles: 6,
            tables_cycles: 8,
            tcpu_cycles: 14,
            mmu_cycles: 2,
            ..Span::default()
        };
        assert_eq!(span.total_cycles(), 30);
        assert_eq!(span.egress_ns(), 30);
    }

    #[test]
    fn budget_violation_counts_queue_wait() {
        let mut p = PipelineProfile::new(ProfileConfig::default(), 7);
        p.begin(0);
        p.charge_parser(6);
        p.charge_tables(2);
        // 8 cycles of pipeline + 400 ns of queue ahead: violation.
        p.finish(2, 400, true);
        assert_eq!(p.budget_violations(), 1);
        p.begin(10);
        p.charge_parser(6);
        p.finish(2, 0, true);
        assert_eq!(p.budget_violations(), 1, "uncongested packet fits");
        assert_eq!(p.packets(), 2);
        assert_eq!(p.total_cycles(), 10 + 8);
    }

    #[test]
    fn sample_every_thins_histograms_not_counters() {
        let mut p = PipelineProfile::new(
            ProfileConfig {
                sample_every: 4,
                ..ProfileConfig::default()
            },
            1,
        );
        for i in 0..16 {
            p.begin(i);
            p.charge_parser(4);
            p.finish(2, 0, true);
        }
        assert_eq!(p.packets(), 16);
        assert_eq!(p.sampled(), 4);
        assert_eq!(p.stage(ProfStage::Parser).hist().count(), 4);
        assert_eq!(p.total_cycles(), 16 * 6);
    }

    #[test]
    fn table_walk_cycles_model() {
        assert_eq!(table_walk_cycles(false, false), TCAM_SEARCH_CYCLES);
        assert_eq!(
            table_walk_cycles(true, true),
            TCAM_SEARCH_CYCLES + L3_SEARCH_CYCLES + L2_SEARCH_CYCLES
        );
    }
}
