//! Drop-tail egress queues.
//!
//! The memory-management module of Fig. 3 stores packets in switch memory
//! until the scheduler transmits them. We model each egress queue as a
//! byte-limited FIFO whose occupancy backs the `Queue:QueueSize` register —
//! the statistic §2.1's micro-burst detector samples per packet.

use crate::stats::QueueStats;
use std::collections::VecDeque;

/// A byte-limited drop-tail FIFO of frames.
#[derive(Debug)]
pub struct DropTailQueue {
    frames: VecDeque<Vec<u8>>,
    limit_bytes: u32,
    stats: QueueStats,
}

impl DropTailQueue {
    /// An empty queue with the given byte limit.
    pub fn new(limit_bytes: u32) -> Self {
        DropTailQueue {
            frames: VecDeque::new(),
            limit_bytes,
            stats: QueueStats::default(),
        }
    }

    /// Try to enqueue a frame. Returns `true` if accepted, `false` if the
    /// frame was dropped because it would exceed the byte limit.
    pub fn enqueue(&mut self, frame: Vec<u8>) -> bool {
        let len = frame.len() as u64;
        if self.stats.queue_size_bytes + len > self.limit_bytes as u64 {
            self.stats.bytes_dropped += len;
            self.stats.packets_dropped += 1;
            return false;
        }
        self.stats.queue_size_bytes += len;
        self.stats.bytes_enqueued += len;
        self.stats.packets_enqueued += 1;
        self.stats.high_watermark_bytes = self
            .stats
            .high_watermark_bytes
            .max(self.stats.queue_size_bytes);
        self.frames.push_back(frame);
        true
    }

    /// Dequeue the head frame, if any.
    pub fn dequeue(&mut self) -> Option<Vec<u8>> {
        let frame = self.frames.pop_front()?;
        self.stats.queue_size_bytes -= frame.len() as u64;
        Some(frame)
    }

    /// Instantaneous occupancy in bytes (`Queue:QueueSize`).
    pub fn len_bytes(&self) -> u64 {
        self.stats.queue_size_bytes
    }

    /// Number of queued frames.
    pub fn len_frames(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The configured byte limit (`Queue:Limit`).
    pub fn limit_bytes(&self) -> u32 {
        self.limit_bytes
    }

    /// The queue's statistics registers.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Approximate resident heap bytes: the frame ring plus the buffered
    /// frame bytes themselves.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.frames.capacity() * std::mem::size_of::<Vec<u8>>()
            + self.frames.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Clone the queued frames head-first (snapshot support).
    pub(crate) fn frames_snapshot(&self) -> Vec<Vec<u8>> {
        self.frames.iter().cloned().collect()
    }

    /// Rebuild a queue from snapshotted parts. The caller is responsible
    /// for the invariant `stats.queue_size_bytes == Σ frame lengths`; the
    /// restore path in `Asic::restore` only ever feeds back values taken
    /// from `frames_snapshot`/`stats`, where it holds by construction.
    pub(crate) fn from_state(limit_bytes: u32, stats: QueueStats, frames: Vec<Vec<u8>>) -> Self {
        DropTailQueue {
            frames: frames.into(),
            limit_bytes,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_occupancy() {
        let mut q = DropTailQueue::new(1000);
        assert!(q.enqueue(vec![1; 100]));
        assert!(q.enqueue(vec![2; 200]));
        assert_eq!(q.len_bytes(), 300);
        assert_eq!(q.len_frames(), 2);
        assert_eq!(q.dequeue().unwrap(), vec![1; 100]);
        assert_eq!(q.len_bytes(), 200);
        assert_eq!(q.dequeue().unwrap(), vec![2; 200]);
        assert!(q.dequeue().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn drop_tail_on_overflow() {
        let mut q = DropTailQueue::new(250);
        assert!(q.enqueue(vec![0; 200]));
        assert!(!q.enqueue(vec![0; 100]), "would exceed limit");
        assert_eq!(q.stats().packets_dropped, 1);
        assert_eq!(q.stats().bytes_dropped, 100);
        // A smaller frame that fits is still accepted (drop-tail, not
        // gate-closed).
        assert!(q.enqueue(vec![0; 50]));
        assert_eq!(q.len_bytes(), 250);
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut q = DropTailQueue::new(1000);
        q.enqueue(vec![0; 400]);
        q.enqueue(vec![0; 400]);
        q.dequeue();
        q.enqueue(vec![0; 100]);
        assert_eq!(q.stats().high_watermark_bytes, 800);
    }

    #[test]
    fn conservation_of_bytes() {
        // enqueued = in-queue + dequeued; dropped accounted separately.
        let mut q = DropTailQueue::new(500);
        let mut dequeued = 0u64;
        for i in 0..20 {
            q.enqueue(vec![0; 60 + i]);
            if i % 3 == 0 {
                if let Some(f) = q.dequeue() {
                    dequeued += f.len() as u64;
                }
            }
        }
        let s = q.stats();
        assert_eq!(s.bytes_enqueued, q.len_bytes() + dequeued);
    }
}
