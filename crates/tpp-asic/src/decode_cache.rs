//! Decoded-program cache: the decode-once/execute-many half of the hot
//! path.
//!
//! The paper's applications (RCP\*, microburst detection, the ndb probes)
//! stamp the *identical* instruction program on every packet of a flow, yet
//! the baseline TCPU re-decodes every word of every packet at every hop.
//! This cache keys a decoded program on a hash of its raw instruction
//! bytes, verified by an exact byte compare, so `Instruction::decode` runs
//! once per distinct program instead of once per instruction per packet.
//!
//! Correctness: the cache stores the decoded prefix *and* the index of the
//! first undecodable word (`bad_at`), which together reproduce exactly what
//! per-packet decoding would observe at each pc — including the
//! `BadInstruction` halt. A hash collision falls back to a fresh decode
//! that replaces the slot, so execution semantics are bit-identical with
//! the cache on or off.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tpp_isa::{decode_program, Instruction};

/// FNV-1a offset basis. Public (with [`FNV_PRIME`] and
/// [`program_hash`]) so conformance tests can *construct* colliding
/// programs algebraically and prove the exact-byte verification, rather
/// than hoping a fuzzer stumbles on a 64-bit collision.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (see [`FNV_OFFSET`]).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The cache's key function: chunked FNV-1a over raw instruction bytes.
///
/// Exposed so directed tests can derive second preimages: for two
/// 16-byte programs with 8-byte chunks `(a1, a2)` and `(b1, b2)`,
/// `hash = ((OFFSET ^ c1)·P ^ c2)·P`, so picking any `b1 ≠ a1` and
/// `b2 = (OFFSET ^ a1)·P ^ a2 ^ (OFFSET ^ b1)·P` collides.
pub fn program_hash(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// FNV-1a over the raw instruction bytes, folded in 8-byte chunks. The
/// byte-at-a-time variant serializes one 64-bit multiply per byte, which
/// costs more than the decode it replaces on short programs; folding a
/// word per round cuts the dependency chain 8×. Collisions don't matter
/// for correctness — the cache verifies with an exact byte compare.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One cached program: the raw bytes it was decoded from (for exact-match
/// verification) and the decode result.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    hash: u64,
    bytes: Vec<u8>,
    /// Instructions that decoded cleanly, front to back.
    pub insns: Vec<Instruction>,
    /// Index of the first word that failed to decode, if any. Execution
    /// must halt with `BadInstruction` there, exactly as a fresh
    /// per-packet decode would.
    pub bad_at: Option<usize>,
}

impl DecodedProgram {
    /// Decode `bytes` (big-endian instruction words) into a program. Pure
    /// function of the bytes, so two decodes of the same bytes — on any
    /// switch — are interchangeable; that is what lets the interner share
    /// one `Arc`'d copy fleet-wide.
    fn decode(hash: u64, bytes: &[u8]) -> Self {
        let words = bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]));
        let (insns, bad_at) = decode_program(words);
        DecodedProgram {
            hash,
            bytes: bytes.to_vec(),
            insns,
            bad_at,
        }
    }

    /// The raw instruction bytes this program was decoded from.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Approximate resident bytes of this decoded program.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.bytes.capacity()
            + self.insns.capacity() * std::mem::size_of::<Instruction>()
    }
}

/// A fleet-wide pool of decoded TPP programs, shared by every switch's
/// [`DecodeCache`] in a simulation. The paper's applications stamp the
/// identical program on every packet of a flow; without the interner each
/// switch decodes (and stores) its own copy, so a program crossing a
/// k=8 fat tree is decoded up to 80 times and resident 80 times. The
/// interner keeps exactly one `Arc`'d [`DecodedProgram`] per distinct
/// byte string: a cache miss on one switch is served by the decode
/// another switch already did.
///
/// Sharing is semantically invisible: decoding is a pure function of the
/// program bytes, verified here by the same hash + exact-byte-compare
/// discipline the per-switch cache uses. The interner is `Clone`
/// (a handle to shared state) and thread-safe, so the sharded simulator
/// can hand one handle to switches on different worker threads.
#[derive(Debug, Clone, Default)]
pub struct ProgramInterner {
    inner: Arc<Mutex<InternerInner>>,
}

#[derive(Debug, Default)]
struct InternerInner {
    by_hash: HashMap<u64, Vec<Arc<DecodedProgram>>>,
    shared: u64,
    decoded: u64,
}

impl ProgramInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The one shared decode of `bytes`: returns the existing `Arc` when
    /// any cache already interned these exact bytes, otherwise decodes
    /// once and registers the result.
    pub(crate) fn intern(&self, hash: u64, bytes: &[u8]) -> Arc<DecodedProgram> {
        let mut inner = self.inner.lock().expect("interner lock");
        if let Some(hit) = inner
            .by_hash
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|p| p.bytes == bytes))
            .cloned()
        {
            inner.shared += 1;
            return hit;
        }
        let program = Arc::new(DecodedProgram::decode(hash, bytes));
        inner.by_hash.entry(hash).or_default().push(program.clone());
        inner.decoded += 1;
        program
    }

    /// `(shared, decoded)`: misses served by an existing fleet-wide decode
    /// vs. programs that genuinely had to be decoded.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("interner lock");
        (inner.shared, inner.decoded)
    }

    /// Distinct programs currently interned.
    pub fn distinct_programs(&self) -> usize {
        let inner = self.inner.lock().expect("interner lock");
        inner.by_hash.values().map(Vec::len).sum()
    }

    /// Approximate resident bytes of the interned program bodies (the
    /// fleet-shared state that per-switch accounting must not double
    /// count).
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("interner lock");
        inner
            .by_hash
            .values()
            .flat_map(|bucket| bucket.iter())
            .map(|p| p.approx_bytes())
            .sum()
    }
}

/// A small direct-mapped cache of decoded TPP programs, with a last-hit
/// memo in front: a burst of packets carrying the identical program (the
/// common case once the netsim batches same-instant arrivals per switch)
/// is served by one byte compare against the previously served slot,
/// skipping even the hash.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    slots: Vec<Option<Arc<DecodedProgram>>>,
    mask: usize,
    /// Slot that served the previous lookup.
    last: usize,
    hits: u64,
    misses: u64,
    /// Fleet-wide program pool consulted on local miss; `None` keeps the
    /// cache self-contained (standalone ASICs, unit tests).
    interner: Option<ProgramInterner>,
}

impl DecodeCache {
    /// A cache with `slots` entries, rounded up to a power of two (minimum
    /// one slot).
    pub fn new(slots: usize) -> Self {
        let n = slots.max(1).next_power_of_two();
        DecodeCache {
            slots: vec![None; n],
            mask: n - 1,
            last: 0,
            hits: 0,
            misses: 0,
            interner: None,
        }
    }

    /// Route this cache's misses through a fleet-wide interner: a program
    /// any other switch already decoded is shared instead of re-decoded.
    /// Local hit/miss accounting is unchanged (an interner-served fill is
    /// still a local miss); the sharing shows up in the interner's own
    /// [`ProgramInterner::stats`].
    pub fn set_interner(&mut self, interner: ProgramInterner) {
        self.interner = Some(interner);
    }

    /// Look up the program encoded by `bytes`, decoding and inserting it on
    /// miss or collision. Always returns a program whose execution is
    /// bit-identical to decoding `bytes` fresh.
    pub fn lookup(&mut self, bytes: &[u8]) -> &Arc<DecodedProgram> {
        if matches!(&self.slots[self.last], Some(p) if p.bytes == bytes) {
            self.hits += 1;
            return self.slots[self.last].as_ref().expect("matched above");
        }
        let hash = fnv1a(bytes);
        let idx = (hash as usize) & self.mask;
        self.last = idx;
        let hit = matches!(&self.slots[idx], Some(p) if p.hash == hash && p.bytes == bytes);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            let program = match &self.interner {
                Some(interner) => interner.intern(hash, bytes),
                None => Arc::new(DecodedProgram::decode(hash, bytes)),
            };
            self.slots[idx] = Some(program);
        }
        self.slots[idx].as_ref().expect("slot filled above")
    }

    /// Record a hit served by the TCPU's batched-dispatch window (the
    /// pinned program of the current same-program run). The window only
    /// ever serves exactly when the last-hit memo would have — same
    /// byte-compare against the previously served program — so charging it
    /// here keeps hit/miss counters identical with batching on or off.
    pub(crate) fn note_window_hit(&mut self) {
        self.hits += 1;
    }

    /// Programs served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Programs that had to be decoded (cold slot or collision).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Approximate resident bytes of this cache's slot array. Program
    /// bodies are *not* counted here: with an interner attached they are
    /// fleet-shared state, accounted once via
    /// [`ProgramInterner::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.capacity() * std::mem::size_of::<Option<Arc<DecodedProgram>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words_to_bytes(words: &[u32]) -> Vec<u8> {
        words.iter().flat_map(|w| w.to_be_bytes()).collect()
    }

    #[test]
    fn second_lookup_hits() {
        let mut cache = DecodeCache::new(8);
        let bytes = words_to_bytes(&[0x0000_0000, 0x6000_0007]); // NOP, PUSHI 7
        let p = cache.lookup(&bytes);
        assert_eq!(p.insns.len(), 2);
        assert_eq!(p.bad_at, None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.lookup(&bytes);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn bad_word_position_is_cached() {
        let mut cache = DecodeCache::new(8);
        // NOP, then an undefined opcode (0x1f << 27), then a NOP that a
        // fresh decode would never reach.
        let bytes = words_to_bytes(&[0x0000_0000, 0xf800_0000, 0x0000_0000]);
        let p = cache.lookup(&bytes);
        assert_eq!(p.insns.len(), 1);
        assert_eq!(p.bad_at, Some(1));
    }

    /// Two distinct 16-byte programs whose chunked FNV-1a hashes are
    /// equal, built from the hash algebra (see [`program_hash`]).
    fn colliding_programs() -> (Vec<u8>, Vec<u8>) {
        // Program A: PUSHI 1, PUSHI 2 — two 8-byte chunks a1, a2.
        let a = words_to_bytes(&[0x6000_0001, 0x0000_0000, 0x6000_0002, 0x0000_0000]);
        let a1 = u64::from_le_bytes(a[0..8].try_into().unwrap());
        let a2 = u64::from_le_bytes(a[8..16].try_into().unwrap());
        // Program B: flip a bit in the first chunk, then solve the
        // second chunk so the folded hash comes out identical.
        let b1 = a1 ^ (1 << 17);
        let b2 = (FNV_OFFSET ^ a1).wrapping_mul(FNV_PRIME)
            ^ a2
            ^ (FNV_OFFSET ^ b1).wrapping_mul(FNV_PRIME);
        let mut b = Vec::with_capacity(16);
        b.extend_from_slice(&b1.to_le_bytes());
        b.extend_from_slice(&b2.to_le_bytes());
        (a, b)
    }

    #[test]
    fn constructed_fnv_collision_is_rejected_by_byte_compare() {
        let (a, b) = colliding_programs();
        assert_ne!(a, b, "distinct programs");
        assert_eq!(
            program_hash(&a),
            program_hash(&b),
            "hashes must collide by construction"
        );
        // Same hash means same direct-mapped slot at any cache size, so
        // B lands exactly where A sits; only the exact byte compare can
        // tell them apart.
        let mut cache = DecodeCache::new(64);
        let pa_len = cache.lookup(&a).insns.len();
        assert_eq!(pa_len, 4, "program A decodes fully");
        let pb = cache.lookup(&b);
        assert_eq!(pb.bytes, b, "collision re-decoded, not served as A");
        assert_eq!(
            (cache.hits(), cache.misses()),
            (0, 2),
            "the colliding lookup must count as a miss"
        );
        // And the slot now faithfully serves B.
        cache.lookup(&b);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn memo_serves_bursts_and_survives_replacement() {
        // One slot forces every distinct program to collide, so the memo
        // is the only thing separating a burst from a re-decode.
        let mut cache = DecodeCache::new(1);
        let a = words_to_bytes(&[0x6000_0001]); // PUSHI 1
        let b = words_to_bytes(&[0x6000_0002]); // PUSHI 2
        for _ in 0..3 {
            cache.lookup(&a);
        }
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        // B evicts A from the shared slot; the memo must not serve A's
        // decode for B's bytes.
        assert_eq!(cache.lookup(&b).bytes, b);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        // And a re-lookup of A after eviction is a genuine miss again.
        assert_eq!(cache.lookup(&a).bytes, a);
        assert_eq!((cache.hits(), cache.misses()), (2, 3));
    }

    #[test]
    fn interner_shares_one_decode_across_caches() {
        let interner = ProgramInterner::new();
        let mut cache_a = DecodeCache::new(8);
        let mut cache_b = DecodeCache::new(8);
        cache_a.set_interner(interner.clone());
        cache_b.set_interner(interner.clone());
        let bytes = words_to_bytes(&[0x0000_0000, 0x6000_0007]); // NOP, PUSHI 7
        let pa = cache_a.lookup(&bytes).clone();
        let pb = cache_b.lookup(&bytes).clone();
        assert!(Arc::ptr_eq(&pa, &pb), "both caches share one decode");
        assert_eq!(interner.stats(), (1, 1), "one decode, one shared fill");
        assert_eq!(interner.distinct_programs(), 1);
        // Local accounting is unchanged: each cache saw a cold miss.
        assert_eq!((cache_a.hits(), cache_a.misses()), (0, 1));
        assert_eq!((cache_b.hits(), cache_b.misses()), (0, 1));
        assert!(interner.approx_bytes() > 0);
    }

    #[test]
    fn interner_keeps_colliding_programs_distinct() {
        let (a, b) = colliding_programs();
        let interner = ProgramInterner::new();
        let mut cache = DecodeCache::new(64);
        cache.set_interner(interner.clone());
        assert_eq!(cache.lookup(&a).bytes, a);
        assert_eq!(cache.lookup(&b).bytes, b, "collision still byte-verified");
        assert_eq!(interner.distinct_programs(), 2);
        assert_eq!(interner.stats(), (0, 2), "both were genuine decodes");
    }

    #[test]
    fn collision_replaces_slot_and_stays_correct() {
        // One slot: every distinct program collides.
        let mut cache = DecodeCache::new(1);
        let a = words_to_bytes(&[0x6000_0001]); // PUSHI 1
        let b = words_to_bytes(&[0x6000_0002]); // PUSHI 2
        assert_eq!(cache.lookup(&a).insns.len(), 1);
        let pb = cache.lookup(&b);
        assert_eq!(pb.bytes, b, "collision must re-decode the new program");
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        cache.lookup(&b);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }
}
