//! Assembler and disassembler for the paper's x86-like TPP syntax.
//!
//! "For readability, when we write TPPs in an x86-like assembly language,
//! we will refer to specific dataplane statistics using the notation
//! `[Namespace:Statistic]`" (§2). The assembler resolves those mnemonics
//! through a [`SymbolTable`] — the compile-time address mapping of §3.2.1
//! ("These address mappings must be known upfront so that the TPP compiler
//! can convert mnemonics ... into addresses").
//!
//! Grammar (one instruction per line; `;` or `#` start a comment):
//!
//! ```text
//! program   := line*
//! line      := [insn] [comment]
//! insn      := PUSH switch | POP switch
//!            | LOAD switch ',' packet | STORE switch ',' packet
//!            | CSTORE switch ',' packet | CEXEC switch ',' packet
//!            | ADD | SUB | AND | OR | NOP | PUSHI imm
//! switch    := '[' Namespace ':' Statistic ']' | '[' hexaddr ']'
//! packet    := '[Packet:SP]' | '[Packet:Hop[' n ']]' | '[Packet:' n ']'
//! ```

use crate::address::SymbolTable;
use crate::instruction::{Instruction, PacketOperand};
use crate::program::Program;
use crate::{IsaError, Result};

/// Assemble program text with the default (built-in statistics only)
/// symbol table.
pub fn assemble(source: &str) -> Result<Program> {
    Assembler::new().assemble(source)
}

/// Disassemble instructions back to canonical assembly text using the
/// default symbol table for reverse lookups.
pub fn disassemble(program: &Program) -> String {
    Assembler::new().disassemble(program)
}

/// An assembler bound to a symbol table.
///
/// Tasks that use control-plane-allocated scratch symbols construct an
/// `Assembler` around the extended table:
///
/// ```
/// use tpp_isa::{Assembler, SymbolTable, VirtAddr};
///
/// let mut table = SymbolTable::new();
/// table.register("Link:RCP-RateRegister", VirtAddr(0x4000));
/// let asm = Assembler::with_symbols(table);
/// let program = asm.assemble("PUSH [Link:RCP-RateRegister]").unwrap();
/// assert_eq!(program.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    symbols: SymbolTable,
}

impl Assembler {
    /// An assembler over the built-in statistics symbols.
    pub fn new() -> Self {
        Assembler {
            symbols: SymbolTable::new(),
        }
    }

    /// An assembler over a caller-provided symbol table.
    pub fn with_symbols(symbols: SymbolTable) -> Self {
        Assembler { symbols }
    }

    /// The underlying symbol table (e.g. to register task symbols).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Assemble program text into a [`Program`].
    pub fn assemble(&self, source: &str) -> Result<Program> {
        let mut instructions = Vec::new();
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            instructions.push(self.parse_line(line, line_no)?);
        }
        Ok(Program::new(instructions))
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<Instruction> {
        let err = |reason: String| IsaError::Parse {
            line: line_no,
            reason,
        };
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let expect_count = |n: usize| -> Result<()> {
            if operands.len() != n {
                Err(err(format!(
                    "{} expects {} operand(s), got {}",
                    mnemonic.to_ascii_uppercase(),
                    n,
                    operands.len()
                )))
            } else {
                Ok(())
            }
        };

        match mnemonic.to_ascii_uppercase().as_str() {
            "NOP" => {
                expect_count(0)?;
                Ok(Instruction::Nop)
            }
            "ADD" => {
                expect_count(0)?;
                Ok(Instruction::Add)
            }
            "SUB" => {
                expect_count(0)?;
                Ok(Instruction::Sub)
            }
            "AND" => {
                expect_count(0)?;
                Ok(Instruction::And)
            }
            "OR" => {
                expect_count(0)?;
                Ok(Instruction::Or)
            }
            "PUSHI" => {
                expect_count(1)?;
                let imm = parse_number(operands[0])
                    .ok_or_else(|| err(format!("bad immediate '{}'", operands[0])))?;
                if imm > u16::MAX as u32 {
                    return Err(err(format!("immediate {imm} exceeds 16 bits")));
                }
                Ok(Instruction::PushImm(imm as u16))
            }
            "PUSH" => {
                expect_count(1)?;
                Ok(Instruction::Push {
                    addr: self.parse_switch(operands[0], line_no)?,
                })
            }
            "POP" => {
                expect_count(1)?;
                Ok(Instruction::Pop {
                    addr: self.parse_switch(operands[0], line_no)?,
                })
            }
            "LOAD" => {
                expect_count(2)?;
                Ok(Instruction::Load {
                    addr: self.parse_switch(operands[0], line_no)?,
                    dst: parse_packet(operands[1], line_no)?,
                })
            }
            "STORE" => {
                expect_count(2)?;
                Ok(Instruction::Store {
                    addr: self.parse_switch(operands[0], line_no)?,
                    src: parse_packet(operands[1], line_no)?,
                })
            }
            "CSTORE" => {
                expect_count(2)?;
                Ok(Instruction::Cstore {
                    addr: self.parse_switch(operands[0], line_no)?,
                    mem: parse_packet(operands[1], line_no)?,
                })
            }
            "CEXEC" => {
                expect_count(2)?;
                Ok(Instruction::Cexec {
                    addr: self.parse_switch(operands[0], line_no)?,
                    mem: parse_packet(operands[1], line_no)?,
                })
            }
            other => Err(err(format!("unknown mnemonic '{other}'"))),
        }
    }

    fn parse_switch(&self, operand: &str, line_no: usize) -> Result<crate::VirtAddr> {
        let inner = unbracket(operand).ok_or_else(|| IsaError::Parse {
            line: line_no,
            reason: format!("expected bracketed operand, got '{operand}'"),
        })?;
        self.symbols.resolve(inner)
    }

    /// Render a program back to canonical assembly text.
    pub fn disassemble(&self, program: &Program) -> String {
        program
            .iter()
            .map(|insn| self.fmt_insn(insn))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn fmt_switch(&self, addr: crate::VirtAddr) -> String {
        match self.symbols.symbol_for(addr) {
            Some(sym) => format!("[{sym}]"),
            None => format!("[{addr}]"),
        }
    }

    fn fmt_insn(&self, insn: &Instruction) -> String {
        match *insn {
            Instruction::Nop => "NOP".into(),
            Instruction::Add => "ADD".into(),
            Instruction::Sub => "SUB".into(),
            Instruction::And => "AND".into(),
            Instruction::Or => "OR".into(),
            Instruction::PushImm(imm) => format!("PUSHI {imm}"),
            Instruction::Push { addr } => format!("PUSH {}", self.fmt_switch(addr)),
            Instruction::Pop { addr } => format!("POP {}", self.fmt_switch(addr)),
            Instruction::Load { addr, dst } => {
                format!("LOAD {}, {}", self.fmt_switch(addr), fmt_packet(dst))
            }
            Instruction::Store { addr, src } => {
                format!("STORE {}, {}", self.fmt_switch(addr), fmt_packet(src))
            }
            Instruction::Cstore { addr, mem } => {
                format!("CSTORE {}, {}", self.fmt_switch(addr), fmt_packet(mem))
            }
            Instruction::Cexec { addr, mem } => {
                format!("CEXEC {}, {}", self.fmt_switch(addr), fmt_packet(mem))
            }
        }
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn unbracket(operand: &str) -> Option<&str> {
    operand.strip_prefix('[')?.strip_suffix(']').map(str::trim)
}

fn parse_number(text: &str) -> Option<u32> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn parse_packet(operand: &str, line_no: usize) -> Result<PacketOperand> {
    let err = |reason: String| IsaError::Parse {
        line: line_no,
        reason,
    };
    let inner = unbracket(operand).ok_or_else(|| {
        err(format!(
            "expected bracketed packet operand, got '{operand}'"
        ))
    })?;
    let lower = inner.to_ascii_lowercase();
    let rest = lower
        .strip_prefix("packet:")
        .or_else(|| lower.strip_prefix("packetmemory:"))
        .ok_or_else(|| {
            err(format!(
                "packet operand must start with Packet:, got '{inner}'"
            ))
        })?;
    if rest == "sp" {
        return Ok(PacketOperand::Sp);
    }
    if let Some(idx) = rest.strip_prefix("hop[").and_then(|r| r.strip_suffix(']')) {
        let n = parse_number(idx).ok_or_else(|| err(format!("bad hop index '{idx}'")))?;
        if n > crate::instruction::MAX_WORD_OFFSET {
            return Err(IsaError::OffsetTooLarge(n));
        }
        return Ok(PacketOperand::Hop(n as u16));
    }
    let n = parse_number(rest).ok_or_else(|| err(format!("bad packet word offset '{rest}'")))?;
    if n > crate::instruction::MAX_WORD_OFFSET {
        return Err(IsaError::OffsetTooLarge(n));
    }
    Ok(PacketOperand::Abs(n as u16))
}

fn fmt_packet(op: PacketOperand) -> String {
    match op {
        PacketOperand::Sp => "[Packet:SP]".into(),
        PacketOperand::Hop(n) => format!("[Packet:Hop[{n}]]"),
        PacketOperand::Abs(n) => format!("[Packet:{n}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{Stat, SymbolTable};
    use crate::VirtAddr;

    #[test]
    fn assembles_the_paper_collect_program() {
        // §2.2 Phase 1 (with the paper's Link:QueueSize alias and a
        // registered RCP rate register symbol).
        let mut table = SymbolTable::new();
        table.register("Link:RCP-RateRegister", VirtAddr(0x4000));
        let asm = Assembler::with_symbols(table);
        let program = asm
            .assemble(
                "PUSH [Switch:SwitchID]\n\
                 PUSH [Link:QueueSize]\n\
                 PUSH [Link:RX-Utilization]\n\
                 PUSH [Link:RCP-RateRegister]\n",
            )
            .unwrap();
        assert_eq!(program.len(), 4);
        assert_eq!(
            program.instructions()[0],
            Instruction::Push {
                addr: Stat::SwitchId.addr()
            }
        );
        assert_eq!(
            program.instructions()[3],
            Instruction::Push {
                addr: VirtAddr(0x4000)
            }
        );
    }

    #[test]
    fn assembles_microburst_program() {
        // §2.1: PUSH [Queue:QueueSize].
        let program = assemble("PUSH [Queue:QueueSize]").unwrap();
        assert_eq!(
            program.instructions(),
            &[Instruction::Push {
                addr: Stat::QueueSize.addr()
            }]
        );
    }

    #[test]
    fn assembles_ndb_program() {
        // §2.3: the forwarding-plane debugger TPP. The paper abbreviates
        // `PUSH [Switch:ID]`; we use the canonical symbol.
        let program = assemble(
            "PUSH [Switch:SwitchID]\n\
             PUSH [PacketMetadata:MatchedEntryID]\n\
             PUSH [PacketMetadata:InputPort]\n",
        )
        .unwrap();
        assert_eq!(program.len(), 3);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let program = assemble(
            "; collect queue telemetry\n\
             \n\
             PUSH [Queue:QueueSize]  # one word per hop\n",
        )
        .unwrap();
        assert_eq!(program.len(), 1);
    }

    #[test]
    fn two_operand_forms() {
        let program = assemble(
            "LOAD [Switch:SwitchID], [Packet:Hop[1]]\n\
             STORE [Switch:Scratch[0]], [Packet:2]\n\
             CSTORE [Switch:Scratch[1]], [Packet:0]\n\
             CEXEC [Switch:SwitchID], [Packet:SP]\n",
        )
        .unwrap();
        assert_eq!(
            program.instructions()[0],
            Instruction::Load {
                addr: Stat::SwitchId.addr(),
                dst: PacketOperand::Hop(1)
            }
        );
        assert_eq!(
            program.instructions()[1],
            Instruction::Store {
                addr: VirtAddr(0x8000),
                src: PacketOperand::Abs(2)
            }
        );
        assert_eq!(
            program.instructions()[2],
            Instruction::Cstore {
                addr: VirtAddr(0x8004),
                mem: PacketOperand::Abs(0)
            }
        );
        assert_eq!(
            program.instructions()[3],
            Instruction::Cexec {
                addr: Stat::SwitchId.addr(),
                mem: PacketOperand::Sp
            }
        );
    }

    #[test]
    fn arithmetic_and_immediates() {
        let program = assemble("PUSHI 0x10\nPUSHI 32\nADD\nSUB\nAND\nOR\nNOP").unwrap();
        assert_eq!(program.instructions()[0], Instruction::PushImm(16));
        assert_eq!(program.instructions()[1], Instruction::PushImm(32));
        assert_eq!(program.len(), 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("PUSH [Queue:QueueSize]\nFROB [X]\n").unwrap_err();
        match err {
            IsaError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_arity_and_bad_operands() {
        assert!(assemble("PUSH").is_err());
        assert!(assemble("PUSH [Queue:QueueSize], [Packet:0]").is_err());
        assert!(assemble("LOAD [Switch:SwitchID]").is_err());
        assert!(assemble("PUSH Queue:QueueSize").is_err());
        assert!(assemble("LOAD [Switch:SwitchID], [NotPacket:0]").is_err());
        assert!(assemble("PUSHI 70000").is_err());
        assert!(assemble("PUSH [No:Such-Stat]").is_err());
    }

    #[test]
    fn disassembly_is_reassemblable() {
        let src = "PUSH [Queue:QueueSize]\n\
                   LOAD [Switch:SwitchID], [Packet:Hop[2]]\n\
                   CEXEC [Switch:SwitchID], [Packet:0]\n\
                   STORE [Switch:Scratch[0]], [Packet:2]\n\
                   PUSHI 99\n\
                   ADD";
        let program = assemble(src).unwrap();
        let text = disassemble(&program);
        let again = assemble(&text).unwrap();
        assert_eq!(program, again);
    }
}
