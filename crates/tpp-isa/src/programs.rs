//! The paper's canonical programs, as a tested catalog.
//!
//! Each constructor returns the exact program a section of the paper
//! presents (or the closest published-equivalent this reproduction
//! ships), together with its words-per-hop footprint. The applications
//! in `tpp-apps` build on these, and the catalog doubles as executable
//! documentation: the doc-quotes are from the paper, the instruction
//! lists are what actually runs.

use crate::asm::Assembler;
use crate::program::Program;

/// §2.1 — "the instruction `PUSH [Queue:QueueSize]` copies the queue
/// register onto packet memory", prefixed with the switch ID so the
/// end-host can attribute each sample (1 word/hop in the paper's
/// minimal form; 2 with attribution).
pub fn microburst_collect() -> Program {
    Assembler::new()
        .assemble("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]")
        .expect("static program")
}

/// Words per hop pushed by [`microburst_collect`].
pub const MICROBURST_WORDS_PER_HOP: usize = 2;

/// §2.3 — the ndb forwarding-plane debugger program: "PUSH \[Switch:ID\];
/// PUSH \[PacketMetadata:MatchedEntryID\]; PUSH
/// \[PacketMetadata:InputPort\]", plus the matched entry's version (the
/// stamp the §2.3 controller maintains).
pub fn ndb_trace() -> Program {
    Assembler::new()
        .assemble(
            "PUSH [Switch:SwitchID]\n\
             PUSH [PacketMetadata:MatchedEntryID]\n\
             PUSH [PacketMetadata:MatchedEntryVersion]\n\
             PUSH [PacketMetadata:InputPort]",
        )
        .expect("static program")
}

/// Words per hop pushed by [`ndb_trace`].
pub const NDB_WORDS_PER_HOP: usize = 4;

/// §2.3 "other possibilities" — wireless link health: channel SNR and
/// queue state per hop, for fade-vs-congestion loss attribution.
pub fn wireless_health() -> Program {
    Assembler::new()
        .assemble("PUSH [Switch:SwitchID]\nPUSH [Link:SnrDeciBel]\nPUSH [Queue:QueueSize]")
        .expect("static program")
}

/// Words per hop pushed by [`wireless_health`].
pub const WIRELESS_WORDS_PER_HOP: usize = 3;

/// §2.3 "other possibilities" — the per-path quality probe a bonded
/// multi-NIC host sends down each path: switch identity and boot epoch
/// (so a reboot anywhere on the path is visible), plus the two signals
/// the bonding scheduler weighs — queue depth and link TX utilization.
pub fn bonding_collect() -> Program {
    Assembler::new()
        .assemble(
            "PUSH [Switch:SwitchID]\n\
             PUSH [Switch:BootEpoch]\n\
             PUSH [Queue:QueueSize]\n\
             PUSH [Link:TX-Utilization]",
        )
        .expect("static program")
}

/// Words per hop pushed by [`bonding_collect`].
pub const BONDING_WORDS_PER_HOP: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint;

    #[test]
    fn catalog_programs_are_lint_clean_and_sized_right() {
        for (program, words, hops) in [
            (microburst_collect(), MICROBURST_WORDS_PER_HOP, 7),
            (ndb_trace(), NDB_WORDS_PER_HOP, 7),
            (wireless_health(), WIRELESS_WORDS_PER_HOP, 7),
            (bonding_collect(), BONDING_WORDS_PER_HOP, 7),
        ] {
            assert_eq!(program.words_per_hop(), words);
            assert_eq!(lint(&program, hops, words * hops), vec![]);
            // §3.3's budget: every catalog program fits 5 instructions…
            // ndb's is 4 — all within "a handful".
            assert!(program.len() <= 5);
            assert!(!program.writes_switch(), "telemetry programs are read-only");
        }
    }
}
