//! TPP instructions and their 4-byte wire encoding.
//!
//! §3.3: "we were able to encode an instruction and its operands in a
//! 4-byte integer". The reproduction's word layout is:
//!
//! ```text
//!  31    27 26  25 24      16 15             0
//! +--------+------+----------+----------------+
//! | opcode | mode |   poff   |  addr / imm    |
//! |  (5b)  | (2b) |   (9b)   |     (16b)      |
//! +--------+------+----------+----------------+
//! ```
//!
//! * `opcode` — one of [`Opcode`].
//! * `mode`/`poff` — the packet-memory operand ([`PacketOperand`]):
//!   SP-implicit, hop-relative word offset, or absolute word offset
//!   (the stack and hop addressing schemes of §3.2.2).
//! * `addr` — the switch virtual address ([`VirtAddr`]), or the 16-bit
//!   immediate of `PUSHI`.
//!
//! Three-operand instructions take their extra operands *from packet
//! memory*, which "can contain initialized values to load data into the
//! ASIC" (Fig. 4):
//!
//! * `CSTORE addr, mem` — with `cond = mem[0]`, `src = mem[1]`; the **old**
//!   value of `addr` is written back to `mem[2]` so the end-host can tell
//!   whether its linearizable update won (§3.2.3).
//! * `CEXEC addr, mem` — with `mask = mem[0]`, `value = mem[1]`; the rest
//!   of the program runs only if `(read(addr) & mask) == value` ("all
//!   instructions that follow a failed CEXEC check will not be executed").

use crate::address::VirtAddr;
use crate::{IsaError, Result};

/// Maximum packet-memory word offset encodable in the 9-bit `poff` field.
pub const MAX_WORD_OFFSET: u32 = (1 << 9) - 1;

/// Instruction opcodes (the 5-bit `opcode` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0x00,
    /// Copy a value from switch to packet (Table 1).
    Load = 0x01,
    /// Copy a value from packet to switch (Table 1).
    Store = 0x02,
    /// LOAD onto the packet stack, advancing SP (Table 1).
    Push = 0x03,
    /// STORE from the packet stack, retreating SP (Table 1).
    Pop = 0x04,
    /// Conditional store for atomic operations (Table 1).
    Cstore = 0x05,
    /// Conditionally execute the subsequent instructions (Table 1).
    Cexec = 0x06,
    /// Stack arithmetic: pop `b`, pop `a`, push `a + b` (wrapping).
    Add = 0x08,
    /// Stack arithmetic: pop `b`, pop `a`, push `a - b` (wrapping).
    Sub = 0x09,
    /// Stack arithmetic: pop `b`, pop `a`, push `a & b`.
    And = 0x0a,
    /// Stack arithmetic: pop `b`, pop `a`, push `a | b`.
    Or = 0x0b,
    /// Push a 16-bit immediate onto the packet stack.
    PushI = 0x0c,
}

impl Opcode {
    /// Every defined opcode, in numeric order.
    ///
    /// This is the generator hook the conformance fuzzer builds on: a
    /// random *encodable* program is a sequence of draws from this set
    /// with arbitrary operands, and any 5-bit value outside it is a
    /// directed bad-instruction case.
    pub const ALL: &'static [Opcode] = &[
        Opcode::Nop,
        Opcode::Load,
        Opcode::Store,
        Opcode::Push,
        Opcode::Pop,
        Opcode::Cstore,
        Opcode::Cexec,
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::PushI,
    ];

    /// The assembler mnemonic, stable for metric names and display.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "NOP",
            Opcode::Load => "LOAD",
            Opcode::Store => "STORE",
            Opcode::Push => "PUSH",
            Opcode::Pop => "POP",
            Opcode::Cstore => "CSTORE",
            Opcode::Cexec => "CEXEC",
            Opcode::Add => "ADD",
            Opcode::Sub => "SUB",
            Opcode::And => "AND",
            Opcode::Or => "OR",
            Opcode::PushI => "PUSHI",
        }
    }

    fn from_bits(bits: u8) -> Result<Opcode> {
        Ok(match bits {
            0x00 => Opcode::Nop,
            0x01 => Opcode::Load,
            0x02 => Opcode::Store,
            0x03 => Opcode::Push,
            0x04 => Opcode::Pop,
            0x05 => Opcode::Cstore,
            0x06 => Opcode::Cexec,
            0x08 => Opcode::Add,
            0x09 => Opcode::Sub,
            0x0a => Opcode::And,
            0x0b => Opcode::Or,
            0x0c => Opcode::PushI,
            other => return Err(IsaError::UnknownOpcode(other)),
        })
    }
}

/// Where an instruction's packet-memory operand lives (§3.2.2 addressing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketOperand {
    /// At the current stack pointer (stack addressing).
    Sp,
    /// Word offset within the current hop's slice: byte address
    /// `hop * per_hop_len + offset * 4` (hop addressing, "base:offset").
    Hop(u16),
    /// Absolute word offset into packet memory.
    Abs(u16),
}

impl PacketOperand {
    fn mode_bits(self) -> u32 {
        match self {
            PacketOperand::Sp => 0,
            PacketOperand::Hop(_) => 1,
            PacketOperand::Abs(_) => 2,
        }
    }

    fn offset_bits(self) -> Result<u32> {
        let off = match self {
            PacketOperand::Sp => 0,
            PacketOperand::Hop(o) | PacketOperand::Abs(o) => o as u32,
        };
        if off > MAX_WORD_OFFSET {
            return Err(IsaError::OffsetTooLarge(off));
        }
        Ok(off)
    }

    fn from_bits(mode: u32, off: u32) -> Result<PacketOperand> {
        Ok(match mode {
            0 => PacketOperand::Sp,
            1 => PacketOperand::Hop(off as u16),
            2 => PacketOperand::Abs(off as u16),
            other => return Err(IsaError::BadOperandMode(other as u8)),
        })
    }
}

/// One decoded TPP instruction.
///
/// Semantics (executed by `tpp-asic`'s TCPU):
///
/// | Instruction | Effect |
/// |---|---|
/// | `Load { addr, dst }`   | `pkt[dst] = switch[addr]` |
/// | `Store { addr, src }`  | `switch[addr] = pkt[src]` |
/// | `Push { addr }`        | `pkt[SP] = switch[addr]; SP += 4` |
/// | `Pop { addr }`         | `SP -= 4; switch[addr] = pkt[SP]` |
/// | `Cstore { addr, mem }` | `old = switch[addr]; if old == pkt[mem] { switch[addr] = pkt[mem+1] }; pkt[mem+2] = old` |
/// | `Cexec { addr, mem }`  | `if (switch[addr] & pkt[mem]) != pkt[mem+1] { halt }` |
/// | `Add/Sub/And/Or`       | binary op on the two top-of-stack words |
/// | `PushImm(v)`           | `pkt[SP] = v; SP += 4` |
/// | `Nop`                  | nothing |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Copy `switch[addr]` into packet memory at `dst`.
    Load {
        /// Switch virtual address to read.
        addr: VirtAddr,
        /// Destination in packet memory.
        dst: PacketOperand,
    },
    /// Copy packet memory at `src` into `switch[addr]`.
    Store {
        /// Switch virtual address to write (must be writable SRAM).
        addr: VirtAddr,
        /// Source in packet memory.
        src: PacketOperand,
    },
    /// Push `switch[addr]` onto the packet stack.
    Push {
        /// Switch virtual address to read.
        addr: VirtAddr,
    },
    /// Pop the top of the packet stack into `switch[addr]`.
    Pop {
        /// Switch virtual address to write (must be writable SRAM).
        addr: VirtAddr,
    },
    /// Conditional store: `if switch[addr] == pkt[mem] { switch[addr] =
    /// pkt[mem+1] }`, with the old value written to `pkt[mem+2]`.
    Cstore {
        /// Switch virtual address to conditionally update.
        addr: VirtAddr,
        /// Base of the 3-word `[cond, src, old]` operand block.
        mem: PacketOperand,
    },
    /// Conditional execute: continue only if
    /// `(switch[addr] & pkt[mem]) == pkt[mem+1]`.
    Cexec {
        /// Switch virtual address (register) to test.
        addr: VirtAddr,
        /// Base of the 2-word `[mask, value]` operand block.
        mem: PacketOperand,
    },
    /// Pop two words, push their wrapping sum.
    Add,
    /// Pop two words, push their wrapping difference.
    Sub,
    /// Pop two words, push their bitwise AND.
    And,
    /// Pop two words, push their bitwise OR.
    Or,
    /// Push a 16-bit immediate.
    PushImm(u16),
    /// Do nothing.
    Nop,
}

impl Instruction {
    /// The instruction's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::Load { .. } => Opcode::Load,
            Instruction::Store { .. } => Opcode::Store,
            Instruction::Push { .. } => Opcode::Push,
            Instruction::Pop { .. } => Opcode::Pop,
            Instruction::Cstore { .. } => Opcode::Cstore,
            Instruction::Cexec { .. } => Opcode::Cexec,
            Instruction::Add => Opcode::Add,
            Instruction::Sub => Opcode::Sub,
            Instruction::And => Opcode::And,
            Instruction::Or => Opcode::Or,
            Instruction::PushImm(_) => Opcode::PushI,
            Instruction::Nop => Opcode::Nop,
        }
    }

    /// Encode to the 4-byte wire word.
    pub fn encode(&self) -> Result<u32> {
        let (operand, addr16): (PacketOperand, u16) = match *self {
            Instruction::Load { addr, dst } => (dst, addr.0),
            Instruction::Store { addr, src } => (src, addr.0),
            Instruction::Push { addr } | Instruction::Pop { addr } => (PacketOperand::Sp, addr.0),
            Instruction::Cstore { addr, mem } | Instruction::Cexec { addr, mem } => (mem, addr.0),
            Instruction::PushImm(imm) => (PacketOperand::Sp, imm),
            Instruction::Add
            | Instruction::Sub
            | Instruction::And
            | Instruction::Or
            | Instruction::Nop => (PacketOperand::Sp, 0),
        };
        let opcode = self.opcode() as u32;
        Ok((opcode << 27)
            | (operand.mode_bits() << 25)
            | (operand.offset_bits()? << 16)
            | addr16 as u32)
    }

    /// Decode a 4-byte wire word.
    pub fn decode(word: u32) -> Result<Instruction> {
        let opcode = Opcode::from_bits(((word >> 27) & 0x1f) as u8)?;
        let mode = (word >> 25) & 0x3;
        let poff = (word >> 16) & 0x1ff;
        let addr = VirtAddr((word & 0xffff) as u16);
        let operand = PacketOperand::from_bits(mode, poff)?;
        Ok(match opcode {
            Opcode::Nop => Instruction::Nop,
            Opcode::Load => Instruction::Load { addr, dst: operand },
            Opcode::Store => Instruction::Store { addr, src: operand },
            Opcode::Push => Instruction::Push { addr },
            Opcode::Pop => Instruction::Pop { addr },
            Opcode::Cstore => Instruction::Cstore { addr, mem: operand },
            Opcode::Cexec => Instruction::Cexec { addr, mem: operand },
            Opcode::Add => Instruction::Add,
            Opcode::Sub => Instruction::Sub,
            Opcode::And => Instruction::And,
            Opcode::Or => Instruction::Or,
            Opcode::PushI => Instruction::PushImm((word & 0xffff) as u16),
        })
    }

    /// True for the Table 1 core set (vs. the arithmetic extension).
    pub fn is_core(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::Push { .. }
                | Instruction::Pop { .. }
                | Instruction::Cstore { .. }
                | Instruction::Cexec { .. }
        )
    }

    /// True if the instruction writes switch state (STORE/POP/CSTORE).
    pub fn writes_switch(&self) -> bool {
        matches!(
            self,
            Instruction::Store { .. } | Instruction::Pop { .. } | Instruction::Cstore { .. }
        )
    }
}

/// Decode a whole program front to back, stopping at the first word that
/// fails to decode.
///
/// Returns the decoded prefix and, if decoding stopped early, the index of
/// the offending word. This is the decode-once half of the TCPU's
/// decode-once/execute-many cache: the prefix plus the failure index
/// reproduce exactly what per-packet [`Instruction::decode`] would do at
/// each pc, so cached execution is bit-identical to fresh decoding.
pub fn decode_program(words: impl IntoIterator<Item = u32>) -> (Vec<Instruction>, Option<usize>) {
    let mut insns = Vec::new();
    for (pc, word) in words.into_iter().enumerate() {
        match Instruction::decode(word) {
            Ok(insn) => insns.push(insn),
            Err(_) => return (insns, Some(pc)),
        }
    }
    (insns, None)
}

/// Re-encode the canonical form of a decodable word, or `None` if the
/// word does not decode at all.
///
/// The wire encoding is deliberately lossy in one direction: `PUSH`,
/// `POP`, `PUSHI`, the arithmetic ops and `NOP` ignore the `mode`/`poff`
/// operand bits on decode (as long as the mode itself is assigned), so
/// several words map to the same [`Instruction`]. This helper collapses a
/// word to the unique encoding [`Instruction::encode`] would produce —
/// the invariant the conformance fuzzer checks is:
///
/// * `decode(encode(i)) == i` for every constructible instruction
///   (encode is a right inverse of decode), and
/// * `canonicalize` is idempotent: every decodable word reaches a fixed
///   point after one step.
pub fn canonicalize(word: u32) -> Option<u32> {
    let insn = Instruction::decode(word).ok()?;
    Some(
        insn.encode()
            .expect("decoded instructions always re-encode: poff is masked to 9 bits"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Stat;

    fn roundtrip(insn: Instruction) {
        let word = insn.encode().unwrap();
        assert_eq!(
            Instruction::decode(word).unwrap(),
            insn,
            "word {word:#010x}"
        );
    }

    #[test]
    fn encode_decode_roundtrip_each_form() {
        roundtrip(Instruction::Nop);
        roundtrip(Instruction::Push {
            addr: Stat::QueueSize.addr(),
        });
        roundtrip(Instruction::Pop {
            addr: VirtAddr(0x8000),
        });
        roundtrip(Instruction::Load {
            addr: Stat::SwitchId.addr(),
            dst: PacketOperand::Hop(3),
        });
        roundtrip(Instruction::Load {
            addr: Stat::SwitchId.addr(),
            dst: PacketOperand::Sp,
        });
        roundtrip(Instruction::Store {
            addr: VirtAddr(0x4000),
            src: PacketOperand::Abs(7),
        });
        roundtrip(Instruction::Cstore {
            addr: VirtAddr(0x8004),
            mem: PacketOperand::Abs(0),
        });
        roundtrip(Instruction::Cexec {
            addr: Stat::SwitchId.addr(),
            mem: PacketOperand::Abs(2),
        });
        roundtrip(Instruction::Add);
        roundtrip(Instruction::Sub);
        roundtrip(Instruction::And);
        roundtrip(Instruction::Or);
        roundtrip(Instruction::PushImm(0xbeef));
    }

    #[test]
    fn instruction_fits_four_bytes() {
        // §3.3's whole premise: one instruction = one 4-byte integer.
        let word = Instruction::Push {
            addr: Stat::QueueSize.addr(),
        }
        .encode()
        .unwrap();
        assert_eq!(word.to_be_bytes().len(), 4);
    }

    #[test]
    fn unknown_opcode_rejected() {
        // Opcode 0x1f is unassigned.
        let word = 0x1fu32 << 27;
        assert_eq!(
            Instruction::decode(word),
            Err(IsaError::UnknownOpcode(0x1f))
        );
    }

    #[test]
    fn bad_operand_mode_rejected() {
        // Mode 3 is unassigned; use LOAD so the mode matters.
        let word = (0x01u32 << 27) | (3 << 25);
        assert_eq!(Instruction::decode(word), Err(IsaError::BadOperandMode(3)));
    }

    #[test]
    fn oversized_offset_rejected_at_encode() {
        let insn = Instruction::Load {
            addr: VirtAddr(0),
            dst: PacketOperand::Abs(600),
        };
        assert_eq!(insn.encode(), Err(IsaError::OffsetTooLarge(600)));
    }

    #[test]
    fn opcode_all_is_complete_and_sorted() {
        // Every opcode decodes back to itself through the wire format,
        // and any 5-bit pattern not in ALL is rejected.
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(Opcode::from_bits(op as u8), Ok(op));
            if i > 0 {
                assert!((Opcode::ALL[i - 1] as u8) < op as u8);
            }
        }
        for bits in 0u8..32 {
            let known = Opcode::ALL.iter().any(|&op| op as u8 == bits);
            assert_eq!(Opcode::from_bits(bits).is_ok(), known, "opcode {bits:#x}");
        }
    }

    #[test]
    fn canonicalize_is_idempotent_and_matches_decode() {
        // Sweep a structured sample of the word space: every opcode ×
        // every mode × a few offsets/addresses, plus the undefined ones.
        for bits in 0u32..32 {
            for mode in 0u32..4 {
                for (poff, addr) in [(0u32, 0u32), (3, 0x2000), (511, 0xffff)] {
                    let word = (bits << 27) | (mode << 25) | (poff << 16) | addr;
                    match canonicalize(word) {
                        None => assert!(Instruction::decode(word).is_err()),
                        Some(canon) => {
                            // One step reaches the fixed point...
                            assert_eq!(canonicalize(canon), Some(canon), "word {word:#010x}");
                            // ...and preserves the decoded meaning.
                            assert_eq!(
                                Instruction::decode(canon).unwrap(),
                                Instruction::decode(word).unwrap(),
                                "word {word:#010x}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn core_vs_extension_classification() {
        assert!(Instruction::Push { addr: VirtAddr(0) }.is_core());
        assert!(Instruction::Cexec {
            addr: VirtAddr(0),
            mem: PacketOperand::Sp
        }
        .is_core());
        assert!(!Instruction::Add.is_core());
        assert!(!Instruction::PushImm(1).is_core());
    }

    #[test]
    fn write_classification() {
        assert!(Instruction::Store {
            addr: VirtAddr(0x4000),
            src: PacketOperand::Sp
        }
        .writes_switch());
        assert!(Instruction::Cstore {
            addr: VirtAddr(0x4000),
            mem: PacketOperand::Sp
        }
        .writes_switch());
        assert!(!Instruction::Push { addr: VirtAddr(0) }.writes_switch());
        assert!(!Instruction::Cexec {
            addr: VirtAddr(0),
            mem: PacketOperand::Sp
        }
        .writes_switch());
    }
}
