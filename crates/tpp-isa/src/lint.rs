//! Static program checks — the TPP "compiler" front end.
//!
//! The ASIC is deliberately unforgiving: a faulting instruction stops the
//! program mid-flight and the partial results come home silently wrong
//! shaped. Everything the dataplane would reject can be caught before a
//! single packet is built, because the memory map and the packet-memory
//! budget are both known at compile time (§3.2.1: "These address mappings
//! must be known upfront so that the TPP compiler can convert
//! mnemonics ... into addresses"). [`lint`] performs those checks.

use crate::address::{Namespace, VirtAddr};
use crate::instruction::{Instruction, PacketOperand};
use crate::program::Program;

/// A problem `lint` found, with the instruction index it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A STORE/POP/CSTORE targets a read-only namespace: the TCPU will
    /// fault at this instruction on every switch.
    WriteToReadOnly {
        /// Instruction index.
        pc: usize,
        /// The offending address.
        addr: VirtAddr,
    },
    /// An access targets the unmapped hole in the address space.
    UnmappedAddress {
        /// Instruction index.
        pc: usize,
        /// The offending address.
        addr: VirtAddr,
    },
    /// The program needs more packet memory than the plan provides:
    /// stack pushes and/or operand blocks exceed `mem_words`.
    InsufficientPacketMemory {
        /// Words the program can touch per hop.
        needed_per_hop: usize,
        /// Hops the caller plans for.
        hops: usize,
        /// Words the caller plans to allocate.
        mem_words: usize,
    },
    /// A POP/arithmetic instruction can underflow the stack: at this
    /// point the program has pushed fewer words than it consumes.
    StackUnderflow {
        /// Instruction index.
        pc: usize,
    },
    /// An instruction follows a CEXEC whose operand block overlaps the
    /// stack region the program pushes into — a later PUSH would corrupt
    /// the predicate for downstream switches.
    CexecOperandClobbered {
        /// Index of the CEXEC.
        pc: usize,
        /// First stack word that collides with the operand block.
        collision_word: usize,
    },
}

impl core::fmt::Display for Lint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Lint::WriteToReadOnly { pc, addr } => {
                write!(f, "insn {pc}: write to read-only address {addr}")
            }
            Lint::UnmappedAddress { pc, addr } => {
                write!(f, "insn {pc}: unmapped address {addr}")
            }
            Lint::InsufficientPacketMemory {
                needed_per_hop,
                hops,
                mem_words,
            } => write!(
                f,
                "packet memory: need {needed_per_hop} words/hop x {hops} hops, have {mem_words}"
            ),
            Lint::StackUnderflow { pc } => write!(f, "insn {pc}: stack underflow"),
            Lint::CexecOperandClobbered { pc, collision_word } => write!(
                f,
                "insn {pc}: CEXEC operand block overlaps pushed stack word {collision_word}"
            ),
        }
    }
}

/// Statically check a program against a deployment plan of
/// `hops` expected switches and `mem_words` of packet memory.
///
/// Returns every problem found (empty = clean). All checks are
/// conservative approximations of the TCPU's runtime behaviour — a clean
/// program can still fault on state-dependent conditions (e.g. a CSTORE
/// to an address another task deallocated), but every lint reported here
/// *would* misbehave on real execution.
pub fn lint(program: &Program, hops: usize, mem_words: usize) -> Vec<Lint> {
    let mut lints = Vec::new();

    // First pass: the program's per-hop stack growth and the highest
    // absolutely-addressed word it touches. Absolute operand blocks are
    // *shared* across hops (the same words every execution); only stack
    // pushes accumulate per hop.
    let mut net_depth: isize = 0;
    let mut abs_end: usize = 0;
    for insn in program.iter() {
        match insn {
            Instruction::Push { .. } | Instruction::PushImm(_) => net_depth += 1,
            Instruction::Pop { .. } => net_depth -= 1,
            Instruction::Add | Instruction::Sub | Instruction::And | Instruction::Or => {
                net_depth -= 1
            }
            _ => {}
        }
        let block = match insn {
            Instruction::Load {
                dst: PacketOperand::Abs(o),
                ..
            }
            | Instruction::Store {
                src: PacketOperand::Abs(o),
                ..
            } => Some((*o as usize, 1)),
            Instruction::Cexec {
                mem: PacketOperand::Abs(o),
                ..
            } => Some((*o as usize, 2)),
            Instruction::Cstore {
                mem: PacketOperand::Abs(o),
                ..
            } => Some((*o as usize, 3)),
            _ => None,
        };
        if let Some((start, width)) = block {
            abs_end = abs_end.max(start + width);
        }
    }
    let stack_per_hop = net_depth.max(0) as usize;
    let max_stack_words = stack_per_hop * hops;
    let needed_total = max_stack_words.max(abs_end).max(program.words_per_hop());
    if needed_total > mem_words {
        lints.push(Lint::InsufficientPacketMemory {
            needed_per_hop: stack_per_hop.max(abs_end),
            hops,
            mem_words,
        });
    }

    // Second pass: per-instruction checks, tracking live stack depth.
    let mut depth: isize = 0;

    for (pc, insn) in program.iter().enumerate() {
        // Address validity for the switch operand.
        let switch_addr = match insn {
            Instruction::Load { addr, .. }
            | Instruction::Push { addr }
            | Instruction::Cexec { addr, .. } => Some((*addr, false)),
            Instruction::Store { addr, .. }
            | Instruction::Pop { addr }
            | Instruction::Cstore { addr, .. } => Some((*addr, true)),
            _ => None,
        };
        if let Some((addr, is_write)) = switch_addr {
            if addr.namespace() == Namespace::Reserved {
                lints.push(Lint::UnmappedAddress { pc, addr });
            } else if is_write && !addr.is_writable() {
                lints.push(Lint::WriteToReadOnly { pc, addr });
            }
        }

        // Stack-depth bookkeeping.
        match insn {
            Instruction::Push { .. } | Instruction::PushImm(_) => depth += 1,
            Instruction::Pop { .. } => {
                depth -= 1;
                if depth < 0 {
                    lints.push(Lint::StackUnderflow { pc });
                    depth = 0;
                }
            }
            Instruction::Add | Instruction::Sub | Instruction::And | Instruction::Or => {
                depth -= 2;
                if depth < 0 {
                    lints.push(Lint::StackUnderflow { pc });
                    depth = 0;
                }
                depth += 1;
            }
            _ => {}
        }

        // CEXEC operands vs. the stack the plan will grow.
        if let Instruction::Cexec {
            mem: PacketOperand::Abs(word),
            ..
        } = insn
        {
            let start = *word as usize;
            if start < max_stack_words {
                lints.push(Lint::CexecOperandClobbered {
                    pc,
                    collision_word: start,
                });
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn clean_paper_programs_pass() {
        for (src, hops, mem) in [
            ("PUSH [Queue:QueueSize]", 3, 3),
            (
                "PUSH [Switch:SwitchID]\nPUSH [PacketMetadata:MatchedEntryID]\n\
                 PUSH [PacketMetadata:InputPort]",
                5,
                15,
            ),
            // CEXEC block above the stack region: fine.
            (
                "CEXEC [Switch:SwitchID], [Packet:8]\nPUSH [Switch:Scratch[0]]",
                2,
                10,
            ),
        ] {
            let program = assemble(src).unwrap();
            assert_eq!(lint(&program, hops, mem), vec![], "{src}");
        }
    }

    #[test]
    fn flags_write_to_read_only() {
        let program = assemble("POP [Queue:QueueSize]").unwrap();
        let lints = lint(&program, 1, 4);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::WriteToReadOnly { pc: 0, .. })));
    }

    #[test]
    fn flags_unmapped_address() {
        let program = assemble("PUSH [0x5000]").unwrap();
        let lints = lint(&program, 1, 4);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::UnmappedAddress { pc: 0, .. })));
    }

    #[test]
    fn flags_insufficient_memory() {
        // 2 pushes/hop over 4 hops = 8 words; only 4 allocated.
        let program = assemble("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]").unwrap();
        let lints = lint(&program, 4, 4);
        assert_eq!(
            lints,
            vec![Lint::InsufficientPacketMemory {
                needed_per_hop: 2,
                hops: 4,
                mem_words: 4
            }]
        );
    }

    #[test]
    fn flags_stack_underflow() {
        let program = assemble("PUSHI 1\nADD").unwrap(); // ADD needs two
        let lints = lint(&program, 1, 4);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::StackUnderflow { pc: 1 })));
        // POP on an empty stack too.
        let program = assemble("POP [Switch:Scratch[0]]").unwrap();
        assert!(lint(&program, 1, 4)
            .iter()
            .any(|l| matches!(l, Lint::StackUnderflow { pc: 0 })));
    }

    #[test]
    fn flags_cexec_clobber() {
        // The stack grows over words 0..2 (1 push x 2 hops) and the
        // CEXEC block starts at word 0: hop 1's predicate reads hop 0's
        // pushed value. This is the bug the cstore task's gate-at-word-8
        // layout avoids.
        let program =
            assemble("CEXEC [Switch:SwitchID], [Packet:0]\nPUSH [Queue:QueueSize]").unwrap();
        let lints = lint(&program, 2, 4);
        assert!(lints.iter().any(|l| matches!(
            l,
            Lint::CexecOperandClobbered {
                pc: 0,
                collision_word: 0
            }
        )));
        // Same program with the block out of the way: clean of that lint.
        let program =
            assemble("CEXEC [Switch:SwitchID], [Packet:8]\nPUSH [Queue:QueueSize]").unwrap();
        assert!(!lint(&program, 2, 10)
            .iter()
            .any(|l| matches!(l, Lint::CexecOperandClobbered { .. })));
    }

    #[test]
    fn multiple_lints_reported_together() {
        let program = assemble("POP [Queue:QueueSize]\nPUSH [0x5000]\nADD").unwrap();
        let lints = lint(&program, 1, 1);
        assert!(lints.len() >= 3, "got {lints:?}");
    }
}
