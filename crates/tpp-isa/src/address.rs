//! The unified memory-mapped IO address space of §3.2.1 and Table 2.
//!
//! "The statistics can be broadly namespaced into per-switch (i.e. global),
//! per-port, per-queue and per-packet. ... These statistics reside in
//! different memory banks, but providing a unified address space makes them
//! available to TPPs."
//!
//! Layout of the 16-bit virtual address space (all cells are 4-byte words,
//! byte-addressed with a 4-byte stride):
//!
//! | Range             | Namespace                 | Access | Context            |
//! |-------------------|---------------------------|--------|--------------------|
//! | `0x0000..0x0fff`  | per-switch statistics     | RO     | global             |
//! | `0x1000..0x1fff`  | per-port (link) statistics| RO     | packet egress port |
//! | `0x2000..0x2fff`  | per-queue statistics      | RO     | packet egress queue|
//! | `0x3000..0x3fff`  | per-packet metadata       | RO     | this packet        |
//! | `0x4000..0x4fff`  | per-link scratch SRAM     | RW     | packet egress port |
//! | `0x8000..0xffff`  | global scratch SRAM       | RW     | global             |
//!
//! Context-relative namespaces realize the paper's rule that "the address
//! 0xb000 refers to the queue size *on the link the packet will be sent
//! out*": one address means the right bank for whatever port/queue the
//! forwarding pipeline chose for this packet.
//!
//! Scratch SRAM is where network tasks keep in-network state, e.g. the
//! RCP\* per-link fair-share rate register. The control-plane agent
//! (`tpp-control`) partitions these ranges among concurrently running tasks
//! (§3.2 "Multiple tasks").

use crate::{IsaError, Result};
use std::collections::BTreeMap;

/// A 16-bit virtual address into the switch's unified statistics /
/// SRAM address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr(pub u16);

impl VirtAddr {
    /// The namespace this address falls in.
    pub fn namespace(self) -> Namespace {
        match self.0 {
            0x0000..=0x0fff => Namespace::Switch,
            0x1000..=0x1fff => Namespace::Link,
            0x2000..=0x2fff => Namespace::Queue,
            0x3000..=0x3fff => Namespace::PacketMetadata,
            0x4000..=0x4fff => Namespace::LinkSram,
            0x8000..=0xffff => Namespace::GlobalSram,
            _ => Namespace::Reserved,
        }
    }

    /// Byte offset of this address within its namespace.
    pub fn offset(self) -> u16 {
        self.0 - self.namespace().base().0
    }

    /// Word index of this address within its namespace.
    pub fn word_index(self) -> usize {
        self.offset() as usize / 4
    }

    /// True if TPPs may STORE/CSTORE to this address.
    ///
    /// Only scratch SRAM is writable; statistics and forwarding state are
    /// read-only, which is the memory-map isolation §4 relies on ("the
    /// memory map isolates critical forwarding state from state modifiable
    /// by TPPs").
    pub fn is_writable(self) -> bool {
        matches!(
            self.namespace(),
            Namespace::LinkSram | Namespace::GlobalSram
        )
    }
}

impl core::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

/// The statistics namespaces of Table 2, plus the two writable SRAM
/// regions tasks allocate from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Namespace {
    /// Per-switch (global) statistics: switch ID, flow-table version, ….
    Switch,
    /// Per-port statistics, resolved against the packet's egress port.
    Link,
    /// Per-queue statistics, resolved against the packet's egress queue.
    Queue,
    /// Per-packet metadata: input port, matched flow entry, ….
    PacketMetadata,
    /// Writable per-link scratch SRAM (e.g. RCP rate registers).
    LinkSram,
    /// Writable global scratch SRAM.
    GlobalSram,
    /// Unmapped hole in the address space.
    Reserved,
}

impl Namespace {
    /// Base address of the namespace.
    pub fn base(self) -> VirtAddr {
        VirtAddr(match self {
            Namespace::Switch => 0x0000,
            Namespace::Link => 0x1000,
            Namespace::Queue => 0x2000,
            Namespace::PacketMetadata => 0x3000,
            Namespace::LinkSram => 0x4000,
            Namespace::GlobalSram => 0x8000,
            Namespace::Reserved => 0x5000,
        })
    }

    /// Size of the namespace in bytes.
    pub fn len(self) -> usize {
        match self {
            Namespace::GlobalSram => 0x8000,
            Namespace::Reserved => 0,
            _ => 0x1000,
        }
    }

    /// True when the namespace has zero length.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

macro_rules! stats {
    ($(#[$enum_meta:meta])* $vis:vis enum $name:ident {
        $($(#[$meta:meta])* $variant:ident => ($symbol:literal, $addr:literal),)*
    }) => {
        $(#[$enum_meta])*
        $vis enum $name {
            $($(#[$meta])* $variant,)*
        }

        impl $name {
            /// All defined statistics, in address order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// The `Namespace:Statistic` mnemonic used in assembly text.
            pub fn symbol(self) -> &'static str {
                match self { $($name::$variant => $symbol,)* }
            }

            /// The virtual address the compiler maps the mnemonic to.
            pub fn addr(self) -> VirtAddr {
                match self { $($name::$variant => VirtAddr($addr),)* }
            }
        }
    };
}

stats! {
    /// Every named statistic of the reproduction's memory map. The set is a
    /// superset of Table 2's examples; each entry notes its Table 2 lineage.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Stat {
        // ---- Per-switch namespace (Table 2 row 1) ----
        /// Unique switch identifier ("Switch ID").
        SwitchId => ("Switch:SwitchID", 0x0000),
        /// Version number of the forwarding table ("flow table version
        /// number \[8\]", used by ndb).
        FlowTableVersion => ("Switch:FlowTableVersion", 0x0004),
        /// Hit counter of the global L2 table ("counters associated with
        /// the global L2 or L3 flow tables").
        L2TableHits => ("Switch:L2TableHits", 0x0008),
        /// Hit counter of the global L3 LPM table.
        L3TableHits => ("Switch:L3TableHits", 0x000c),
        /// Hit counter of the TCAM.
        TcamHits => ("Switch:TcamHits", 0x0010),
        /// Total packets processed by the pipeline.
        PacketsProcessed => ("Switch:PacketsProcessed", 0x0014),
        /// Total TPPs executed by the TCPU.
        TppsExecuted => ("Switch:TppsExecuted", 0x0018),
        /// Switch-local wall clock, nanoseconds (low 32 bits).
        WallClock => ("Switch:WallClock", 0x001c),
        /// Boot epoch: incremented every time the switch reboots and loses
        /// volatile state (SRAM, statistics). End-hosts read it to detect
        /// stale cached state after a reboot ("Millions of Little Minions"
        /// §5's fault handling).
        BootEpoch => ("Switch:BootEpoch", 0x0020),

        // ---- Per-port namespace (Table 2 row 2) ----
        /// Bytes received on the packet's egress port ("bytes received").
        RxBytes => ("Link:RX-Bytes", 0x1000),
        /// Bytes transmitted on the egress port.
        TxBytes => ("Link:TX-Bytes", 0x1004),
        /// EWMA ingress utilization of the egress link, in per-mille of
        /// capacity ("link utilization"). RCP's y(t).
        RxUtilization => ("Link:RX-Utilization", 0x1008),
        /// EWMA egress utilization of the egress link, in per-mille.
        TxUtilization => ("Link:TX-Utilization", 0x100c),
        /// Bytes dropped at the egress port ("bytes dropped").
        LinkBytesDropped => ("Link:BytesDropped", 0x1010),
        /// Bytes enqueued at the egress port ("bytes enqueued").
        LinkBytesEnqueued => ("Link:BytesEnqueued", 0x1014),
        /// Packets received on the egress port.
        RxPackets => ("Link:RX-Packets", 0x1018),
        /// Packets transmitted on the egress port.
        TxPackets => ("Link:TX-Packets", 0x101c),
        /// Link capacity in kilobits per second.
        LinkCapacityKbps => ("Link:CapacityKbps", 0x1020),
        /// Instantaneous egress queue size in bytes, as seen from the link
        /// namespace (§2.2's `[Link:QueueSize]` alias of Queue:QueueSize).
        LinkQueueSize => ("Link:QueueSize", 0x1024),
        /// Packets ECN-marked at this egress port (the §4 fixed-function
        /// comparison point).
        EcnMarked => ("Link:EcnMarked", 0x1028),
        /// Wireless channel signal-to-noise ratio in deci-dB (§2.3 "access
        /// points can annotate end-host packets with channel SNR").
        SnrDeciBel => ("Link:SnrDeciBel", 0x102c),

        // ---- Per-queue namespace (Table 2 row 3) ----
        /// Instantaneous queue occupancy in bytes, "recorded the instant
        /// the packet traversed the switch" (§2.1).
        QueueSize => ("Queue:QueueSize", 0x2000),
        /// Bytes enqueued into this queue ("bytes enqueued").
        QueueBytesEnqueued => ("Queue:BytesEnqueued", 0x2004),
        /// Bytes dropped from this queue ("bytes dropped").
        QueueBytesDropped => ("Queue:BytesDropped", 0x2008),
        /// Packets enqueued into this queue.
        QueuePacketsEnqueued => ("Queue:PacketsEnqueued", 0x200c),
        /// Packets dropped from this queue.
        QueuePacketsDropped => ("Queue:PacketsDropped", 0x2010),
        /// High-watermark of queue occupancy in bytes.
        QueueHighWatermark => ("Queue:HighWatermark", 0x2014),
        /// Configured queue limit in bytes.
        QueueLimit => ("Queue:Limit", 0x2018),

        // ---- Per-packet namespace (Table 2 row 4) ----
        /// The packet's input port ("packet's input/output port").
        InputPort => ("PacketMetadata:InputPort", 0x3000),
        /// The egress port chosen by the forwarding pipeline.
        OutputPort => ("PacketMetadata:OutputPort", 0x3004),
        /// ID of the flow entry that matched this packet ("matched flow
        /// entry \[8\]", used by ndb).
        MatchedEntryId => ("PacketMetadata:MatchedEntryID", 0x3008),
        /// Version of the matched flow entry (ndb's version stamp).
        MatchedEntryVersion => ("PacketMetadata:MatchedEntryVersion", 0x300c),
        /// The egress queue the packet was assigned to.
        QueueId => ("PacketMetadata:QueueID", 0x3010),
        /// The packet's total length in bytes.
        PacketLength => ("PacketMetadata:PacketLength", 0x3014),
        /// Arrival timestamp at this switch, nanoseconds (low 32 bits).
        ArrivalTime => ("PacketMetadata:ArrivalTime", 0x3018),
        /// Number of alternate routes the pipeline could have used
        /// ("alternate routes for a packet \[11\]").
        AlternateRoutes => ("PacketMetadata:AlternateRoutes", 0x301c),
    }
}

impl Stat {
    /// Look up a statistic by its `Namespace:Statistic` mnemonic.
    pub fn by_symbol(symbol: &str) -> Option<Stat> {
        Stat::ALL
            .iter()
            .copied()
            .find(|s| s.symbol().eq_ignore_ascii_case(symbol))
    }
}

/// The compiler's symbol table: `Namespace:Statistic` mnemonics →
/// virtual addresses.
///
/// Pre-populated with every [`Stat`]; tasks extend it with the scratch-SRAM
/// symbols the control-plane agent allocates for them (§3.2 "Multiple
/// tasks"), e.g. `Link:RCP-RateRegister`. It also resolves the indexed
/// forms `Link:Scratch[k]` and `Switch:Scratch[k]` without registration.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    symbols: BTreeMap<String, VirtAddr>,
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolTable {
    /// A table holding all built-in statistics.
    pub fn new() -> Self {
        let mut symbols = BTreeMap::new();
        for stat in Stat::ALL {
            symbols.insert(stat.symbol().to_ascii_lowercase(), stat.addr());
        }
        SymbolTable { symbols }
    }

    /// Register a task-allocated symbol (e.g. from `tpp-control`'s SRAM
    /// allocator). Returns the previous binding, if any.
    pub fn register(&mut self, symbol: &str, addr: VirtAddr) -> Option<VirtAddr> {
        self.symbols.insert(symbol.to_ascii_lowercase(), addr)
    }

    /// Resolve a mnemonic to a virtual address.
    ///
    /// Supports three forms: registered/built-in symbols
    /// (`Queue:QueueSize`), indexed link scratch (`Link:Scratch[k]`),
    /// indexed global scratch (`Switch:Scratch[k]`), and raw hex addresses
    /// (`0x2000`).
    pub fn resolve(&self, symbol: &str) -> Result<VirtAddr> {
        let key = symbol.to_ascii_lowercase();
        if let Some(addr) = self.symbols.get(&key) {
            return Ok(*addr);
        }
        if let Some(idx) = parse_indexed(&key, "link:scratch[") {
            let off = idx * 4;
            if off < Namespace::LinkSram.len() {
                return Ok(VirtAddr(Namespace::LinkSram.base().0 + off as u16));
            }
        }
        if let Some(idx) = parse_indexed(&key, "switch:scratch[") {
            let off = idx * 4;
            if off < Namespace::GlobalSram.len() {
                return Ok(VirtAddr(Namespace::GlobalSram.base().0 + off as u16));
            }
        }
        if let Some(hex) = key.strip_prefix("0x") {
            if let Ok(value) = u16::from_str_radix(hex, 16) {
                return Ok(VirtAddr(value));
            }
        }
        Err(IsaError::UnknownSymbol(symbol.to_string()))
    }

    /// Best-effort reverse lookup for disassembly: the mnemonic bound to
    /// `addr`, if any.
    pub fn symbol_for(&self, addr: VirtAddr) -> Option<&str> {
        self.symbols
            .iter()
            .find(|(_, a)| **a == addr)
            .map(|(s, _)| s.as_str())
    }
}

/// Parse `prefix<k>]` returning `k`.
fn parse_indexed(key: &str, prefix: &str) -> Option<usize> {
    let rest = key.strip_prefix(prefix)?;
    let inner = rest.strip_suffix(']')?;
    inner.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_partition_addresses() {
        assert_eq!(VirtAddr(0x0000).namespace(), Namespace::Switch);
        assert_eq!(VirtAddr(0x0fff).namespace(), Namespace::Switch);
        assert_eq!(VirtAddr(0x1000).namespace(), Namespace::Link);
        assert_eq!(VirtAddr(0x2000).namespace(), Namespace::Queue);
        assert_eq!(VirtAddr(0x3abc).namespace(), Namespace::PacketMetadata);
        assert_eq!(VirtAddr(0x4000).namespace(), Namespace::LinkSram);
        assert_eq!(VirtAddr(0x8000).namespace(), Namespace::GlobalSram);
        assert_eq!(VirtAddr(0xffff).namespace(), Namespace::GlobalSram);
        assert_eq!(VirtAddr(0x5000).namespace(), Namespace::Reserved);
    }

    #[test]
    fn only_sram_is_writable() {
        assert!(!Stat::QueueSize.addr().is_writable());
        assert!(!Stat::SwitchId.addr().is_writable());
        assert!(!Stat::InputPort.addr().is_writable());
        assert!(VirtAddr(0x4000).is_writable());
        assert!(VirtAddr(0x8004).is_writable());
    }

    #[test]
    fn all_stats_have_distinct_addresses_and_symbols() {
        use std::collections::HashSet;
        let addrs: HashSet<_> = Stat::ALL.iter().map(|s| s.addr()).collect();
        assert_eq!(addrs.len(), Stat::ALL.len());
        let syms: HashSet<_> = Stat::ALL.iter().map(|s| s.symbol()).collect();
        assert_eq!(syms.len(), Stat::ALL.len());
        // Every stat address must live in the namespace its symbol claims.
        for stat in Stat::ALL {
            let ns = stat.addr().namespace();
            let prefix = stat.symbol().split(':').next().unwrap();
            match prefix {
                "Switch" => assert_eq!(ns, Namespace::Switch),
                "Link" => assert_eq!(ns, Namespace::Link),
                "Queue" => assert_eq!(ns, Namespace::Queue),
                "PacketMetadata" => assert_eq!(ns, Namespace::PacketMetadata),
                other => panic!("unexpected namespace prefix {other}"),
            }
        }
    }

    #[test]
    fn table2_statistics_present() {
        // The examples Table 2 lists must all resolve.
        for symbol in [
            "Switch:SwitchID",
            "Switch:FlowTableVersion",
            "Link:RX-Utilization",
            "Link:RX-Bytes",
            "Link:BytesDropped",
            "Link:BytesEnqueued",
            "Queue:BytesEnqueued",
            "Queue:BytesDropped",
            "PacketMetadata:InputPort",
            "PacketMetadata:OutputPort",
            "PacketMetadata:MatchedEntryID",
            "PacketMetadata:AlternateRoutes",
        ] {
            assert!(Stat::by_symbol(symbol).is_some(), "missing {symbol}");
        }
    }

    #[test]
    fn symbol_table_resolution() {
        let mut table = SymbolTable::new();
        assert_eq!(
            table.resolve("Queue:QueueSize").unwrap(),
            Stat::QueueSize.addr()
        );
        // Case-insensitive, as assemblers usually are.
        assert_eq!(
            table.resolve("queue:queuesize").unwrap(),
            Stat::QueueSize.addr()
        );
        // Indexed scratch forms.
        assert_eq!(table.resolve("Link:Scratch[0]").unwrap(), VirtAddr(0x4000));
        assert_eq!(table.resolve("Link:Scratch[3]").unwrap(), VirtAddr(0x400c));
        assert_eq!(
            table.resolve("Switch:Scratch[2]").unwrap(),
            VirtAddr(0x8008)
        );
        // Raw hex.
        assert_eq!(table.resolve("0x2000").unwrap(), VirtAddr(0x2000));
        // Task registration, e.g. by the control-plane RCP allocator.
        assert!(table.resolve("Link:RCP-RateRegister").is_err());
        table.register("Link:RCP-RateRegister", VirtAddr(0x4000));
        assert_eq!(
            table.resolve("Link:RCP-RateRegister").unwrap(),
            VirtAddr(0x4000)
        );
        assert_eq!(table.symbol_for(VirtAddr(0x2000)), Some("queue:queuesize"));
    }

    #[test]
    fn scratch_index_out_of_range_rejected() {
        let table = SymbolTable::new();
        assert!(table.resolve("Link:Scratch[1024]").is_err());
    }
}
