//! A validated sequence of TPP instructions.

use crate::instruction::Instruction;
use crate::Result;

/// An ordered list of instructions — the program part of a TPP.
///
/// `Program` sits between the assembler (`tpp-isa::asm`) and the wire
/// format (`tpp-wire`): it encodes to the 4-byte instruction words carried
/// in the packet and decodes back from them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Wrap a list of instructions.
    pub fn new(instructions: Vec<Instruction>) -> Self {
        Program { instructions }
    }

    /// The instructions in execution order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterate over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.instructions.iter()
    }

    /// Encode to the 4-byte words stored in a TPP's instruction section.
    pub fn encode_words(&self) -> Result<Vec<u32>> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Decode from a TPP's instruction words.
    pub fn decode_words(words: &[u32]) -> Result<Program> {
        let instructions = words
            .iter()
            .map(|w| Instruction::decode(*w))
            .collect::<Result<Vec<_>>>()?;
        Ok(Program { instructions })
    }

    /// Wire-format size of the instruction section in bytes
    /// (4 bytes/instruction, §3.3).
    pub fn wire_len(&self) -> usize {
        self.instructions.len() * 4
    }

    /// True if any instruction writes switch state. Used by the edge
    /// security policy to distinguish read-only telemetry TPPs from
    /// state-mutating ones (§4).
    pub fn writes_switch(&self) -> bool {
        self.instructions.iter().any(Instruction::writes_switch)
    }

    /// Upper bound on the packet-memory words a single execution of this
    /// program can touch *past the current stack pointer / hop base*.
    ///
    /// End-hosts use this to "preallocate enough packet memory" (§2.1):
    /// `words_per_hop() * expected_hops` for stack/hop programs.
    pub fn words_per_hop(&self) -> usize {
        use crate::instruction::PacketOperand;
        let mut stack_words = 0usize;
        let mut max_offset_block = 0usize;
        for insn in &self.instructions {
            match insn {
                Instruction::Push { .. } | Instruction::PushImm(_) => stack_words += 1,
                Instruction::Load { dst: op, .. } | Instruction::Store { src: op, .. } => {
                    match op {
                        PacketOperand::Sp => stack_words = stack_words.max(1),
                        PacketOperand::Hop(o) | PacketOperand::Abs(o) => {
                            max_offset_block = max_offset_block.max(*o as usize + 1)
                        }
                    }
                }
                Instruction::Cstore { mem, .. } => match mem {
                    PacketOperand::Sp => stack_words = stack_words.max(3),
                    PacketOperand::Hop(o) | PacketOperand::Abs(o) => {
                        max_offset_block = max_offset_block.max(*o as usize + 3)
                    }
                },
                Instruction::Cexec { mem, .. } => match mem {
                    PacketOperand::Sp => stack_words = stack_words.max(2),
                    PacketOperand::Hop(o) | PacketOperand::Abs(o) => {
                        max_offset_block = max_offset_block.max(*o as usize + 2)
                    }
                },
                _ => {}
            }
        }
        stack_words.max(max_offset_block)
    }
}

impl core::fmt::Display for Program {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", crate::asm::disassemble(self))
    }
}

impl IntoIterator for Program {
    type Item = Instruction;
    type IntoIter = std::vec::IntoIter<Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Stat;
    use crate::asm::assemble;
    use crate::instruction::PacketOperand;
    use crate::VirtAddr;

    #[test]
    fn encode_decode_roundtrip() {
        let program =
            assemble("PUSH [Queue:QueueSize]\nLOAD [Switch:SwitchID], [Packet:Hop[0]]\nADD")
                .unwrap();
        let words = program.encode_words().unwrap();
        assert_eq!(words.len(), 3);
        let decoded = Program::decode_words(&words).unwrap();
        assert_eq!(decoded, program);
    }

    #[test]
    fn wire_len_is_four_bytes_per_instruction() {
        let program = assemble("NOP\nNOP\nNOP\nNOP\nNOP").unwrap();
        assert_eq!(program.wire_len(), 20); // the §3.3 "20 bytes/packet"
    }

    #[test]
    fn write_detection() {
        assert!(!assemble("PUSH [Queue:QueueSize]").unwrap().writes_switch());
        assert!(assemble("STORE [Switch:Scratch[0]], [Packet:0]")
            .unwrap()
            .writes_switch());
        assert!(assemble("POP [Switch:Scratch[0]]").unwrap().writes_switch());
        assert!(assemble("CSTORE [Switch:Scratch[0]], [Packet:0]")
            .unwrap()
            .writes_switch());
    }

    #[test]
    fn words_per_hop_accounting() {
        // The §2.2 collect program pushes 4 words per hop.
        let collect = Program::new(vec![
            crate::Instruction::Push {
                addr: Stat::SwitchId.addr(),
            },
            crate::Instruction::Push {
                addr: Stat::LinkQueueSize.addr(),
            },
            crate::Instruction::Push {
                addr: Stat::RxUtilization.addr(),
            },
            crate::Instruction::Push {
                addr: VirtAddr(0x4000),
            },
        ]);
        assert_eq!(collect.words_per_hop(), 4);

        // Hop-addressed load into slot 1 needs 2 words per hop.
        let hop = Program::new(vec![crate::Instruction::Load {
            addr: Stat::SwitchId.addr(),
            dst: PacketOperand::Hop(1),
        }]);
        assert_eq!(hop.words_per_hop(), 2);

        // CSTORE's [cond, src, old] block needs 3 words.
        let cstore = Program::new(vec![crate::Instruction::Cstore {
            addr: VirtAddr(0x8000),
            mem: PacketOperand::Abs(0),
        }]);
        assert_eq!(cstore.words_per_hop(), 3);
    }
}
