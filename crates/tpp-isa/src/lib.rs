//! # tpp-isa — the Tiny Packet Program instruction set
//!
//! This crate is the contract between end-hosts and switch ASICs: the
//! instruction set of Table 1, the 4-byte instruction encoding of §3.3, the
//! unified memory-mapped virtual address space of §3.2.1 / Table 2, and an
//! assembler for the paper's x86-like mnemonic syntax:
//!
//! ```text
//! PUSH [Queue:QueueSize]
//! LOAD [Switch:SwitchID], [Packet:Hop[0]]
//! CEXEC [Switch:SwitchID], [Packet:0]
//! STORE [Link:RCP-RateRegister], [Packet:2]
//! ```
//!
//! The crate is deliberately independent of any ASIC implementation:
//! `tpp-asic` consumes [`Instruction`]s and resolves [`VirtAddr`]esses
//! against its register banks, while end-host code uses the
//! [`asm::Assembler`] and [`SymbolTable`] to compile mnemonics into the
//! instruction words carried by `tpp-wire` packets — exactly the
//! compile-time mapping the paper describes ("\[Queue:QueueSize\] will be
//! compiled to a virtual memory address (say) 0xb000 at compile time", §2).
//!
//! Instruction-set scope: the core six instructions of Table 1
//! (`LOAD`, `STORE`, `PUSH`, `POP`, `CSTORE`, `CEXEC`) plus a small
//! stack-arithmetic extension (`ADD`, `SUB`, `AND`, `OR`, `PUSHI`, `NOP`)
//! covering the "simple arithmetic" the text mentions (§1: "read, write, or
//! perform arithmetic using data on the ASIC"; §3.3 budgets 1 cycle for
//! "read/write/simple arithmetic instructions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod asm;
pub mod instruction;
pub mod lint;
pub mod program;
pub mod programs;

pub use address::{Namespace, Stat, SymbolTable, VirtAddr};
pub use asm::{assemble, disassemble, Assembler};
pub use instruction::{
    canonicalize, decode_program, Instruction, Opcode, PacketOperand, MAX_WORD_OFFSET,
};
pub use lint::{lint, Lint};
pub use program::Program;

/// Errors arising while encoding, decoding, assembling or disassembling
/// TPP instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// An instruction word carries an opcode outside the defined set.
    UnknownOpcode(u8),
    /// An instruction word carries an undefined packet-operand mode.
    BadOperandMode(u8),
    /// Assembly text failed to parse.
    Parse {
        /// 1-based source line of the failure.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A `[Namespace:Statistic]` mnemonic is not in the symbol table.
    UnknownSymbol(String),
    /// A packet-memory word offset exceeds the 9-bit encodable range.
    OffsetTooLarge(u32),
}

impl core::fmt::Display for IsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsaError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            IsaError::BadOperandMode(m) => write!(f, "bad packet operand mode {m}"),
            IsaError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            IsaError::UnknownSymbol(sym) => write!(f, "unknown symbol [{sym}]"),
            IsaError::OffsetTooLarge(off) => {
                write!(f, "packet word offset {off} exceeds encodable range")
            }
        }
    }
}

impl std::error::Error for IsaError {}

/// Convenience alias used across the ISA crate.
pub type Result<T> = core::result::Result<T, IsaError>;
