//! Property tests: instruction words and assembly text round-trip, and
//! arbitrary words never panic the decoder.

use proptest::prelude::*;
use tpp_isa::{assemble, disassemble, Instruction, PacketOperand, Program, VirtAddr};

/// Strategy over valid instructions.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let operand = prop_oneof![
        Just(PacketOperand::Sp),
        (0u16..512).prop_map(PacketOperand::Hop),
        (0u16..512).prop_map(PacketOperand::Abs),
    ];
    let addr = any::<u16>().prop_map(VirtAddr);
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Add),
        Just(Instruction::Sub),
        Just(Instruction::And),
        Just(Instruction::Or),
        any::<u16>().prop_map(Instruction::PushImm),
        addr.clone().prop_map(|addr| Instruction::Push { addr }),
        addr.clone().prop_map(|addr| Instruction::Pop { addr }),
        (addr.clone(), operand.clone()).prop_map(|(addr, dst)| Instruction::Load { addr, dst }),
        (addr.clone(), operand.clone()).prop_map(|(addr, src)| Instruction::Store { addr, src }),
        (addr.clone(), operand.clone()).prop_map(|(addr, mem)| Instruction::Cstore { addr, mem }),
        (addr, operand).prop_map(|(addr, mem)| Instruction::Cexec { addr, mem }),
    ]
}

proptest! {
    /// encode ∘ decode = identity over all valid instructions.
    #[test]
    fn word_roundtrip(insn in arb_instruction()) {
        let word = insn.encode().unwrap();
        prop_assert_eq!(Instruction::decode(word).unwrap(), insn);
    }

    /// The decoder never panics on arbitrary 32-bit words.
    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Instruction::decode(word);
    }

    /// Decoding an arbitrary word either fails or re-encodes to an
    /// equivalent instruction (the encoding is canonical for the fields
    /// an instruction actually uses).
    #[test]
    fn decode_encode_stability(word in any::<u32>()) {
        if let Ok(insn) = Instruction::decode(word) {
            let word2 = insn.encode().unwrap();
            prop_assert_eq!(Instruction::decode(word2).unwrap(), insn);
        }
    }

    /// Program-level round-trip through words.
    #[test]
    fn program_roundtrip(insns in proptest::collection::vec(arb_instruction(), 0..32)) {
        let program = Program::new(insns);
        let words = program.encode_words().unwrap();
        prop_assert_eq!(Program::decode_words(&words).unwrap(), program);
    }

    /// Disassembly of any program re-assembles to the same program
    /// (assembler ⇄ disassembler are inverses on canonical text).
    #[test]
    fn asm_roundtrip(insns in proptest::collection::vec(arb_instruction(), 1..16)) {
        let program = Program::new(insns);
        let text = disassemble(&program);
        let again = assemble(&text).unwrap();
        prop_assert_eq!(again, program);
    }
}

proptest! {
    /// The assembler never panics on arbitrary text — it either parses
    /// or returns a positioned error.
    #[test]
    fn assembler_never_panics(source in "\\PC{0,200}") {
        let _ = assemble(&source);
    }

    /// Arbitrary text built from assembly-ish tokens: same guarantee,
    /// but with far more near-miss inputs that reach deeper code paths.
    #[test]
    fn assembler_never_panics_on_near_assembly(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("PUSH".to_string()),
                Just("LOAD".to_string()),
                Just("CSTORE".to_string()),
                Just("CEXEC".to_string()),
                Just("[Switch:SwitchID]".to_string()),
                Just("[Packet:Hop[1]]".to_string()),
                Just("[Packet:".to_string()),
                Just("]".to_string()),
                Just(",".to_string()),
                Just("\n".to_string()),
                Just("0x".to_string()),
                Just("99999999999".to_string()),
                Just("[Link:Scratch[99999]]".to_string()),
            ],
            0..24,
        )
    ) {
        let source = tokens.join(" ");
        if let Ok(program) = assemble(&source) {
            // Whatever parsed must also survive the rest of the
            // toolchain.
            let words = program.encode_words().unwrap();
            prop_assert_eq!(Program::decode_words(&words).unwrap(), program.clone());
            let _ = tpp_isa::lint(&program, 4, 16);
        }
    }

    /// The linter never panics either, over arbitrary valid programs and
    /// arbitrary plans.
    #[test]
    fn lint_never_panics(insns in proptest::collection::vec(arb_instruction(), 0..24),
                         hops in 0usize..16,
                         mem in 0usize..64) {
        let program = Program::new(insns);
        let _ = tpp_isa::lint(&program, hops.max(1), mem);
    }
}
