//! The `tpp-top` table: one screen of fleet health.
//!
//! Renders, per switch: packet/violation counts and span latency
//! percentiles from the dataplane profile, the hottest egress queue,
//! and current occupancy; then per-stage latency breakdowns, the TCPU
//! opcode mix, ring-series peaks, and the collector's end-host view
//! with its divergence-vs-ground-truth verdict. Pure function of
//! simulator state → `String`, so the same renderer drives the live
//! `tpp_top` binary and the golden snapshot test.

use std::fmt::Write;

use tpp_asic::ProfStage;
use tpp_netsim::{Simulator, SwitchId};

use crate::collector::Collector;

fn fmt_or_dash(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Render the `tpp-top` snapshot table for the fleet, plus the
/// collector's measurement summary when one is supplied.
pub fn render_top(sim: &Simulator, collector: Option<&Collector>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tpp-top | t={}ns | switches={} hosts={}",
        sim.now(),
        sim.num_switches(),
        sim.num_hosts()
    );

    let _ = writeln!(
        out,
        "\n{:<8} {:>8} {:>8} {:>5} {:>18} {:>14} {:>8}",
        "SWITCH", "PKTS", "SAMPLED", "VIOL", "SPAN p50/p99/max", "HOTQ", "OCC_B"
    );
    for i in 0..sim.num_switches() {
        let asic = sim.switch(SwitchId(i));
        let id = format!("0x{:02x}", asic.switch_id());
        let (occ, _) = asic.queue_occupancy();
        let (hp, hq, hw) = asic.hottest_queue();
        let hot = format!("p{hp}:q{hq} {hw}");
        match asic.profile() {
            Some(p) => {
                let t = p.total_stat();
                let span = format!("{}/{}/{}", t.p50(), t.p99(), t.max());
                let _ = writeln!(
                    out,
                    "{:<8} {:>8} {:>8} {:>5} {:>18} {:>14} {:>8}",
                    id,
                    p.packets(),
                    p.sampled(),
                    p.budget_violations(),
                    span,
                    hot,
                    occ
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<8} {:>8} {:>8} {:>5} {:>18} {:>14} {:>8}",
                    id, "-", "-", "-", "-", hot, occ
                );
            }
        }
    }

    let profiled: Vec<usize> = (0..sim.num_switches())
        .filter(|&i| sim.switch(SwitchId(i)).is_profiled())
        .collect();
    if !profiled.is_empty() {
        let _ = writeln!(out, "\nSTAGE LATENCY cycles (p50/p99/max)");
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "SWITCH", "PARSER", "TABLES", "TCPU", "MMU", "SCHED"
        );
        for &i in &profiled {
            let asic = sim.switch(SwitchId(i));
            let p = asic.profile().expect("profiled");
            let cell = |s: ProfStage| {
                let st = p.stage(s);
                format!("{}/{}/{}", st.p50(), st.p99(), st.max())
            };
            let _ = writeln!(
                out,
                "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                format!("0x{:02x}", asic.switch_id()),
                cell(ProfStage::Parser),
                cell(ProfStage::Tables),
                cell(ProfStage::Tcpu),
                cell(ProfStage::Mmu),
                cell(ProfStage::Scheduler),
            );
        }

        let _ = writeln!(out, "\nTCPU OPCODES (executed, fleet-wide)");
        let mut opcodes: Vec<(&'static str, u64)> = Vec::new();
        for &i in &profiled {
            let p = sim.switch(SwitchId(i)).profile().expect("profiled");
            for (op, n) in p.opcode_breakdown() {
                match opcodes.iter_mut().find(|(m, _)| *m == op.mnemonic()) {
                    Some(slot) => slot.1 += n,
                    None => opcodes.push((op.mnemonic(), n)),
                }
            }
        }
        opcodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (m, n) in opcodes {
            let _ = writeln!(out, "  {m:<8} {n}");
        }
    }

    if let Some(set) = sim.series() {
        let _ = writeln!(out, "\nSERIES peaks over {} ticks", set.ticks());
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>12} {:>12} {:>10}",
            "SWITCH", "QUEUE_MAX_B", "UTIL_PM", "DROP_B/TICK", "FLOWHIT_PM"
        );
        for sw in &set.switches {
            let peak = |m: &str| sw.get(m).map(|s| s.max_value()).unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<8} {:>12} {:>12} {:>12} {:>10}",
                format!("0x{:02x}", sw.switch_id),
                peak("queue.max_bytes"),
                peak("link.tx_util_permille"),
                peak("drop.bytes_per_tick"),
                peak("cache.flow_hit_permille"),
            );
        }
    }

    if let Some(c) = collector {
        let report = c.divergence_vs_sim(sim);
        let _ = writeln!(
            out,
            "\nCOLLECTOR probes={} echoes={} lost={} samples={} rtt p50/p99/max={}/{}/{}ns",
            c.probes_sent,
            c.echoes_received,
            report.probes_lost,
            c.samples(),
            c.rtt().p50(),
            c.rtt().p99(),
            c.rtt().max(),
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>9} {:>10} {:>10}",
            "SWITCH", "OBS_LAST", "TRUTH_B", "DIVERG_B", "SAMPLES", "OBS_MAX_B"
        );
        for d in &report.per_switch {
            let (count, obs_max) = c
                .queues()
                .filter(|((sw, _), _)| *sw == d.switch_id)
                .fold((0, 0), |(n, m), (_, v)| {
                    (n + v.hist.count(), m.max(v.hist.max()))
                });
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>10} {:>9} {:>10} {:>10}",
                format!("0x{:02x}", d.switch_id),
                fmt_or_dash(d.observed_bytes),
                d.ground_truth_bytes,
                d.abs_diff_bytes,
                count,
                obs_max,
            );
        }
        let verdict = if report.is_exact() {
            "exact (end-host view == ground truth)"
        } else {
            "DIVERGED"
        };
        let _ = writeln!(
            out,
            "divergence: {verdict}, max {} bytes",
            report.max_abs_bytes
        );
    }

    out
}
