//! # tpp-obs — the observability plane
//!
//! The paper's thesis is that TPPs make the *network itself* observable
//! at packet timescales: end-hosts read switch state by sending tiny
//! programs instead of waiting for management-plane polls. This crate
//! is the layer that turns the reproduction's raw signals into operator
//! artifacts, sitting above `tpp-telemetry` (registries, trace sinks)
//! and drawing on three sources:
//!
//! 1. **Dataplane spans** — `tpp-asic`'s opt-in [`PipelineProfile`]
//!    attributes cycles to parser/tables/TCPU/MMU/scheduler stages per
//!    packet and checks the §3 cut-through latency budget (300 ns at
//!    1 GHz).
//! 2. **Simulator series** — `tpp-netsim`'s ring-buffer time series
//!    sample queue depth, utilization, drop/fault and cache-hit rates
//!    every stats tick.
//! 3. **TPP measurements** — the [`Collector`] aggregates what the
//!    *end-hosts* observed via probes (§2.1 queue samples, RTTs) and
//!    cross-checks it against simulator ground truth: if TPPs are a
//!    sound measurement plane, the two views must agree whenever the
//!    network is quiescent and lossless.
//!
//! Exports: [`prometheus_snapshot`] (Prometheus text format),
//! [`series_jsonl`] (one JSON object per series, for offline plotting),
//! and [`render_top`] — the `tpp-top` live table of hot queues, stage
//! latencies, budget violations and collector divergence.
//!
//! On top of the raw sources sits the dashboard stack: [`window`] folds
//! ring-series samples into fixed-width min/mean/max/p50/p99 windows,
//! [`snapshot`] aggregates switches, transport, ECMP spread and bonded
//! paths into one [`FleetSnapshot`], and [`render`] turns a snapshot
//! into a fixed-size character frame as a pure function — which is why
//! CI can golden-pin dashboard frames byte-for-byte.
//!
//! [`PipelineProfile`]: tpp_asic::PipelineProfile

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod render;
pub mod snapshot;
pub mod top;
pub mod window;

pub use collector::{Collector, DivergenceReport, PathView, QueueView, SwitchDivergence};
pub use export::{
    parse_series_jsonl, prometheus_snapshot, sanitize_metric_name, series_jsonl, SeriesDump,
};
pub use render::{render_dashboard, render_profile_diff, DashState, FrameBuf, Tab};
pub use snapshot::{FleetSnapshot, SortKey};
pub use top::render_top;
pub use window::{WindowAgg, WindowedSeries};
