//! [`FleetSnapshot`] — one queryable view of everything the obs plane
//! knows at an instant.
//!
//! The dashboard renderer is a pure function, so everything it draws
//! must first be *captured* into plain data: per-switch dataplane
//! profile numbers and windowed ring-series, the collector's end-host
//! view (probe RTTs, divergence), fleet-wide transport counters, ECMP
//! per-uplink spread, and bonded-path health. [`FleetSnapshot::capture`]
//! reads the simulator and a [`Collector`] once; after that the
//! snapshot owns every number, and rendering (or diffing, or sorting)
//! never touches live state again. That split is what lets CI pin
//! frames byte-for-byte: same snapshot in, same bytes out.

use std::collections::BTreeMap;

use tpp_host::bonding::PathHealth;
use tpp_host::TransportStats;
use tpp_netsim::{Simulator, SwitchId, SWITCH_SERIES_METRICS};

use crate::collector::Collector;
use crate::window::WindowedSeries;

/// One switch's numbers: dataplane profile, hottest queue, and the
/// windowed fold of each of its ring series.
#[derive(Debug, Clone)]
pub struct SwitchRow {
    /// Dataplane `Switch:SwitchID`.
    pub switch_id: u32,
    /// Packets through the pipeline (0 when unprofiled).
    pub packets: u64,
    /// Packets the profiler sampled.
    pub sampled: u64,
    /// 300 ns cut-through budget violations.
    pub violations: u64,
    /// Span latency percentiles, cycles (p50, p99, max).
    pub span: (u64, u64, u64),
    /// Hottest egress queue `(port, queue, peak bytes)`.
    pub hot: (u16, u16, u64),
    /// Current total egress occupancy, bytes.
    pub occupancy_bytes: u64,
    /// Windowed fold of each ring-series metric
    /// ([`SWITCH_SERIES_METRICS`] names).
    pub windows: BTreeMap<&'static str, WindowedSeries>,
}

/// One ECMP-spread uplink: tx frames and share of the spread total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UplinkRow {
    /// Owning switch's dataplane id.
    pub switch_id: u32,
    /// Egress port.
    pub port: u16,
    /// Frames transmitted over the run.
    pub tx_frames: u64,
    /// Share of the fleet-wide uplink tx total, permille.
    pub share_permille: u64,
}

/// One bonded path's health summary.
#[derive(Debug, Clone)]
pub struct BondPathRow {
    /// Path index at the sender.
    pub path: usize,
    /// Health at capture time.
    pub health: PathHealth,
    /// Probes sent / echoes received / losses charged.
    pub probes: (u64, u64, u64),
    /// Queue-depth EWMA distribution (p50, p99, max), bytes.
    pub queue: (u64, u64, u64),
    /// TX-utilization EWMA distribution (p50, p99, max), permille.
    pub util: (u64, u64, u64),
    /// Health transitions over the run.
    pub transitions: u64,
}

/// Fleet-wide transport aggregate plus the FCT distribution.
#[derive(Debug, Clone)]
pub struct TransportView {
    /// Merged counters of every ingested host.
    pub stats: TransportStats,
    /// Flow-completion-time percentiles (p50, p99, max), ns.
    pub fct: (u64, u64, u64),
    /// Completed FCT samples.
    pub fct_count: u64,
}

/// The collector's end-host summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectorSummary {
    /// Probes the monitored hosts sent.
    pub probes_sent: u64,
    /// Echoes received and decoded.
    pub echoes_received: u64,
    /// Queue samples ingested.
    pub samples: u64,
    /// Probe RTT percentiles (p50, p99, max), ns.
    pub rtt: (u64, u64, u64),
    /// Worst observed-vs-ground-truth divergence, bytes.
    pub divergence_max_bytes: u64,
}

/// Everything the dashboard can draw, captured at one instant.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Simulation time of the capture, ns.
    pub t_ns: u64,
    /// Hosts in the fleet.
    pub num_hosts: usize,
    /// Stats ticks the series recorded (0 when series are off).
    pub ticks: u64,
    /// Window width the series were folded into, ns.
    pub window_ns: u64,
    /// Per-switch rows, in simulator index order.
    pub switches: Vec<SwitchRow>,
    /// Windowed fleet-wide series (fault/loss rates), by metric name.
    pub fleet_windows: BTreeMap<&'static str, WindowedSeries>,
    /// Fleet TCPU opcode mix `(mnemonic, executed)`, descending.
    pub opcodes: Vec<(&'static str, u64)>,
    /// Transport aggregate, when any host's stats were ingested.
    pub transport: Option<TransportView>,
    /// ECMP uplink spread, in `(switch, port)` order.
    pub uplinks: Vec<UplinkRow>,
    /// Bonded-path health rows, in path order.
    pub bond_paths: Vec<BondPathRow>,
    /// The collector's own summary.
    pub collector: CollectorSummary,
}

impl FleetSnapshot {
    /// Capture the fleet: read the simulator's switches and series plus
    /// the collector's aggregates, folding every series into
    /// `window_ns` windows. Pure read — capturing never perturbs the
    /// simulation or the collector.
    pub fn capture(sim: &Simulator, collector: &Collector, window_ns: u64) -> FleetSnapshot {
        let series = sim.series();
        let mut switches = Vec::with_capacity(sim.num_switches());
        let mut opcode_acc: Vec<(&'static str, u64)> = Vec::new();
        for i in 0..sim.num_switches() {
            let asic = sim.switch(SwitchId(i));
            let (occ, _) = asic.queue_occupancy();
            let (hp, hq, hw) = asic.hottest_queue();
            let (packets, sampled, violations, span) = match asic.profile() {
                Some(p) => {
                    let t = p.total_stat();
                    for (op, n) in p.opcode_breakdown() {
                        match opcode_acc.iter_mut().find(|(m, _)| *m == op.mnemonic()) {
                            Some(slot) => slot.1 += n,
                            None => opcode_acc.push((op.mnemonic(), n)),
                        }
                    }
                    (
                        p.packets(),
                        p.sampled(),
                        p.budget_violations(),
                        (t.p50(), t.p99(), t.max()),
                    )
                }
                None => (0, 0, 0, (0, 0, 0)),
            };
            let mut windows = BTreeMap::new();
            if let Some(set) = series {
                if let Some(sw) = set.switches.get(i) {
                    for &metric in SWITCH_SERIES_METRICS {
                        if let Some(s) = sw.get(metric) {
                            windows.insert(metric, WindowedSeries::from_ring(s, window_ns));
                        }
                    }
                }
            }
            switches.push(SwitchRow {
                switch_id: asic.switch_id(),
                packets,
                sampled,
                violations,
                span,
                hot: (hp, hq.into(), hw),
                occupancy_bytes: occ,
                windows,
            });
        }
        opcode_acc.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

        let mut fleet_windows = BTreeMap::new();
        if let Some(set) = series {
            for (metric, s) in set.fleet_iter() {
                fleet_windows.insert(metric, WindowedSeries::from_ring(s, window_ns));
            }
        }

        let transport = (collector.transport() != &TransportStats::default()
            || collector.fct().count() > 0)
            .then(|| {
                let fct = collector.fct();
                TransportView {
                    stats: *collector.transport(),
                    fct: (fct.p50(), fct.p99(), fct.max()),
                    fct_count: fct.count(),
                }
            });

        let uplink_total: u64 = collector.uplinks().map(|(_, tx)| tx).sum();
        let uplinks = collector
            .uplinks()
            .map(|(&(switch_id, port), tx)| UplinkRow {
                switch_id,
                port,
                tx_frames: tx,
                share_permille: (tx * 1000).checked_div(uplink_total).unwrap_or(0),
            })
            .collect();

        let bond_paths = collector
            .paths()
            .map(|(path, v)| BondPathRow {
                path,
                health: v.final_health,
                probes: (v.probes_sent, v.echoes_received, v.probes_lost),
                queue: (v.queue_hist.p50(), v.queue_hist.p99(), v.queue_hist.max()),
                util: (v.util_hist.p50(), v.util_hist.p99(), v.util_hist.max()),
                transitions: v.transitions.len() as u64,
            })
            .collect();

        let report = collector.divergence_vs_sim(sim);
        let rtt = collector.rtt();
        FleetSnapshot {
            t_ns: sim.now(),
            num_hosts: sim.num_hosts(),
            ticks: series.map_or(0, |s| s.ticks()),
            window_ns,
            switches,
            fleet_windows,
            opcodes: opcode_acc,
            transport,
            uplinks,
            bond_paths,
            collector: CollectorSummary {
                probes_sent: collector.probes_sent,
                echoes_received: collector.echoes_received,
                samples: collector.samples(),
                rtt: (rtt.p50(), rtt.p99(), rtt.max()),
                divergence_max_bytes: report.max_abs_bytes,
            },
        }
    }

    /// Indices of [`Self::switches`] ordered by `key` (descending for
    /// load metrics, ascending for ids) — the sortable fleet table.
    pub fn sorted_switches(&self, key: SortKey) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.switches.len()).collect();
        match key {
            SortKey::SwitchId => idx.sort_by_key(|&i| self.switches[i].switch_id),
            SortKey::Violations => {
                idx.sort_by_key(|&i| {
                    let r = &self.switches[i];
                    (std::cmp::Reverse(r.violations), r.switch_id)
                });
            }
            SortKey::HotBytes => {
                idx.sort_by_key(|&i| {
                    let r = &self.switches[i];
                    (std::cmp::Reverse(r.hot.2), r.switch_id)
                });
            }
            SortKey::Packets => {
                idx.sort_by_key(|&i| {
                    let r = &self.switches[i];
                    (std::cmp::Reverse(r.packets), r.switch_id)
                });
            }
        }
        idx
    }
}

/// Fleet-table sort orders (the dashboard's `s` key cycles these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortKey {
    /// Ascending dataplane id (the stable default).
    SwitchId,
    /// Budget violations, descending.
    Violations,
    /// Hottest-queue bytes, descending.
    HotBytes,
    /// Pipeline packets, descending.
    Packets,
}

impl SortKey {
    /// All orders, in `s`-key cycle order.
    pub const ALL: [SortKey; 4] = [
        SortKey::SwitchId,
        SortKey::Violations,
        SortKey::HotBytes,
        SortKey::Packets,
    ];

    /// Column label shown in the header bar.
    pub fn label(self) -> &'static str {
        match self {
            SortKey::SwitchId => "switch",
            SortKey::Violations => "viol",
            SortKey::HotBytes => "hotq",
            SortKey::Packets => "pkts",
        }
    }

    /// The next order in the cycle.
    pub fn next(self) -> SortKey {
        let i = SortKey::ALL.iter().position(|&k| k == self).unwrap_or(0);
        SortKey::ALL[(i + 1) % SortKey::ALL.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_keys_cycle_through_all() {
        let mut k = SortKey::SwitchId;
        for _ in 0..SortKey::ALL.len() {
            k = k.next();
        }
        assert_eq!(k, SortKey::SwitchId);
    }

    #[test]
    fn sorted_switches_orders_by_key() {
        let row = |id: u32, viol: u64, hot: u64| SwitchRow {
            switch_id: id,
            packets: id as u64,
            sampled: 0,
            violations: viol,
            span: (0, 0, 0),
            hot: (0, 0, hot),
            occupancy_bytes: 0,
            windows: BTreeMap::new(),
        };
        let snap = FleetSnapshot {
            t_ns: 0,
            num_hosts: 0,
            ticks: 0,
            window_ns: 1,
            switches: vec![row(0x10, 5, 100), row(0x11, 9, 50), row(0x12, 5, 200)],
            fleet_windows: BTreeMap::new(),
            opcodes: Vec::new(),
            transport: None,
            uplinks: Vec::new(),
            bond_paths: Vec::new(),
            collector: CollectorSummary::default(),
        };
        assert_eq!(snap.sorted_switches(SortKey::SwitchId), vec![0, 1, 2]);
        assert_eq!(snap.sorted_switches(SortKey::Violations), vec![1, 0, 2]);
        assert_eq!(snap.sorted_switches(SortKey::HotBytes), vec![2, 0, 1]);
        assert_eq!(snap.sorted_switches(SortKey::Packets), vec![2, 1, 0]);
    }
}
