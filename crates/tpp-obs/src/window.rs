//! Windowed aggregation over raw time series.
//!
//! The dashboard never draws raw samples: it folds them into
//! fixed-width time windows first, so one glyph of a sparkline and one
//! row of a table describe a *window* — min/mean/max/p50/p99 over every
//! sample whose timestamp falls inside it. [`WindowedSeries`] is that
//! fold. It is built to be **downsample-correct by construction**: the
//! aggregate of a window is a pure function of the samples that landed
//! in it, computed by the one quantile rule ([`nearest_rank`]) the
//! brute-force recomputation tests mirror, so feeding the same points
//! incrementally, in one batch, or after a [`RingSeries`]
//! stride-doubling compaction produces identical windows for identical
//! points.
//!
//! Widths are plain nanosecond counts. The paper-scale presets
//! ([`WALL_WINDOWS`]: 1 s / 10 s / 1 min / 5 min) suit wall-clock
//! deployments; simulated scenarios run for milliseconds, so the
//! dashboard also ships sim-scale presets ([`SIM_WINDOWS`]).
//!
//! [`RingSeries`]: tpp_netsim::RingSeries

use tpp_netsim::time;
use tpp_netsim::RingSeries;

/// The wall-clock window presets the issue tracker of any real fleet
/// would ask for: 1 s, 10 s, 1 min, 5 min.
pub const WALL_WINDOWS: [u64; 4] = [
    time::secs(1),
    time::secs(10),
    time::secs(60),
    time::secs(300),
];

/// Window presets scaled to simulated scenarios (which finish in
/// milliseconds of virtual time): 20 µs, 100 µs, 500 µs, 2 ms.
pub const SIM_WINDOWS: [u64; 4] = [
    time::micros(20),
    time::micros(100),
    time::micros(500),
    time::millis(2),
];

/// Human label for a window width: `1s`, `10s`, `1m`, `5m`, `100us`...
pub fn window_label(width_ns: u64) -> String {
    if width_ns >= time::secs(60) && width_ns.is_multiple_of(time::secs(60)) {
        format!("{}m", width_ns / time::secs(60))
    } else if width_ns >= time::secs(1) && width_ns.is_multiple_of(time::secs(1)) {
        format!("{}s", width_ns / time::secs(1))
    } else if width_ns >= time::millis(1) && width_ns.is_multiple_of(time::millis(1)) {
        format!("{}ms", width_ns / time::millis(1))
    } else if width_ns >= time::micros(1) && width_ns.is_multiple_of(time::micros(1)) {
        format!("{}us", width_ns / time::micros(1))
    } else {
        format!("{width_ns}ns")
    }
}

/// Nearest-rank quantile of an ascending-sorted slice: the smallest
/// element whose rank covers fraction `num/den` of the population.
/// Integer-exact (no interpolation), so independently recomputing a
/// window from its raw samples reproduces the aggregate bit-for-bit.
pub fn nearest_rank(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (n * num).div_ceil(den).max(1);
    sorted[(rank - 1) as usize]
}

/// The aggregate of one closed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowAgg {
    /// Window start (inclusive), ns; the window covers
    /// `[start_ns, start_ns + width)`.
    pub start_ns: u64,
    /// Samples that landed in the window.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples (for the exact mean).
    pub sum: u64,
    /// Nearest-rank median.
    pub p50: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
}

impl WindowAgg {
    /// Arithmetic mean of the window's samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Folds `(t_ns, value)` samples into fixed-width windows aligned to
/// `t / width` (so two series fed the same width always share window
/// boundaries and can be compared column by column).
///
/// Samples must arrive in non-decreasing time order — which is how
/// every series in the repo records them (stats ticks, probe send
/// times). A window's aggregate is sealed when the first later-window
/// sample arrives (or at [`finish`]); empty windows are skipped, not
/// zero-filled, so sparse series stay sparse.
///
/// [`finish`]: WindowedSeries::finish
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    width_ns: u64,
    closed: Vec<WindowAgg>,
    /// Open window: `(window index, samples so far)`.
    open: Option<(u64, Vec<u64>)>,
}

impl WindowedSeries {
    /// An empty series folding into `width_ns`-wide windows (min 1 ns).
    pub fn new(width_ns: u64) -> Self {
        WindowedSeries {
            width_ns: width_ns.max(1),
            closed: Vec::new(),
            open: None,
        }
    }

    /// Fold a whole point slice (e.g. [`RingSeries::points`]) at once.
    pub fn from_points(points: &[(u64, u64)], width_ns: u64) -> Self {
        let mut w = WindowedSeries::new(width_ns);
        for &(t, v) in points {
            w.push(t, v);
        }
        w.finish();
        w
    }

    /// Fold a [`RingSeries`] — stride and overflow state do not matter,
    /// only the recorded points do.
    pub fn from_ring(ring: &RingSeries, width_ns: u64) -> Self {
        WindowedSeries::from_points(ring.points(), width_ns)
    }

    /// The configured window width, ns.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Offer one sample. Samples must be offered in non-decreasing
    /// `t_ns` order; a sample older than the open window is folded into
    /// the open window (never a closed one), keeping the fold total.
    pub fn push(&mut self, t_ns: u64, value: u64) {
        let idx = t_ns / self.width_ns;
        match &mut self.open {
            Some((open_idx, vals)) if idx <= *open_idx => vals.push(value),
            Some(_) => {
                self.seal();
                self.open = Some((idx, vec![value]));
            }
            None => self.open = Some((idx, vec![value])),
        }
    }

    /// Seal the open window (if any); call after the last sample.
    pub fn finish(&mut self) {
        self.seal();
    }

    fn seal(&mut self) {
        let Some((idx, mut vals)) = self.open.take() else {
            return;
        };
        vals.sort_unstable();
        self.closed.push(WindowAgg {
            start_ns: idx * self.width_ns,
            count: vals.len() as u64,
            min: vals[0],
            max: *vals.last().expect("non-empty window"),
            sum: vals.iter().sum(),
            p50: nearest_rank(&vals, 1, 2),
            p99: nearest_rank(&vals, 99, 100),
        });
    }

    /// The sealed windows, oldest first.
    pub fn windows(&self) -> &[WindowAgg] {
        &self.closed
    }

    /// The most recent sealed window.
    pub fn last(&self) -> Option<&WindowAgg> {
        self.closed.last()
    }

    /// Largest window-max across the series (sparkline scale).
    pub fn max_value(&self) -> u64 {
        self.closed.iter().map(|w| w.max).max().unwrap_or(0)
    }

    /// Per-window values for a sparkline, newest `n` windows: the
    /// window maxima (peaks are what a dashboard must not smooth away).
    pub fn spark_values(&self, n: usize) -> Vec<u64> {
        let start = self.closed.len().saturating_sub(n);
        self.closed[start..].iter().map(|w| w.max).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The brute-force oracle: bucket raw points by `t / width` in one
    /// pass over the whole slice, recomputing every aggregate from
    /// scratch with independent (iterator-based) min/max/sum and the
    /// shared nearest-rank rule.
    fn brute_force(points: &[(u64, u64)], width_ns: u64) -> Vec<WindowAgg> {
        let mut buckets: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for &(t, v) in points {
            buckets.entry(t / width_ns).or_default().push(v);
        }
        buckets
            .into_iter()
            .map(|(idx, mut vals)| {
                vals.sort_unstable();
                WindowAgg {
                    start_ns: idx * width_ns,
                    count: vals.len() as u64,
                    min: vals.iter().copied().min().unwrap(),
                    max: vals.iter().copied().max().unwrap(),
                    sum: vals.iter().sum(),
                    p50: nearest_rank(&vals, 1, 2),
                    p99: nearest_rank(&vals, 99, 100),
                }
            })
            .collect()
    }

    /// Deterministic pseudo-random stream for test data.
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn matches_brute_force_across_window_sizes() {
        // Irregularly spaced timestamps (monotone), noisy values.
        let mut t = 0u64;
        let points: Vec<(u64, u64)> = (0..500u64)
            .map(|i| {
                t += mix(i) % 37;
                (t, mix(i ^ 0xABCD) % 10_000)
            })
            .collect();
        for width in [1, 7, 50, 128, 1_000, 10_000] {
            let inc = WindowedSeries::from_points(&points, width);
            assert_eq!(
                inc.windows(),
                brute_force(&points, width).as_slice(),
                "width {width} diverged from brute force"
            );
            // The fold is total: no sample lost to window bookkeeping.
            let folded: u64 = inc.windows().iter().map(|w| w.count).sum();
            assert_eq!(folded, points.len() as u64);
        }
    }

    #[test]
    fn incremental_equals_batch() {
        let points: Vec<(u64, u64)> = (0..200u64).map(|i| (i * 13, mix(i) % 500)).collect();
        let batch = WindowedSeries::from_points(&points, 100);
        let mut inc = WindowedSeries::new(100);
        for &(t, v) in &points {
            inc.push(t, v);
        }
        inc.finish();
        assert_eq!(batch.windows(), inc.windows());
    }

    #[test]
    fn ring_overflow_keeps_windows_consistent() {
        // Feed far more samples than the ring holds, forcing several
        // stride-doubling compactions, then check the windowed view of
        // the *recorded* points still matches brute force over those
        // same points — downsampling changes which samples survive,
        // never how surviving samples aggregate.
        let mut ring = RingSeries::new(32);
        for i in 0..4_096u64 {
            ring.offer(i * 10, mix(i) % 1_000);
        }
        assert!(ring.stride() > 1, "test must exercise the overflow path");
        for width in [64, 500, 4_096] {
            let w = WindowedSeries::from_ring(&ring, width);
            assert_eq!(
                w.windows(),
                brute_force(ring.points(), width).as_slice(),
                "width {width} diverged after stride doubling"
            );
        }
    }

    #[test]
    fn empty_windows_are_skipped() {
        let w = WindowedSeries::from_points(&[(5, 1), (1_005, 3)], 10);
        assert_eq!(w.windows().len(), 2);
        assert_eq!(w.windows()[0].start_ns, 0);
        assert_eq!(w.windows()[1].start_ns, 1_000);
    }

    #[test]
    fn nearest_rank_rule() {
        assert_eq!(nearest_rank(&[], 1, 2), 0);
        assert_eq!(nearest_rank(&[7], 1, 2), 7);
        assert_eq!(nearest_rank(&[1, 2, 3, 4], 1, 2), 2);
        assert_eq!(nearest_rank(&[1, 2, 3, 4, 5], 1, 2), 3);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 99, 100), 99);
        assert_eq!(nearest_rank(&v, 1, 1), 100);
    }

    #[test]
    fn labels() {
        assert_eq!(window_label(time::secs(1)), "1s");
        assert_eq!(window_label(time::secs(10)), "10s");
        assert_eq!(window_label(time::secs(60)), "1m");
        assert_eq!(window_label(time::secs(300)), "5m");
        assert_eq!(window_label(time::micros(100)), "100us");
        assert_eq!(window_label(time::millis(2)), "2ms");
        assert_eq!(window_label(1_500), "1500ns");
    }

    #[test]
    fn spark_values_take_newest_window_maxima() {
        let points: Vec<(u64, u64)> = (0..50u64).map(|i| (i * 10, i)).collect();
        let w = WindowedSeries::from_points(&points, 100);
        let spark = w.spark_values(3);
        assert_eq!(spark.len(), 3);
        assert_eq!(*spark.last().unwrap(), 49);
        assert_eq!(w.max_value(), 49);
    }
}
