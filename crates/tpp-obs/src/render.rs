//! Deterministic cell-grid dashboard renderer.
//!
//! A frame is a fixed `width × height` character grid rendered as a
//! **pure function** of a [`FleetSnapshot`] and a [`DashState`]: no
//! clocks, no RNG, no terminal queries, no float formatting. The same
//! snapshot and state always produce the same bytes, which is what lets
//! CI pin frames in `tests/golden/` and byte-diff them across shard
//! counts. The interactive loop in `tpp_top` merely re-captures a
//! snapshot and re-renders; all of its state lives in [`DashState`] and
//! is mutated only by [`DashState::apply_key`].

use std::fmt::Write as _;

use crate::export::SeriesDump;
use crate::snapshot::{FleetSnapshot, SortKey};
use crate::window::{window_label, WindowedSeries, SIM_WINDOWS, WALL_WINDOWS};

/// Block glyphs for one-cell bars, shallowest to fullest.
pub const SPARK_GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Scale raw values into block glyphs against their own maximum; an
/// all-zero series renders as a flat floor. Values beyond `width` are
/// dropped from the left (newest stay).
pub fn spark_raw(values: &[u64], width: usize) -> String {
    let start = values.len().saturating_sub(width);
    let vals = &values[start..];
    let max = vals.iter().copied().max().unwrap_or(0);
    vals.iter()
        .map(|&v| {
            let level = (v * 7).checked_div(max).unwrap_or(0);
            SPARK_GLYPHS[level as usize]
        })
        .collect()
}

/// Sparkline over a windowed series: one glyph per window (the window
/// *max* — peaks are what a dashboard must not smooth away).
pub fn sparkline(series: &WindowedSeries, width: usize) -> String {
    spark_raw(&series.spark_values(width), width)
}

/// A fixed-size character grid. Writes clip at the edges, so layout
/// bugs degrade to truncation instead of frame-size drift.
#[derive(Debug, Clone)]
pub struct FrameBuf {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl FrameBuf {
    /// A blank `width × height` frame (both clamped to at least 1).
    pub fn new(width: usize, height: usize) -> FrameBuf {
        let width = width.max(1);
        let height = height.max(1);
        FrameBuf {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    /// Frame width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Write `text` starting at `(x, y)`, clipping at the right edge
    /// and ignoring out-of-range rows.
    pub fn put(&mut self, x: usize, y: usize, text: &str) {
        if y >= self.height {
            return;
        }
        for (i, ch) in text.chars().enumerate() {
            let cx = x + i;
            if cx >= self.width {
                break;
            }
            self.cells[y * self.width + cx] = ch;
        }
    }

    /// Fill row `y` with `ch`.
    pub fn hline(&mut self, y: usize, ch: char) {
        if y < self.height {
            for x in 0..self.width {
                self.cells[y * self.width + x] = ch;
            }
        }
    }

    /// The frame as text: `height` lines of exactly `width` cells, each
    /// newline-terminated.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            out.extend(&self.cells[y * self.width..(y + 1) * self.width]);
            out.push('\n');
        }
        out
    }
}

/// The dashboard's metric categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tab {
    /// Pipeline span latency + collector RTT view.
    Latency,
    /// Queue occupancy and drops.
    Queues,
    /// TCPU flow/decode cache hit rates.
    Caches,
    /// Closed-loop transport counters, FCT, ECMP spread.
    Transport,
    /// Bonded-path health and fleet fault series.
    Paths,
}

impl Tab {
    /// All tabs, in hotkey order (`1`–`5`).
    pub const ALL: [Tab; 5] = [
        Tab::Latency,
        Tab::Queues,
        Tab::Caches,
        Tab::Transport,
        Tab::Paths,
    ];

    /// Tab-bar label.
    pub fn title(self) -> &'static str {
        match self {
            Tab::Latency => "latency",
            Tab::Queues => "queues",
            Tab::Caches => "caches",
            Tab::Transport => "transport",
            Tab::Paths => "paths",
        }
    }

    fn index(self) -> usize {
        Tab::ALL.iter().position(|&t| t == self).unwrap_or(0)
    }

    /// The next tab, wrapping.
    pub fn next(self) -> Tab {
        Tab::ALL[(self.index() + 1) % Tab::ALL.len()]
    }

    /// The previous tab, wrapping.
    pub fn prev(self) -> Tab {
        Tab::ALL[(self.index() + Tab::ALL.len() - 1) % Tab::ALL.len()]
    }
}

/// All interactive dashboard state. Rendering reads it; only
/// [`DashState::apply_key`] writes it, so a key script fully determines
/// the frame sequence.
#[derive(Debug, Clone)]
pub struct DashState {
    /// Active metric category.
    pub tab: Tab,
    /// Index into [`Self::windows`].
    pub window_idx: usize,
    /// The window-width preset in effect (`w` cycles within it).
    pub windows: [u64; 4],
    /// Fleet-table sort order.
    pub sort: SortKey,
    /// Snapshot refresh paused.
    pub paused: bool,
    /// Quit requested.
    pub quit: bool,
}

impl Default for DashState {
    fn default() -> Self {
        DashState {
            tab: Tab::Latency,
            window_idx: 1,
            windows: SIM_WINDOWS,
            sort: SortKey::SwitchId,
            paused: false,
            quit: false,
        }
    }
}

impl DashState {
    /// A state using the paper-scale wall-clock windows (1s/10s/1m/5m)
    /// instead of the sim-scale presets.
    pub fn wall_clock() -> Self {
        DashState {
            windows: WALL_WINDOWS,
            ..DashState::default()
        }
    }

    /// The selected window width, ns — what the feed passes to
    /// [`FleetSnapshot::capture`].
    pub fn window_ns(&self) -> u64 {
        self.windows[self.window_idx % self.windows.len()]
    }

    /// Apply one key press. Unknown keys are ignored; returns `true`
    /// when the key changed the state (a redraw is due).
    pub fn apply_key(&mut self, key: char) -> bool {
        match key {
            'q' | '\x03' => self.quit = true,
            '\t' | ']' => self.tab = self.tab.next(),
            '[' => self.tab = self.tab.prev(),
            '1'..='5' => self.tab = Tab::ALL[(key as usize) - ('1' as usize)],
            'w' => self.window_idx = (self.window_idx + 1) % self.windows.len(),
            's' => self.sort = self.sort.next(),
            'p' | ' ' => self.paused = !self.paused,
            _ => return false,
        }
        true
    }
}

fn fmt_ns(t_ns: u64) -> String {
    if t_ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            t_ns / 1_000_000_000,
            (t_ns % 1_000_000_000) / 1_000_000
        )
    } else if t_ns >= 1_000_000 {
        format!("{}.{:03}ms", t_ns / 1_000_000, (t_ns % 1_000_000) / 1_000)
    } else if t_ns >= 1_000 {
        format!("{}us", t_ns / 1_000)
    } else {
        format!("{t_ns}ns")
    }
}

fn header(frame: &mut FrameBuf, snap: &FleetSnapshot, state: &DashState) {
    let mut line = format!(
        " TPP FLEET  t={}  switches={}  hosts={}  ticks={}",
        fmt_ns(snap.t_ns),
        snap.switches.len(),
        snap.num_hosts,
        snap.ticks
    );
    if state.paused {
        line.push_str("  *PAUSED*");
    }
    frame.put(0, 0, &line);

    let mut tabs = String::from(" ");
    for (i, t) in Tab::ALL.iter().enumerate() {
        if *t == state.tab {
            let _ = write!(tabs, "[{}:{}] ", i + 1, t.title().to_uppercase());
        } else {
            let _ = write!(tabs, " {}:{}  ", i + 1, t.title());
        }
    }
    let _ = write!(
        tabs,
        "  window={}  sort={}",
        window_label(state.window_ns()),
        state.sort.label()
    );
    frame.put(0, 1, &tabs);
    frame.hline(2, '-');
}

fn footer(frame: &mut FrameBuf) {
    let y = frame.height().saturating_sub(1);
    frame.put(
        0,
        y,
        " keys: q quit · tab/[/]/1-5 tabs · w window · s sort · p pause",
    );
}

/// Rows available for a table body given `extra` fixed lines below it.
fn body_rows(frame: &FrameBuf, extra: usize) -> usize {
    frame.height().saturating_sub(5 + extra)
}

fn win_cell(series: Option<&WindowedSeries>) -> (u64, u64, u64) {
    series
        .and_then(|s| s.last())
        .map(|w| (w.min, w.sum / w.count.max(1), w.max))
        .unwrap_or((0, 0, 0))
}

fn put_switch_table<F: Fn(&FleetSnapshot, usize) -> String>(
    frame: &mut FrameBuf,
    snap: &FleetSnapshot,
    state: &DashState,
    head: &str,
    extra: usize,
    row: F,
) -> usize {
    frame.put(0, 3, head);
    let order = snap.sorted_switches(state.sort);
    let avail = body_rows(frame, extra);
    let shown = order.len().min(avail);
    for (r, &i) in order.iter().take(shown).enumerate() {
        let line = row(snap, i);
        frame.put(0, 4 + r, &line);
    }
    if order.len() > shown {
        frame.put(0, 4 + shown, &format!(" … (+{} more)", order.len() - shown));
    }
    4 + shown + usize::from(order.len() > shown)
}

fn tab_latency(frame: &mut FrameBuf, snap: &FleetSnapshot, state: &DashState) {
    let y = put_switch_table(
        frame,
        snap,
        state,
        " SWITCH      PKTS    SMPL   VIOL   SPAN p50/p99/max cyc    OCC_B",
        4,
        |s, i| {
            let r = &s.switches[i];
            format!(
                " 0x{:<8x} {:>7} {:>7} {:>6}   {:>6}/{:>6}/{:>6}   {:>8}",
                r.switch_id,
                r.packets,
                r.sampled,
                r.violations,
                r.span.0,
                r.span.1,
                r.span.2,
                r.occupancy_bytes
            )
        },
    );
    let c = &snap.collector;
    frame.put(
        0,
        y + 1,
        &format!(
            " collector: probes={} echoes={} samples={}  rtt p50/p99/max = {}/{}/{}",
            c.probes_sent,
            c.echoes_received,
            c.samples,
            fmt_ns(c.rtt.0),
            fmt_ns(c.rtt.1),
            fmt_ns(c.rtt.2)
        ),
    );
    frame.put(
        0,
        y + 2,
        &format!(
            " divergence vs ground truth: max {} bytes",
            c.divergence_max_bytes
        ),
    );
    let ops: Vec<String> = snap
        .opcodes
        .iter()
        .take(6)
        .map(|(m, n)| format!("{m}:{n}"))
        .collect();
    if !ops.is_empty() {
        frame.put(0, y + 3, &format!(" tcpu ops: {}", ops.join("  ")));
    }
}

fn tab_queues(frame: &mut FrameBuf, snap: &FleetSnapshot, state: &DashState) {
    put_switch_table(
        frame,
        snap,
        state,
        " SWITCH     HOT(p,q)     HOT_B   Qmax win min/mean/max      DROP/T  TREND(Qmax)",
        0,
        |s, i| {
            let r = &s.switches[i];
            let q = win_cell(r.windows.get("queue.max_bytes"));
            let d = win_cell(r.windows.get("drop.bytes_per_tick"));
            let spark = r
                .windows
                .get("queue.max_bytes")
                .map(|w| sparkline(w, 24))
                .unwrap_or_default();
            format!(
                " 0x{:<8x} ({:>2},{:>2}) {:>9}   {:>7}/{:>7}/{:>7} {:>9}  {spark}",
                r.switch_id, r.hot.0, r.hot.1, r.hot.2, q.0, q.1, q.2, d.2
            )
        },
    );
}

fn tab_caches(frame: &mut FrameBuf, snap: &FleetSnapshot, state: &DashState) {
    put_switch_table(
        frame,
        snap,
        state,
        " SWITCH     FLOWHIT pm min/mean/max  TREND          DECODEHIT pm min/mean/max  TREND",
        0,
        |s, i| {
            let r = &s.switches[i];
            let f = win_cell(r.windows.get("cache.flow_hit_permille"));
            let d = win_cell(r.windows.get("cache.decode_hit_permille"));
            let fs = r
                .windows
                .get("cache.flow_hit_permille")
                .map(|w| sparkline(w, 12))
                .unwrap_or_default();
            let ds = r
                .windows
                .get("cache.decode_hit_permille")
                .map(|w| sparkline(w, 12))
                .unwrap_or_default();
            format!(
                " 0x{:<8x} {:>4}/{:>4}/{:>4}          {fs:<12}   {:>4}/{:>4}/{:>4}          {ds}",
                r.switch_id, f.0, f.1, f.2, d.0, d.1, d.2
            )
        },
    );
}

fn tab_transport(frame: &mut FrameBuf, snap: &FleetSnapshot, _state: &DashState) {
    match &snap.transport {
        Some(t) => {
            let s = &t.stats;
            frame.put(
                0,
                3,
                &format!(
                    " flows: started={} completed={} gave_up={}   segments={} acks={}",
                    s.flows_started,
                    s.flows_completed,
                    s.flows_given_up,
                    s.segments_sent,
                    s.acks_sent
                ),
            );
            frame.put(
                0,
                4,
                &format!(
                    " loss recovery: retransmits={} rto_fires={} fast_rtx={} dup_rx={} max_backoff={}",
                    s.retransmits, s.rto_fires, s.fast_retransmits, s.dup_segments_rx,
                    s.max_backoff
                ),
            );
            frame.put(
                0,
                5,
                &format!(
                    " rate control: probes={} rate_updates={} rate_limited_polls={} epoch_resets={}",
                    s.probes_sent, s.rate_updates, s.rate_limited_polls, s.epoch_resets
                ),
            );
            frame.put(
                0,
                6,
                &format!(
                    " fct: p50/p99/max = {}/{}/{}  ({} flows)",
                    fmt_ns(t.fct.0),
                    fmt_ns(t.fct.1),
                    fmt_ns(t.fct.2),
                    t.fct_count
                ),
            );
        }
        None => frame.put(0, 3, " no transport stats ingested"),
    }
    frame.put(0, 8, " ECMP UPLINK SPREAD");
    if snap.uplinks.is_empty() {
        frame.put(0, 9, "  (no uplink counters ingested)");
    } else {
        frame.put(0, 9, "  SWITCH    PORT   TX_FRAMES  SHARE");
        let avail = frame.height().saturating_sub(11);
        for (r, u) in snap.uplinks.iter().take(avail).enumerate() {
            let bar: String = "#".repeat((u.share_permille / 25) as usize);
            frame.put(
                0,
                10 + r,
                &format!(
                    "  0x{:<6x} {:>5} {:>11}  {:>4}‰ {bar}",
                    u.switch_id, u.port, u.tx_frames, u.share_permille
                ),
            );
        }
    }
}

fn tab_paths(frame: &mut FrameBuf, snap: &FleetSnapshot, _state: &DashState) {
    frame.put(
        0,
        3,
        " PATH  HEALTH    PROBES   ECHOES   LOST  TRANS   QEWMA p50/p99/max      UTIL p50/p99/max",
    );
    if snap.bond_paths.is_empty() {
        frame.put(0, 4, "  (no bonded paths ingested)");
    }
    for (r, p) in snap.bond_paths.iter().enumerate() {
        frame.put(
            0,
            4 + r,
            &format!(
                " {:>4}  {:<8} {:>7} {:>8} {:>6} {:>6}   {:>5}/{:>5}/{:>5}     {:>4}/{:>4}/{:>4}",
                p.path,
                p.health.name(),
                p.probes.0,
                p.probes.1,
                p.probes.2,
                p.transitions,
                p.queue.0,
                p.queue.1,
                p.queue.2,
                p.util.0,
                p.util.1,
                p.util.2
            ),
        );
    }
    let y = 5 + snap.bond_paths.len();
    frame.put(0, y, " FLEET SERIES");
    for (r, (metric, w)) in snap.fleet_windows.iter().enumerate() {
        frame.put(
            0,
            y + 1 + r,
            &format!(
                "  {:<26} peak={:>8}  {}",
                metric,
                w.max_value(),
                sparkline(w, 32)
            ),
        );
    }
}

/// Render one dashboard frame: a pure function of `(snap, state, width,
/// height)` — same inputs, same bytes.
pub fn render_dashboard(
    snap: &FleetSnapshot,
    state: &DashState,
    width: usize,
    height: usize,
) -> String {
    let mut frame = FrameBuf::new(width, height);
    header(&mut frame, snap, state);
    match state.tab {
        Tab::Latency => tab_latency(&mut frame, snap, state),
        Tab::Queues => tab_queues(&mut frame, snap, state),
        Tab::Caches => tab_caches(&mut frame, snap, state),
        Tab::Transport => tab_transport(&mut frame, snap, state),
        Tab::Paths => tab_paths(&mut frame, snap, state),
    }
    footer(&mut frame);
    frame.render()
}

/// Side-by-side profile comparison of two recorded series dumps (e.g.
/// caches on vs off): per matched series, both peaks, the signed delta,
/// and both trends. Series present in only one dump still get a row —
/// a missing counterpart is a finding, not an error.
pub fn render_profile_diff(
    a: &[SeriesDump],
    b: &[SeriesDump],
    label_a: &str,
    label_b: &str,
    width: usize,
    height: usize,
) -> String {
    let mut frame = FrameBuf::new(width, height);
    frame.put(0, 0, &format!(" PROFILE DIFF   A={label_a}   B={label_b}"));
    frame.hline(1, '-');
    frame.put(
        0,
        2,
        " SERIES                                   A.peak    B.peak     delta  A-trend      B-trend",
    );

    let mut keys: Vec<_> = a.iter().chain(b.iter()).map(|d| d.key()).collect();
    keys.sort();
    keys.dedup();
    let avail = frame.height().saturating_sub(4);
    let shown = keys.len().min(avail);
    for (r, key) in keys.iter().take(shown).enumerate() {
        let da = a.iter().find(|d| d.key() == *key);
        let db = b.iter().find(|d| d.key() == *key);
        let name = match key.1 {
            Some(id) => format!("{}[0x{:02x}].{}", key.0, id, key.2),
            None => format!("{}.{}", key.0, key.2),
        };
        let pa = da.map(|d| d.max_value());
        let pb = db.map(|d| d.max_value());
        let delta = match (pa, pb) {
            (Some(x), Some(y)) => format!("{:+}", y as i64 - x as i64),
            _ => "n/a".to_string(),
        };
        let cell = |p: Option<u64>| p.map_or("-".to_string(), |v| v.to_string());
        let trend = |d: Option<&SeriesDump>| {
            d.map(|d| {
                let vals: Vec<u64> = d.points.iter().map(|&(_, v)| v).collect();
                spark_raw(&vals, 12)
            })
            .unwrap_or_else(|| "(absent)".to_string())
        };
        frame.put(
            0,
            3 + r,
            &format!(
                " {:<40} {:>8} {:>9} {:>9}  {:<12} {}",
                name,
                cell(pa),
                cell(pb),
                delta,
                trend(da),
                trend(db)
            ),
        );
    }
    if keys.len() > shown {
        frame.put(0, 3 + shown, &format!(" … (+{} more)", keys.len() - shown));
    }
    frame.put(
        0,
        frame.height().saturating_sub(1),
        " delta = B.peak - A.peak per series; trends scaled per-series",
    );
    frame.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CollectorSummary, SwitchRow};
    use std::collections::BTreeMap;

    fn tiny_snapshot() -> FleetSnapshot {
        let mut windows = BTreeMap::new();
        windows.insert(
            "queue.max_bytes",
            WindowedSeries::from_points(&[(0, 5), (150, 9), (320, 2)], 100),
        );
        FleetSnapshot {
            t_ns: 2_500_000,
            num_hosts: 4,
            ticks: 125,
            window_ns: 100,
            switches: vec![SwitchRow {
                switch_id: 0x10,
                packets: 1234,
                sampled: 617,
                violations: 3,
                span: (120, 260, 300),
                hot: (1, 0, 9000),
                occupancy_bytes: 0,
                windows,
            }],
            fleet_windows: BTreeMap::new(),
            opcodes: vec![("LOAD", 99), ("PUSH", 41)],
            transport: None,
            uplinks: Vec::new(),
            bond_paths: Vec::new(),
            collector: CollectorSummary::default(),
        }
    }

    #[test]
    fn frame_shape_is_exact() {
        let snap = tiny_snapshot();
        let state = DashState::default();
        let text = render_dashboard(&snap, &state, 80, 12);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(lines.iter().all(|l| l.chars().count() == 80));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn rendering_is_pure() {
        let snap = tiny_snapshot();
        let state = DashState::default();
        let a = render_dashboard(&snap, &state, 120, 40);
        let b = render_dashboard(&snap, &state, 120, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn tabs_change_body_not_shape() {
        let snap = tiny_snapshot();
        let mut state = DashState::default();
        let mut seen = Vec::new();
        for _ in 0..Tab::ALL.len() {
            let text = render_dashboard(&snap, &state, 100, 20);
            assert_eq!(text.lines().count(), 20);
            seen.push(text);
            state.apply_key('\t');
        }
        seen.dedup();
        assert_eq!(seen.len(), Tab::ALL.len(), "every tab renders distinctly");
        assert_eq!(state.tab, Tab::Latency, "tab cycle wraps");
    }

    #[test]
    fn keys_drive_state() {
        let mut st = DashState::default();
        assert!(st.apply_key('3'));
        assert_eq!(st.tab, Tab::Caches);
        assert!(st.apply_key('['));
        assert_eq!(st.tab, Tab::Queues);
        let w0 = st.window_ns();
        assert!(st.apply_key('w'));
        assert_ne!(st.window_ns(), w0);
        assert!(st.apply_key('s'));
        assert_eq!(st.sort, SortKey::Violations);
        assert!(st.apply_key('p'));
        assert!(st.paused);
        assert!(!st.apply_key('z'), "unknown key is ignored");
        assert!(st.apply_key('q'));
        assert!(st.quit);
    }

    #[test]
    fn sparklines_scale_and_clip() {
        assert_eq!(spark_raw(&[], 8), "");
        assert_eq!(spark_raw(&[0, 0], 8), "▁▁");
        let s = spark_raw(&[1, 4, 8], 8);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'), "max maps to the full block");
        assert_eq!(
            spark_raw(&[1, 2, 3, 4], 2).chars().count(),
            2,
            "keeps newest"
        );
    }

    #[test]
    fn clipping_never_widens_a_frame() {
        let mut f = FrameBuf::new(10, 2);
        f.put(6, 0, "0123456789");
        f.put(0, 5, "off-screen row");
        let text = f.render();
        assert_eq!(text, "      0123\n          \n");
    }

    #[test]
    fn profile_diff_pairs_and_reports_absences() {
        let dump = |id: Option<u32>, metric: &str, pts: &[(u64, u64)]| SeriesDump {
            scope: if id.is_some() { "switch" } else { "fleet" }.into(),
            switch_id: id,
            metric: metric.into(),
            stride: 1,
            offered: pts.len() as u64,
            points: pts.to_vec(),
        };
        let a = vec![
            dump(Some(0x10), "queue.max_bytes", &[(0, 100), (20, 300)]),
            dump(None, "fault.events_per_tick", &[(0, 1)]),
        ];
        let b = vec![dump(Some(0x10), "queue.max_bytes", &[(0, 80), (20, 120)])];
        let text = render_profile_diff(&a, &b, "cache-on", "cache-off", 120, 10);
        assert!(text.contains("A=cache-on"));
        assert!(text.contains("switch[0x10].queue.max_bytes"));
        assert!(text.contains("-180"), "delta = 120 - 300");
        assert!(text.contains("(absent)"), "unpaired series still listed");
        assert!(text.lines().all(|l| l.chars().count() == 120));
    }
}
