//! The TPP measurement collector: what the *end-hosts* saw.
//!
//! §2.1's monitor decodes probe echoes into per-switch queue samples;
//! this module aggregates those observations per `(switch, queue)` with
//! HDR-style percentiles, tracks probe RTTs, and — the part that makes
//! it a conformance check and not just a dashboard — compares the
//! end-host view against simulator ground truth. A probe records
//! `Queue:QueueSize` the instant it traverses the switch, so once the
//! network drains, the last sample of a lossless run must equal the
//! (empty) ground-truth occupancy exactly: divergence 0.

use std::collections::BTreeMap;

use tpp_apps::bonding::BondSender;
use tpp_apps::microburst::MicroburstMonitor;
use tpp_host::bonding::PathHealth;
use tpp_host::TransportStats;
use tpp_netsim::{Simulator, SwitchId};
use tpp_telemetry::{Histogram, MetricsRegistry};

/// Aggregated end-host observations of one `(switch, queue)`.
#[derive(Debug, Clone, Default)]
pub struct QueueView {
    /// Distribution of observed `Queue:QueueSize` samples, bytes.
    pub hist: Histogram,
    /// The most recent observation, `(t_ns, queue_bytes)` by probe send
    /// time.
    pub last: Option<(u64, u64)>,
}

impl QueueView {
    fn observe(&mut self, t_ns: u64, queue_bytes: u64) {
        self.hist.observe(queue_bytes);
        if self.last.is_none_or(|(t, _)| t_ns >= t) {
            self.last = Some((t_ns, queue_bytes));
        }
    }
}

/// End-host observation of one switch vs simulator ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchDivergence {
    /// `Switch:SwitchID` of the switch.
    pub switch_id: u32,
    /// The last queue occupancy any probe observed at this switch, or
    /// `None` if no probe traversed it.
    pub observed_bytes: Option<u64>,
    /// The switch's total egress-queue occupancy right now (simulator
    /// ground truth).
    pub ground_truth_bytes: u64,
    /// `|observed - ground truth|`; 0 for unobserved switches.
    pub abs_diff_bytes: u64,
}

/// The collector's view vs ground truth, switch by switch.
#[derive(Debug, Clone, Default)]
pub struct DivergenceReport {
    /// One row per simulator switch, in simulator index order.
    pub per_switch: Vec<SwitchDivergence>,
    /// Worst per-switch divergence.
    pub max_abs_bytes: u64,
    /// Probes sent but never echoed back (lost, or still in flight).
    pub probes_lost: u64,
}

impl DivergenceReport {
    /// True when every observed switch matches ground truth exactly —
    /// the expected verdict for a drained, lossless run.
    pub fn is_exact(&self) -> bool {
        self.max_abs_bytes == 0
    }
}

/// What a bonded sender saw on one of its paths, aggregated after a
/// run: probe accounting, the telemetry distributions its scheduler
/// weighed, and every health transition on the failover timeline.
#[derive(Debug, Clone)]
pub struct PathView {
    /// Probes sent down this path.
    pub probes_sent: u64,
    /// Echoes that made it back and decoded.
    pub echoes_received: u64,
    /// Probe timeouts charged to the path.
    pub probes_lost: u64,
    /// Distribution of the path's queue-depth EWMA samples, bytes.
    pub queue_hist: Histogram,
    /// Distribution of the path's TX-utilization EWMA samples, permille.
    pub util_hist: Histogram,
    /// Health transitions `(t_ns, from, to)`, in event order.
    pub transitions: Vec<(u64, PathHealth, PathHealth)>,
    /// Health at ingest time.
    pub final_health: PathHealth,
}

/// Aggregates TPP measurement results from probe-echo decoding.
///
/// Feed it a [`MicroburstMonitor`] or a [`BondSender`] after a run (or
/// individual samples as they arrive), then export percentiles to a
/// [`MetricsRegistry`] or cross-check with
/// [`Collector::divergence_vs_sim`].
#[derive(Debug, Clone, Default)]
pub struct Collector {
    queues: BTreeMap<(u32, u32), QueueView>,
    rtt: Histogram,
    paths: BTreeMap<usize, PathView>,
    transport: TransportStats,
    fct: Histogram,
    uplinks: BTreeMap<(u32, u16), u64>,
    /// Probes the monitored hosts sent.
    pub probes_sent: u64,
    /// Echoes received and decoded.
    pub echoes_received: u64,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Record one queue-size observation. §2.1 probes carry
    /// `(Switch:SwitchID, Queue:QueueSize)` per hop and don't name the
    /// queue, so callers ingesting monitor samples use `queue_id` 0.
    pub fn ingest_queue_sample(&mut self, switch_id: u32, queue_id: u32, t_ns: u64, bytes: u64) {
        self.queues
            .entry((switch_id, queue_id))
            .or_default()
            .observe(t_ns, bytes);
    }

    /// Record one probe round-trip time.
    pub fn ingest_rtt(&mut self, rtt_ns: u64) {
        self.rtt.observe(rtt_ns);
    }

    /// Ingest everything a [`MicroburstMonitor`] accumulated: queue
    /// samples (as queue 0 of each observed switch), RTTs, and the
    /// sent/received counters. Call once, after the run.
    pub fn ingest_monitor(&mut self, monitor: &MicroburstMonitor) {
        for s in &monitor.samples {
            self.ingest_queue_sample(s.switch_id, 0, s.t_ns, s.queue_bytes as u64);
        }
        for &(_t, rtt) in &monitor.rtts {
            self.ingest_rtt(rtt);
        }
        self.probes_sent += monitor.probes_sent;
        self.echoes_received += monitor.echoes_received;
    }

    /// Ingest everything a [`BondSender`] accumulated: per-path probe
    /// accounting, the scheduler's telemetry series, its health-event
    /// log, and ack latencies (as the RTT distribution). Call once,
    /// after the run.
    pub fn ingest_bond(&mut self, sender: &BondSender) {
        for path in 0..sender.bond.num_paths() {
            let mut view = PathView {
                probes_sent: sender.probes_sent[path],
                echoes_received: sender.echoes_received[path],
                probes_lost: sender.bond.losses(path),
                queue_hist: Histogram::default(),
                util_hist: Histogram::default(),
                transitions: Vec::new(),
                final_health: sender.bond.health(path),
            };
            for &(_t, v) in sender.bond.queue_series(path).points() {
                view.queue_hist.observe(v);
            }
            for &(_t, v) in sender.bond.util_series(path).points() {
                view.util_hist.observe(v);
            }
            for ev in sender.bond.events().iter().filter(|e| e.path == path) {
                view.transitions.push((ev.t_ns, ev.from, ev.to));
            }
            self.probes_sent += view.probes_sent;
            self.echoes_received += view.echoes_received;
            self.paths.insert(path, view);
        }
        for &(_sent, latency) in &sender.ack_latencies {
            self.ingest_rtt(latency);
        }
    }

    /// Fold one host's closed-loop transport counters into the fleet
    /// aggregate (use each app's `stats_snapshot()` so in-flight flows
    /// are included). Call once per host, after the run.
    pub fn ingest_transport(&mut self, stats: &TransportStats) {
        self.transport.merge(stats);
    }

    /// Record one closed-loop flow-completion time.
    pub fn ingest_fct(&mut self, fct_ns: u64) {
        self.fct.observe(fct_ns);
    }

    /// Record one ECMP uplink's cumulative tx-frame counter (read from
    /// `Simulator::link_tx_frames` after a run). Re-ingesting the same
    /// `(switch, port)` replaces the count — the counter is cumulative,
    /// not a delta — so periodic dashboard refreshes stay correct.
    pub fn ingest_uplink_tx(&mut self, switch_id: u32, port: u16, tx_frames: u64) {
        self.uplinks.insert((switch_id, port), tx_frames);
    }

    /// Iterate ingested ECMP uplink counters as `(&(switch_id, port),
    /// tx_frames)` in key order.
    pub fn uplinks(&self) -> impl Iterator<Item = (&(u32, u16), u64)> {
        self.uplinks.iter().map(|(k, &v)| (k, v))
    }

    /// The fleet-wide transport aggregate.
    pub fn transport(&self) -> &TransportStats {
        &self.transport
    }

    /// The closed-loop FCT distribution.
    pub fn fct(&self) -> &Histogram {
        &self.fct
    }

    /// The aggregated view of one bonded path.
    pub fn path(&self, path: usize) -> Option<&PathView> {
        self.paths.get(&path)
    }

    /// Iterate `(path, view)` in path order.
    pub fn paths(&self) -> impl Iterator<Item = (usize, &PathView)> {
        self.paths.iter().map(|(&p, v)| (p, v))
    }

    /// The aggregated view of one `(switch, queue)`.
    pub fn queue(&self, switch_id: u32, queue_id: u32) -> Option<&QueueView> {
        self.queues.get(&(switch_id, queue_id))
    }

    /// Iterate `((switch_id, queue_id), view)` in key order.
    pub fn queues(&self) -> impl Iterator<Item = (&(u32, u32), &QueueView)> {
        self.queues.iter()
    }

    /// The probe RTT distribution.
    pub fn rtt(&self) -> &Histogram {
        &self.rtt
    }

    /// Total queue samples ingested.
    pub fn samples(&self) -> u64 {
        self.queues.values().map(|v| v.hist.count()).sum()
    }

    /// The last observation of a switch across all of its observed
    /// queues (latest probe send time wins).
    fn last_observed(&self, switch_id: u32) -> Option<u64> {
        self.queues
            .range((switch_id, 0)..=(switch_id, u32::MAX))
            .filter_map(|(_, v)| v.last)
            .max_by_key(|&(t, _)| t)
            .map(|(_, bytes)| bytes)
    }

    /// Compare the end-host view against the simulator's current
    /// ground-truth queue occupancy, switch by switch. Exact (max
    /// divergence 0) whenever the network has drained and no probe was
    /// lost mid-burst — the soundness check for the measurement plane.
    pub fn divergence_vs_sim(&self, sim: &Simulator) -> DivergenceReport {
        let mut report = DivergenceReport {
            probes_lost: self.probes_sent.saturating_sub(self.echoes_received),
            ..DivergenceReport::default()
        };
        for i in 0..sim.num_switches() {
            let asic = sim.switch(SwitchId(i));
            let switch_id = asic.switch_id();
            let (ground, _) = asic.queue_occupancy();
            let observed = self.last_observed(switch_id);
            let diff = observed.map_or(0, |o| o.abs_diff(ground));
            report.max_abs_bytes = report.max_abs_bytes.max(diff);
            report.per_switch.push(SwitchDivergence {
                switch_id,
                observed_bytes: observed,
                ground_truth_bytes: ground,
                abs_diff_bytes: diff,
            });
        }
        report
    }

    /// Export the collector's aggregates under `collector.*`.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set("collector.probes_sent", self.probes_sent);
        registry.set("collector.echoes_received", self.echoes_received);
        registry.set("collector.queue_samples", self.samples());
        registry.merge_histogram("collector.rtt_ns", &self.rtt);
        let mut all = Histogram::default();
        for view in self.queues.values() {
            all.merge(&view.hist);
        }
        registry.merge_histogram("collector.queue_bytes", &all);
        // The transport family only exports when something was ingested,
        // so runs without closed-loop traffic keep their metric set (and
        // goldens) unchanged.
        if self.transport != TransportStats::default() || self.fct.count() > 0 {
            let t = &self.transport;
            registry.set("transport.flows_started", t.flows_started);
            registry.set("transport.flows_completed", t.flows_completed);
            registry.set("transport.flows_given_up", t.flows_given_up);
            registry.set("transport.segments_sent", t.segments_sent);
            registry.set("transport.retransmits", t.retransmits);
            registry.set("transport.rto_fires", t.rto_fires);
            registry.set("transport.fast_retransmits", t.fast_retransmits);
            registry.set("transport.dup_segments_rx", t.dup_segments_rx);
            registry.set("transport.acks_sent", t.acks_sent);
            registry.set("transport.probes_sent", t.probes_sent);
            registry.set("transport.rate_updates", t.rate_updates);
            registry.set("transport.epoch_resets", t.epoch_resets);
            registry.set("transport.rate_limited_polls", t.rate_limited_polls);
            registry.set("transport.max_backoff", t.max_backoff);
            registry.merge_histogram("transport.fct_ns", &self.fct);
        }
        // Likewise ECMP spread: only runs that ingested uplink counters
        // grow an ecmp.* family.
        for (&(switch_id, port), &tx) in &self.uplinks {
            registry.set(
                &format!("ecmp.uplink.sw{switch_id}.port{port}.tx_frames"),
                tx,
            );
        }
        for (path, view) in &self.paths {
            registry.set(&format!("bond.path{path}.probes_sent"), view.probes_sent);
            registry.set(&format!("bond.path{path}.echoes"), view.echoes_received);
            registry.set(&format!("bond.path{path}.probes_lost"), view.probes_lost);
            registry.set(
                &format!("bond.path{path}.transitions"),
                view.transitions.len() as u64,
            );
            registry.merge_histogram(&format!("bond.path{path}.queue_bytes"), &view.queue_hist);
            registry.merge_histogram(&format!("bond.path{path}.util_permille"), &view.util_hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_switch_queue() {
        let mut c = Collector::new();
        c.ingest_queue_sample(0x10, 0, 100, 512);
        c.ingest_queue_sample(0x10, 0, 200, 1024);
        c.ingest_queue_sample(0x20, 0, 150, 64);
        assert_eq!(c.samples(), 3);
        let v = c.queue(0x10, 0).unwrap();
        assert_eq!(v.hist.count(), 2);
        assert_eq!(v.last, Some((200, 1024)));
        assert_eq!(c.last_observed(0x10), Some(1024));
        assert_eq!(c.last_observed(0x99), None);
    }

    #[test]
    fn last_keeps_latest_send_time_not_arrival_order() {
        let mut c = Collector::new();
        // A late echo of an *earlier* probe arrives after a fresher one:
        // the fresher send time must win.
        c.ingest_queue_sample(1, 0, 500, 2048);
        c.ingest_queue_sample(1, 0, 100, 9999);
        assert_eq!(c.queue(1, 0).unwrap().last, Some((500, 2048)));
    }

    #[test]
    fn rtt_percentiles() {
        let mut c = Collector::new();
        for rtt in [100u64, 200, 300, 400, 1000] {
            c.ingest_rtt(rtt);
        }
        assert!(c.rtt().p50() >= 100);
        assert!(c.rtt().max() == 1000);
    }

    #[test]
    fn ingest_bond_builds_path_views_and_metrics() {
        use tpp_apps::bonding::{BondReceiver, BondSender, BondSenderConfig};
        use tpp_host::BondConfig;
        use tpp_netsim::{bonded_diamond, time, BondedDiamondParams, RunLimit};
        use tpp_wire::EthernetAddress;

        let cfg = BondSenderConfig {
            dst: EthernetAddress::from_host_id(1),
            expected_hops: 4,
            probe_interval_ns: time::micros(50),
            probe_timeout_ns: time::micros(300),
            probe_stop_ns: time::millis(3),
            data_interval_ns: time::micros(40),
            data_start_ns: time::micros(500),
            data_stop_ns: time::millis(2),
            payload_bytes: 256,
            rto_ns: time::micros(400),
            bond: BondConfig::default(),
        };
        let (mut sim, d) = bonded_diamond(
            BondedDiamondParams::default(),
            Box::new(BondSender::new(cfg)),
            Box::new(BondReceiver::default()),
        );
        sim.run(RunLimit::Quiescent {
            limit_ns: time::millis(10),
        });
        let mut c = Collector::new();
        c.ingest_bond(sim.host_app::<BondSender>(d.sender));
        assert_eq!(c.paths().count(), 2);
        for (_, view) in c.paths() {
            assert!(view.probes_sent > 0);
            assert!(view.echoes_received > 0);
            assert_eq!(view.final_health, PathHealth::Good);
            assert!(view.queue_hist.count() > 0, "series fed the histogram");
        }
        let mut reg = MetricsRegistry::new();
        c.export_metrics(&mut reg);
        assert!(reg.counter("bond.path0.probes_sent") > 0);
        assert!(reg.counter("bond.path1.echoes") > 0);
        assert!(reg.histogram("bond.path0.queue_bytes").is_some());
    }

    #[test]
    fn transport_family_exports_only_when_ingested() {
        let mut c = Collector::new();
        let mut reg = MetricsRegistry::new();
        c.export_metrics(&mut reg);
        assert_eq!(reg.counter("transport.flows_started"), 0);
        assert!(
            reg.histogram("transport.fct_ns").is_none(),
            "no ingest, no family"
        );

        let stats = TransportStats {
            flows_started: 3,
            flows_completed: 2,
            retransmits: 5,
            ..Default::default()
        };
        c.ingest_transport(&stats);
        c.ingest_transport(&stats);
        c.ingest_fct(1_500_000);
        let mut reg = MetricsRegistry::new();
        c.export_metrics(&mut reg);
        assert_eq!(reg.counter("transport.flows_started"), 6);
        assert_eq!(reg.counter("transport.retransmits"), 10);
        assert!(reg.histogram("transport.fct_ns").is_some());
        assert_eq!(c.transport().flows_completed, 4);
        assert_eq!(c.fct().count(), 1);
    }

    #[test]
    fn uplink_counters_replace_not_accumulate() {
        let mut c = Collector::new();
        c.ingest_uplink_tx(0x20, 2, 100);
        c.ingest_uplink_tx(0x20, 3, 50);
        // Cumulative counter re-read on a later refresh: replaces.
        c.ingest_uplink_tx(0x20, 2, 140);
        let rows: Vec<_> = c.uplinks().collect();
        assert_eq!(rows, vec![(&(0x20, 2), 140), (&(0x20, 3), 50)]);
        let mut reg = MetricsRegistry::new();
        c.export_metrics(&mut reg);
        assert_eq!(reg.counter("ecmp.uplink.sw32.port2.tx_frames"), 140);
        assert_eq!(reg.counter("ecmp.uplink.sw32.port3.tx_frames"), 50);
    }

    #[test]
    fn export_names_are_collector_scoped() {
        let mut c = Collector::new();
        c.ingest_queue_sample(1, 0, 10, 128);
        c.ingest_rtt(4_000);
        c.probes_sent = 2;
        c.echoes_received = 1;
        let mut reg = MetricsRegistry::new();
        c.export_metrics(&mut reg);
        assert_eq!(reg.counter("collector.probes_sent"), 2);
        assert_eq!(reg.counter("collector.queue_samples"), 1);
        assert!(reg.histogram("collector.rtt_ns").is_some());
        assert!(reg.histogram("collector.queue_bytes").is_some());
    }
}
