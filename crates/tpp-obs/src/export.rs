//! Snapshot exporters: Prometheus text format and JSONL series dumps.
//!
//! Both are plain strings built deterministically (registries and
//! series iterate in name order), so snapshots diff cleanly and can be
//! pinned as goldens in CI.

use std::fmt::Write;

use tpp_netsim::{RingSeries, SeriesSet};
use tpp_telemetry::{Histogram, MetricsRegistry};

/// A metric name in Prometheus form: `tpp_` prefix, every character
/// outside `[a-zA-Z0-9_]` (the registry uses dots) mapped to `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tpp_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn write_summary(out: &mut String, name: &str, hist: &Histogram) {
    let n = sanitize_metric_name(name);
    let _ = writeln!(out, "# TYPE {n} summary");
    for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (1.0, "1")] {
        let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", hist.quantile(q));
    }
    let _ = writeln!(out, "{n}_sum {}", hist.sum());
    let _ = writeln!(out, "{n}_count {}", hist.count());
}

/// Render a [`MetricsRegistry`] in the Prometheus text exposition
/// format: counters as `counter` samples, histograms as `summary`
/// quantiles (p50/p99/max) with `_sum`/`_count`. Scrape-ready: write
/// it to a file or serve it verbatim.
pub fn prometheus_snapshot(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, hist) in registry.histograms() {
        write_summary(&mut out, name, hist);
    }
    out
}

fn write_series_line(
    out: &mut String,
    scope: &str,
    switch_id: Option<u32>,
    metric: &str,
    s: &RingSeries,
) {
    let _ = write!(out, "{{\"scope\":\"{scope}\"");
    if let Some(id) = switch_id {
        let _ = write!(out, ",\"switch_id\":{id}");
    }
    let _ = write!(
        out,
        ",\"metric\":\"{metric}\",\"stride\":{},\"offered\":{},\"points\":[",
        s.stride(),
        s.offered()
    );
    for (i, &(t, v)) in s.points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{t},{v}]");
    }
    out.push_str("]}\n");
}

/// Dump a [`SeriesSet`] as JSONL: one object per series (per-switch
/// series first, then fleet series), each carrying its stride and
/// `[t_ns, value]` points — the format offline plotters ingest.
pub fn series_jsonl(series: &SeriesSet) -> String {
    let mut out = String::new();
    for sw in &series.switches {
        for (metric, s) in sw.iter() {
            write_series_line(&mut out, "switch", Some(sw.switch_id), metric, s);
        }
    }
    for (metric, s) in series.fleet_iter() {
        write_series_line(&mut out, "fleet", None, metric, s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_metric_name("profile.span.total_cycles"),
            "tpp_profile_span_total_cycles"
        );
        assert_eq!(sanitize_metric_name("a-b c"), "tpp_a_b_c");
    }

    #[test]
    fn prometheus_counters_and_summaries() {
        let mut reg = MetricsRegistry::new();
        reg.set("profile.packets", 7);
        for v in [10u64, 20, 30] {
            reg.observe("profile.span.total_cycles", v);
        }
        let text = prometheus_snapshot(&reg);
        assert!(text.contains("# TYPE tpp_profile_packets counter\ntpp_profile_packets 7\n"));
        assert!(text.contains("# TYPE tpp_profile_span_total_cycles summary"));
        assert!(text.contains("tpp_profile_span_total_cycles{quantile=\"0.5\"}"));
        assert!(text.contains("tpp_profile_span_total_cycles_count 3"));
        assert!(text.contains("tpp_profile_span_total_cycles_sum 60"));
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let set = SeriesSet::new(&[0x10], 4);
        // Populated series are exercised via the simulator in the
        // tpp-bench integration tests; here just check the shape.
        let text = series_jsonl(&set);
        let lines: Vec<&str> = text.lines().collect();
        // 6 switch metrics + 2 fleet metrics.
        assert_eq!(lines.len(), 8);
        assert!(lines[0].starts_with("{\"scope\":\"switch\",\"switch_id\":16,"));
        assert!(lines[7].starts_with("{\"scope\":\"fleet\","));
        assert!(lines.iter().all(|l| l.ends_with("]}")));
    }
}
