//! Snapshot exporters: Prometheus text format and JSONL series dumps.
//!
//! Both are plain strings built deterministically (registries and
//! series iterate in name order), so snapshots diff cleanly and can be
//! pinned as goldens in CI.

use std::fmt::Write;

use tpp_netsim::{RingSeries, SeriesSet};
use tpp_telemetry::{Histogram, MetricsRegistry};

/// A metric name in Prometheus form: `tpp_` prefix, every character
/// outside `[a-zA-Z0-9_]` (the registry uses dots) mapped to `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tpp_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// One-line `# HELP` text for a registry metric, chosen by family
/// prefix. Families mirror the subsystems that export them, so every
/// emitted metric gets a meaningful line without a per-name table.
pub fn help_for(name: &str) -> &'static str {
    let families: [(&str, &str); 10] = [
        (
            "collector.",
            "End-host TPP collector aggregate (probe echoes decoded off the wire).",
        ),
        (
            "transport.",
            "Closed-loop transport fleet counter (go-back-N + RCP* rate clamp).",
        ),
        (
            "bond.",
            "Bonded-path scheduler telemetry (probe-driven health and failover).",
        ),
        (
            "ecmp.",
            "ECMP per-uplink spread counter (frames hashed onto each uplink).",
        ),
        (
            "profile.",
            "Dataplane pipeline span profiler statistic (cycles unless named otherwise).",
        ),
        ("queue.", "Egress queue occupancy statistic, bytes."),
        ("cache.", "Switch TCPU cache statistic."),
        ("drop.", "Dataplane drop statistic."),
        ("link.", "Link-level statistic."),
        ("fault.", "Fault-injection statistic."),
    ];
    for (prefix, help) in families {
        if name.starts_with(prefix) {
            return help;
        }
    }
    "TPP simulator metric."
}

fn write_summary(out: &mut String, name: &str, hist: &Histogram) {
    let n = sanitize_metric_name(name);
    let _ = writeln!(out, "# HELP {n} {}", help_for(name));
    let _ = writeln!(out, "# TYPE {n} summary");
    for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (1.0, "1")] {
        let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", hist.quantile(q));
    }
    let _ = writeln!(out, "{n}_sum {}", hist.sum());
    let _ = writeln!(out, "{n}_count {}", hist.count());
}

/// Render a [`MetricsRegistry`] in the Prometheus text exposition
/// format: counters as `counter` samples, histograms as `summary`
/// quantiles (p50/p99/max) with `_sum`/`_count`. Scrape-ready: write
/// it to a file or serve it verbatim.
pub fn prometheus_snapshot(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# HELP {n} {}", help_for(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, hist) in registry.histograms() {
        write_summary(&mut out, name, hist);
    }
    out
}

fn write_series_line(
    out: &mut String,
    scope: &str,
    switch_id: Option<u32>,
    metric: &str,
    s: &RingSeries,
) {
    let _ = write!(out, "{{\"scope\":\"{scope}\"");
    if let Some(id) = switch_id {
        let _ = write!(out, ",\"switch_id\":{id}");
    }
    let _ = write!(
        out,
        ",\"metric\":\"{metric}\",\"stride\":{},\"offered\":{},\"points\":[",
        s.stride(),
        s.offered()
    );
    for (i, &(t, v)) in s.points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{t},{v}]");
    }
    out.push_str("]}\n");
}

/// Dump a [`SeriesSet`] as JSONL: one object per series (per-switch
/// series first, then fleet series), each carrying its stride and
/// `[t_ns, value]` points — the format offline plotters ingest.
pub fn series_jsonl(series: &SeriesSet) -> String {
    let mut out = String::new();
    for sw in &series.switches {
        for (metric, s) in sw.iter() {
            write_series_line(&mut out, "switch", Some(sw.switch_id), metric, s);
        }
    }
    for (metric, s) in series.fleet_iter() {
        write_series_line(&mut out, "fleet", None, metric, s);
    }
    out
}

/// One parsed line of a [`series_jsonl`] dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesDump {
    /// `"switch"` or `"fleet"`.
    pub scope: String,
    /// Dataplane id for switch-scoped series.
    pub switch_id: Option<u32>,
    /// Metric name, e.g. `queue.max_bytes`.
    pub metric: String,
    /// Downsample stride at dump time.
    pub stride: u64,
    /// Samples offered before downsampling.
    pub offered: u64,
    /// Retained `(t_ns, value)` points.
    pub points: Vec<(u64, u64)>,
}

impl SeriesDump {
    /// Stable identity used to pair series across two dumps.
    pub fn key(&self) -> (String, Option<u32>, String) {
        (self.scope.clone(), self.switch_id, self.metric.clone())
    }

    /// Peak retained value.
    pub fn max_value(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    Some(&rest[..rest.find('"')?])
}

/// Parse a [`series_jsonl`] dump back into memory — the input to the
/// dashboard's profile-diff mode. The parser accepts exactly the shape
/// this module emits (flat objects, integer `[t,v]` pairs); lines that
/// don't carry the required fields are skipped rather than guessed at.
pub fn parse_series_jsonl(text: &str) -> Vec<SeriesDump> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(scope), Some(metric)) = (field_str(line, "scope"), field_str(line, "metric"))
        else {
            continue;
        };
        let mut points = Vec::new();
        if let Some(start) = line.find("\"points\":[") {
            let body = &line[start + "\"points\":[".len()..];
            let body = &body[..body.rfind(']').unwrap_or(0)];
            for pair in body.split("],[") {
                let pair = pair.trim_matches(|c| c == '[' || c == ']');
                if let Some((t, v)) = pair.split_once(',') {
                    if let (Ok(t), Ok(v)) = (t.parse(), v.parse()) {
                        points.push((t, v));
                    }
                }
            }
        }
        out.push(SeriesDump {
            scope: scope.to_string(),
            switch_id: field_u64(line, "switch_id").map(|v| v as u32),
            metric: metric.to_string(),
            stride: field_u64(line, "stride").unwrap_or(1),
            offered: field_u64(line, "offered").unwrap_or(0),
            points,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_metric_name("profile.span.total_cycles"),
            "tpp_profile_span_total_cycles"
        );
        assert_eq!(sanitize_metric_name("a-b c"), "tpp_a_b_c");
    }

    #[test]
    fn prometheus_counters_and_summaries() {
        let mut reg = MetricsRegistry::new();
        reg.set("profile.packets", 7);
        for v in [10u64, 20, 30] {
            reg.observe("profile.span.total_cycles", v);
        }
        let text = prometheus_snapshot(&reg);
        assert!(text.contains("# HELP tpp_profile_packets "));
        assert!(text.contains("# TYPE tpp_profile_packets counter\ntpp_profile_packets 7\n"));
        assert!(text.contains("# HELP tpp_profile_span_total_cycles "));
        assert!(text.contains("# TYPE tpp_profile_span_total_cycles summary"));
        assert!(text.contains("tpp_profile_span_total_cycles{quantile=\"0.5\"}"));
        assert!(text.contains("tpp_profile_span_total_cycles_count 3"));
        assert!(text.contains("tpp_profile_span_total_cycles_sum 60"));
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let set = SeriesSet::new(&[0x10], 4);
        // Populated series are exercised via the simulator in the
        // tpp-bench integration tests; here just check the shape.
        let text = series_jsonl(&set);
        let lines: Vec<&str> = text.lines().collect();
        // 6 switch metrics + 2 fleet metrics.
        assert_eq!(lines.len(), 8);
        assert!(lines[0].starts_with("{\"scope\":\"switch\",\"switch_id\":16,"));
        assert!(lines[7].starts_with("{\"scope\":\"fleet\","));
        assert!(lines.iter().all(|l| l.ends_with("]}")));
    }

    #[test]
    fn parse_roundtrips_emitted_jsonl() {
        let text = concat!(
            "{\"scope\":\"switch\",\"switch_id\":16,\"metric\":\"queue.max_bytes\",",
            "\"stride\":2,\"offered\":9,\"points\":[[0,10],[40,25],[80,5]]}\n",
            "{\"scope\":\"fleet\",\"metric\":\"fault.events_per_tick\",",
            "\"stride\":1,\"offered\":0,\"points\":[]}\n",
        );
        let dumps = parse_series_jsonl(text);
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].scope, "switch");
        assert_eq!(dumps[0].switch_id, Some(16));
        assert_eq!(dumps[0].metric, "queue.max_bytes");
        assert_eq!(dumps[0].stride, 2);
        assert_eq!(dumps[0].offered, 9);
        assert_eq!(dumps[0].points, vec![(0, 10), (40, 25), (80, 5)]);
        assert_eq!(dumps[0].max_value(), 25);
        assert_eq!(dumps[1].switch_id, None);
        assert!(dumps[1].points.is_empty());
        // Garbage lines are skipped, not mis-parsed.
        assert!(parse_series_jsonl("not json\n{\"scope\":\"x\"}\n").is_empty());
    }

    #[test]
    fn help_lines_cover_known_families() {
        assert!(help_for("transport.retransmits").contains("transport"));
        assert!(help_for("ecmp.uplink.sw1.port2.tx_frames").contains("ECMP"));
        assert!(help_for("bond.path0.transitions").contains("Bonded"));
        assert_eq!(help_for("something.else"), "TPP simulator metric.");
    }
}
