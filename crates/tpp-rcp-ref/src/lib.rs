//! # tpp-rcp-ref — reference congestion-control baselines
//!
//! Figure 2 of the paper compares RCP\* (the TPP + end-host refactoring)
//! against "a simulation of the original RCP algorithm" from ns-2. This
//! crate plays ns-2's role:
//!
//! * [`equation`] — the RCP control law of §2.2, shared verbatim by the
//!   reference simulation *and* by RCP\*'s end-host rate controller (the
//!   paper's point is that the *computation* is identical, only its
//!   location differs);
//! * [`fluid`] — a self-contained packet-granularity simulation of RCP
//!   routers that implement the law natively in the dataplane: the
//!   "RCP: simulation" curve of Figure 2;
//! * [`aimd`] — a TCP-Reno-flavoured AIMD rate-based sender on the
//!   shared network simulator, used as an extra baseline to contrast
//!   RCP-style explicit feedback with loss-driven control (an extension
//!   beyond the paper's figures, see DESIGN.md);
//! * [`dctcp`] — a DCTCP-flavoured sender driven by the ASIC's
//!   fixed-function ECN marks, the §4 "one anticipated bit" design point
//!   that TPPs generalize.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aimd;
pub mod dctcp;
pub mod equation;
pub mod fluid;
pub mod native;

pub use aimd::{AimdAcker, AimdSender};
pub use dctcp::{DctcpConfig, DctcpReceiver, DctcpSender};
pub use equation::{rcp_update, RcpParams};
pub use fluid::{FlowSchedule, RcpFluidSim, RcpSamplePoint};
pub use native::NativeRcpRouter;
