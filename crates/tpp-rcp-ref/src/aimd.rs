//! A TCP-Reno-flavoured AIMD baseline, rate-based for comparability with
//! RCP\*: additive increase every RTT without loss, multiplicative
//! decrease on loss. This is the "what you get without explicit network
//! feedback" contrast used by the extension experiments (DESIGN.md E11):
//! AIMD must *fill the queue* to find capacity, RCP converges with
//! near-empty queues.

use std::collections::BTreeMap;

use tpp_host::{PacedSender, RttEstimator};
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::EthernetAddress;

/// EtherType of AIMD acknowledgement frames.
pub const ACK_ETHERTYPE: EtherType = EtherType(0x0803);

const TIMER_PACE: u64 = 1;
const TIMER_EPOCH: u64 = 2;

/// Configuration of an [`AimdSender`].
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Initial sending rate, bits/s.
    pub init_rate_bps: u64,
    /// Floor rate, bits/s.
    pub min_rate_bps: u64,
    /// Ceiling rate (the NIC), bits/s.
    pub max_rate_bps: u64,
    /// Additive increase per loss-free RTT, bits/s.
    pub increase_bps: u64,
    /// Data payload length, bytes.
    pub payload_len: usize,
    /// Fallback RTT before any sample, ns.
    pub initial_rtt_ns: u64,
    /// Finite flow size: stop after this many payload bytes (`None` =
    /// long-lived).
    pub stop_after_bytes: Option<u64>,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            init_rate_bps: 500_000,
            min_rate_bps: 100_000,
            max_rate_bps: 100_000_000,
            increase_bps: 200_000,
            payload_len: 1000,
            initial_rtt_ns: 10_000_000,
            stop_after_bytes: None,
        }
    }
}

/// A rate-based AIMD sender.
#[derive(Debug)]
pub struct AimdSender {
    config: AimdConfig,
    sender: PacedSender,
    outstanding: BTreeMap<u32, u64>,
    rtt: RttEstimator,
    /// Rate trace: `(time ns, rate bps)` after every epoch decision.
    pub rate_trace: Vec<(u64, u64)>,
    /// Loss events observed.
    pub losses: u64,
    /// Acks received.
    pub acks: u64,
    /// When the flow finished sending its target bytes (ns).
    pub completed_at: Option<u64>,
    start_ns: u64,
}

impl AimdSender {
    /// A sender to `dst` starting at `start_ns`.
    pub fn new(dst: EthernetAddress, config: AimdConfig, start_ns: u64) -> Self {
        let sender = PacedSender::new(dst, config.payload_len, config.init_rate_bps, start_ns);
        AimdSender {
            config,
            sender,
            outstanding: BTreeMap::new(),
            rtt: RttEstimator::new(),
            rate_trace: Vec::new(),
            losses: 0,
            acks: 0,
            completed_at: None,
            start_ns,
        }
    }

    /// True once the flow has sent its full size (finite flows only).
    pub fn finished(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Current sending rate, bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.sender.rate_bps()
    }

    /// Total payload bytes released so far.
    pub fn bytes_sent(&self) -> u64 {
        self.sender.bytes_sent
    }

    fn pace(&mut self, ctx: &mut HostCtx<'_>) {
        if self.finished() {
            return;
        }
        let now = ctx.now();
        while let Some(frame) = self.sender.poll(now, ctx.mac()) {
            // PacedSender wrote the sequence number in payload[0..4].
            let seq = u32::from_be_bytes([frame[14], frame[15], frame[16], frame[17]]);
            self.outstanding.insert(seq, now);
            ctx.send(frame);
            if let Some(target) = self.config.stop_after_bytes {
                if self.sender.bytes_sent >= target {
                    self.completed_at = Some(now);
                    return;
                }
            }
        }
        let next = self.sender.next_tx_ns().saturating_sub(now).max(1);
        ctx.set_timer(next, TIMER_PACE);
    }

    fn epoch(&mut self, ctx: &mut HostCtx<'_>) {
        if self.finished() {
            return;
        }
        let now = ctx.now();
        let rtt = self.rtt.srtt_or(self.config.initial_rtt_ns);
        // Anything unacked for over 2 RTTs is lost.
        let timeout = now.saturating_sub(2 * rtt);
        let lost: Vec<u32> = self
            .outstanding
            .iter()
            .filter(|(_, sent)| **sent < timeout)
            .map(|(seq, _)| *seq)
            .collect();
        let rate = self.sender.rate_bps();
        let new_rate = if lost.is_empty() {
            rate + self.config.increase_bps
        } else {
            self.losses += 1;
            for seq in lost {
                self.outstanding.remove(&seq);
            }
            rate / 2
        }
        .clamp(self.config.min_rate_bps, self.config.max_rate_bps);
        self.sender.set_rate_bps(new_rate, now);
        self.rate_trace.push((now, new_rate));
        ctx.set_timer(rtt.max(1_000_000), TIMER_EPOCH);
    }
}

impl HostApp for AimdSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.start_ns, TIMER_PACE);
        ctx.set_timer(self.start_ns + self.config.initial_rtt_ns, TIMER_EPOCH);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        match token {
            TIMER_PACE => self.pace(ctx),
            TIMER_EPOCH => self.epoch(ctx),
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let Ok(parsed) = Frame::new_checked(&frame[..]) else {
            return;
        };
        if parsed.ethertype() != ACK_ETHERTYPE || parsed.payload().len() < 4 {
            return;
        }
        let p = parsed.payload();
        let seq = u32::from_be_bytes([p[0], p[1], p[2], p[3]]);
        if let Some(sent_ns) = self.outstanding.remove(&seq) {
            self.acks += 1;
            self.rtt.on_sample(ctx.now().saturating_sub(sent_ns));
        }
    }
}

/// The receiver: acknowledges every data frame by echoing its sequence
/// number to the sender.
#[derive(Debug, Default)]
pub struct AimdAcker {
    /// Data frames received.
    pub received: u64,
    /// Data bytes received.
    pub bytes: u64,
}

impl HostApp for AimdAcker {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let Ok(parsed) = Frame::new_checked(&frame[..]) else {
            return;
        };
        if parsed.ethertype() != tpp_host::DATA_ETHERTYPE || parsed.payload().len() < 4 {
            return;
        }
        self.received += 1;
        self.bytes += parsed.payload().len() as u64;
        let seq = &parsed.payload()[0..4];
        let ack = build_frame(parsed.src_addr(), ctx.mac(), ACK_ETHERTYPE, seq);
        ctx.send(ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_netsim::RunLimit;
    use tpp_netsim::{dumbbell, time, DumbbellParams};

    fn run_flows(n: usize, duration_ms: u64) -> (tpp_netsim::Simulator, tpp_netsim::Dumbbell) {
        let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n)
            .map(|i| {
                let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
                (
                    Box::new(AimdSender::new(dst, AimdConfig::default(), 0)) as Box<dyn HostApp>,
                    Box::new(AimdAcker::default()) as Box<dyn HostApp>,
                )
            })
            .collect();
        let (mut sim, bell) = dumbbell(
            DumbbellParams {
                n_pairs: n,
                queue_limit_bytes: 30_000,
                ..Default::default()
            },
            apps,
        );
        sim.run(RunLimit::Until(time::millis(duration_ms)));
        (sim, bell)
    }

    #[test]
    fn single_flow_fills_the_bottleneck() {
        let (sim, bell) = run_flows(1, 4_000);
        let acker = sim.host_app::<AimdAcker>(bell.receivers[0]);
        // 10 Mb/s for 4 s = 5 MB max; AIMD should achieve > 60% of it
        // (it spends time probing and backing off).
        let goodput_bps = acker.bytes as f64 * 8.0 / 4.0;
        assert!(
            goodput_bps > 0.6 * 10e6,
            "goodput only {goodput_bps:.0} bps"
        );
        let sender = sim.host_app::<AimdSender>(bell.senders[0]);
        assert!(sender.losses > 0, "AIMD needs losses to find capacity");
        assert!(sender.acks > 0);
    }

    #[test]
    fn aimd_builds_standing_queues() {
        // The contrast with RCP: loss-driven control must repeatedly fill
        // the bottleneck buffer.
        let (sim, bell) = run_flows(1, 4_000);
        let hwm = sim
            .switch(bell.left)
            .queue_stats(bell.bottleneck_port, 0)
            .high_watermark_bytes;
        assert!(
            hwm >= 28_000,
            "queue high-watermark {hwm} never approached the 30 KB limit"
        );
    }

    #[test]
    fn two_flows_share_within_reason() {
        let (sim, bell) = run_flows(2, 6_000);
        let a = sim.host_app::<AimdAcker>(bell.receivers[0]).bytes as f64;
        let b = sim.host_app::<AimdAcker>(bell.receivers[1]).bytes as f64;
        let ratio = a.max(b) / a.min(b).max(1.0);
        assert!(ratio < 3.0, "grossly unfair split: {a} vs {b}");
        // Combined they still use most of the link.
        let total_bps = (a + b) * 8.0 / 6.0;
        assert!(total_bps > 0.6 * 10e6, "total {total_bps:.0}");
    }

    #[test]
    fn rate_trace_shows_sawtooth() {
        let (sim, bell) = run_flows(1, 4_000);
        let sender = sim.host_app::<AimdSender>(bell.senders[0]);
        let rates: Vec<u64> = sender.rate_trace.iter().map(|(_, r)| *r).collect();
        let ups = rates.windows(2).filter(|w| w[1] > w[0]).count();
        let downs = rates.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(ups > 10, "additive increases: {ups}");
        assert!(downs > 0, "multiplicative decreases: {downs}");
    }
}
