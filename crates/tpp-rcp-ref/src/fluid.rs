//! The "RCP: simulation" curve of Figure 2 — a self-contained simulation
//! of a single RCP-enabled bottleneck whose router implements the control
//! law natively in its dataplane (what the paper's ns-2 run modelled).
//!
//! The model: `N(t)` compliant flows each transmit at the router's
//! advertised rate `R(t)` (in real RCP the rate rides in the packet
//! header and each router stamps the minimum; with one bottleneck that
//! minimum *is* this router's rate, one RTT delayed — we model the
//! one-RTT feedback lag explicitly). The router measures offered load and
//! queue over each control period `T` and steps the law.

use crate::equation::{rcp_update, RcpParams};

/// When a flow is active.
#[derive(Debug, Clone, Copy)]
pub struct FlowSchedule {
    /// Start time, seconds.
    pub start_s: f64,
    /// Stop time, seconds (`None` = runs forever).
    pub stop_s: Option<f64>,
}

impl FlowSchedule {
    /// A flow that starts at `start_s` and never stops.
    pub fn starting_at(start_s: f64) -> Self {
        FlowSchedule {
            start_s,
            stop_s: None,
        }
    }

    fn active(&self, t: f64) -> bool {
        t >= self.start_s && self.stop_s.is_none_or(|stop| t < stop)
    }
}

/// One sample of the simulation's state.
#[derive(Debug, Clone, Copy)]
pub struct RcpSamplePoint {
    /// Time, seconds.
    pub t_s: f64,
    /// The router's advertised fair-share rate, bits/s.
    pub rate_bps: f64,
    /// `rate_bps / capacity` — the paper's Figure 2 y-axis.
    pub r_over_c: f64,
    /// Number of active flows.
    pub n_active: usize,
    /// Bottleneck queue, bytes.
    pub queue_bytes: f64,
    /// Offered load over the last control period, bits/s.
    pub y_bps: f64,
}

/// A single-bottleneck reference RCP simulation.
#[derive(Debug, Clone)]
pub struct RcpFluidSim {
    /// Link and control-law parameters.
    pub params: RcpParams,
    /// The flows and their lifetimes.
    pub flows: Vec<FlowSchedule>,
    /// Integration step, seconds (must be ≤ the control period).
    pub dt_s: f64,
}

impl RcpFluidSim {
    /// Build a simulation with the paper's defaults and a 1 ms step.
    pub fn new(params: RcpParams, flows: Vec<FlowSchedule>) -> Self {
        RcpFluidSim {
            params,
            flows,
            dt_s: 1e-3,
        }
    }

    /// Run for `duration_s`, sampling once per control period.
    pub fn run(&self, duration_s: f64) -> Vec<RcpSamplePoint> {
        let p = &self.params;
        assert!(self.dt_s > 0.0 && self.dt_s <= p.period_s);
        // The router's advertised rate starts at capacity: "a control
        // plane program initializes each link's fair share rate to its
        // capacity" (§2.2, footnote 3).
        let mut rate = p.capacity_bps;
        // Flows react to the rate they learned one RTT ago.
        let mut flow_rate = rate;
        let lag_steps = (p.rtt_s / self.dt_s).round().max(1.0) as usize;
        let mut rate_history = std::collections::VecDeque::from(vec![rate; lag_steps]);

        let mut queue_bytes = 0.0f64;
        let mut window_bits = 0.0f64;
        let mut window_queue_sum = 0.0f64;
        let mut window_steps = 0usize;
        let mut next_update = p.period_s;
        let mut samples = Vec::new();
        let mut t = 0.0f64;

        while t < duration_s {
            let n_active = self.flows.iter().filter(|f| f.active(t)).count();
            // Arrivals this step: n flows at the lagged advertised rate.
            let arrival_bps = n_active as f64 * flow_rate;
            window_bits += arrival_bps * self.dt_s;
            // Queue evolution: arrivals minus service.
            let delta_bits = (arrival_bps - p.capacity_bps) * self.dt_s;
            queue_bytes = (queue_bytes + delta_bits / 8.0).max(0.0);
            window_queue_sum += queue_bytes;
            window_steps += 1;

            // Feedback lag.
            rate_history.push_back(rate);
            flow_rate = rate_history.pop_front().expect("non-empty");

            t += self.dt_s;
            if t + 1e-12 >= next_update {
                let y_bps = window_bits / p.period_s;
                let q_avg = window_queue_sum / window_steps.max(1) as f64;
                rate = rcp_update(rate, y_bps, q_avg, p);
                samples.push(RcpSamplePoint {
                    t_s: t,
                    rate_bps: rate,
                    r_over_c: rate / p.capacity_bps,
                    n_active,
                    queue_bytes,
                    y_bps,
                });
                window_bits = 0.0;
                window_queue_sum = 0.0;
                window_steps = 0;
                next_update += p.period_s;
            }
        }
        samples
    }
}

/// Mean of `r_over_c` over samples with `lo <= t < hi` (experiment
/// helper: "where did R/C settle in this window?").
pub fn mean_r_over_c(samples: &[RcpSamplePoint], lo_s: f64, hi_s: f64) -> f64 {
    let window: Vec<f64> = samples
        .iter()
        .filter(|s| s.t_s >= lo_s && s.t_s < hi_s)
        .map(|s| s.r_over_c)
        .collect();
    if window.is_empty() {
        return f64::NAN;
    }
    window.iter().sum::<f64>() / window.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 scenario: 10 Mb/s bottleneck, flows starting
    /// at t = 0, 10, 20 s, α = 0.5, β = 1.
    fn figure2_sim() -> RcpFluidSim {
        let params = RcpParams::paper_defaults(10e6, 0.05);
        RcpFluidSim::new(
            params,
            vec![
                FlowSchedule::starting_at(0.0),
                FlowSchedule::starting_at(10.0),
                FlowSchedule::starting_at(20.0),
            ],
        )
    }

    #[test]
    fn figure2_convergence_shape() {
        let samples = figure2_sim().run(30.0);
        // Settled windows well after each join: R/C ~ 1, 1/2, 1/3.
        let w1 = mean_r_over_c(&samples, 5.0, 10.0);
        let w2 = mean_r_over_c(&samples, 15.0, 20.0);
        let w3 = mean_r_over_c(&samples, 25.0, 30.0);
        assert!((w1 - 1.0).abs() < 0.05, "one flow: {w1}");
        assert!((w2 - 0.5).abs() < 0.05, "two flows: {w2}");
        assert!((w3 - 1.0 / 3.0).abs() < 0.04, "three flows: {w3}");
    }

    #[test]
    fn convergence_is_fast() {
        // "they both show quick convergence" — within 2 s (40 RTTs) of
        // the second flow joining, R/C is already near 0.5.
        let samples = figure2_sim().run(13.0);
        let just_after = mean_r_over_c(&samples, 11.5, 12.5);
        assert!(
            (just_after - 0.5).abs() < 0.1,
            "slow convergence: {just_after}"
        );
    }

    #[test]
    fn queue_stays_bounded() {
        let samples = figure2_sim().run(30.0);
        let max_q = samples.iter().map(|s| s.queue_bytes).fold(0.0, f64::max);
        // RCP's β-term drains standing queues; transient spikes at flow
        // joins are expected but bounded (well under 1 s of buffering).
        assert!(max_q < 10e6 / 8.0, "unbounded queue: {max_q}");
        // And the queue at the end (steady state) is near-empty.
        let last = samples.last().unwrap();
        assert!(
            last.queue_bytes < 20_000.0,
            "standing queue: {}",
            last.queue_bytes
        );
    }

    #[test]
    fn flow_departure_reclaims_bandwidth() {
        let params = RcpParams::paper_defaults(10e6, 0.05);
        let sim = RcpFluidSim::new(
            params,
            vec![
                FlowSchedule::starting_at(0.0),
                FlowSchedule {
                    start_s: 5.0,
                    stop_s: Some(15.0),
                },
            ],
        );
        let samples = sim.run(25.0);
        let shared = mean_r_over_c(&samples, 10.0, 15.0);
        let alone = mean_r_over_c(&samples, 20.0, 25.0);
        assert!((shared - 0.5).abs() < 0.05, "shared: {shared}");
        assert!((alone - 1.0).abs() < 0.05, "reclaimed: {alone}");
    }

    #[test]
    fn utilization_is_high_in_steady_state() {
        let samples = figure2_sim().run(30.0);
        // y ≈ C from t=6s on (one flow at R≈C).
        let late: Vec<&RcpSamplePoint> = samples.iter().filter(|s| s.t_s > 6.0).collect();
        let mean_util = late.iter().map(|s| s.y_bps / 10e6).sum::<f64>() / late.len() as f64;
        assert!(mean_util > 0.9, "wasted capacity: {mean_util}");
    }

    #[test]
    fn deterministic() {
        let a = figure2_sim().run(5.0);
        let b = figure2_sim().run(5.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rate_bps.to_bits(), y.rate_bps.to_bits());
        }
    }
}
