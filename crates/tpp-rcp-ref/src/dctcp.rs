//! A DCTCP-flavoured rate controller driven by fixed-function ECN marks.
//!
//! §4 positions TPPs against the fixed-function lineage: "One example is
//! Explicit Congestion Notification (ECN) in which a router stamps a bit
//! in the IP header whenever the egress queue occupancy exceeds a
//! configurable threshold." This module implements that design point —
//! the switch exports exactly **one bit** per packet — so the
//! `fixed_function_vs_tpp` experiment can compare it head-to-head with
//! RCP\*'s TPP-read rates on the same substrate.
//!
//! Mechanism (rate-based DCTCP):
//! * data packets are header-only TPPs (no instructions), so the ASIC's
//!   ECN logic can stamp `FLAG_ECN` when the egress queue exceeds the
//!   marking threshold;
//! * the receiver acknowledges each packet with a tiny echo carrying the
//!   mark bit back;
//! * per RTT window the sender computes the marked fraction `F`, updates
//!   `alpha <- (1-g)*alpha + g*F`, and applies `rate *= 1 - alpha/2` on
//!   any marks (additive increase otherwise).

use std::collections::BTreeMap;

use tpp_host::{PacedSender, RttEstimator};
use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::ethernet::{build_frame, EtherType, Frame};
use tpp_wire::tpp::{AddressingMode, TppBuilder, TppPacket, FLAG_ECHOED, FLAG_ECN};
use tpp_wire::EthernetAddress;

const TIMER_PACE: u64 = 1;
const TIMER_WINDOW: u64 = 2;

/// Configuration of a [`DctcpSender`].
#[derive(Debug, Clone, Copy)]
pub struct DctcpConfig {
    /// Initial rate, bits/s.
    pub init_rate_bps: u64,
    /// Rate floor, bits/s.
    pub min_rate_bps: u64,
    /// Rate ceiling, bits/s.
    pub max_rate_bps: u64,
    /// Additive increase per unmarked RTT, bits/s.
    pub increase_bps: u64,
    /// EWMA gain g for the marked fraction (DCTCP paper: 1/16).
    pub g: f64,
    /// Data payload length, bytes.
    pub payload_len: usize,
    /// Fallback RTT before any sample, ns.
    pub initial_rtt_ns: u64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig {
            init_rate_bps: 500_000,
            min_rate_bps: 100_000,
            max_rate_bps: 100_000_000,
            increase_bps: 200_000,
            g: 1.0 / 16.0,
            payload_len: 1000,
            initial_rtt_ns: 10_000_000,
        }
    }
}

/// A sender whose only congestion signal is the ECN bit.
#[derive(Debug)]
pub struct DctcpSender {
    config: DctcpConfig,
    dst: EthernetAddress,
    pacer: PacedSender,
    rtt: RttEstimator,
    outstanding: BTreeMap<u32, u64>,
    alpha: f64,
    window_acks: u64,
    window_marked: u64,
    /// `(time ns, rate bps)` after every window decision.
    pub rate_trace: Vec<(u64, u64)>,
    /// Total acks received.
    pub acks: u64,
    /// Total marked acks received.
    pub marked_acks: u64,
    start_ns: u64,
}

impl DctcpSender {
    /// A sender to `dst` starting at `start_ns`.
    pub fn new(dst: EthernetAddress, config: DctcpConfig, start_ns: u64) -> Self {
        DctcpSender {
            pacer: PacedSender::new(dst, config.payload_len, config.init_rate_bps, start_ns),
            rtt: RttEstimator::new(),
            outstanding: BTreeMap::new(),
            alpha: 0.0,
            window_acks: 0,
            window_marked: 0,
            rate_trace: Vec::new(),
            acks: 0,
            marked_acks: 0,
            config,
            dst,
            start_ns,
        }
    }

    /// Current sending rate, bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.pacer.rate_bps()
    }

    /// The current marked-fraction EWMA.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Wrap the pacer's datagram into a header-only TPP so switches can
    /// ECN-mark it.
    fn markable_frame(&mut self, now: u64, mac: EthernetAddress) -> Option<(u32, Vec<u8>)> {
        let inner = self.pacer.poll(now, mac)?;
        let parsed = Frame::new_checked(&inner[..]).expect("own frame");
        let seq = u32::from_be_bytes(parsed.payload()[0..4].try_into().expect("4 bytes"));
        let tpp = TppBuilder::new(AddressingMode::Stack)
            .instructions(&[])
            .memory_words(0)
            .payload(parsed.payload())
            .inner_ethertype(tpp_host::DATA_ETHERTYPE.0)
            .build();
        Some((seq, build_frame(self.dst, mac, EtherType::TPP, &tpp)))
    }

    fn pace(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        while let Some((seq, frame)) = self.markable_frame(now, ctx.mac()) {
            self.outstanding.insert(seq, now);
            ctx.send(frame);
        }
        let next = self.pacer.next_tx_ns().saturating_sub(now).max(1);
        ctx.set_timer(next, TIMER_PACE);
    }

    fn window(&mut self, ctx: &mut HostCtx<'_>) {
        let rtt = self.rtt.srtt_or(self.config.initial_rtt_ns);
        if self.window_acks > 0 {
            let f = self.window_marked as f64 / self.window_acks as f64;
            self.alpha = (1.0 - self.config.g) * self.alpha + self.config.g * f;
            let rate = self.pacer.rate_bps();
            let new_rate = if self.window_marked > 0 {
                (rate as f64 * (1.0 - self.alpha / 2.0)) as u64
            } else {
                rate + self.config.increase_bps
            }
            .clamp(self.config.min_rate_bps, self.config.max_rate_bps);
            self.pacer.set_rate_bps(new_rate, ctx.now());
            self.rate_trace.push((ctx.now(), new_rate));
        }
        self.window_acks = 0;
        self.window_marked = 0;
        ctx.set_timer(rtt.max(1_000_000), TIMER_WINDOW);
    }
}

impl HostApp for DctcpSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.start_ns, TIMER_PACE);
        ctx.set_timer(self.start_ns + self.config.initial_rtt_ns, TIMER_WINDOW);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut HostCtx<'_>) {
        match token {
            TIMER_PACE => self.pace(ctx),
            TIMER_WINDOW => self.window(ctx),
            _ => {}
        }
    }

    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        // ACKs are tiny echoed TPPs whose payload is the seq and whose
        // flags carry the mark.
        let Ok(parsed) = Frame::new_checked(&frame[..]) else {
            return;
        };
        if !parsed.is_tpp() {
            return;
        }
        let Ok(tpp) = TppPacket::new_checked(parsed.payload()) else {
            return;
        };
        if tpp.flags() & FLAG_ECHOED == 0 || tpp.inner_payload().len() < 4 {
            return;
        }
        let seq = u32::from_be_bytes(tpp.inner_payload()[0..4].try_into().expect("4 bytes"));
        if let Some(sent) = self.outstanding.remove(&seq) {
            self.rtt.on_sample(ctx.now().saturating_sub(sent));
            self.acks += 1;
            self.window_acks += 1;
            if tpp.flags() & FLAG_ECN != 0 {
                self.marked_acks += 1;
                self.window_marked += 1;
            }
        }
    }
}

/// The DCTCP receiver: counts goodput and acknowledges every data packet
/// with a small echo that reflects the ECN mark.
#[derive(Debug, Default)]
pub struct DctcpReceiver {
    /// Data payload bytes received.
    pub bytes: u64,
    /// Packets received.
    pub packets: u64,
    /// Packets that arrived ECN-marked.
    pub marked: u64,
}

impl HostApp for DctcpReceiver {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        let Ok(parsed) = Frame::new_checked(&frame[..]) else {
            return;
        };
        if !parsed.is_tpp() || parsed.dst_addr() != ctx.mac() {
            return;
        }
        let Ok(tpp) = TppPacket::new_checked(parsed.payload()) else {
            return;
        };
        if tpp.flags() & FLAG_ECHOED != 0 || tpp.inner_payload().len() < 4 {
            return;
        }
        self.packets += 1;
        self.bytes += tpp.inner_payload().len() as u64;
        let marked = tpp.flags() & FLAG_ECN != 0;
        if marked {
            self.marked += 1;
        }
        // ACK: header-only TPP, 4-byte seq payload, mark + echoed flags.
        let ack_tpp = TppBuilder::new(AddressingMode::Stack)
            .instructions(&[])
            .memory_words(0)
            .payload(&tpp.inner_payload()[0..4])
            .inner_ethertype(tpp_host::DATA_ETHERTYPE.0)
            .build();
        let mut ack = build_frame(parsed.src_addr(), ctx.mac(), EtherType::TPP, &ack_tpp);
        {
            let mut out = Frame::new_unchecked(&mut ack[..]);
            let mut t = TppPacket::new_unchecked(out.payload_mut());
            t.set_flags(FLAG_ECHOED | if marked { FLAG_ECN } else { 0 });
        }
        ctx.send(ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_netsim::RunLimit;
    use tpp_netsim::{dumbbell, time, DumbbellParams, Simulator};

    fn run(n: usize, ms: u64, ecn_threshold: u32) -> (Simulator, tpp_netsim::Dumbbell) {
        let apps: Vec<(Box<dyn HostApp>, Box<dyn HostApp>)> = (0..n)
            .map(|i| {
                let dst = EthernetAddress::from_host_id((2 * i + 1) as u32);
                (
                    Box::new(DctcpSender::new(dst, DctcpConfig::default(), 0)) as Box<dyn HostApp>,
                    Box::new(DctcpReceiver::default()) as Box<dyn HostApp>,
                )
            })
            .collect();
        let (mut sim, bell) = dumbbell(
            DumbbellParams {
                n_pairs: n,
                queue_limit_bytes: 60_000,
                ..Default::default()
            },
            apps,
        );
        let port = bell.bottleneck_port;
        sim.switch_mut(bell.left)
            .set_ecn_threshold(port, Some(ecn_threshold));
        sim.run(RunLimit::Until(time::millis(ms)));
        (sim, bell)
    }

    #[test]
    fn marks_flow_back_and_throttle() {
        let (sim, bell) = run(1, 4_000, 15_000);
        let sender = sim.host_app::<DctcpSender>(bell.senders[0]);
        assert!(sender.acks > 500, "acks {}", sender.acks);
        assert!(sender.marked_acks > 0, "no marks ever seen");
        assert!(sender.alpha() > 0.0);
        // Goodput reaches a decent share of the 10 Mb/s bottleneck.
        let recv = sim.host_app::<DctcpReceiver>(bell.receivers[0]);
        let goodput = recv.bytes as f64 * 8.0 / 4.0;
        assert!(goodput > 0.6 * 10e6, "goodput {goodput:.0}");
    }

    #[test]
    fn queue_rides_around_the_marking_threshold() {
        let (sim, bell) = run(1, 4_000, 15_000);
        let hwm = sim
            .switch(bell.left)
            .queue_stats(bell.bottleneck_port, 0)
            .high_watermark_bytes;
        // DCTCP holds the queue near K — far below the 60 KB limit an
        // AIMD flow would fill, but necessarily above zero (unlike RCP).
        assert!(hwm >= 15_000, "queue never reached K: {hwm}");
        assert!(hwm < 60_000, "queue hit the buffer limit: {hwm}");
    }

    #[test]
    fn two_flows_share() {
        let (sim, bell) = run(2, 6_000, 15_000);
        let a = sim.host_app::<DctcpReceiver>(bell.receivers[0]).bytes as f64;
        let b = sim.host_app::<DctcpReceiver>(bell.receivers[1]).bytes as f64;
        let ratio = a.max(b) / a.min(b).max(1.0);
        assert!(ratio < 2.0, "unfair: {a} vs {b}");
    }
}
