//! RCP implemented *natively in the router* — the counterfactual the
//! paper argues against building: "deploying such proposals requires
//! ASICs that directly implement the required functionality in the
//! dataplane" (§1). Here the ASIC-resident control loop is modelled by a
//! driver that reads the switch's own counters directly (no TPPs, no
//! round trips) and writes the per-port fair-share register; compliant
//! senders learn the rate by reading that register with a one-PUSH TPP.
//!
//! Running this on the *same* packet substrate as RCP\* gives Figure 2
//! a second, stronger comparison than the standalone fluid simulation:
//! identical links, queues, and probe traffic — only the location of the
//! computation differs.

use crate::equation::{rcp_update, RcpParams};
use tpp_asic::{Asic, PortId};

/// Per-port state of the native control loop.
#[derive(Debug, Clone, Copy, Default)]
struct PortState {
    prev_rx_bytes: u64,
    initialized: bool,
}

/// The router-resident RCP module for one switch: call [`NativeRcpRouter::step`]
/// every control period (the ASIC vendor\'s firmware timer, in the model:
/// the experiment harness).
#[derive(Debug)]
pub struct NativeRcpRouter {
    alpha: f64,
    beta: f64,
    rtt_s: f64,
    period_s: f64,
    ports: Vec<PortState>,
    last_step_ns: u64,
}

impl NativeRcpRouter {
    /// A native RCP module for a switch with `num_ports` ports.
    pub fn new(num_ports: usize, alpha: f64, beta: f64, rtt_s: f64, period_s: f64) -> Self {
        NativeRcpRouter {
            alpha,
            beta,
            rtt_s,
            period_s,
            ports: vec![PortState::default(); num_ports],
            last_step_ns: 0,
        }
    }

    /// The paper\'s Figure 2 gains with a given control period.
    pub fn paper_defaults(num_ports: usize, rtt_s: f64, period_s: f64) -> Self {
        NativeRcpRouter::new(num_ports, 0.5, 1.0, rtt_s, period_s)
    }

    /// One control step: for every port, measure offered load from the
    /// ASIC\'s own byte counters, read the instantaneous queue, run the
    /// shared control law, and write the rate register (word 0 of the
    /// per-link SRAM, in kb/s — the same register RCP\* uses, so the
    /// same reader TPP works against both implementations).
    pub fn step(&mut self, asic: &mut Asic, now_ns: u64) {
        let dt_s = (now_ns.saturating_sub(self.last_step_ns)) as f64 / 1e9;
        self.last_step_ns = now_ns;
        if dt_s <= 0.0 {
            // Zero-length interval (e.g. the very first call at t=0):
            // snapshot the counters so the next interval measures
            // correctly, but make no control decision.
            for port in 0..self.ports.len().min(asic.num_ports()) {
                let state = &mut self.ports[port];
                state.prev_rx_bytes = asic.port_stats(port as PortId).rx_bytes;
                state.initialized = true;
            }
            return;
        }
        for port in 0..self.ports.len().min(asic.num_ports()) {
            let pid = port as PortId;
            let stats = asic.port_stats(pid);
            let rx = stats.rx_bytes;
            let state = &mut self.ports[port];
            if !state.initialized {
                state.initialized = true;
                state.prev_rx_bytes = rx;
                continue;
            }
            let y_bps = (rx - state.prev_rx_bytes) as f64 * 8.0 / dt_s;
            state.prev_rx_bytes = rx;
            let q_bytes = asic.queue_len_bytes(pid, 0) as f64;
            let capacity_bps = asic.port_capacity_kbps(pid) as f64 * 1e3;
            let params = RcpParams {
                alpha: self.alpha,
                beta: self.beta,
                period_s: dt_s.min(self.period_s * 2.0),
                rtt_s: self.rtt_s.max(dt_s),
                capacity_bps,
                min_rate_bps: capacity_bps * 1e-3,
                step_bound: 2.0,
            };
            let prev_bps = asic
                .link_sram(pid)
                .and_then(|sram| sram.word(0))
                .expect("RCP rate register (link SRAM word 0) unavailable")
                as f64
                * 1e3;
            let next = rcp_update(prev_bps, y_bps, q_bytes, &params);
            asic.link_sram_mut(pid)
                .and_then(|mut sram| sram.set_word(0, (next / 1e3).round().max(1.0) as u32))
                .expect("RCP rate register (link SRAM word 0) unavailable");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // The end-to-end comparison lives at the workspace level
    // (tests/native_rcp.rs) because the sender half comes from tpp-apps,
    // which depends on this crate. Here we check the driver arithmetic.

    #[test]
    fn step_writes_rate_registers_from_counters() {
        use tpp_asic::{Asic, AsicConfig};
        let mut asic = Asic::new(AsicConfig::with_ports(1, 2).capacity_kbps(10_000));
        // Initialize registers to capacity, as the control plane does.
        for p in 0..2 {
            asic.link_sram_mut(p)
                .and_then(|mut sram| sram.set_word(0, 10_000))
                .unwrap();
        }
        let mut router = NativeRcpRouter::paper_defaults(2, 0.05, 0.01);
        router.step(&mut asic, 0); // initialization pass
                                   // Simulate 10 ms of 20 Mb/s offered load on port 1 by pushing
                                   // frames through (2x overload).
        asic.l2_mut()
            .insert(tpp_wire::EthernetAddress::from_host_id(1), 1);
        for i in 0..25 {
            let frame = tpp_wire::ethernet::build_frame(
                tpp_wire::EthernetAddress::from_host_id(1),
                tpp_wire::EthernetAddress::from_host_id(0),
                tpp_wire::ethernet::EtherType(0x0802),
                &vec![0u8; 986],
            );
            asic.handle_frame(frame, 0, i * 400_000);
        }
        router.step(&mut asic, 10_000_000);
        let reg = asic.link_sram(1).and_then(|s| s.word(0)).unwrap();
        assert!(
            reg < 10_000,
            "overloaded port must advertise below C: {reg}"
        );
        // The idle port decays toward... an idle port with no queue has
        // y=0 < C: rate grows (clamped at capacity).
        assert_eq!(asic.link_sram(0).and_then(|s| s.word(0)).unwrap(), 10_000);
    }

    #[test]
    fn uninitialized_ports_are_skipped_gracefully() {
        use tpp_asic::{Asic, AsicConfig};
        let mut asic = Asic::new(AsicConfig::with_ports(1, 2));
        let mut router = NativeRcpRouter::new(8, 0.5, 1.0, 0.05, 0.01); // more ports than asic
        router.step(&mut asic, 0);
        router.step(&mut asic, 10_000_000); // must not panic
    }
}
