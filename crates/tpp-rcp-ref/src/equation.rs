//! The RCP control equation of §2.2:
//!
//! ```text
//!                 (         α (y(t) − C) + β q(t)/d  )
//! R(t+T) = R(t) · ( 1 − T/d ·------------------------ )
//!                 (                    C              )
//! ```
//!
//! where `y(t)` is the average ingress link utilization (offered load,
//! bits/s), `q(t)` the average queue size (bytes), `d` the average RTT of
//! flows on the link, `C` the link capacity, and `α`, `β` configurable
//! gains. The paper (and our Figure 2 reproduction) uses α = 0.5, β = 1.
//!
//! This one function is deliberately the *single* implementation of the
//! law in the workspace: the in-router reference (`fluid`) and the
//! end-host RCP\* controller (`tpp-apps::rcpstar`) both call it, which is
//! exactly the refactoring claim of the paper — same computation, moved
//! from the ASIC to the end-host, fed by TPP reads instead of local
//! registers.

/// Parameters of an RCP-controlled link.
#[derive(Debug, Clone, Copy)]
pub struct RcpParams {
    /// Gain on the rate mismatch term. Paper: 0.5.
    pub alpha: f64,
    /// Gain on the queue drain term. Paper: 1.0.
    pub beta: f64,
    /// Control period T, seconds (typically ~ the RTT).
    pub period_s: f64,
    /// Average round-trip time d of flows through the link, seconds.
    pub rtt_s: f64,
    /// Link capacity C, bits/s.
    pub capacity_bps: f64,
    /// Floor for R, bits/s (keeps the multiplicative law away from 0,
    /// from which it could never recover).
    pub min_rate_bps: f64,
    /// Per-update multiplicative step bound: the factor is clamped to
    /// `[1/step_bound, step_bound]`. `f64::INFINITY` disables the clamp
    /// (used by the ablation study; the ns-2 reference also bounds its
    /// per-step rate change).
    pub step_bound: f64,
}

impl RcpParams {
    /// The paper's Figure 2 configuration on a given link: α = 0.5,
    /// β = 1, control period = RTT.
    pub fn paper_defaults(capacity_bps: f64, rtt_s: f64) -> Self {
        RcpParams {
            alpha: 0.5,
            beta: 1.0,
            period_s: rtt_s,
            rtt_s,
            capacity_bps,
            min_rate_bps: capacity_bps * 1e-3,
            step_bound: 2.0,
        }
    }
}

/// One step of the RCP control law: the new fair-share rate from the
/// previous rate `r_bps`, measured offered load `y_bps`, and measured
/// average queue `q_bytes`.
///
/// Two practical clamps, both also present in the ns-2 RCP reference
/// implementation the paper compared against:
///
/// * the multiplicative step is bounded to `[0.5, 2.0]` per update, so a
///   transient measurement spike (a queue burst sampled against a stale
///   small RTT) can at worst halve the rate rather than crash it to the
///   floor and trigger a starve/overshoot limit cycle;
/// * the result is clamped to `[min_rate_bps, capacity_bps]`: a link can
///   never hand out more than itself, and never starves a flow
///   completely.
pub fn rcp_update(r_bps: f64, y_bps: f64, q_bytes: f64, p: &RcpParams) -> f64 {
    let q_bits = q_bytes * 8.0;
    let pressure = p.alpha * (y_bps - p.capacity_bps) + p.beta * q_bits / p.rtt_s;
    let raw = 1.0 - (p.period_s / p.rtt_s) * pressure / p.capacity_bps;
    let factor = if p.step_bound.is_finite() {
        raw.clamp(1.0 / p.step_bound, p.step_bound)
    } else {
        raw.max(0.0)
    };
    (r_bps * factor).clamp(p.min_rate_bps, p.capacity_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RcpParams {
        RcpParams::paper_defaults(10e6, 0.01) // 10 Mb/s, 10 ms RTT
    }

    #[test]
    fn underload_grows_rate() {
        let p = params();
        // Half-utilized link, empty queue: rate must increase.
        let r = rcp_update(5e6, 5e6, 0.0, &p);
        assert!(r > 5e6, "got {r}");
    }

    #[test]
    fn overload_shrinks_rate() {
        let p = params();
        let r = rcp_update(10e6, 20e6, 0.0, &p);
        assert!(r < 10e6, "got {r}");
    }

    #[test]
    fn standing_queue_shrinks_rate_even_at_capacity() {
        let p = params();
        // y == C exactly, but a standing queue must push the rate down.
        let r = rcp_update(10e6, 10e6, 50_000.0, &p);
        assert!(r < 10e6, "got {r}");
    }

    #[test]
    fn fixed_point_at_full_utilization_empty_queue() {
        let p = params();
        // y == C, q == 0: pressure is zero, R unchanged.
        let r = rcp_update(7e6, 10e6, 0.0, &p);
        assert!((r - 7e6).abs() < 1.0, "got {r}");
    }

    #[test]
    fn clamps_to_capacity_and_floor() {
        let p = params();
        // Idle link: rate grows but never beyond C.
        let mut r = 9.9e6;
        for _ in 0..100 {
            r = rcp_update(r, 0.0, 0.0, &p);
        }
        assert_eq!(r, p.capacity_bps);
        // Catastrophic overload: rate shrinks but never below the floor.
        let mut r = 1e6;
        for _ in 0..1000 {
            r = rcp_update(r, 100e6, 1e6, &p);
        }
        assert_eq!(r, p.min_rate_bps);
    }

    #[test]
    fn converges_to_fair_share_with_n_compliant_flows() {
        // N flows each sending at R: y = N*R. Iterating the law must
        // settle near C/N — the max-min fair share.
        let p = params();
        for n in [1usize, 2, 3, 5] {
            let mut r = p.capacity_bps; // initialized to capacity (§2.2 fn 3)
            for _ in 0..500 {
                let y = n as f64 * r;
                r = rcp_update(r, y, 0.0, &p);
            }
            let fair = p.capacity_bps / n as f64;
            assert!(
                (r - fair).abs() / fair < 0.05,
                "n={n}: got {r}, want ~{fair}"
            );
        }
    }
}
