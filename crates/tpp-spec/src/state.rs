//! Reference model of the §3.2.1 unified memory map (Table 2).
//!
//! [`SpecState`] restates, independently of `tpp-asic`, what every
//! virtual address means: which bank backs it, whether it is writable,
//! and how counters wider than 32 bits are narrowed (wrapping low 32
//! bits, like real ASIC/SNMP counters). The address *constants* come
//! from `tpp-isa` — the ISA crate is the shared contract — but the
//! dispatch and permission rules are re-derived here so a bug in the
//! optimized MMU shows up as a divergence rather than being inherited.

use tpp_isa::{Namespace, Stat, VirtAddr};

/// A fault raised on an illegal access; mirrors the optimized MMU's
/// fault taxonomy one-for-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFault {
    /// The address maps to no register or SRAM cell.
    Unmapped(VirtAddr),
    /// A write targeted a read-only namespace.
    ReadOnly(VirtAddr),
    /// The address falls in SRAM but past the provisioned size.
    OutOfRange(VirtAddr),
}

/// Global switch registers (Table 2 row 1, plus the boot-epoch register).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchBank {
    /// `Switch:SwitchID`.
    pub switch_id: u32,
    /// `Switch:FlowTableVersion`.
    pub flow_table_version: u32,
    /// `Switch:L2TableHits` (64-bit counter, low 32 exposed).
    pub l2_hits: u64,
    /// `Switch:L3TableHits`.
    pub l3_hits: u64,
    /// `Switch:TCAMHits`.
    pub tcam_hits: u64,
    /// `Switch:PacketsProcessed`.
    pub packets_processed: u64,
    /// `Switch:TPPsExecuted`.
    pub tpps_executed: u64,
    /// `Switch:WallClock` (nanoseconds, low 32 exposed).
    pub wall_clock_ns: u64,
    /// `Switch:BootEpoch`.
    pub boot_epoch: u32,
}

/// Egress-link statistics (Table 2 row 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkBank {
    /// `Link:RxBytes`.
    pub rx_bytes: u64,
    /// `Link:TxBytes`.
    pub tx_bytes: u64,
    /// `Link:RxUtilization` (permille).
    pub rx_utilization_permille: u32,
    /// `Link:TxUtilization` (permille).
    pub tx_utilization_permille: u32,
    /// `Link:BytesDropped`.
    pub bytes_dropped: u64,
    /// `Link:BytesEnqueued`.
    pub bytes_enqueued: u64,
    /// `Link:RxPackets`.
    pub rx_packets: u64,
    /// `Link:TxPackets`.
    pub tx_packets: u64,
    /// `Link:CapacityKbps`.
    pub capacity_kbps: u32,
    /// `Link:EcnMarked`.
    pub ecn_marked: u64,
    /// `Link:SnrDeciBel`.
    pub snr_decidb: u32,
}

/// Egress-queue statistics (Table 2 row 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueBank {
    /// `Queue:QueueSize` (bytes; also backs `Link:QueueSize`).
    pub queue_size_bytes: u64,
    /// `Queue:BytesEnqueued`.
    pub bytes_enqueued: u64,
    /// `Queue:BytesDropped`.
    pub bytes_dropped: u64,
    /// `Queue:PacketsEnqueued`.
    pub packets_enqueued: u64,
    /// `Queue:PacketsDropped`.
    pub packets_dropped: u64,
    /// `Queue:HighWatermark` (bytes).
    pub high_watermark_bytes: u64,
    /// `Queue:Limit` (bytes).
    pub limit_bytes: u32,
}

/// Per-packet metadata (Table 2 row 4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaBank {
    /// `PacketMetadata:InputPort`.
    pub input_port: u32,
    /// `PacketMetadata:OutputPort`.
    pub output_port: u32,
    /// `PacketMetadata:MatchedEntryID`.
    pub matched_entry_id: u32,
    /// `PacketMetadata:MatchedEntryVersion`.
    pub matched_entry_version: u32,
    /// `PacketMetadata:QueueID`.
    pub queue_id: u32,
    /// `PacketMetadata:PacketLength`.
    pub packet_length: u32,
    /// `PacketMetadata:ArrivalTime` (nanoseconds, low 32 exposed).
    pub arrival_time_ns: u64,
    /// `PacketMetadata:AlternateRoutes`.
    pub alternate_routes: u32,
}

/// The complete switch state a TPP can observe at one hop: the four
/// read-only banks plus the two writable scratch SRAMs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecState {
    /// Global switch registers.
    pub switch: SwitchBank,
    /// Egress-link statistics.
    pub link: LinkBank,
    /// Egress-queue statistics.
    pub queue: QueueBank,
    /// Per-packet metadata.
    pub meta: MetaBank,
    /// Writable per-link scratch SRAM of the egress port.
    pub link_sram: Vec<u32>,
    /// Writable global scratch SRAM.
    pub global_sram: Vec<u32>,
}

/// Narrow a wide counter the way the hardware does: wrapping low 32 bits.
fn low32(v: u64) -> u32 {
    v as u32
}

impl SpecState {
    /// Read the 32-bit word at a virtual address.
    pub fn read(&self, addr: VirtAddr) -> Result<u32, SpecFault> {
        match addr.namespace() {
            Namespace::Switch => self.read_switch(addr),
            Namespace::Link => self.read_link(addr),
            Namespace::Queue => self.read_queue(addr),
            Namespace::PacketMetadata => self.read_meta(addr),
            Namespace::LinkSram => sram_get(&self.link_sram, addr),
            Namespace::GlobalSram => sram_get(&self.global_sram, addr),
            Namespace::Reserved => Err(SpecFault::Unmapped(addr)),
        }
    }

    /// Write the 32-bit word at a virtual address. Only the two scratch
    /// SRAM namespaces accept writes; every statistic is read-only and
    /// every reserved hole is unmapped.
    pub fn write(&mut self, addr: VirtAddr, value: u32) -> Result<(), SpecFault> {
        match addr.namespace() {
            Namespace::LinkSram => sram_set(&mut self.link_sram, addr, value),
            Namespace::GlobalSram => sram_set(&mut self.global_sram, addr, value),
            Namespace::Switch | Namespace::Link | Namespace::Queue | Namespace::PacketMetadata => {
                Err(SpecFault::ReadOnly(addr))
            }
            Namespace::Reserved => Err(SpecFault::Unmapped(addr)),
        }
    }

    fn read_switch(&self, addr: VirtAddr) -> Result<u32, SpecFault> {
        let s = &self.switch;
        Ok(match addr {
            a if a == Stat::SwitchId.addr() => s.switch_id,
            a if a == Stat::FlowTableVersion.addr() => s.flow_table_version,
            a if a == Stat::L2TableHits.addr() => low32(s.l2_hits),
            a if a == Stat::L3TableHits.addr() => low32(s.l3_hits),
            a if a == Stat::TcamHits.addr() => low32(s.tcam_hits),
            a if a == Stat::PacketsProcessed.addr() => low32(s.packets_processed),
            a if a == Stat::TppsExecuted.addr() => low32(s.tpps_executed),
            a if a == Stat::WallClock.addr() => low32(s.wall_clock_ns),
            a if a == Stat::BootEpoch.addr() => s.boot_epoch,
            other => return Err(SpecFault::Unmapped(other)),
        })
    }

    fn read_link(&self, addr: VirtAddr) -> Result<u32, SpecFault> {
        let l = &self.link;
        Ok(match addr {
            a if a == Stat::RxBytes.addr() => low32(l.rx_bytes),
            a if a == Stat::TxBytes.addr() => low32(l.tx_bytes),
            a if a == Stat::RxUtilization.addr() => l.rx_utilization_permille,
            a if a == Stat::TxUtilization.addr() => l.tx_utilization_permille,
            a if a == Stat::LinkBytesDropped.addr() => low32(l.bytes_dropped),
            a if a == Stat::LinkBytesEnqueued.addr() => low32(l.bytes_enqueued),
            a if a == Stat::RxPackets.addr() => low32(l.rx_packets),
            a if a == Stat::TxPackets.addr() => low32(l.tx_packets),
            a if a == Stat::LinkCapacityKbps.addr() => l.capacity_kbps,
            // Table 2 aliases the egress queue occupancy into the Link
            // namespace: same underlying register as Queue:QueueSize.
            a if a == Stat::LinkQueueSize.addr() => low32(self.queue.queue_size_bytes),
            a if a == Stat::EcnMarked.addr() => low32(l.ecn_marked),
            a if a == Stat::SnrDeciBel.addr() => l.snr_decidb,
            other => return Err(SpecFault::Unmapped(other)),
        })
    }

    fn read_queue(&self, addr: VirtAddr) -> Result<u32, SpecFault> {
        let q = &self.queue;
        Ok(match addr {
            a if a == Stat::QueueSize.addr() => low32(q.queue_size_bytes),
            a if a == Stat::QueueBytesEnqueued.addr() => low32(q.bytes_enqueued),
            a if a == Stat::QueueBytesDropped.addr() => low32(q.bytes_dropped),
            a if a == Stat::QueuePacketsEnqueued.addr() => low32(q.packets_enqueued),
            a if a == Stat::QueuePacketsDropped.addr() => low32(q.packets_dropped),
            a if a == Stat::QueueHighWatermark.addr() => low32(q.high_watermark_bytes),
            a if a == Stat::QueueLimit.addr() => q.limit_bytes,
            other => return Err(SpecFault::Unmapped(other)),
        })
    }

    fn read_meta(&self, addr: VirtAddr) -> Result<u32, SpecFault> {
        let m = &self.meta;
        Ok(match addr {
            a if a == Stat::InputPort.addr() => m.input_port,
            a if a == Stat::OutputPort.addr() => m.output_port,
            a if a == Stat::MatchedEntryId.addr() => m.matched_entry_id,
            a if a == Stat::MatchedEntryVersion.addr() => m.matched_entry_version,
            a if a == Stat::QueueId.addr() => m.queue_id,
            a if a == Stat::PacketLength.addr() => m.packet_length,
            a if a == Stat::ArrivalTime.addr() => low32(m.arrival_time_ns),
            a if a == Stat::AlternateRoutes.addr() => m.alternate_routes,
            other => return Err(SpecFault::Unmapped(other)),
        })
    }
}

fn sram_get(sram: &[u32], addr: VirtAddr) -> Result<u32, SpecFault> {
    sram.get(addr.word_index())
        .copied()
        .ok_or(SpecFault::OutOfRange(addr))
}

fn sram_set(sram: &mut [u32], addr: VirtAddr, value: u32) -> Result<(), SpecFault> {
    match sram.get_mut(addr.word_index()) {
        Some(cell) => {
            *cell = value;
            Ok(())
        }
        None => Err(SpecFault::OutOfRange(addr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SpecState {
        SpecState {
            switch: SwitchBank {
                switch_id: 7,
                packets_processed: 0x1_0000_0002,
                ..SwitchBank::default()
            },
            queue: QueueBank {
                queue_size_bytes: 0xa0,
                limit_bytes: 64_000,
                ..QueueBank::default()
            },
            link_sram: vec![0; 4],
            global_sram: vec![0; 4],
            ..SpecState::default()
        }
    }

    #[test]
    fn every_defined_stat_reads() {
        let s = state();
        for stat in Stat::ALL {
            assert!(s.read(stat.addr()).is_ok(), "unreadable {}", stat.symbol());
        }
    }

    #[test]
    fn wide_counters_narrow_to_low_bits() {
        let s = state();
        assert_eq!(s.read(Stat::PacketsProcessed.addr()), Ok(2));
    }

    #[test]
    fn link_queue_size_aliases_queue_bank() {
        let s = state();
        assert_eq!(s.read(Stat::LinkQueueSize.addr()), Ok(0xa0));
        assert_eq!(s.read(Stat::QueueSize.addr()), Ok(0xa0));
    }

    #[test]
    fn permissions_and_holes() {
        let mut s = state();
        let stat = Stat::QueueSize.addr();
        assert_eq!(s.write(stat, 1), Err(SpecFault::ReadOnly(stat)));
        let hole = VirtAddr(0x0ffc);
        assert_eq!(s.read(hole), Err(SpecFault::Unmapped(hole)));
        let reserved = VirtAddr(0x5000);
        assert_eq!(s.read(reserved), Err(SpecFault::Unmapped(reserved)));
        let past = VirtAddr(0x4000 + 4 * 4);
        assert_eq!(s.read(past), Err(SpecFault::OutOfRange(past)));
        s.write(VirtAddr(0x8004), 9).unwrap();
        assert_eq!(s.global_sram[1], 9);
    }
}
