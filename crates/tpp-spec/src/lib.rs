//! # tpp-spec — executable reference semantics for Tiny Packet Programs
//!
//! This crate is the *specification* half of the differential conformance
//! layer: a deliberately simple, allocation-happy, straight-line
//! interpreter for the full TPP ISA (every `tpp-isa` instruction), the
//! §3 unified memory map (statistics registers, boot-epoch, scratch
//! SRAM), the per-hop cycle budget, and the halt semantics.
//!
//! What it intentionally does **not** model:
//!
//! * the forwarding pipeline (parsing, lookup, queueing) — the harness
//!   feeds it the post-lookup state a TPP would observe;
//! * the hot-path caches of `tpp-asic` (decode cache, flow cache) —
//!   those are required to be semantically invisible, which is exactly
//!   what differential execution against this crate checks;
//! * cycle accounting beyond the §3.3 budget counter
//!   (`4 + instructions_executed`, one cycle per instruction on top of
//!   the 4-cycle pipeline latency).
//!
//! The design follows the golden-model methodology of Packet
//! Transactions and PsPIN: a small, obviously-correct executable
//! definition that the optimized engine (`tpp-asic`'s `Tcpu`) is tested
//! against bit-for-bit. Everything here favors clarity over speed —
//! owned `Vec`s instead of zero-copy views, fresh decoding of every
//! instruction word at every pc, one straight-line loop.
//!
//! The only dependency is `tpp-isa`: the instruction encoding and the
//! virtual address map are the shared contract; the packet layout and
//! the behavior of every register are restated here independently of
//! `tpp-wire` and `tpp-asic` so that a bug in either shows up as a
//! divergence instead of being replicated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod packet;
pub mod state;

pub use exec::{execute, SpecHalt, SpecReport, SPEC_PIPELINE_LATENCY_CYCLES};
pub use packet::{SpecPacket, SpecParseError};
pub use state::{LinkBank, MetaBank, QueueBank, SpecFault, SpecState, SwitchBank};
