//! The straight-line reference interpreter.
//!
//! One loop, one exhaustive match, fresh decoding of every instruction
//! word at every pc, no caches. The `match` in [`step`] has **no
//! wildcard arm**: if `tpp-isa` ever grows an instruction variant this
//! crate fails to compile until the reference semantics are written
//! down, which is the "100% of instruction variants" guarantee the
//! conformance layer rests on.

use crate::packet::{SpecPacket, FLAG_EXECUTED, WORD};
use crate::state::{SpecFault, SpecState};
use tpp_isa::{Instruction, PacketOperand};

/// Fill/drain latency of the §3.3 five-stage pipeline: execution costs
/// `4 + instructions_executed` cycles against the per-packet budget.
pub const SPEC_PIPELINE_LATENCY_CYCLES: u32 = 4;

/// Why the reference interpreter stopped before the end of the program.
/// Mirrors the optimized engine's halt taxonomy one-for-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecHalt {
    /// A `CEXEC` predicate failed (normal control flow, §3.2.3).
    CexecFailed {
        /// Index of the failing CEXEC.
        pc: usize,
    },
    /// An illegal switch-memory access.
    Fault {
        /// Index of the faulting instruction.
        pc: usize,
        /// The fault.
        fault: SpecFault,
    },
    /// A packet-memory access out of bounds, or stack under/overflow.
    PacketMemory {
        /// Index of the faulting instruction.
        pc: usize,
    },
    /// An instruction word failed to decode.
    BadInstruction {
        /// Index of the undecodable word.
        pc: usize,
    },
    /// The per-packet cycle budget was exhausted.
    BudgetExceeded {
        /// Index of the first instruction that did not run.
        pc: usize,
    },
}

impl SpecHalt {
    /// A stable short label, matching the optimized engine's labels.
    pub fn name(&self) -> &'static str {
        match self {
            SpecHalt::CexecFailed { .. } => "cexec_failed",
            SpecHalt::Fault { .. } => "mmu_fault",
            SpecHalt::PacketMemory { .. } => "packet_memory",
            SpecHalt::BadInstruction { .. } => "bad_instruction",
            SpecHalt::BudgetExceeded { .. } => "budget_exceeded",
        }
    }

    /// The program counter at which execution stopped.
    pub fn pc(&self) -> usize {
        match *self {
            SpecHalt::CexecFailed { pc }
            | SpecHalt::Fault { pc, .. }
            | SpecHalt::PacketMemory { pc }
            | SpecHalt::BadInstruction { pc }
            | SpecHalt::BudgetExceeded { pc } => pc,
        }
    }
}

/// The outcome of executing one TPP at one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecReport {
    /// Instructions that completed (a failed CEXEC counts: the check
    /// itself executed).
    pub instructions_executed: u32,
    /// Cycles consumed: pipeline latency + one per completed instruction.
    pub cycles: u32,
    /// Why execution stopped early, if it did.
    pub halt: Option<SpecHalt>,
    /// True if any completed instruction wrote switch SRAM.
    pub wrote_switch: bool,
}

impl SpecReport {
    /// True when the whole program ran to completion.
    pub fn completed(&self) -> bool {
        self.halt.is_none()
    }
}

/// Outcome of one instruction step.
enum Stop {
    Cexec,
    Fault(SpecFault),
    PacketMemory,
}

impl From<SpecFault> for Stop {
    fn from(fault: SpecFault) -> Self {
        Stop::Fault(fault)
    }
}

impl From<()> for Stop {
    fn from(_: ()) -> Self {
        Stop::PacketMemory
    }
}

/// Execute a TPP at one hop: run each instruction word in order against
/// the packet and the switch state, then advance the hop counter and set
/// [`FLAG_EXECUTED`] — traversal, not success, advances the hop.
///
/// At every pc, in order: (1) the budget check (`cycles + 1 > budget`
/// halts with `BudgetExceeded`), (2) decoding the word (`BadInstruction`
/// on failure), (3) the instruction itself.
pub fn execute(pkt: &mut SpecPacket, state: &mut SpecState, budget: u32) -> SpecReport {
    let mut report = SpecReport {
        instructions_executed: 0,
        cycles: SPEC_PIPELINE_LATENCY_CYCLES,
        halt: None,
        wrote_switch: false,
    };
    for pc in 0..pkt.insns.len() {
        if report.cycles + 1 > budget {
            report.halt = Some(SpecHalt::BudgetExceeded { pc });
            break;
        }
        let insn = match Instruction::decode(pkt.insns[pc]) {
            Ok(insn) => insn,
            Err(_) => {
                report.halt = Some(SpecHalt::BadInstruction { pc });
                break;
            }
        };
        match step(insn, pkt, state) {
            Ok(wrote) => {
                report.instructions_executed += 1;
                report.cycles += 1;
                report.wrote_switch |= wrote;
            }
            Err(Stop::Cexec) => {
                report.instructions_executed += 1;
                report.cycles += 1;
                report.halt = Some(SpecHalt::CexecFailed { pc });
                break;
            }
            Err(Stop::Fault(fault)) => {
                report.halt = Some(SpecHalt::Fault { pc, fault });
                break;
            }
            Err(Stop::PacketMemory) => {
                report.halt = Some(SpecHalt::PacketMemory { pc });
                break;
            }
        }
    }
    pkt.hop = pkt.hop.saturating_add(1);
    pkt.flags |= FLAG_EXECUTED;
    report
}

/// Resolve a packet operand to a byte offset in packet memory.
fn operand_offset(op: PacketOperand, pkt: &SpecPacket) -> usize {
    match op {
        PacketOperand::Sp => pkt.sp as usize,
        PacketOperand::Hop(words) => pkt.hop_base() + words as usize * WORD,
        PacketOperand::Abs(words) => words as usize * WORD,
    }
}

/// One instruction. Returns `Ok(wrote_switch)`. The order of packet and
/// switch accesses within each arm is part of the specification: it
/// determines which fault wins and what partial state a faulting
/// instruction leaves behind.
fn step(insn: Instruction, pkt: &mut SpecPacket, state: &mut SpecState) -> Result<bool, Stop> {
    match insn {
        Instruction::Nop => Ok(false),
        Instruction::Push { addr } => {
            let value = state.read(addr)?;
            pkt.push_word(value)?;
            Ok(false)
        }
        Instruction::PushImm(imm) => {
            pkt.push_word(imm as u32)?;
            Ok(false)
        }
        Instruction::Pop { addr } => {
            // The pop commits sp before the switch write is attempted;
            // a POP to a read-only address faults with sp already moved.
            let value = pkt.pop_word()?;
            state.write(addr, value)?;
            Ok(true)
        }
        Instruction::Load { addr, dst } => {
            let value = state.read(addr)?;
            let off = operand_offset(dst, pkt);
            pkt.write_word(off, value)?;
            Ok(false)
        }
        Instruction::Store { addr, src } => {
            let off = operand_offset(src, pkt);
            let value = pkt.read_word(off)?;
            state.write(addr, value)?;
            Ok(true)
        }
        Instruction::Cstore { addr, mem } => {
            // [cond, src, old] block; the old value is written back to
            // the packet *after* the conditional switch write.
            let base = operand_offset(mem, pkt);
            let cond = pkt.read_word(base)?;
            let src = pkt.read_word(base + WORD)?;
            let old = state.read(addr)?;
            if old == cond {
                state.write(addr, src)?;
            }
            pkt.write_word(base + 2 * WORD, old)?;
            Ok(old == cond)
        }
        Instruction::Cexec { addr, mem } => {
            let base = operand_offset(mem, pkt);
            let mask = pkt.read_word(base)?;
            let value = pkt.read_word(base + WORD)?;
            let reg = state.read(addr)?;
            if reg & mask != value {
                return Err(Stop::Cexec);
            }
            Ok(false)
        }
        Instruction::Add => binop(pkt, u32::wrapping_add),
        Instruction::Sub => binop(pkt, u32::wrapping_sub),
        Instruction::And => binop(pkt, |a, b| a & b),
        Instruction::Or => binop(pkt, |a, b| a | b),
    }
}

fn binop(pkt: &mut SpecPacket, f: fn(u32, u32) -> u32) -> Result<bool, Stop> {
    let b = pkt.pop_word()?;
    let a = pkt.pop_word()?;
    pkt.push_word(f(a, b))?;
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_isa::{Opcode, Stat, VirtAddr};

    fn packet(insns: &[Instruction], memory: Vec<u32>) -> SpecPacket {
        SpecPacket {
            version: 1,
            flags: 0,
            mode: 0,
            hop: 0,
            sp: 0,
            per_hop_len: 0,
            inner_ethertype: 0,
            insns: insns.iter().map(|i| i.encode().unwrap()).collect(),
            memory,
            payload: Vec::new(),
        }
    }

    fn state() -> SpecState {
        SpecState {
            link_sram: vec![0; 8],
            global_sram: vec![0; 8],
            ..SpecState::default()
        }
    }

    /// One exemplar per `Instruction` variant, keyed by opcode so the
    /// test below can prove every opcode is represented.
    fn exemplars() -> Vec<Instruction> {
        let sram = VirtAddr(0x8000);
        vec![
            Instruction::Nop,
            Instruction::Load {
                addr: Stat::SwitchId.addr(),
                dst: PacketOperand::Abs(0),
            },
            Instruction::Store {
                addr: sram,
                src: PacketOperand::Abs(0),
            },
            Instruction::Push {
                addr: Stat::QueueSize.addr(),
            },
            Instruction::Pop { addr: sram },
            Instruction::Cstore {
                addr: sram,
                mem: PacketOperand::Abs(0),
            },
            Instruction::Cexec {
                addr: Stat::SwitchId.addr(),
                mem: PacketOperand::Abs(0),
            },
            Instruction::Add,
            Instruction::Sub,
            Instruction::And,
            Instruction::Or,
            Instruction::PushImm(3),
        ]
    }

    #[test]
    fn exemplars_cover_every_opcode() {
        // `step`'s match is exhaustive by construction (no wildcard), so
        // compilation already forces a semantics for every variant; this
        // test additionally proves each variant *executes* in the spec.
        let mut seen: Vec<Opcode> = exemplars().iter().map(|i| i.opcode()).collect();
        seen.sort_by_key(|o| *o as u8);
        seen.dedup();
        assert_eq!(seen.len(), Opcode::ALL.len(), "exemplar per opcode");
        for insn in exemplars() {
            // Enough stack and memory for any single exemplar: 3 words
            // of zeroed memory, sp at 8 so binops have two operands.
            let mut pkt = packet(&[insn], vec![0, 0, 0]);
            pkt.sp = 8;
            let mut st = state();
            let report = execute(&mut pkt, &mut st, 300);
            assert_eq!(
                report.instructions_executed, 1,
                "{insn:?} did not execute: {report:?}"
            );
            assert!(report.completed(), "{insn:?} halted: {report:?}");
        }
    }

    #[test]
    fn budget_and_hop_semantics() {
        let prog: Vec<Instruction> = (0..10).map(|_| Instruction::Nop).collect();
        let mut pkt = packet(&prog, vec![]);
        let mut st = state();
        // Budget 7 = 4 latency + 3 instructions.
        let report = execute(&mut pkt, &mut st, 7);
        assert_eq!(report.instructions_executed, 3);
        assert_eq!(report.halt, Some(SpecHalt::BudgetExceeded { pc: 3 }));
        assert_eq!(pkt.hop, 1, "hop advances on traversal, not success");
        assert_eq!(pkt.flags & FLAG_EXECUTED, FLAG_EXECUTED);
    }

    #[test]
    fn bad_word_halts_at_its_pc() {
        let mut pkt = packet(&[Instruction::Nop], vec![]);
        pkt.insns.push(0xf800_0000); // unassigned opcode 0x1f
        let mut st = state();
        let report = execute(&mut pkt, &mut st, 300);
        assert_eq!(report.halt, Some(SpecHalt::BadInstruction { pc: 1 }));
        assert_eq!(report.instructions_executed, 1);
    }

    #[test]
    fn cexec_counts_as_executed() {
        let mut pkt = packet(
            &[Instruction::Cexec {
                addr: Stat::SwitchId.addr(),
                mem: PacketOperand::Abs(0),
            }],
            vec![0xffff_ffff, 5],
        );
        let mut st = state(); // switch_id = 0, predicate wants 5
        let report = execute(&mut pkt, &mut st, 300);
        assert_eq!(report.halt, Some(SpecHalt::CexecFailed { pc: 0 }));
        assert_eq!(report.instructions_executed, 1);
        assert_eq!(report.cycles, SPEC_PIPELINE_LATENCY_CYCLES + 1);
    }

    #[test]
    fn pop_to_readonly_moves_sp_before_fault() {
        // The committed-sp-then-fault interleaving is part of the spec:
        // the optimized engine does the same, and the differential
        // harness compares the resulting packet bytes bit-for-bit.
        let ro = Stat::QueueSize.addr();
        let mut pkt = packet(&[Instruction::Pop { addr: ro }], vec![42]);
        pkt.sp = 4;
        let mut st = state();
        let report = execute(&mut pkt, &mut st, 300);
        assert_eq!(
            report.halt,
            Some(SpecHalt::Fault {
                pc: 0,
                fault: SpecFault::ReadOnly(ro)
            })
        );
        assert_eq!(pkt.sp, 0, "sp committed before the faulting write");
    }
}
