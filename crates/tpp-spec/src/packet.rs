//! Reference model of the TPP section (Fig. 4): a fully-decoded, owned
//! representation of the header, instruction words, packet memory and
//! encapsulated payload.
//!
//! [`SpecPacket::parse`] restates the wire-format validation rules
//! independently of `tpp-wire` — same checks, same order — and
//! [`SpecPacket::emit`] re-serializes the packet so the differential
//! harness can compare the spec's view byte-for-byte against the buffer
//! the optimized engine mutated in place.

// `Err(())` is deliberate for the memory accessors: the *kind* of fault
// (which address, which instruction) is the interpreter's to report; the
// packet model only says "that access faults".
#![allow(clippy::result_unit_err)]

/// Fixed TPP header length in bytes (restated from Fig. 4).
pub const HEADER_LEN: usize = 16;

/// Bytes per packet-memory word.
pub const WORD: usize = 4;

/// Maximum instructions a TPP section may carry.
pub const MAX_INSNS: usize = 64;

/// Flag bit set by every TCPU that executed the program.
pub const FLAG_EXECUTED: u8 = 0x01;

/// Flag bit marking an echoed (inert) TPP.
pub const FLAG_ECHOED: u8 = 0x02;

/// Why a byte buffer is not a valid TPP section.
///
/// The *reasons* mirror `tpp-wire`'s checks one-for-one; the harness
/// asserts accept/reject agreement on arbitrary buffers, so any drift in
/// validation rules between the two crates surfaces as a divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecParseError {
    /// Shorter than the header, or than the length the header claims.
    Truncated,
    /// Version byte is not 1.
    BadVersion,
    /// `insn_len` or `mem_len` is not a multiple of 4.
    UnalignedSection,
    /// More than [`MAX_INSNS`] instruction words.
    TooManyInstructions,
    /// `tpp_len != header + insn_len + mem_len`.
    LengthMismatch,
    /// Addressing-mode byte is neither stack (0) nor hop (1).
    BadAddressingMode,
    /// Stack pointer is not word-aligned.
    UnalignedSp,
    /// Stack pointer points past packet memory.
    SpOutOfRange,
    /// Per-hop length is not word-aligned.
    UnalignedPerHop,
}

/// A fully-decoded TPP section. All fields are owned and public: the
/// reference interpreter trades every zero-copy trick in `tpp-wire` for
/// transparency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecPacket {
    /// Format version (always 1 after a successful parse).
    pub version: u8,
    /// Flag byte ([`FLAG_EXECUTED`], [`FLAG_ECHOED`], ECN).
    pub flags: u8,
    /// Addressing mode byte: 0 = stack, 1 = hop.
    pub mode: u8,
    /// Hop counter.
    pub hop: u8,
    /// Stack pointer, a byte offset into packet memory.
    pub sp: u16,
    /// Per-hop slice length in bytes (hop addressing).
    pub per_hop_len: u16,
    /// EtherType of the encapsulated payload (0 when none).
    pub inner_ethertype: u16,
    /// Instruction words, in execution order.
    pub insns: Vec<u32>,
    /// Packet-memory words.
    pub memory: Vec<u32>,
    /// Encapsulated payload bytes following the TPP section.
    pub payload: Vec<u8>,
}

fn be16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

fn be32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

impl SpecPacket {
    /// Parse and validate a TPP section from raw bytes.
    ///
    /// The checks run in the same order as `tpp-wire`'s `new_checked`:
    /// header presence, version, section alignment, instruction cap,
    /// length arithmetic, body truncation, addressing mode, stack
    /// pointer alignment and range, per-hop alignment.
    pub fn parse(buf: &[u8]) -> Result<SpecPacket, SpecParseError> {
        if buf.len() < HEADER_LEN {
            return Err(SpecParseError::Truncated);
        }
        if buf[0] != 1 {
            return Err(SpecParseError::BadVersion);
        }
        let tpp_len = be16(buf, 2) as usize;
        let insn_len = be16(buf, 4) as usize;
        let mem_len = be16(buf, 6) as usize;
        if !insn_len.is_multiple_of(WORD) || !mem_len.is_multiple_of(WORD) {
            return Err(SpecParseError::UnalignedSection);
        }
        if insn_len / WORD > MAX_INSNS {
            return Err(SpecParseError::TooManyInstructions);
        }
        if tpp_len != HEADER_LEN + insn_len + mem_len {
            return Err(SpecParseError::LengthMismatch);
        }
        if tpp_len > buf.len() {
            return Err(SpecParseError::Truncated);
        }
        if buf[8] > 1 {
            return Err(SpecParseError::BadAddressingMode);
        }
        let sp = be16(buf, 10);
        if !(sp as usize).is_multiple_of(WORD) {
            return Err(SpecParseError::UnalignedSp);
        }
        if sp as usize > mem_len {
            return Err(SpecParseError::SpOutOfRange);
        }
        let per_hop_len = be16(buf, 12);
        if !(per_hop_len as usize).is_multiple_of(WORD) {
            return Err(SpecParseError::UnalignedPerHop);
        }
        let insns = (0..insn_len / WORD)
            .map(|i| be32(buf, HEADER_LEN + i * WORD))
            .collect();
        let mem_base = HEADER_LEN + insn_len;
        let memory = (0..mem_len / WORD)
            .map(|i| be32(buf, mem_base + i * WORD))
            .collect();
        Ok(SpecPacket {
            version: buf[0],
            flags: buf[1],
            mode: buf[8],
            hop: buf[9],
            sp,
            per_hop_len,
            inner_ethertype: be16(buf, 14),
            insns,
            memory,
            payload: buf[tpp_len..].to_vec(),
        })
    }

    /// Total TPP section length in bytes (excluding the payload).
    pub fn tpp_len(&self) -> usize {
        HEADER_LEN + self.insns.len() * WORD + self.memory.len() * WORD
    }

    /// Packet-memory length in bytes.
    pub fn mem_len(&self) -> usize {
        self.memory.len() * WORD
    }

    /// Serialize back to the exact wire bytes this packet represents.
    ///
    /// `emit(parse(b)) == b` for every accepted buffer, so after the
    /// spec interpreter mutates the decoded form, `emit` produces the
    /// bytes the optimized engine must have produced by in-place edits.
    pub fn emit(&self) -> Vec<u8> {
        let tpp_len = self.tpp_len();
        let mut buf = vec![0u8; tpp_len + self.payload.len()];
        buf[0] = self.version;
        buf[1] = self.flags;
        buf[2..4].copy_from_slice(&(tpp_len as u16).to_be_bytes());
        buf[4..6].copy_from_slice(&((self.insns.len() * WORD) as u16).to_be_bytes());
        buf[6..8].copy_from_slice(&((self.memory.len() * WORD) as u16).to_be_bytes());
        buf[8] = self.mode;
        buf[9] = self.hop;
        buf[10..12].copy_from_slice(&self.sp.to_be_bytes());
        buf[12..14].copy_from_slice(&self.per_hop_len.to_be_bytes());
        buf[14..16].copy_from_slice(&self.inner_ethertype.to_be_bytes());
        for (i, word) in self.insns.iter().enumerate() {
            buf[HEADER_LEN + i * WORD..HEADER_LEN + (i + 1) * WORD]
                .copy_from_slice(&word.to_be_bytes());
        }
        let mem_base = HEADER_LEN + self.insns.len() * WORD;
        for (i, word) in self.memory.iter().enumerate() {
            buf[mem_base + i * WORD..mem_base + (i + 1) * WORD]
                .copy_from_slice(&word.to_be_bytes());
        }
        buf[tpp_len..].copy_from_slice(&self.payload);
        buf
    }

    /// Read the packet-memory word at byte `offset`; `Err(())` models
    /// the out-of-bounds / unaligned packet-memory fault.
    pub fn read_word(&self, offset: usize) -> Result<u32, ()> {
        if !offset.is_multiple_of(WORD) || offset + WORD > self.mem_len() {
            return Err(());
        }
        Ok(self.memory[offset / WORD])
    }

    /// Write the packet-memory word at byte `offset`.
    pub fn write_word(&mut self, offset: usize, value: u32) -> Result<(), ()> {
        if !offset.is_multiple_of(WORD) || offset + WORD > self.mem_len() {
            return Err(());
        }
        self.memory[offset / WORD] = value;
        Ok(())
    }

    /// `PUSH` semantics: write at `sp`, then advance it one word.
    pub fn push_word(&mut self, value: u32) -> Result<(), ()> {
        let sp = self.sp as usize;
        self.write_word(sp, value)?;
        self.sp = (sp + WORD) as u16;
        Ok(())
    }

    /// `POP` semantics: read the word below `sp`, then retreat it.
    ///
    /// Mirrors the optimized engine exactly: the fault on an empty stack
    /// happens *before* any state change, but a successful read always
    /// commits the new `sp` — so a later fault in the same instruction
    /// (e.g. `POP` to a read-only address) leaves `sp` already moved.
    pub fn pop_word(&mut self) -> Result<u32, ()> {
        let sp = self.sp as usize;
        if sp < WORD {
            return Err(());
        }
        let value = self.read_word(sp - WORD)?;
        self.sp = (sp - WORD) as u16;
        Ok(value)
    }

    /// Base byte offset of the current hop's packet-memory slice.
    pub fn hop_base(&self) -> usize {
        self.hop as usize * self.per_hop_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bytes() -> Vec<u8> {
        // version 1, flags 0, tpp_len 16+8+8, insn_len 8, mem_len 8,
        // stack mode, hop 0, sp 4, per_hop 0, inner ethertype 0x0800.
        let mut buf = vec![1, 0, 0, 32, 0, 8, 0, 8, 0, 0, 0, 4, 0, 0, 0x08, 0x00];
        buf.extend_from_slice(&0x6000_0007u32.to_be_bytes());
        buf.extend_from_slice(&0x4000_0000u32.to_be_bytes());
        buf.extend_from_slice(&0xdead_beefu32.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes());
        buf.extend_from_slice(b"xyz");
        buf
    }

    #[test]
    fn parse_emit_roundtrip_is_identity() {
        let bytes = sample_bytes();
        let pkt = SpecPacket::parse(&bytes).unwrap();
        assert_eq!(pkt.insns, vec![0x6000_0007, 0x4000_0000]);
        assert_eq!(pkt.memory, vec![0xdead_beef, 7]);
        assert_eq!(pkt.sp, 4);
        assert_eq!(pkt.payload, b"xyz");
        assert_eq!(pkt.emit(), bytes);
    }

    #[test]
    fn rejects_each_malformation() {
        let good = sample_bytes();
        let cases: &[(usize, u8, SpecParseError)] = &[
            (0, 2, SpecParseError::BadVersion),
            (5, 7, SpecParseError::UnalignedSection),
            (8, 3, SpecParseError::BadAddressingMode),
            (11, 2, SpecParseError::UnalignedSp),
            (11, 12, SpecParseError::SpOutOfRange),
            (13, 2, SpecParseError::UnalignedPerHop),
        ];
        for &(off, val, want) in cases {
            let mut bad = good.clone();
            bad[off] = val;
            assert_eq!(SpecPacket::parse(&bad), Err(want), "byte {off}");
        }
        assert_eq!(
            SpecPacket::parse(&good[..10]),
            Err(SpecParseError::Truncated)
        );
        let mut short = good.clone();
        short.truncate(20);
        assert_eq!(SpecPacket::parse(&short), Err(SpecParseError::Truncated));
        let mut wrong_len = good;
        wrong_len[3] = 36;
        assert_eq!(
            SpecPacket::parse(&wrong_len),
            Err(SpecParseError::LengthMismatch)
        );
    }

    #[test]
    fn stack_ops_move_sp() {
        let mut pkt = SpecPacket::parse(&sample_bytes()).unwrap();
        assert_eq!(pkt.pop_word(), Ok(0xdead_beef));
        assert_eq!(pkt.sp, 0);
        assert_eq!(pkt.pop_word(), Err(()), "empty stack");
        pkt.push_word(5).unwrap();
        pkt.push_word(6).unwrap();
        assert_eq!(pkt.push_word(7), Err(()), "memory exhausted");
        assert_eq!(pkt.memory, vec![5, 6]);
    }
}
