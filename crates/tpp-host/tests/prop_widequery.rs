//! Property tests for multi-packet queries: the plan always covers every
//! symbol exactly once within budget, and reassembly reconstructs the
//! rows regardless of segment arrival order.

use proptest::prelude::*;
use tpp_host::SegmentedQuery;
use tpp_isa::{Stat, SymbolTable};
use tpp_wire::ethernet::Frame;
use tpp_wire::tpp::{TppPacket, FLAG_ECHOED, FLAG_EXECUTED};
use tpp_wire::EthernetAddress;

fn arb_symbols() -> impl Strategy<Value = Vec<&'static str>> {
    proptest::sample::subsequence(
        Stat::ALL.iter().map(|s| s.symbol()).collect::<Vec<_>>(),
        1..Stat::ALL.len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Planning invariants: segments partition the symbol list in order,
    /// and each segment fits the per-probe budget.
    #[test]
    fn plan_partitions_symbols(symbols in arb_symbols(),
                               hops in 1usize..6,
                               budget in 1usize..64) {
        let table = SymbolTable::new();
        let per_probe = budget / hops;
        let result = SegmentedQuery::plan(&symbols, &table, hops, budget);
        if per_probe == 0 {
            prop_assert!(result.is_err());
            return Ok(());
        }
        let q = result.unwrap();
        let flattened: Vec<String> = q.layout.iter().flatten().cloned().collect();
        prop_assert_eq!(
            flattened,
            symbols.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            "exact in-order cover"
        );
        for segment in &q.layout {
            prop_assert!(segment.len() <= per_probe);
            prop_assert!(!segment.is_empty());
        }
        prop_assert_eq!(q.segments(), symbols.len().div_ceil(per_probe));
    }

    /// Round trip: simulate per-hop execution of each segment, feed the
    /// echoes back in an arbitrary order, and require the merged rows to
    /// hold every symbol exactly once per hop.
    #[test]
    fn reassembly_roundtrip(symbols in arb_symbols(),
                            hops in 1usize..5,
                            budget in 4usize..64,
                            shuffle_seed in any::<u64>()) {
        let table = SymbolTable::new();
        let Ok(q) = SegmentedQuery::plan(&symbols, &table, hops, budget) else {
            return Ok(());
        };
        let me = EthernetAddress::from_host_id(9);
        let dst = EthernetAddress::from_host_id(1);
        let mut frames = q.frames(dst, me, 5);
        for (seg, frame) in frames.iter_mut().enumerate() {
            let mut f = Frame::new_unchecked(&mut frame[..]);
            f.set_dst_addr(me);
            f.set_src_addr(dst);
            let mut tpp = TppPacket::new_unchecked(f.payload_mut());
            let cols = q.layout[seg].len();
            for h in 0..hops as u32 {
                for c in 0..cols as u32 {
                    tpp.push_word(1000 * seg as u32 + 10 * h + c).unwrap();
                }
            }
            tpp.set_hop(hops as u8);
            tpp.set_flags(FLAG_EXECUTED | FLAG_ECHOED);
        }
        // Deterministic pseudo-shuffle of arrival order.
        let n = frames.len();
        let order: Vec<usize> = (0..n)
            .map(|i| (i + shuffle_seed as usize) % n)
            .collect();
        let mut collector = q.collector();
        for idx in order {
            collector.on_frame(&frames[idx], me);
        }
        // Duplicates are harmless.
        collector.on_frame(&frames[0], me);
        prop_assert_eq!(collector.complete.len(), 1);
        let row = &collector.complete[0];
        prop_assert_eq!(row.rows.len(), hops);
        for hop_row in &row.rows {
            prop_assert_eq!(hop_row.len(), symbols.len(), "all symbols merged");
        }
        // Spot-check value placement: segment s, hop h, column c.
        for (s, segment) in q.layout.iter().enumerate() {
            for (c, symbol) in segment.iter().enumerate() {
                for (h, hop_row) in row.rows.iter().enumerate() {
                    prop_assert_eq!(
                        hop_row[symbol],
                        1000 * s as u32 + 10 * h as u32 + c as u32
                    );
                }
            }
        }
    }
}
