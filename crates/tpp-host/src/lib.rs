//! # tpp-host — the programmable end-host side of TPP
//!
//! The paper's architecture splits every network task into "(a) a simple
//! program that executes on the ASIC, and (b) an expressive task
//! distributed across end-hosts". This crate is the toolkit for part (b):
//!
//! * [`probe::ProbeBuilder`] — compile a program once, then mint TPP
//!   frames (optionally piggy-backed on application payload);
//! * [`probe::echo_reply`] — the receiver side of §2.2 Phase 1 ("the
//!   receiver simply echos a fully executed TPP back to the sender");
//! * [`EchoReceiver`] — a ready-made host app that echoes TPPs and sinks
//!   data traffic, used as the receiver in the congestion-control
//!   experiments;
//! * [`pacing::PacedSender`] and [`pacing::TokenBucket`] — the rate
//!   limiter each RCP\* flow runs at the end-host (§2.2: "The
//!   implementation consists of a rate limiter and a rate controller at
//!   end-hosts for every flow");
//! * [`manager::ProbeManager`] — per-probe timeout, bounded retries
//!   with deterministic backoff, nonce-based reply dedup, and switch
//!   boot-epoch tracking (the end-host reliability layer);
//! * [`bonding::BondScheduler`] — an adaptive multi-NIC load balancer
//!   whose only link-quality signal is in-band TPP probe telemetry
//!   (per-path queue depth and utilization), with hysteresis and
//!   failover;
//! * [`telemetry`] — decode fully-executed TPPs into per-hop records;
//! * [`widequery`] — split a query too wide for one packet across a
//!   probe train and reassemble the echoes (§3.2's multi-packet rule);
//! * [`rtt::RttEstimator`] — smoothed RTT from probe echoes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bonding;
pub mod manager;
pub mod pacing;
pub mod probe;
pub mod rtt;
pub mod telemetry;
pub mod transport;
pub mod widequery;

pub use bonding::{BondConfig, BondScheduler, HealthEvent, PathHealth};
pub use manager::{ProbeDelivery, ProbeManager, ProbeStats, RetryPolicy, PROBE_TIMER_TOKEN};
pub use pacing::{PacedSender, TokenBucket};
pub use probe::parse_echo;
pub use probe::{echo_reply, ProbeBuilder, DATA_ETHERTYPE};
pub use rtt::RttEstimator;
pub use telemetry::{decode_echo, split_hops, HopView, PathSample};
pub use transport::{
    segments_for, AckOutcome, DataSeg, FlowReceiver, FlowSender, RtoOutcome, RxOutcome, SegmentHdr,
    TransportConfig, TransportStats, TRANSPORT_ETHERTYPE,
};
pub use widequery::{SegmentedCollector, SegmentedQuery, WideRow};

use tpp_netsim::{HostApp, HostCtx};
use tpp_wire::ethernet::Frame;

/// A receiver that echoes every executed TPP back to its sender and
/// counts received data bytes.
///
/// This is the entire receiver side of RCP\* and of telemetry probing:
/// all intelligence lives at the sender, the receiver only reflects
/// (§2.2 Phase 1).
#[derive(Debug, Default)]
pub struct EchoReceiver {
    /// Total non-TPP payload bytes received.
    pub data_bytes: u64,
    /// Number of TPPs echoed.
    pub tpps_echoed: u64,
    /// Number of data frames received.
    pub data_frames: u64,
}

impl HostApp for EchoReceiver {
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &mut HostCtx<'_>) {
        if let Some(reply) = echo_reply(&frame, ctx.mac()) {
            self.tpps_echoed += 1;
            // Reflect out of the NIC the probe arrived on, so on a
            // multi-homed receiver the echo measures the same path.
            ctx.send_on(ctx.rx_port(), reply);
            return;
        }
        if let Ok(parsed) = Frame::new_checked(&frame[..]) {
            self.data_frames += 1;
            self.data_bytes += parsed.payload().len() as u64;
        }
    }
}
