//! A closed-loop, loss-recovering flow transport.
//!
//! The paper's end-host refactoring keeps all transport intelligence at
//! the hosts: switches only execute TPPs, and congestion feedback is
//! whatever the probe echoes carry back (§2.2). This module is that
//! host half for the FCT workload — per-flow sender/receiver state
//! machines with cumulative ACKs, an RTO from the EWMA RTT estimator
//! with deterministic backoff and jitter, bounded retransmission, and a
//! window that an RCP\*-style rate (decoded from TPP probe echoes by
//! `tpp-apps`) clamps from above. The paper's mechanism is the
//! congestion signal; nothing here peeks at simulator ground truth.
//!
//! The state machines are *pure*: they never touch a clock, a socket or
//! the simulator. Callers feed them `now`, ACK fields and rate updates,
//! and act on the returned descriptors — which is exactly what makes
//! them drivable over the scripted lossy channels of
//! `tests/transport_conformance.rs` (the Laminar-style conformance
//! layer) as well as by `tpp-bench`'s traffic generator.
//!
//! # Sender state machine
//!
//! ```text
//!             poll_send (window open)
//!            ┌───────────────┐
//!            ▼               │ DATA seq
//!  ┌──────────────────┐ ─────┘
//!  │     OPEN         │◄──────────────── ACK advances snd_una:
//!  │ snd_una..snd_nxt │                  backoff→0, cwnd+, RTT sample
//!  └───┬────────┬─────┘                  (Karn: only if tx_count==1)
//!      │        │ dup ACK ×3 ──► fast retransmit of snd_una (once
//!      │        │                per stall; suppressed until the
//!      │        │                window moves again)
//!      │        │ RTO fires  ──► go-back-N: snd_nxt←snd_una, cwnd←1,
//!      │        │                backoff+1 (capped), deterministic
//!      │        │                jittered deadline
//!      │        │ path epoch ──► cwnd←init, rate clamp cleared
//!      ▼        ▼
//!  COMPLETE   GAVE_UP (tx_count[snd_una] > max_retries)
//! ```
//!
//! The receiver holds `rcv_next` plus a bounded out-of-order buffer and
//! delivers every segment exactly once, in order; duplicates and
//! already-buffered arrivals still produce an ACK (that is what carries
//! the dup-ACK signal back).

use std::collections::BTreeSet;

use crate::rtt::RttEstimator;
use tpp_wire::ethernet::{build_frame, EtherType, EthernetAddress};

/// EtherType of transport segments (DATA and ACK), distinct from the
/// open-loop workload's [`DATA_ETHERTYPE`](crate::DATA_ETHERTYPE).
pub const TRANSPORT_ETHERTYPE: EtherType = EtherType(0x0803);

/// Transport header length in bytes (the Ethernet payload prefix).
pub const HDR_LEN: usize = 42;

/// Leading magic: shared with the FCT metadata convention, so the ECMP
/// flow-label extraction in `tpp-netsim::routing` sees transport
/// segments and flow probes alike.
pub const MAGIC: [u8; 2] = [0xF1, 0xC7];

/// `kind` byte of a data segment.
pub const KIND_DATA: u8 = 1;
/// `kind` byte of a cumulative ACK.
pub const KIND_ACK: u8 = 2;

/// Header flag: this data segment is the flow's last.
pub const FLAG_FIN: u8 = 0x01;
/// Header flag: the flow belongs to the workload's "mining" (elephant)
/// class; carried through to completion records.
pub const FLAG_MINING: u8 = 0x02;

/// Splitmix64 — the deterministic stream behind RTO jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Segment count of a flow of `total_bytes` at `mss`. Zero-byte flows
/// still carry one FIN segment. Shared by sender and receiver so both
/// agree on the flow's length without negotiating.
pub fn segments_for(total_bytes: u32, mss: u16) -> u32 {
    total_bytes.max(1).div_ceil(mss.max(1) as u32)
}

/// Tuning knobs of the transport; one value is shared by every flow of
/// an app. All fields are public so experiments can build values with
/// struct-update syntax from `default()`.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Maximum segment body, bytes. With the Ethernet and transport
    /// headers the default keeps wire frames at 1464 bytes.
    pub mss: u16,
    /// Initial congestion window, segments.
    pub init_cwnd: u32,
    /// Hard window ceiling, segments (bounds NIC queue growth).
    pub max_cwnd: u32,
    /// RTO before any RTT sample exists.
    pub initial_rto_ns: u64,
    /// Lower RTO clamp.
    pub min_rto_ns: u64,
    /// Upper RTO clamp (also caps backed-off deadlines).
    pub max_rto_ns: u64,
    /// Exponential-backoff exponent cap.
    pub backoff_cap: u32,
    /// Transmissions of one segment before the sender gives up.
    pub max_retries: u32,
    /// Duplicate ACKs that trigger a fast retransmit.
    pub dupack_threshold: u32,
    /// RTO jitter span in per-mille of the base RTO (decorrelates
    /// retransmit storms; drawn from a seeded stream, so deterministic).
    pub jitter_permille: u32,
    /// Seed of the jitter stream (mixed with the flow key).
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mss: 1408,
            init_cwnd: 8,
            max_cwnd: 64,
            initial_rto_ns: 5_000_000,
            min_rto_ns: 1_000_000,
            max_rto_ns: 100_000_000,
            backoff_cap: 6,
            max_retries: 16,
            dupack_threshold: 3,
            jitter_permille: 250,
            seed: 0x7199_7199,
        }
    }
}

/// Decoded transport header (both kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHdr {
    /// [`KIND_DATA`] or [`KIND_ACK`].
    pub kind: u8,
    /// [`FLAG_FIN`] | [`FLAG_MINING`].
    pub flags: u8,
    /// Total flow size, bytes.
    pub total_bytes: u32,
    /// Flow start time, ns (carried for FCT accounting).
    pub start_ns: u64,
    /// Flow key — also the ECMP flow label (bytes 16..24, after
    /// [`MAGIC`]).
    pub key: u64,
    /// DATA: segment index. ACK: index of the data segment that
    /// triggered it (Karn disambiguation).
    pub seq: u32,
    /// ACK: cumulative next-expected segment. DATA: zero.
    pub ack: u32,
    /// DATA: transmit timestamp. ACK: echo of the data timestamp.
    pub ts: u64,
    /// DATA body bytes following the header.
    pub body_len: u16,
}

impl SegmentHdr {
    /// Serialize into an Ethernet payload (header plus a zeroed body
    /// for data segments — the workload carries no real bytes).
    pub fn encode(&self) -> Vec<u8> {
        let body = if self.kind == KIND_DATA {
            self.body_len as usize
        } else {
            0
        };
        let mut p = vec![0u8; HDR_LEN + body];
        p[0..2].copy_from_slice(&MAGIC);
        p[2] = self.kind;
        p[3] = self.flags;
        p[4..8].copy_from_slice(&self.total_bytes.to_be_bytes());
        p[8..16].copy_from_slice(&self.start_ns.to_be_bytes());
        p[16..24].copy_from_slice(&self.key.to_be_bytes());
        p[24..28].copy_from_slice(&self.seq.to_be_bytes());
        p[28..32].copy_from_slice(&self.ack.to_be_bytes());
        p[32..40].copy_from_slice(&self.ts.to_be_bytes());
        p[40..42].copy_from_slice(&self.body_len.to_be_bytes());
        p
    }

    /// Parse an Ethernet payload; `None` if it is not a transport
    /// segment.
    pub fn decode(p: &[u8]) -> Option<SegmentHdr> {
        if p.len() < HDR_LEN || p[0..2] != MAGIC || !matches!(p[2], KIND_DATA | KIND_ACK) {
            return None;
        }
        let be32 = |at: usize| u32::from_be_bytes(p[at..at + 4].try_into().expect("len checked"));
        let be64 = |at: usize| u64::from_be_bytes(p[at..at + 8].try_into().expect("len checked"));
        Some(SegmentHdr {
            kind: p[2],
            flags: p[3],
            total_bytes: be32(4),
            start_ns: be64(8),
            key: be64(16),
            seq: be32(24),
            ack: be32(28),
            ts: be64(32),
            body_len: u16::from_be_bytes([p[40], p[41]]),
        })
    }

    /// Build the full Ethernet frame for this header.
    pub fn into_frame(self, dst: EthernetAddress, src: EthernetAddress) -> Vec<u8> {
        build_frame(dst, src, TRANSPORT_ETHERTYPE, &self.encode())
    }
}

/// One data transmission the sender wants on the wire now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataSeg {
    /// Segment index.
    pub seq: u32,
    /// Body bytes (full MSS except possibly the last segment).
    pub body_len: u16,
    /// This is the flow's last segment.
    pub fin: bool,
    /// This transmission is a retransmit.
    pub retransmit: bool,
}

/// What an incoming ACK did to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// The window advanced; more data may now be sendable.
    Advanced,
    /// Duplicate ACK absorbed (possibly arming a fast retransmit —
    /// visible through the next [`FlowSender::poll_send`]).
    Duplicate,
    /// This ACK completed the flow.
    Completed,
    /// Stale ACK for an already-finished flow.
    Ignored,
}

/// What an RTO expiry did to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtoOutcome {
    /// Backed off and rewound; retransmissions follow via
    /// [`FlowSender::poll_send`].
    Retransmitting,
    /// The retry budget for the oldest segment is exhausted.
    GaveUp,
    /// Nothing was outstanding (spurious timer).
    Idle,
}

/// Sender half of one flow.
#[derive(Debug)]
pub struct FlowSender {
    cfg: TransportConfig,
    /// Flow key (also the ECMP label of every segment).
    pub key: u64,
    /// Flow start time, ns.
    pub start_ns: u64,
    total_bytes: u32,
    total_segs: u32,
    last_body: u16,
    mining: bool,
    snd_una: u32,
    snd_nxt: u32,
    cwnd: u32,
    dup_acks: u32,
    backoff: u32,
    pending_fast_rtx: bool,
    tx_count: Vec<u16>,
    est: RttEstimator,
    rate_bps: Option<u64>,
    rto_at: Option<u64>,
    jitter_draws: u64,
    gave_up: bool,
    /// Retransmitted segments (RTO-driven and fast).
    pub retransmits: u64,
    /// RTO expirations taken.
    pub rto_fires: u64,
    /// Fast retransmits taken.
    pub fast_retransmits: u64,
    /// Rate updates absorbed from probe echoes.
    pub rate_updates: u64,
    /// Path-epoch resets absorbed.
    pub epoch_resets: u64,
    /// Polls where the RCP\* rate clamp — not cwnd or flow exhaustion —
    /// closed the window.
    pub rate_limited_polls: u64,
    /// Deepest exponential-backoff rung this flow reached.
    pub max_backoff: u64,
}

impl FlowSender {
    /// A sender for `total_bytes` keyed by `key`, starting at
    /// `start_ns`. Zero-byte flows still carry one FIN segment.
    pub fn new(
        cfg: TransportConfig,
        key: u64,
        total_bytes: u32,
        mining: bool,
        start_ns: u64,
    ) -> FlowSender {
        let mss = cfg.mss.max(1) as u32;
        let total_segs = segments_for(total_bytes, cfg.mss);
        let rem = total_bytes.max(1) % mss;
        let last_body = if rem == 0 { mss as u16 } else { rem as u16 };
        FlowSender {
            key,
            start_ns,
            total_bytes,
            total_segs,
            last_body,
            mining,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: cfg.init_cwnd.max(1),
            dup_acks: 0,
            backoff: 0,
            pending_fast_rtx: false,
            tx_count: vec![0; total_segs as usize],
            est: RttEstimator::new(),
            rate_bps: None,
            rto_at: None,
            jitter_draws: 0,
            gave_up: false,
            retransmits: 0,
            rto_fires: 0,
            fast_retransmits: 0,
            rate_updates: 0,
            epoch_resets: 0,
            rate_limited_polls: 0,
            max_backoff: 0,
            cfg,
        }
    }

    /// All segments acknowledged.
    pub fn is_complete(&self) -> bool {
        self.snd_una == self.total_segs
    }

    /// The retry budget ran out.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Total flow size, bytes.
    pub fn total_bytes(&self) -> u32 {
        self.total_bytes
    }

    /// Segment count of the flow.
    pub fn total_segs(&self) -> u32 {
        self.total_segs
    }

    /// The mining-class flag.
    pub fn mining(&self) -> bool {
        self.mining
    }

    /// Absolute deadline of the pending RTO, if data is outstanding.
    pub fn rto_deadline(&self) -> Option<u64> {
        self.rto_at
    }

    /// The current smoothed RTT, if sampled.
    pub fn srtt_ns(&self) -> Option<u64> {
        self.est.srtt_ns()
    }

    /// Cumulatively acknowledged segments (`snd_una`).
    pub fn acked_segs(&self) -> u32 {
        self.snd_una
    }

    /// The current effective window, segments — cwnd clamped by the
    /// rate window and the hard ceiling (what `poll_send` honors).
    pub fn effective_window(&self) -> u32 {
        self.effective_cwnd()
    }

    fn body_of(&self, seq: u32) -> u16 {
        if seq + 1 == self.total_segs {
            self.last_body
        } else {
            self.cfg.mss
        }
    }

    /// Wire bytes of one full-MSS segment (Ethernet + transport header
    /// + body) — the unit the rate clamp converts bits/s into segments.
    fn wire_seg_bytes(&self) -> u64 {
        14 + HDR_LEN as u64 + self.cfg.mss as u64
    }

    /// The effective window: additive-increase cwnd clamped by the
    /// RCP\*-rate window and the hard ceiling. The flag reports whether
    /// the rate clamp (not cwnd) is the binding constraint.
    fn cwnd_clamps(&self) -> (u32, bool) {
        let mut w = self.cwnd.min(self.cfg.max_cwnd);
        let mut rate_bound = false;
        if let Some(rate) = self.rate_bps {
            // rate [bit/s] × srtt [ns] / 8e9 = bytes in flight at the
            // granted rate; at least one segment so flows always drain.
            let srtt = self.est.srtt_or(self.cfg.initial_rto_ns / 2) as u128;
            let bytes = (rate as u128 * srtt) / 8_000_000_000u128;
            let segs = (bytes / self.wire_seg_bytes() as u128).max(1) as u64;
            let rate_w = segs.min(u32::MAX as u64) as u32;
            if rate_w < w {
                w = rate_w;
                rate_bound = true;
            }
        }
        (w.max(1), rate_bound)
    }

    fn effective_cwnd(&self) -> u32 {
        self.cwnd_clamps().0
    }

    /// Current RTO with backoff and the deterministic jitter draw.
    fn next_rto(&mut self) -> u64 {
        let base = self
            .est
            .srtt_ns()
            .map(|s| s + 4 * self.est.rttvar_ns())
            .unwrap_or(self.cfg.initial_rto_ns)
            .clamp(self.cfg.min_rto_ns, self.cfg.max_rto_ns);
        let backed = base
            .saturating_mul(1u64 << self.backoff.min(self.cfg.backoff_cap))
            .min(self.cfg.max_rto_ns);
        let span = backed / 1000 * self.cfg.jitter_permille as u64;
        let jitter = if span == 0 {
            0
        } else {
            let draw = splitmix64(self.cfg.seed ^ self.key ^ self.jitter_draws);
            self.jitter_draws += 1;
            draw % span
        };
        backed + jitter
    }

    /// Next data transmission to put on the wire, or `None` when the
    /// window is closed (or the flow is done). Arms the RTO on the
    /// first outstanding segment. Callers loop until `None` to fill
    /// the window.
    pub fn poll_send(&mut self, now: u64) -> Option<DataSeg> {
        if self.gave_up || self.is_complete() {
            return None;
        }
        if self.pending_fast_rtx {
            self.pending_fast_rtx = false;
            let seq = self.snd_una;
            self.tx_count[seq as usize] = self.tx_count[seq as usize].saturating_add(1);
            self.retransmits += 1;
            self.fast_retransmits += 1;
            if self.rto_at.is_none() {
                let rto = self.next_rto();
                self.rto_at = Some(now + rto);
            }
            return Some(DataSeg {
                seq,
                body_len: self.body_of(seq),
                fin: seq + 1 == self.total_segs,
                retransmit: true,
            });
        }
        let (eff, rate_bound) = self.cwnd_clamps();
        let window_end = self.snd_una.saturating_add(eff).min(self.total_segs);
        if self.snd_nxt >= window_end {
            if rate_bound && self.snd_nxt < self.total_segs {
                self.rate_limited_polls += 1;
            }
            return None;
        }
        let seq = self.snd_nxt;
        self.snd_nxt += 1;
        let rexmit = self.tx_count[seq as usize] > 0;
        self.tx_count[seq as usize] = self.tx_count[seq as usize].saturating_add(1);
        if rexmit {
            self.retransmits += 1;
        }
        if self.rto_at.is_none() {
            let rto = self.next_rto();
            self.rto_at = Some(now + rto);
        }
        Some(DataSeg {
            seq,
            body_len: self.body_of(seq),
            fin: seq + 1 == self.total_segs,
            retransmit: rexmit,
        })
    }

    /// Absorb a cumulative ACK. `seq` and `ts_echo` are the triggering
    /// data segment's index and echoed timestamp (the Karn rule: the
    /// RTT is sampled only when that segment was transmitted exactly
    /// once).
    pub fn on_ack(&mut self, ack: u32, seq: u32, ts_echo: u64, now: u64) -> AckOutcome {
        if self.gave_up || self.is_complete() {
            return AckOutcome::Ignored;
        }
        if (seq as usize) < self.tx_count.len()
            && self.tx_count[seq as usize] == 1
            && now >= ts_echo
        {
            self.est.on_sample(now - ts_echo);
        }
        if ack > self.snd_una {
            let advanced = ack - self.snd_una;
            self.snd_una = ack.min(self.total_segs);
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.dup_acks = 0;
            self.backoff = 0;
            self.pending_fast_rtx = false;
            self.cwnd = self.cwnd.saturating_add(advanced).min(self.cfg.max_cwnd);
            if self.is_complete() {
                self.rto_at = None;
                return AckOutcome::Completed;
            }
            let rto = self.next_rto();
            self.rto_at = Some(now + rto);
            return AckOutcome::Advanced;
        }
        // Duplicate cumulative ACK: the receiver is stalled on
        // `snd_una`. Arm one fast retransmit at the threshold and
        // suppress further ones until the window moves again.
        self.dup_acks += 1;
        if self.dup_acks == self.cfg.dupack_threshold && self.snd_una < self.snd_nxt {
            self.pending_fast_rtx = true;
        }
        AckOutcome::Duplicate
    }

    /// The RTO deadline passed: back off and rewind (go-back-N), or
    /// give up when the oldest segment's retry budget is spent.
    pub fn on_rto(&mut self, now: u64) -> RtoOutcome {
        if self.gave_up || self.is_complete() || self.snd_una >= self.snd_nxt {
            self.rto_at = None;
            return RtoOutcome::Idle;
        }
        if self.tx_count[self.snd_una as usize] as u32 > self.cfg.max_retries {
            self.gave_up = true;
            self.rto_at = None;
            return RtoOutcome::GaveUp;
        }
        self.rto_fires += 1;
        self.backoff = (self.backoff + 1).min(self.cfg.backoff_cap);
        self.max_backoff = self.max_backoff.max(self.backoff as u64);
        self.snd_nxt = self.snd_una;
        self.cwnd = 1;
        self.dup_acks = 0;
        self.pending_fast_rtx = false;
        let rto = self.next_rto();
        self.rto_at = Some(now + rto);
        RtoOutcome::Retransmitting
    }

    /// Clamp the window to an RCP\*-style rate decoded from a TPP probe
    /// echo (bits per second). The signal is the paper's in-band
    /// feedback, not an oracle: zero grants are treated as "no
    /// information" and ignored.
    pub fn set_rate_bps(&mut self, rate_bps: u64) {
        if rate_bps == 0 {
            return;
        }
        self.rate_bps = Some(rate_bps);
        self.rate_updates += 1;
    }

    /// A switch on the path rebooted (boot-epoch change seen in a probe
    /// echo): rate grants predating the reboot are void, so drop the
    /// clamp and restart the window from its initial value.
    pub fn on_path_epoch_change(&mut self) {
        if self.gave_up || self.is_complete() {
            return;
        }
        self.rate_bps = None;
        self.cwnd = self.cfg.init_cwnd.max(1);
        self.backoff = 0;
        self.epoch_resets += 1;
    }

    /// Header for one transmission descriptor from
    /// [`poll_send`](Self::poll_send), stamped at `now`.
    pub fn data_hdr(&self, seg: DataSeg, now: u64) -> SegmentHdr {
        SegmentHdr {
            kind: KIND_DATA,
            flags: if seg.fin { FLAG_FIN } else { 0 } | if self.mining { FLAG_MINING } else { 0 },
            total_bytes: self.total_bytes,
            start_ns: self.start_ns,
            key: self.key,
            seq: seg.seq,
            ack: 0,
            ts: now,
            body_len: seg.body_len,
        }
    }
}

/// What one data arrival did at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxOutcome {
    /// Cumulative ACK to send back (next expected segment).
    pub ack: u32,
    /// Segments newly delivered in order by this arrival.
    pub delivered: u32,
    /// This arrival was a duplicate of delivered or buffered data.
    pub duplicate: bool,
    /// The flow is now fully delivered.
    pub complete: bool,
}

/// Receiver half of one flow: cumulative delivery plus a bounded
/// out-of-order buffer, exactly-once.
#[derive(Debug)]
pub struct FlowReceiver {
    total_segs: u32,
    rcv_next: u32,
    ooo: BTreeSet<u32>,
    /// Segments delivered in order so far.
    pub delivered_segs: u64,
    /// Duplicate data arrivals absorbed.
    pub dup_segments: u64,
    /// Completion time, set once.
    pub completed_at: Option<u64>,
}

impl FlowReceiver {
    /// A receiver expecting `total_segs` segments.
    pub fn new(total_segs: u32) -> FlowReceiver {
        FlowReceiver {
            total_segs: total_segs.max(1),
            rcv_next: 0,
            ooo: BTreeSet::new(),
            delivered_segs: 0,
            dup_segments: 0,
            completed_at: None,
        }
    }

    /// Whether everything has been delivered.
    pub fn is_complete(&self) -> bool {
        self.rcv_next == self.total_segs
    }

    /// Next expected segment (the cumulative ACK value).
    pub fn rcv_next(&self) -> u32 {
        self.rcv_next
    }

    /// Absorb one data segment. Every call yields an ACK (duplicates
    /// included — that is the dup-ACK signal); delivery is exactly
    /// once and in order.
    pub fn on_data(&mut self, seq: u32, now: u64) -> RxOutcome {
        let duplicate = seq >= self.total_segs || seq < self.rcv_next || self.ooo.contains(&seq);
        let mut delivered = 0;
        if duplicate {
            self.dup_segments += 1;
        } else if seq == self.rcv_next {
            self.rcv_next += 1;
            delivered += 1;
            while self.ooo.remove(&self.rcv_next) {
                self.rcv_next += 1;
                delivered += 1;
            }
            self.delivered_segs += delivered as u64;
        } else {
            self.ooo.insert(seq);
        }
        let complete = self.is_complete();
        if complete && self.completed_at.is_none() {
            self.completed_at = Some(now);
        }
        RxOutcome {
            ack: self.rcv_next,
            delivered,
            duplicate,
            complete,
        }
    }

    /// Header of the ACK answering a data segment `hdr` (echoes its
    /// `seq`/`ts` for Karn sampling and RTT).
    pub fn ack_hdr(&self, data: &SegmentHdr) -> SegmentHdr {
        SegmentHdr {
            kind: KIND_ACK,
            flags: data.flags,
            total_bytes: data.total_bytes,
            start_ns: data.start_ns,
            key: data.key,
            seq: data.seq,
            ack: self.rcv_next,
            ts: data.ts,
            body_len: 0,
        }
    }
}

/// Aggregated transport counters of one app (or one whole run —
/// [`TransportStats::merge`] folds them). `tpp-obs` ingests this as
/// the `transport.*` metric family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Flows started.
    pub flows_started: u64,
    /// Flows fully acknowledged.
    pub flows_completed: u64,
    /// Flows abandoned after the retry budget.
    pub flows_given_up: u64,
    /// Data transmissions (including retransmits).
    pub segments_sent: u64,
    /// Retransmitted segments (RTO + fast).
    pub retransmits: u64,
    /// RTO expirations taken.
    pub rto_fires: u64,
    /// Fast retransmits taken.
    pub fast_retransmits: u64,
    /// Duplicate data arrivals at receivers.
    pub dup_segments_rx: u64,
    /// ACK frames sent by receivers.
    pub acks_sent: u64,
    /// Rate probes launched.
    pub probes_sent: u64,
    /// Rate grants absorbed from probe echoes.
    pub rate_updates: u64,
    /// Path-epoch resets absorbed.
    pub epoch_resets: u64,
    /// Polls where the RCP\* rate clamp closed the window.
    pub rate_limited_polls: u64,
    /// Deepest exponential-backoff rung any flow reached (max-merged,
    /// not summed — it is a ladder depth, not a count).
    pub max_backoff: u64,
}

impl TransportStats {
    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &TransportStats) {
        self.flows_started += other.flows_started;
        self.flows_completed += other.flows_completed;
        self.flows_given_up += other.flows_given_up;
        self.segments_sent += other.segments_sent;
        self.retransmits += other.retransmits;
        self.rto_fires += other.rto_fires;
        self.fast_retransmits += other.fast_retransmits;
        self.dup_segments_rx += other.dup_segments_rx;
        self.acks_sent += other.acks_sent;
        self.probes_sent += other.probes_sent;
        self.rate_updates += other.rate_updates;
        self.epoch_resets += other.epoch_resets;
        self.rate_limited_polls += other.rate_limited_polls;
        self.max_backoff = self.max_backoff.max(other.max_backoff);
    }

    /// Absorb a finished (or abandoned) sender's counters.
    pub fn absorb_sender(&mut self, s: &FlowSender) {
        self.retransmits += s.retransmits;
        self.rto_fires += s.rto_fires;
        self.fast_retransmits += s.fast_retransmits;
        self.rate_updates += s.rate_updates;
        self.epoch_resets += s.epoch_resets;
        self.rate_limited_polls += s.rate_limited_polls;
        self.max_backoff = self.max_backoff.max(s.max_backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransportConfig {
        TransportConfig {
            init_cwnd: 2,
            max_cwnd: 8,
            ..TransportConfig::default()
        }
    }

    fn sender(total_bytes: u32) -> FlowSender {
        FlowSender::new(cfg(), 0xAB, total_bytes, false, 1_000)
    }

    #[test]
    fn header_roundtrip() {
        let hdr = SegmentHdr {
            kind: KIND_DATA,
            flags: FLAG_FIN | FLAG_MINING,
            total_bytes: 123_456,
            start_ns: 42,
            key: 0xDEAD_BEEF,
            seq: 7,
            ack: 0,
            ts: 9_999,
            body_len: 100,
        };
        let p = hdr.encode();
        assert_eq!(p.len(), HDR_LEN + 100);
        assert_eq!(SegmentHdr::decode(&p), Some(hdr));
        // The flow label convention lines up with the ECMP extractor.
        assert_eq!(&p[0..2], &MAGIC);
        assert_eq!(
            u64::from_be_bytes(p[16..24].try_into().unwrap()),
            0xDEAD_BEEF
        );
        assert_eq!(SegmentHdr::decode(&p[..HDR_LEN - 1]), None);
    }

    #[test]
    fn lossless_fast_path_completes() {
        let mut s = sender(3 * 1408);
        let mut r = FlowReceiver::new(s.total_segs());
        let mut now = 1_000;
        let mut delivered = 0;
        while !s.is_complete() {
            while let Some(seg) = s.poll_send(now) {
                assert!(!seg.retransmit);
                now += 10_000;
                let out = r.on_data(seg.seq, now);
                delivered += out.delivered;
                let outcome = s.on_ack(out.ack, seg.seq, now - 10_000, now);
                assert_ne!(outcome, AckOutcome::Duplicate);
            }
        }
        assert_eq!(delivered, 3);
        assert!(r.is_complete());
        assert_eq!(s.retransmits, 0);
        assert!(s.srtt_ns().is_some());
        assert_eq!(s.rto_deadline(), None);
    }

    #[test]
    fn rto_rewinds_and_backs_off_to_cap() {
        let mut s = sender(10 * 1408);
        let mut now = 0;
        assert!(s.poll_send(now).is_some());
        assert!(s.poll_send(now).is_some());
        let mut gaps = Vec::new();
        for _ in 0..10 {
            let at = s.rto_deadline().expect("armed");
            now = at;
            assert_eq!(s.on_rto(now), RtoOutcome::Retransmitting);
            let seg = s.poll_send(now).expect("rewound");
            assert_eq!(seg.seq, 0, "go-back-N rewinds to snd_una");
            assert!(seg.retransmit);
            gaps.push(s.rto_deadline().unwrap() - now);
        }
        // Backoff grows then saturates at the cap (jitter keeps
        // deadlines from being exactly equal, so compare magnitudes).
        let c = cfg();
        let ceiling = c.max_rto_ns + c.max_rto_ns / 1000 * c.jitter_permille as u64;
        assert!(gaps.iter().all(|&g| g <= ceiling), "{gaps:?}");
        assert!(gaps[9] >= gaps[0], "{gaps:?}");
        assert_eq!(s.rto_fires, 10);
    }

    #[test]
    fn give_up_after_retry_budget() {
        let mut s = FlowSender::new(
            TransportConfig {
                max_retries: 3,
                ..cfg()
            },
            1,
            1408,
            false,
            0,
        );
        let mut now = 0;
        let mut fired = 0;
        loop {
            while s.poll_send(now).is_some() {}
            let Some(at) = s.rto_deadline() else { break };
            now = at;
            match s.on_rto(now) {
                RtoOutcome::Retransmitting => fired += 1,
                RtoOutcome::GaveUp => break,
                RtoOutcome::Idle => unreachable!(),
            }
        }
        assert!(s.gave_up());
        assert_eq!(fired, 3, "max_retries transmissions then give up");
        assert!(s.poll_send(now).is_none());
    }

    #[test]
    fn dup_acks_trigger_one_fast_retransmit() {
        let mut s = sender(8 * 1408);
        let now = 0;
        for _ in 0..2 {
            s.poll_send(now).unwrap();
        }
        // Three duplicate cumulative ACKs for segment 0.
        for i in 0..3 {
            assert_eq!(s.on_ack(0, 1, 0, now + i), AckOutcome::Duplicate);
        }
        let seg = s.poll_send(now).expect("fast retransmit armed");
        assert_eq!((seg.seq, seg.retransmit), (0, true));
        assert_eq!(s.fast_retransmits, 1);
        // Further dup ACKs are suppressed until the window advances.
        for i in 0..5 {
            s.on_ack(0, 1, 0, now + 10 + i);
        }
        let next = s.poll_send(now + 20);
        assert!(
            next.is_none_or(|g| !g.retransmit),
            "no second fast retransmit while stalled: {next:?}"
        );
    }

    #[test]
    fn rate_clamp_bounds_window_and_epoch_reset_clears_it() {
        let mut s = sender(64 * 1408);
        // Feed an RTT so the clamp has a horizon.
        s.est.on_sample(100_000); // 100 µs
                                  // 117 Mbit/s × 100 µs ≈ 1.4 KB ≈ 1 segment in flight.
        s.set_rate_bps(117_000_000);
        assert_eq!(s.effective_cwnd(), 1);
        let mut sent = 0;
        while s.poll_send(0).is_some() {
            sent += 1;
        }
        assert_eq!(sent, 1, "window clamped to the granted rate");
        assert_eq!(
            s.rate_limited_polls, 1,
            "the closing poll was charged to the rate clamp"
        );
        s.on_path_epoch_change();
        assert_eq!(s.epoch_resets, 1);
        assert!(s.effective_cwnd() >= 2, "clamp cleared on epoch reset");
        assert_eq!(s.rate_updates, 1);
    }

    #[test]
    fn zero_rate_is_no_information() {
        let mut s = sender(1408);
        s.set_rate_bps(0);
        assert_eq!(s.rate_updates, 0);
        assert!(s.poll_send(0).is_some());
    }

    #[test]
    fn receiver_reorders_exactly_once() {
        let mut r = FlowReceiver::new(4);
        let a = r.on_data(1, 10);
        assert_eq!((a.ack, a.delivered, a.duplicate), (0, 0, false));
        let b = r.on_data(0, 20);
        assert_eq!((b.ack, b.delivered), (2, 2), "gap fill delivers both");
        let dup = r.on_data(1, 30);
        assert!(dup.duplicate);
        assert_eq!(dup.ack, 2);
        let c = r.on_data(3, 40);
        assert_eq!(c.ack, 2);
        let d = r.on_data(2, 50);
        assert!(d.complete);
        assert_eq!(d.ack, 4);
        assert_eq!(r.delivered_segs, 4);
        assert_eq!(r.dup_segments, 1);
        assert_eq!(r.completed_at, Some(50));
        // Post-completion duplicates still re-ACK.
        let tomb = r.on_data(3, 60);
        assert!(tomb.duplicate && tomb.complete);
        assert_eq!(tomb.ack, 4);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let mut s = sender(4 * 1408);
        let seg = s.poll_send(0).unwrap();
        // Force a second transmission of seq 0 via RTO.
        let at = s.rto_deadline().unwrap();
        s.on_rto(at);
        let again = s.poll_send(at).unwrap();
        assert_eq!(again.seq, seg.seq);
        // An ACK triggered by the retransmitted segment: no RTT sample.
        s.on_ack(1, 0, 0, at + 500);
        assert_eq!(s.srtt_ns(), None, "Karn: ambiguous echo not sampled");
        // A first-transmission segment does sample.
        let seg1 = s.poll_send(at).unwrap();
        s.on_ack(2, seg1.seq, at, at + 700);
        assert_eq!(s.srtt_ns(), Some(700));
    }

    #[test]
    fn stats_merge_and_absorb() {
        let mut s = sender(1408);
        s.retransmits = 3;
        s.rto_fires = 2;
        s.rate_limited_polls = 4;
        s.max_backoff = 3;
        let mut a = TransportStats {
            flows_started: 1,
            max_backoff: 5,
            ..Default::default()
        };
        a.absorb_sender(&s);
        let mut b = TransportStats {
            max_backoff: 2,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.retransmits, 3);
        assert_eq!(b.rto_fires, 2);
        assert_eq!(b.flows_started, 1);
        assert_eq!(b.rate_limited_polls, 4);
        assert_eq!(b.max_backoff, 5, "ladder depth max-merges");
    }

    #[test]
    fn backoff_ladder_depth_is_tracked() {
        let mut s = sender(4 * 1408);
        assert!(s.poll_send(0).is_some());
        for _ in 0..3 {
            let at = s.rto_deadline().unwrap();
            assert_eq!(s.on_rto(at), RtoOutcome::Retransmitting);
            assert!(s.poll_send(at).is_some());
        }
        assert_eq!(s.max_backoff, 3, "three consecutive RTOs climb 3 rungs");
        // An advancing ACK resets the live backoff but not the high-water
        // mark.
        let now = s.rto_deadline().unwrap() + 1;
        s.on_ack(1, 0, 0, now);
        assert_eq!(s.max_backoff, 3);
    }
}
